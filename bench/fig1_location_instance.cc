// E1 (Figure 1): the `location` dimension — hierarchy schema (A) and
// child/parent relation (B) — reconstructed, validated against C1-C7,
// with the rollup mappings and Example 1/2 claims printed.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/location_example.h"
#include "dim/dimension_instance.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;

void Run() {
  PrintHeader("Figure 1(A): hierarchy schema of `location`");
  HierarchySchemaPtr schema = Unwrap(LocationHierarchy());
  std::printf("%d categories, %d edges; bottom categories:",
              schema->num_categories(), schema->graph().num_edges());
  for (CategoryId b : schema->bottom_categories()) {
    std::printf(" %s", schema->CategoryName(b).c_str());
  }
  std::printf("\nshortcut edges of the schema:");
  for (const auto& [u, v] : schema->Shortcuts()) {
    std::printf(" %s->%s", schema->CategoryName(u).c_str(),
                schema->CategoryName(v).c_str());
  }
  std::printf("\n\nGraphviz:\n%s", schema->ToDot("location_hierarchy").c_str());

  PrintHeader("Figure 1(B): the child/parent relation");
  DimensionInstance d = Unwrap(LocationInstance());
  std::printf("%d members; validation: %s\n", d.num_members(),
              d.Validate().ToString().c_str());
  for (CategoryId c = 0; c < schema->num_categories(); ++c) {
    std::printf("  %-11s:", schema->CategoryName(c).c_str());
    for (MemberId m : d.MembersOf(c)) {
      std::printf(" %s", d.member(m).key.c_str());
    }
    std::printf("\n");
  }

  PrintHeader("Rollup mapping Gamma_Store^Country (single-valued by C2)");
  CategoryId store = schema->FindCategory("Store");
  CategoryId country = schema->FindCategory("Country");
  for (const auto& [x, y] : d.RollupMapping(store, country)) {
    std::printf("  %-9s -> %s\n", d.member(x).key.c_str(),
                d.member(y).key.c_str());
  }

  PrintHeader("Example 1 claims");
  CategoryId city = schema->FindCategory("City");
  CategoryId sale_region = schema->FindCategory("SaleRegion");
  CategoryId province = schema->FindCategory("Province");
  CategoryId state = schema->FindCategory("State");
  int to_city = 0, to_sr = 0, to_country = 0, to_prov = 0, to_state = 0;
  for (MemberId s : d.MembersOf(store)) {
    to_city += d.RollsUpToCategory(s, city);
    to_sr += d.RollsUpToCategory(s, sale_region);
    to_country += d.RollsUpToCategory(s, country);
    to_prov += d.RollsUpToCategory(s, province);
    to_state += d.RollsUpToCategory(s, state);
  }
  std::printf(
      "  all stores roll up to City (%d/7), SaleRegion (%d/7), "
      "Country (%d/7)\n  stores reaching Province: %d (Canada), "
      "State: %d (Mexico+Austin)\n",
      to_city, to_sr, to_country, to_prov, to_state);
  MemberId washington = *d.MemberIdOf("Washington");
  std::printf(
      "  Washington rolls up directly to Country without State: "
      "state-ancestor=%s\n",
      d.RollUpMember(washington, state) == kNoMember ? "none"
                                                     : "unexpected!");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
