// E15 (supplementary): how heterogeneity itself scales. The paper's
// §1.1 motivation — "a smaller number of categories might exponentially
// decrease the number of aggregate views" — cuts both ways: fewer, more
// heterogeneous categories mean more frozen structures per schema. We
// sweep the edge density of random hierarchies and count distinct
// frozen structures, with and without exclusive-choice constraints,
// showing the structure count the reasoner has to manage (and the DNF
// alternative would have to materialize as separate tables).

#include <cstdio>
#include <set>
#include <string>

#include "bench/bench_util.h"
#include "core/dimsat.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

struct Sample {
  double structures = 0;
  double ms = 0;
};

Sample Measure(double edge_prob, int choice_constraints, uint64_t seed) {
  SchemaGenOptions schema_options;
  schema_options.num_levels = 3;
  schema_options.categories_per_level = 3;
  schema_options.extra_edge_prob = edge_prob;
  schema_options.seed = seed;
  HierarchySchemaPtr hierarchy =
      Unwrap(GenerateLayeredHierarchy(schema_options));
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.25;
  constraint_options.num_choice_constraints = choice_constraints;
  constraint_options.num_equality_constraints = 0;
  constraint_options.seed = seed * 5 + 1;
  DimensionSchema ds =
      Unwrap(GenerateConstrainedSchema(hierarchy, constraint_options));

  DimsatOptions options;
  options.enumerate_all = true;
  options.max_frozen = 1 << 14;
  WallTimer timer;
  DimsatResult r =
      Dimsat(ds, ds.hierarchy().FindCategory("Base"), options);
  OLAPDC_CHECK(r.status.ok());
  std::set<std::string> structures;
  for (const FrozenDimension& f : r.frozen) {
    std::string key;
    for (auto [u, v] : f.g.Edges()) {
      key += std::to_string(u) + ">" + std::to_string(v) + ";";
    }
    structures.insert(std::move(key));
  }
  return Sample{static_cast<double>(structures.size()), timer.ElapsedMs()};
}

void Run() {
  PrintHeader(
      "E15: distinct frozen structures vs hierarchy edge density "
      "(11 categories, 5 seeds averaged)");
  std::printf("%10s | %14s %10s | %14s %10s\n", "edge prob",
              "structs (free)", "ms", "structs (choice)", "ms");
  bench::PrintRule();
  for (double p : {0.0, 0.15, 0.3, 0.45, 0.6}) {
    Sample free_total, choice_total;
    const int kSeeds = 5;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      Sample f = Measure(p, 0, seed);
      Sample c = Measure(p, 2, seed);
      free_total.structures += f.structures / kSeeds;
      free_total.ms += f.ms / kSeeds;
      choice_total.structures += c.structures / kSeeds;
      choice_total.ms += c.ms / kSeeds;
    }
    std::printf("%10.2f | %14.1f %10.2f | %14.1f %10.2f\n", p,
                free_total.structures, free_total.ms,
                choice_total.structures, choice_total.ms);
  }
  std::printf(
      "\nExpected shape: structures multiply with edge density; "
      "exclusive-choice constraints cut the count (each ⊙ kills the "
      "both-parents structures). Each structure is a table Lehner-style "
      "normalization would materialize; dimension constraints manage "
      "them symbolically instead.\n");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
