// Per-technique ablation for the DIMSAT speed work: component
// decomposition (DimsatOptions::decompose), most-constrained-first
// branching (DimsatOptions::branch_heuristic), and the widened bitset
// kernels (common/bitset.h wide-kernel toggle). Each technique runs
// alone and combined over the location suite (where decomposition
// falls back to the monolithic search) and a family of generated
// multi-component schemas (where it bites), with every run's frozen
// set checked equal to the baseline's.
//
// The committed BENCH_dimsat_ablation.json carries three derived
// fields that CI holds floors on (tools/bench_gate --floor):
//   decomp_expand_reduction_pct    — EXPAND calls saved by
//                                    decomposition alone, aggregated
//                                    over the multi-component suite;
//   branching_further_reduction_pct — EXPAND calls the branching order
//                                    saves *on top of* decomposition;
//   simd_speedup                   — wide-vs-scalar kernel throughput
//                                    on 320/512-bit sets.
// The reductions are deterministic node counts (host-independent); the
// SIMD rows are wall-clock and self-exempt on hosts without AVX2.

#include <cstdio>
#include <algorithm>
#include <cmath>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/bitset.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::BenchReporter;
using bench::PrintHeader;
using bench::PrintRule;
using bench::Unwrap;
using bench::WallTimer;

std::vector<std::string> Canonical(const std::vector<FrozenDimension>& fs,
                                   const HierarchySchema& schema) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const FrozenDimension& f : fs) out.push_back(f.ToString(schema));
  std::sort(out.begin(), out.end());
  return out;
}

struct Config {
  const char* name;
  bool decompose;
  bool branch_heuristic;
  bool wide_kernels;
};

constexpr Config kConfigs[] = {
    {"baseline", false, false, false},
    {"decomp", true, false, false},
    {"branching", false, true, false},
    {"decomp_branch", true, true, false},
    {"simd", false, false, true},
    {"all", true, true, true},
};

struct Workload {
  std::string name;
  DimensionSchema ds;
  CategoryId root;
  bool multi_component;
};

std::vector<Workload> BuildWorkloads() {
  std::vector<Workload> workloads;

  DimensionSchema location = Unwrap(LocationSchema());
  const CategoryId store = location.hierarchy().FindCategory("Store");
  workloads.push_back({"location", std::move(location), store, false});

  struct McSpec {
    const char* name;
    int components;
    int levels;
    int cats;
    uint64_t seed;
  };
  const McSpec specs[] = {
      {"mc3", 3, 2, 3, 11},
      {"mc4", 4, 2, 3, 23},
      {"mc3_deep", 3, 3, 3, 37},
  };
  for (const McSpec& spec : specs) {
    MultiComponentGenOptions options;
    options.num_components = spec.components;
    options.levels_per_component = spec.levels;
    options.categories_per_level = spec.cats;
    options.seed = spec.seed;
    DimensionSchema ds = Unwrap(GenerateMultiComponentSchema(options));
    const CategoryId base = ds.hierarchy().FindCategory("Base");
    workloads.push_back({spec.name, std::move(ds), base, true});
  }
  return workloads;
}

struct RunRecord {
  uint64_t expand_calls = 0;
  double ms = 0;
};

void RunSuite(BenchReporter& reporter) {
  PrintHeader("DIMSAT ablation: decomposition / branching / SIMD kernels");
  std::printf("%10s %14s %12s %10s %10s %10s\n", "workload", "config", "ms",
              "frozen", "expands", "checks");
  PrintRule();

  // accumulated[config] over the multi-component workloads only — the
  // suite the decomposition techniques are aimed at.
  std::vector<RunRecord> accumulated(std::size(kConfigs));

  std::vector<Workload> workloads = BuildWorkloads();
  for (const Workload& workload : workloads) {
    std::vector<std::string> golden;
    for (size_t ci = 0; ci < std::size(kConfigs); ++ci) {
      const Config& config = kConfigs[ci];
      bitset_kernels::SetWideKernelsEnabled(config.wide_kernels);
      DimsatOptions options;
      options.enumerate_all = true;
      options.decompose = config.decompose;
      options.branch_heuristic = config.branch_heuristic;
      WallTimer timer;
      DimsatResult result = Dimsat(workload.ds, workload.root, options);
      const double ms = timer.ElapsedMs();
      bitset_kernels::SetWideKernelsEnabled(true);
      OLAPDC_CHECK(result.status.ok()) << result.status.ToString();
      const std::vector<std::string> canonical =
          Canonical(result.frozen, workload.ds.hierarchy());
      if (ci == 0) {
        golden = canonical;
      } else {
        OLAPDC_CHECK(canonical == golden)
            << workload.name << "/" << config.name
            << ": ablated run changed the model set";
      }

      std::printf("%10s %14s %12.2f %10zu %10llu %10llu\n",
                  workload.name.c_str(), config.name, ms,
                  result.frozen.size(),
                  static_cast<unsigned long long>(result.stats.expand_calls),
                  static_cast<unsigned long long>(result.stats.check_calls));
      reporter.AddRow()
          .Set("workload", workload.name)
          .Set("config", config.name)
          .Set("ms", ms)
          .Set("frozen", static_cast<uint64_t>(result.frozen.size()))
          .Set("expand_calls", result.stats.expand_calls)
          .Set("check_calls", result.stats.check_calls)
          .Set("multi_component", workload.multi_component);
      if (workload.multi_component) {
        accumulated[ci].expand_calls += result.stats.expand_calls;
        accumulated[ci].ms += ms;
      }
    }
  }

  const auto index_of = [&](const char* name) {
    for (size_t i = 0; i < std::size(kConfigs); ++i) {
      if (std::string(kConfigs[i].name) == name) return i;
    }
    OLAPDC_CHECK(false) << "unknown config " << name;
    return size_t{0};
  };
  const uint64_t base = accumulated[index_of("baseline")].expand_calls;
  const uint64_t decomp = accumulated[index_of("decomp")].expand_calls;
  const uint64_t both = accumulated[index_of("decomp_branch")].expand_calls;
  OLAPDC_CHECK(base > 0 && decomp > 0 && both > 0);

  const double decomp_reduction_pct =
      100.0 * (1.0 - static_cast<double>(decomp) / base);
  const double branching_further_pct =
      100.0 * (1.0 - static_cast<double>(both) / decomp);

  PrintRule();
  std::printf(
      "multi-component aggregate: %llu -> %llu expands with decomposition "
      "(-%.1f%%), -> %llu with branching on top (further -%.1f%%)\n",
      static_cast<unsigned long long>(base),
      static_cast<unsigned long long>(decomp), decomp_reduction_pct,
      static_cast<unsigned long long>(both), branching_further_pct);

  reporter.AddRow()
      .Set("case", "summary")
      .Set("baseline_expand_calls", base)
      .Set("decomp_expand_calls", decomp)
      .Set("decomp_branch_expand_calls", both)
      .Set("decomp_expand_reduction_pct", decomp_reduction_pct)
      .Set("branching_further_reduction_pct", branching_further_pct);
}

/// Wide-vs-scalar kernel throughput on the set sizes the DIMSAT hot
/// loops actually touch (reach closures, into-prune masks). Measures
/// the fused and-not-any probe, the or-accumulate, equality, and
/// popcount; the gated simd_speedup is the geometric mean over the
/// first three (the kernels with an actual AVX2 path — popcount is
/// 4-way unrolled scalar in both modes and reported informationally).
void RunSimdMicro(BenchReporter& reporter) {
  PrintHeader("SIMD micro: wide vs scalar bitset kernels");
  std::printf("%8s %14s %14s %10s\n", "bits", "scalar_ns/op", "wide_ns/op",
              "speedup");
  PrintRule();

  const bool has_avx2 = bitset_kernels::CpuHasAvx2();
  // Gated sizes: >= 512 bits, the SBO/heap boundary the wide kernels
  // target (>= 2 full AVX2 blocks). At 4-6 words the runtime-dispatch
  // branch offsets the single-block win, so 320 is reported but not
  // part of the floor-checked aggregate.
  constexpr int kGateBitsFloor = 512;
  std::vector<double> gated_speedups;
  for (int bits : {320, 512, 1024}) {
    // Subset pairs (b superset of a): AndNotAny must scan the full
    // width, as in the non-pruning common case of the into-probe.
    // Equal pairs force Equal to scan fully too. Early-exit inputs
    // would measure the branch predictor, not the kernels.
    std::vector<DynamicBitset> a, b, e;
    for (int i = 0; i < 64; ++i) {
      DynamicBitset x(bits), y(bits);
      for (int j = i % 7; j < bits; j += 7) x.set(j);
      y = x;
      for (int j = i % 5; j < bits; j += 5) y.set(j);
      a.push_back(std::move(x));
      e.push_back(y);
      b.push_back(std::move(y));
    }

    // One measured pass = kIters sweeps over the 64-set working set.
    // Scalar and wide passes interleave within each round so both
    // modes sample the same ambient load (this matters on shared or
    // cgroup-throttled CI hosts, where the two halves of a sequential
    // A-then-B measurement can see very different steal time); each
    // mode keeps its best round.
    constexpr int kIters = 20000;
    constexpr int kRounds = 9;
    uint64_t sink = 0;
    struct Pair {
      double scalar = 1e100;
      double wide = 1e100;
    };
    const auto measure = [&](auto&& sweep) {
      Pair best;
      for (int round = 0; round < kRounds; ++round) {
        for (bool use_wide : {false, true}) {
          bitset_kernels::SetWideKernelsEnabled(use_wide);
          sweep();  // warm the path before timing it
          WallTimer timer;
          for (int it = 0; it < kIters; ++it) sweep();
          const double ns =
              timer.ElapsedUs() * 1000.0 /
              (static_cast<double>(kIters) * a.size());
          (use_wide ? best.wide : best.scalar) =
              std::min(use_wide ? best.wide : best.scalar, ns);
        }
      }
      bitset_kernels::SetWideKernelsEnabled(true);
      return best;
    };
    DynamicBitset acc(bits);
    const Pair andnotany = measure([&] {
      for (size_t i = 0; i < a.size(); ++i) sink += a[i].AndNotAny(b[i]);
    });
    const Pair orfold = measure([&] {
      for (size_t i = 0; i < a.size(); ++i) acc |= a[i];
      sink += static_cast<uint64_t>(acc.test(0));
    });
    const Pair equal = measure([&] {
      for (size_t i = 0; i < b.size(); ++i)
        sink += static_cast<uint64_t>(b[i] == e[i]);
    });
    const Pair count = measure([&] {
      for (size_t i = 0; i < a.size(); ++i)
        sink += static_cast<uint64_t>(a[i].count());
    });

    // The gated metric covers the kernels with a real vector path
    // (and-not-any probe, or-accumulate, equality); popcount has no
    // AVX2 instruction, so its ~1x ratio is reported but not gated.
    const double speedup_geo =
        std::cbrt((andnotany.scalar / andnotany.wide) *
                  (orfold.scalar / orfold.wide) * (equal.scalar / equal.wide));
    if (bits >= kGateBitsFloor) gated_speedups.push_back(speedup_geo);
    std::printf(
        "%8d  andnotany %.2f->%.2f  or %.2f->%.2f  eq %.2f->%.2f  "
        "count %.2f->%.2f  => %.2fx%s\n",
        bits, andnotany.scalar, andnotany.wide, orfold.scalar, orfold.wide,
        equal.scalar, equal.wide, count.scalar, count.wide, speedup_geo,
        has_avx2 ? "" : " (no AVX2: informational)");

    reporter.AddRow()
        .Set("case", "simd_micro")
        .Set("bits", bits)
        .Set("scalar_andnotany_ns", andnotany.scalar)
        .Set("wide_andnotany_ns", andnotany.wide)
        .Set("scalar_or_ns", orfold.scalar)
        .Set("wide_or_ns", orfold.wide)
        .Set("scalar_equal_ns", equal.scalar)
        .Set("wide_equal_ns", equal.wide)
        .Set("scalar_count_ns", count.scalar)
        .Set("wide_count_ns", count.wide)
        .Set("speedup_geo", speedup_geo);
    if (sink == 0xdeadbeef) std::printf("(unreachable sink)\n");
  }

  // The gated metric aggregates across the >=512-bit sizes: geomean of
  // the per-size speedups, carried on a single summary row so the
  // floor reads one number for the whole claim.
  double agg = 1.0;
  for (double s : gated_speedups) agg *= s;
  agg = std::pow(agg, 1.0 / static_cast<double>(gated_speedups.size()));
  std::printf(
      "aggregate wide-kernel speedup (geomean over >=%d-bit sizes): %.2fx\n",
      kGateBitsFloor, agg);
  BenchReporter::Row& summary = reporter.AddRow()
                                    .Set("case", "simd_summary")
                                    .Set("simd_speedup", agg);
  if (!has_avx2) {
    // Without AVX2 both toggles take the same scalar path; the 1.3x
    // floor is unmeasurable, not failed.
    summary.Set("floor_exempt", true);
  }
}

void Run() {
  BenchReporter reporter("dimsat_ablation");
  RunSuite(reporter);
  RunSimdMicro(reporter);
  reporter.WriteJson();
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
