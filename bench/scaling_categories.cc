// E7 (Proposition 4): DIMSAT running time as the number of categories N
// grows, on homogeneous (into_fraction = 1.0) vs heterogeneous
// (into_fraction = 0.4) random layered schemas. The paper's bound is
// O(2^(N^2 + N log N_K) * N^3 * N_Sigma) in the worst case; the table
// shows how far typical schemas stay from it, and how into constraints
// flatten the curve (the Section 5 conjecture).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/dimsat.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

struct Sample {
  double ms = 0;
  uint64_t expand_calls = 0;
  uint64_t check_calls = 0;
  size_t frozen = 0;
};

Sample Measure(double into_fraction, int levels, int width, uint64_t seed) {
  SchemaGenOptions schema_options;
  schema_options.num_levels = levels;
  schema_options.categories_per_level = width;
  schema_options.extra_edge_prob = 0.25;
  schema_options.seed = seed;
  HierarchySchemaPtr hierarchy =
      Unwrap(GenerateLayeredHierarchy(schema_options));
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = into_fraction;
  constraint_options.num_choice_constraints = 2;
  constraint_options.num_equality_constraints = 2;
  constraint_options.seed = seed * 13 + 1;
  DimensionSchema ds =
      Unwrap(GenerateConstrainedSchema(hierarchy, constraint_options));

  DimsatOptions options;
  options.enumerate_all = true;  // full exploration, not first-hit luck
  options.max_frozen = 1 << 14;
  WallTimer timer;
  DimsatResult r =
      Dimsat(ds, ds.hierarchy().FindCategory("Base"), options);
  OLAPDC_CHECK(r.status.ok()) << r.status.ToString();
  return Sample{timer.ElapsedMs(), r.stats.expand_calls,
                r.stats.check_calls, r.frozen.size()};
}

void Run() {
  PrintHeader(
      "E7: DIMSAT(Base) full enumeration vs category count N "
      "(5 seeds averaged)");
  std::printf("%4s %6s | %-34s | %-34s\n", "", "", "heterogeneous (into=0.4)",
              "homogeneous (into=1.0)");
  std::printf("%4s %6s | %10s %10s %12s | %10s %10s %12s\n", "N", "lvls",
              "ms", "expands", "frozen", "ms", "expands", "frozen");
  bench::PrintRule();
  struct Config {
    int levels;
    int width;
  };
  for (Config config : std::vector<Config>{
           {2, 2}, {3, 2}, {3, 3}, {4, 3}, {5, 3}, {5, 4}}) {
    const int n = 2 + config.levels * config.width;  // Base + levels + All
    Sample het, hom;
    const int kSeeds = 5;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      Sample h = Measure(0.4, config.levels, config.width, seed);
      Sample o = Measure(1.0, config.levels, config.width, seed);
      het.ms += h.ms;
      het.expand_calls += h.expand_calls;
      het.frozen += h.frozen;
      hom.ms += o.ms;
      hom.expand_calls += o.expand_calls;
      hom.frozen += o.frozen;
    }
    std::printf("%4d %6d | %10.2f %10.0f %12.1f | %10.2f %10.0f %12.1f\n", n,
                config.levels, het.ms / kSeeds,
                static_cast<double>(het.expand_calls) / kSeeds,
                static_cast<double>(het.frozen) / kSeeds, hom.ms / kSeeds,
                static_cast<double>(hom.expand_calls) / kSeeds,
                static_cast<double>(hom.frozen) / kSeeds);
  }
  std::printf(
      "\nExpected shape: exponential growth with N for heterogeneous "
      "schemas, near-flat for fully into-constrained (homogeneous) ones.\n");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
