// E4 (Figure 5): the circle operator. Reproduces the two-column table
// Sigma(locationSch, Store) vs Sigma(locationSch, Store) ∘ g for the
// Example 12 subhierarchy, then shows why that g induces no frozen
// dimension.

#include <cstdio>

#include "bench/bench_util.h"
#include "constraint/normalize.h"
#include "constraint/printer.h"
#include "core/assignment.h"
#include "core/circle.h"
#include "core/location_example.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;

void Run() {
  DimensionSchema ds = Unwrap(LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  CategoryId store = schema.FindCategory("Store");
  CategoryId city = schema.FindCategory("City");
  CategoryId province = schema.FindCategory("Province");
  CategoryId state = schema.FindCategory("State");
  CategoryId sale_region = schema.FindCategory("SaleRegion");
  CategoryId country = schema.FindCategory("Country");

  // The Example 12 "mixed" subhierarchy g.
  auto g = Subhierarchy::FromEdges(schema.num_categories(), store,
                                   schema.all(),
                                   {{store, city},
                                    {city, province},
                                    {city, state},
                                    {province, sale_region},
                                    {state, country},
                                    {sale_region, country},
                                    {country, schema.all()}});
  OLAPDC_CHECK(g.has_value());

  PrintHeader("Example 12 subhierarchy g");
  for (const auto& [u, v] : g->Edges()) {
    std::printf("  %s -> %s\n", schema.CategoryName(u).c_str(),
                schema.CategoryName(v).c_str());
  }

  PrintHeader("Figure 5: Sigma(locationSch, Store)  |  Sigma ∘ g");
  PrinterOptions paper;
  paper.paper_symbols = true;
  auto reach = g->ComputeReach();
  for (const DimensionConstraint& c : ds.constraints()) {
    ExprPtr circled = ApplyCircleToConstraint(c, *g, reach);
    std::printf("  %-4s %-52s | %s\n", c.label.c_str(),
                ExprToString(schema, c.expr, paper).c_str(),
                ExprToString(schema, circled, paper).c_str());
  }

  PrintHeader("Why g induces no frozen dimension");
  std::vector<ExprPtr> remaining;
  for (const DimensionConstraint& c : ds.constraints()) {
    ExprPtr e = Simplify(ApplyCircleToConstraint(c, *g, reach));
    if (!IsTrueLiteral(e)) remaining.push_back(e);
  }
  std::printf("surviving (equality-only) constraints:\n");
  for (const ExprPtr& e : remaining) {
    std::printf("  %s\n", ExprToString(schema, e, paper).c_str());
  }
  AssignmentSearchResult search = FindAssignments(*g, remaining);
  std::printf("c-assignments satisfying them: %zu (tried %llu)\n",
              search.assignments.size(),
              static_cast<unsigned long long>(search.tried));
  std::printf("-> (e) forces Country in {Mexico, USA} while (g) forces "
              "Country = Canada; the mixed structure is contradictory.\n");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
