// E8 (Proposition 4): DIMSAT sensitivity to the constraint-set size
// N_Sigma and to the constants-per-category count N_K (the
// c-assignment space is O(N_K^N) in the worst case; the bound carries
// an N log N_K exponent term and a linear N_Sigma factor).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/dimsat.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

HierarchySchemaPtr FixedHierarchy() {
  SchemaGenOptions options;
  options.num_levels = 4;
  options.categories_per_level = 3;
  options.extra_edge_prob = 0.25;
  options.seed = 99;
  return Unwrap(GenerateLayeredHierarchy(options));
}

struct Sample {
  double ms = 0;
  uint64_t assignments = 0;
  size_t constraints = 0;
};

Sample Measure(const HierarchySchemaPtr& hierarchy, int eq_constraints,
               int constants, uint64_t seed) {
  ConstraintGenOptions options;
  options.into_fraction = 0.5;
  options.num_choice_constraints = 2;
  options.num_equality_constraints = eq_constraints;
  options.num_constants = constants;
  options.seed = seed;
  DimensionSchema ds = Unwrap(GenerateConstrainedSchema(hierarchy, options));
  DimsatOptions dimsat_options;
  dimsat_options.enumerate_all = true;
  dimsat_options.max_frozen = 1 << 14;
  WallTimer timer;
  DimsatResult r =
      Dimsat(ds, ds.hierarchy().FindCategory("Base"), dimsat_options);
  OLAPDC_CHECK(r.status.ok());
  return Sample{timer.ElapsedMs(), r.stats.assignments_tried,
                ds.constraints().size()};
}

void Run() {
  HierarchySchemaPtr hierarchy = FixedHierarchy();
  const int kSeeds = 5;

  PrintHeader("E8a: runtime vs N_Sigma (equality-constraint count sweep)");
  std::printf("%10s %10s %10s %14s\n", "N_Sigma", "(eq part)", "ms",
              "assignments");
  bench::PrintRule();
  for (int eq : {0, 2, 4, 8, 16, 32}) {
    double ms = 0;
    uint64_t assignments = 0;
    size_t n_sigma = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      Sample s = Measure(hierarchy, eq, 2, seed);
      ms += s.ms;
      assignments += s.assignments;
      n_sigma = s.constraints;
    }
    std::printf("%10zu %10d %10.2f %14.0f\n", n_sigma, eq, ms / kSeeds,
                static_cast<double>(assignments) / kSeeds);
  }

  PrintHeader("E8b: runtime vs N_K (constants per category sweep)");
  std::printf("%10s %10s %14s\n", "N_K", "ms", "assignments");
  bench::PrintRule();
  for (int constants : {1, 2, 4, 8, 16}) {
    double ms = 0;
    uint64_t assignments = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      Sample s = Measure(hierarchy, 8, constants, seed);
      ms += s.ms;
      assignments += s.assignments;
    }
    std::printf("%10d %10.2f %14.0f\n", constants, ms / kSeeds,
                static_cast<double>(assignments) / kSeeds);
  }
  std::printf(
      "\nExpected shape: roughly linear in N_Sigma; the assignment count "
      "grows with N_K but only on the categories mentioned by surviving "
      "equality atoms.\n");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
