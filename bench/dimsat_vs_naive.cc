// E10 (Theorem 3): DIMSAT vs the brute-force frozen-dimension
// enumeration. Both are exact; the naive procedure enumerates all
// 2^edges candidate subgraphs while DIMSAT only grows well-formed
// subhierarchies with pruning. The win factor should grow exponentially
// with the edge count.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/dimsat.h"
#include "core/naive_sat.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

void Run() {
  PrintHeader("E10: DIMSAT vs NaiveSat (full enumeration, root = Base)");
  std::printf("%4s %6s | %10s %10s | %10s %12s | %8s %7s\n", "N", "edges",
              "dimsat ms", "checks", "naive ms", "candidates", "speedup",
              "agree");
  bench::PrintRule();
  bench::BenchReporter reporter("dimsat");
  for (int levels : {2, 3, 4}) {
    for (int width : {2, 3}) {
      SchemaGenOptions schema_options;
      schema_options.num_levels = levels;
      schema_options.categories_per_level = width;
      schema_options.extra_edge_prob = 0.2;
      schema_options.seed = 17 * levels + width;
      HierarchySchemaPtr hierarchy =
          Unwrap(GenerateLayeredHierarchy(schema_options));
      ConstraintGenOptions constraint_options;
      constraint_options.into_fraction = 0.5;
      constraint_options.num_choice_constraints = 1;
      constraint_options.num_equality_constraints = 1;
      constraint_options.seed = levels * 31 + width;
      DimensionSchema ds =
          Unwrap(GenerateConstrainedSchema(hierarchy, constraint_options));
      CategoryId base = ds.hierarchy().FindCategory("Base");

      DimsatOptions dimsat_options;
      dimsat_options.enumerate_all = true;
      WallTimer dimsat_timer;
      DimsatResult dimsat = Dimsat(ds, base, dimsat_options);
      double dimsat_ms = dimsat_timer.ElapsedMs();
      OLAPDC_CHECK(dimsat.status.ok());

      bench::BenchReporter::Row& row =
          reporter.AddRow()
              .Set("levels", levels)
              .Set("width", width)
              .Set("categories",
                   static_cast<int>(ds.hierarchy().num_categories()))
              .Set("edges",
                   static_cast<int>(ds.hierarchy().graph().num_edges()))
              .Set("dimsat_ms", dimsat_ms)
              .Set("dimsat_expand_calls", dimsat.stats.expand_calls)
              .Set("dimsat_check_calls", dimsat.stats.check_calls)
              .Set("dimsat_frozen", static_cast<uint64_t>(dimsat.frozen.size()));

      NaiveSatOptions naive_options;
      naive_options.enumerate_all = true;
      naive_options.max_edges = 24;
      WallTimer naive_timer;
      auto naive = NaiveSat(ds, base, naive_options);
      if (!naive.ok()) {
        std::printf("%4d %6d | %10.2f %10llu |   (naive exceeds edge "
                    "budget)\n",
                    ds.hierarchy().num_categories(),
                    ds.hierarchy().graph().num_edges(), dimsat_ms,
                    static_cast<unsigned long long>(dimsat.stats.check_calls));
        row.Set("naive_skipped", true);
        continue;
      }
      double naive_ms = naive_timer.ElapsedMs();
      bool agree = naive->frozen.size() == dimsat.frozen.size() &&
                   naive->satisfiable == dimsat.satisfiable;
      row.Set("naive_ms", naive_ms)
          .Set("naive_candidates", naive->stats.check_calls)
          .Set("speedup", naive_ms / (dimsat_ms > 0 ? dimsat_ms : 0.001))
          .Set("agree", agree);
      std::printf("%4d %6d | %10.2f %10llu | %10.2f %12llu | %8.1fx %7s\n",
                  ds.hierarchy().num_categories(),
                  ds.hierarchy().graph().num_edges(), dimsat_ms,
                  static_cast<unsigned long long>(dimsat.stats.check_calls),
                  naive_ms,
                  static_cast<unsigned long long>(naive->stats.check_calls),
                  naive_ms / (dimsat_ms > 0 ? dimsat_ms : 0.001),
                  agree ? "yes" : "NO");
    }
  }
  reporter.WriteJson();
  std::printf(
      "\nExpected shape: DIMSAT wins by a factor growing exponentially in "
      "the edge count (the naive candidate count is 2^edges).\n");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
