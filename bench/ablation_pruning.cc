// E9 (Section 5 conjecture): the into-constraint pruning ablation. The
// paper: "We conjecture that this optimization should have a major
// impact in practice, since we will frequently have heterogeneity
// arising as an exception, having most of the edges of the schema
// associated with into constraints." We sweep the fraction of
// into-constrained edges and toggle each pruning rule.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/dimsat.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

struct Sample {
  double ms = 0;
  uint64_t expands = 0;
  uint64_t checks = 0;
};

Sample Measure(double into_fraction, const DimsatOptions& options,
               uint64_t seed) {
  SchemaGenOptions schema_options;
  schema_options.num_levels = 4;
  schema_options.categories_per_level = 3;
  schema_options.extra_edge_prob = 0.25;
  schema_options.seed = seed;
  HierarchySchemaPtr hierarchy =
      Unwrap(GenerateLayeredHierarchy(schema_options));
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = into_fraction;
  constraint_options.num_choice_constraints = 1;
  constraint_options.num_equality_constraints = 2;
  constraint_options.seed = seed * 7 + 3;
  DimensionSchema ds =
      Unwrap(GenerateConstrainedSchema(hierarchy, constraint_options));

  DimsatOptions run_options = options;
  run_options.enumerate_all = true;
  run_options.max_frozen = 1 << 14;
  WallTimer timer;
  DimsatResult r =
      Dimsat(ds, ds.hierarchy().FindCategory("Base"), run_options);
  OLAPDC_CHECK(r.status.ok());
  return Sample{timer.ElapsedMs(), r.stats.expand_calls,
                r.stats.check_calls};
}

Sample Averaged(double into_fraction, const DimsatOptions& options) {
  Sample total;
  const int kSeeds = 5;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    Sample s = Measure(into_fraction, options, seed);
    total.ms += s.ms;
    total.expands += s.expands;
    total.checks += s.checks;
  }
  total.ms /= kSeeds;
  total.expands /= kSeeds;
  total.checks /= kSeeds;
  return total;
}

void Run() {
  PrintHeader(
      "E9: pruning ablation vs into-constraint density (full enumeration, "
      "5 seeds)");
  DimsatOptions all_on;
  DimsatOptions no_into = all_on;
  no_into.prune_into = false;
  DimsatOptions no_structural = all_on;
  no_structural.prune_shortcuts = false;
  no_structural.prune_cycles = false;
  DimsatOptions all_off = no_into;
  all_off.prune_shortcuts = false;
  all_off.prune_cycles = false;

  std::printf("%8s | %-19s | %-19s | %-19s | %-19s\n", "into", "all pruning",
              "no into-prune", "no cycle/shortcut", "no pruning");
  std::printf("%8s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "frac", "ms",
              "expands", "ms", "expands", "ms", "expands", "ms", "expands");
  bench::PrintRule();
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    Sample a = Averaged(fraction, all_on);
    Sample b = Averaged(fraction, no_into);
    Sample c = Averaged(fraction, no_structural);
    Sample d = Averaged(fraction, all_off);
    std::printf(
        "%8.2f | %9.2f %9llu | %9.2f %9llu | %9.2f %9llu | %9.2f %9llu\n",
        fraction, a.ms, static_cast<unsigned long long>(a.expands), b.ms,
        static_cast<unsigned long long>(b.expands), c.ms,
        static_cast<unsigned long long>(c.expands), d.ms,
        static_cast<unsigned long long>(d.expands));
  }
  std::printf(
      "\nExpected shape: the gap between 'all pruning' and 'no into-prune' "
      "widens as the into fraction grows — the paper's heterogeneity-as-"
      "exception conjecture.\n");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
