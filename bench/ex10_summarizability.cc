// E6 (Example 10 / Theorem 1): summarizability answers on location at
// the schema and instance level, verified operationally: for each
// (target, S) pair the Definition 6 rewriting is compared against the
// directly computed cube view on a generated instance.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/location_example.h"
#include "core/summarizability.h"
#include "olap/cube_view.h"
#include "workload/instance_generator.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;

std::string SetName(const HierarchySchema& schema,
                    const std::vector<CategoryId>& s) {
  std::string out = "{";
  for (size_t i = 0; i < s.size(); ++i) {
    out += (i ? ", " : "") + schema.CategoryName(s[i]);
  }
  return out + "}";
}

void Run() {
  DimensionSchema ds = Unwrap(LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  DimensionInstance location = Unwrap(LocationInstance());

  CategoryId city = schema.FindCategory("City");
  CategoryId province = schema.FindCategory("Province");
  CategoryId state = schema.FindCategory("State");
  CategoryId sale_region = schema.FindCategory("SaleRegion");
  CategoryId country = schema.FindCategory("Country");

  struct Case {
    CategoryId target;
    std::vector<CategoryId> sources;
  };
  const std::vector<Case> cases = {
      {country, {city}},                // Example 10: YES
      {country, {state, province}},     // Example 10: NO (Washington)
      {country, {sale_region}},         // YES
      {country, {city, sale_region}},   // NO (double counting)
      {province, {city}},               // YES
      {sale_region, {province, state}}, // NO (US stores direct)
      {sale_region, {city}},            // NO
      {schema.all(), {country}},        // YES
  };

  // A synthetic instance realizing every schema structure, with facts.
  InstanceGenOptions gen;
  gen.branching = 2;
  gen.copies = 2;
  DimensionInstance synthetic = Unwrap(GenerateInstanceFromFrozen(ds, gen));
  FactTable facts = GenerateFacts(synthetic);

  PrintHeader("Example 10 battery: summarizability & rewrite correctness");
  std::printf("%-12s %-28s %-8s %-10s %-14s\n", "target", "S",
              "schema", "instance", "SUM rewrite");
  bench::PrintRule();
  for (const Case& c : cases) {
    SummarizabilityResult schema_level =
        Unwrap(IsSummarizable(ds, c.target, c.sources));
    bool instance_level =
        Unwrap(IsSummarizableInInstance(location, c.target, c.sources));

    CubeViewResult direct =
        ComputeCubeView(synthetic, facts, c.target, AggFn::kSum);
    std::vector<CubeViewResult> views;
    views.reserve(c.sources.size());
    for (CategoryId s : c.sources) {
      views.push_back(ComputeCubeView(synthetic, facts, s, AggFn::kSum));
    }
    std::vector<MaterializedView> sources;
    for (size_t i = 0; i < c.sources.size(); ++i) {
      sources.push_back(MaterializedView{c.sources[i], &views[i]});
    }
    CubeViewResult rewritten =
        RewriteFromViews(synthetic, sources, c.target, AggFn::kSum);
    bool equal = CubeViewsEqual(direct, rewritten);

    std::printf("%-12s %-28s %-8s %-10s %-14s\n",
                schema.CategoryName(c.target).c_str(),
                SetName(schema, c.sources).c_str(),
                schema_level.summarizable ? "yes" : "no",
                instance_level ? "yes" : "no",
                equal ? "exact" : "DIVERGES");
    OLAPDC_CHECK(schema_level.summarizable == equal)
        << "Theorem 1 violated on the synthetic instance";
  }
  std::printf(
      "\nEvery schema-level 'yes' rewrote exactly and every 'no' diverged "
      "on the all-structures instance — Theorem 1 validated end to end.\n");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
