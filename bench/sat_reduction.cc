// E11 (Theorem 4): category satisfiability is NP-complete. We push
// random 3-SAT instances through the hardness reduction and time DIMSAT
// near the phase-transition clause ratio (~4.3), demonstrating the
// worst-case exponent the complexity bound predicts.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/dimsat.h"
#include "core/sat_reduction.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

void Run() {
  PrintHeader(
      "E11: random 3-SAT through the Theorem 4 reduction "
      "(clause ratio 4.3, 5 seeds per size)");
  std::printf("%6s %8s | %10s %10s %6s %6s\n", "vars", "clauses", "ms",
              "expands", "sat", "unsat");
  bench::PrintRule();
  for (int vars : {4, 6, 8, 10, 12, 14}) {
    const int clauses = static_cast<int>(vars * 4.3);
    double total_ms = 0;
    uint64_t total_expands = 0;
    int sat = 0, unsat = 0;
    for (int seed = 1; seed <= 5; ++seed) {
      Cnf cnf = RandomCnf(vars, clauses, 3, seed * 1000 + vars);
      SatReduction reduction = Unwrap(ReduceCnfToCategorySatisfiability(cnf));
      WallTimer timer;
      DimsatResult r = Dimsat(reduction.schema, reduction.query);
      OLAPDC_CHECK(r.status.ok());
      total_ms += timer.ElapsedMs() / 5;
      total_expands += r.stats.expand_calls / 5;
      (r.satisfiable ? sat : unsat)++;
      // Spot-check against brute force where affordable.
      if (vars <= 12) {
        OLAPDC_CHECK(r.satisfiable == BruteForceCnfSat(cnf));
      }
    }
    std::printf("%6d %8d | %10.2f %10llu %6d %6d\n", vars, clauses, total_ms,
                static_cast<unsigned long long>(total_expands), sat, unsat);
  }
  std::printf(
      "\nExpected shape: runtime grows exponentially with the variable "
      "count on these adversarial instances — the CoNP-hardness of "
      "implication (Theorem 4) is intrinsic, not an artifact of DIMSAT.\n");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
