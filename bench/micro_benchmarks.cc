// Google-benchmark microbenchmarks for the hot paths of the library:
// simple-path enumeration (composed-atom expansion), the circle
// operator, c-assignment search, full DIMSAT runs, instance ancestor
// tables, and cube-view computation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "constraint/normalize.h"
#include "core/assignment.h"
#include "core/circle.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "graph/algorithms.h"
#include "obs/metrics.h"
#include "olap/cube_view.h"
#include "workload/instance_generator.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::Unwrap;

const DimensionSchema& Location() {
  static const DimensionSchema& ds =
      *new DimensionSchema(Unwrap(LocationSchema()));
  return ds;
}

void BM_SimplePathEnumeration(benchmark::State& state) {
  const HierarchySchema& schema = Location().hierarchy();
  CategoryId store = schema.FindCategory("Store");
  CategoryId country = schema.FindCategory("Country");
  for (auto _ : state) {
    auto paths = EnumerateSimplePaths(schema.graph(), store, country);
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_SimplePathEnumeration);

void BM_ExpandComposedAtom(benchmark::State& state) {
  const HierarchySchema& schema = Location().hierarchy();
  ExprPtr atom = MakeComposedAtom(schema.FindCategory("Store"),
                                  schema.FindCategory("Country"));
  for (auto _ : state) {
    auto expanded = ExpandShorthands(schema, atom);
    benchmark::DoNotOptimize(expanded);
  }
}
BENCHMARK(BM_ExpandComposedAtom);

void BM_CircleOperator(benchmark::State& state) {
  const DimensionSchema& ds = Location();
  const HierarchySchema& schema = ds.hierarchy();
  auto g = Subhierarchy::FromEdges(
      schema.num_categories(), schema.FindCategory("Store"), schema.all(),
      {{schema.FindCategory("Store"), schema.FindCategory("City")},
       {schema.FindCategory("City"), schema.FindCategory("Province")},
       {schema.FindCategory("Province"), schema.FindCategory("SaleRegion")},
       {schema.FindCategory("SaleRegion"), schema.FindCategory("Country")},
       {schema.FindCategory("Country"), schema.all()}});
  auto reach = g->ComputeReach();
  std::vector<DimensionConstraint> expanded;
  for (const DimensionConstraint& c : ds.constraints()) {
    expanded.push_back(DimensionConstraint{
        c.root, Simplify(Unwrap(ExpandShorthands(schema, c.expr))), c.label});
  }
  for (auto _ : state) {
    for (const DimensionConstraint& c : expanded) {
      ExprPtr circled = Simplify(ApplyCircleToConstraint(c, *g, reach));
      benchmark::DoNotOptimize(circled);
    }
  }
}
BENCHMARK(BM_CircleOperator);

void BM_SubhierarchyExpandCopy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Subhierarchy g(n, 0);
  DynamicBitset r(n);
  r.set(1);
  for (auto _ : state) {
    Subhierarchy copy = g;
    copy.Expand(0, r);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_SubhierarchyExpandCopy)->Arg(8)->Arg(32)->Arg(128);

void BM_AssignmentSearch(benchmark::State& state) {
  auto g = Subhierarchy::FromEdges(4, 0, 3, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<ExprPtr> circled;
  // Three interacting constraints over two categories.
  circled.push_back(MakeOr({MakeEqualityAtom(0, 1, "a"),
                            MakeEqualityAtom(0, 2, "x")}));
  circled.push_back(MakeImplies(MakeEqualityAtom(0, 1, "a"),
                                MakeEqualityAtom(0, 2, "y")));
  circled.push_back(MakeNot(MakeEqualityAtom(0, 2, "z")));
  AssignmentOptions options;
  options.enumerate_all = true;
  for (auto _ : state) {
    auto result = FindAssignments(*g, circled, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AssignmentSearch);

void BM_DimsatLocation(benchmark::State& state) {
  const DimensionSchema& ds = Location();
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatOptions options;
  options.enumerate_all = state.range(0) != 0;
  for (auto _ : state) {
    DimsatResult r = Dimsat(ds, store, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DimsatLocation)->Arg(0)->Arg(1);

// Same run with the metrics registry enabled: the delta against
// BM_DimsatLocation is the *enabled* instrumentation cost (one batched
// flush per run). BM_DimsatLocation itself measures the disabled cost,
// which must stay within noise of the pre-instrumentation baseline
// (docs/observability.md records both).
void BM_DimsatLocationMetricsOn(benchmark::State& state) {
  const DimensionSchema& ds = Location();
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatOptions options;
  options.enumerate_all = state.range(0) != 0;
  obs::MetricsRegistry::Global().Enable();
  for (auto _ : state) {
    DimsatResult r = Dimsat(ds, store, options);
    benchmark::DoNotOptimize(r);
  }
  obs::MetricsRegistry::Global().Disable();
  obs::MetricsRegistry::Global().Reset();
}
BENCHMARK(BM_DimsatLocationMetricsOn)->Arg(0)->Arg(1);

// The raw recording entry point, disabled vs enabled: the disabled
// path must stay a relaxed load + branch (sub-nanosecond).
void BM_MetricsCount(benchmark::State& state) {
  if (state.range(0) != 0) obs::MetricsRegistry::Global().Enable();
  for (auto _ : state) {
    obs::Count("olapdc.bench.counter");
  }
  obs::MetricsRegistry::Global().Disable();
  obs::MetricsRegistry::Global().Reset();
}
BENCHMARK(BM_MetricsCount)->Arg(0)->Arg(1);

void BM_InstanceBuild(benchmark::State& state) {
  const DimensionSchema& ds = Location();
  InstanceGenOptions gen;
  gen.branching = 2;
  gen.copies = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto d = GenerateInstanceFromFrozen(ds, gen);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_InstanceBuild)->Arg(1)->Arg(8);

void BM_CubeView(benchmark::State& state) {
  const DimensionSchema& ds = Location();
  InstanceGenOptions gen;
  gen.branching = 2;
  gen.copies = static_cast<int>(state.range(0));
  static std::map<int64_t, std::pair<DimensionInstance, FactTable>>& cache =
      *new std::map<int64_t, std::pair<DimensionInstance, FactTable>>();
  auto it = cache.find(state.range(0));
  if (it == cache.end()) {
    DimensionInstance d = Unwrap(GenerateInstanceFromFrozen(ds, gen));
    FactTable facts = GenerateFacts(d);
    it = cache.emplace(state.range(0),
                       std::make_pair(std::move(d), std::move(facts)))
             .first;
  }
  CategoryId country = ds.hierarchy().FindCategory("Country");
  for (auto _ : state) {
    CubeViewResult view =
        ComputeCubeView(it->second.first, it->second.second, country,
                        AggFn::kSum);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(it->second.second.size()));
}
BENCHMARK(BM_CubeView)->Arg(8)->Arg(64);

}  // namespace
}  // namespace olapdc

BENCHMARK_MAIN();
