// E2 (Figure 3 + Figure 5 left): the dimension schema locationSch —
// its constraints in both notations, the Const_ds map, the derived
// *into* edges, and the check that the Figure 1 instance is a model.

#include <cstdio>

#include "bench/bench_util.h"
#include "constraint/evaluator.h"
#include "constraint/printer.h"
#include "core/location_example.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;

void Run() {
  DimensionSchema ds = Unwrap(LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();

  PrintHeader("Figure 3 / Figure 5 (left): Sigma(locationSch)");
  PrinterOptions paper;
  paper.paper_symbols = true;
  for (const DimensionConstraint& c : ds.constraints()) {
    std::printf("  %-4s %-55s | %s\n", c.label.c_str(),
                ExprToString(schema, c.expr, paper).c_str(),
                ExprToString(schema, c.expr).c_str());
  }

  PrintHeader("Const_ds (constants per category) and N_K");
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    const auto& constants = ds.ConstantsOf(c);
    if (constants.empty()) continue;
    std::printf("  Const(%s) = {", schema.CategoryName(c).c_str());
    for (size_t i = 0; i < constants.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", constants[i].c_str());
    }
    std::printf("}\n");
  }
  std::printf("  N_K = %d\n", ds.max_constants_per_category());

  PrintHeader("Derived into-constraint edges (Section 5 pruning input)");
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    ds.IntoTargets(c).ForEach([&](int target) {
      std::printf("  %s -> %s\n", schema.CategoryName(c).c_str(),
                  schema.CategoryName(target).c_str());
    });
  }

  PrintHeader("Model check: Figure 1 instance |= Sigma");
  DimensionInstance d = Unwrap(LocationInstance());
  for (const DimensionConstraint& c : ds.constraints()) {
    std::printf("  %-4s %s\n", c.label.c_str(),
                Satisfies(d, c) ? "holds" : "VIOLATED");
  }
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
