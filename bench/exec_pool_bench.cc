// Micro-benchmarks for the work-stealing execution layer itself,
// independent of DIMSAT: per-task scheduling overhead (spawn + execute
// + join of no-op tasks) and throughput under a producer-consumer
// imbalance that forces stealing. Reported per pool size so the cost
// of waking/parking workers is visible.

#include <atomic>
#include <cstdio>
#include <string_view>
#include <thread>

#include "bench/bench_util.h"
#include "exec/work_stealing_pool.h"

namespace olapdc {
namespace {

using bench::BenchReporter;
using bench::PrintHeader;
using bench::WallTimer;

constexpr int kTasks = 100000;

// All tasks submitted from the external thread via the injector.
double InjectedThroughput(exec::WorkStealingPool& pool) {
  std::atomic<int64_t> sink{0};
  WallTimer timer;
  {
    exec::TaskGroup group(&pool);
    for (int i = 0; i < kTasks; ++i) {
      group.Spawn([&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
  }
  const double ms = timer.ElapsedMs();
  OLAPDC_CHECK(sink.load() == kTasks);
  return ms;
}

// One pool task fans out every child into its own deque, so the other
// workers only make progress by stealing.
double StealThroughput(exec::WorkStealingPool& pool) {
  std::atomic<int64_t> sink{0};
  WallTimer timer;
  {
    exec::TaskGroup group(&pool);
    group.Spawn([&group, &sink] {
      for (int i = 0; i < kTasks; ++i) {
        group.Spawn(
            [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
      }
    });
    group.Wait();
  }
  const double ms = timer.ElapsedMs();
  OLAPDC_CHECK(sink.load() == kTasks);
  return ms;
}

void Run() {
  PrintHeader("Eexec: work-stealing pool scheduling overhead");
  BenchReporter reporter("exec");
  std::printf("%8s %12s %14s %14s %10s %10s\n", "threads", "mode", "ms",
              "ns/task", "steals", "fails");
  bench::PrintRule();
  for (int threads : {1, 2, 4, 8}) {
    for (const char* mode : {"injected", "stealing"}) {
      exec::WorkStealingPool pool(threads);
      const bool stealing = std::string_view(mode) == "stealing";
      const double ms =
          stealing ? StealThroughput(pool) : InjectedThroughput(pool);
      const exec::WorkStealingPool::StatsSnapshot stats = pool.Stats();
      const double ns_per_task = ms * 1e6 / kTasks;
      std::printf("%8d %12s %14.2f %14.1f %10llu %10llu\n", threads, mode,
                  ms, ns_per_task,
                  static_cast<unsigned long long>(stats.steals),
                  static_cast<unsigned long long>(stats.steal_failures));
      reporter.AddRow()
          .Set("threads", threads)
          .Set("mode", mode)
          .Set("tasks", uint64_t{kTasks})
          .Set("ms", ms)
          .Set("ns_per_task", ns_per_task)
          .Set("tasks_executed", stats.tasks_executed)
          .Set("steals", stats.steals)
          .Set("steal_failures", stats.steal_failures);
    }
  }
  std::printf(
      "\nno-op tasks: the numbers are pure scheduling cost (allocate, "
      "enqueue, wake, run, join). This host reports %u hardware "
      "threads.\n",
      std::thread::hardware_concurrency());
  reporter.WriteJson();
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
