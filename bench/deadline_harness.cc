// Deadline-overshoot harness: how promptly does a budgeted DIMSAT run
// return once its wall-clock deadline passes? The amortized check
// (every budget_check_stride EXPAND calls) trades probe overhead for
// overshoot; this table measures both sides on an adversarial schema
// whose full enumeration dwarfs every deadline tried. The acceptance
// bar is elapsed < 2x deadline at the default stride, with nonzero
// partial statistics proving the search did real work first.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/budget.h"
#include "constraint/parser.h"
#include "core/dimsat.h"
#include "core/reasoner.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

DimensionSchema AdversarialSchema() {
  SchemaGenOptions schema_options;
  schema_options.num_levels = 6;
  schema_options.categories_per_level = 4;
  schema_options.extra_edge_prob = 0.5;
  schema_options.max_level_jump = 3;
  schema_options.seed = 11;
  HierarchySchemaPtr hierarchy =
      Unwrap(GenerateLayeredHierarchy(schema_options));
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.25;
  constraint_options.num_choice_constraints = 3;
  constraint_options.num_equality_constraints = 3;
  constraint_options.seed = 11;
  return Unwrap(GenerateConstrainedSchema(hierarchy, constraint_options));
}

int Run() {
  DimensionSchema ds = AdversarialSchema();
  const CategoryId root = ds.hierarchy().FindCategory("Base");

  PrintHeader(
      "Deadline overshoot: budgeted DIMSAT full enumeration on an "
      "adversarial schema (failure = overshoot >= 2x deadline)");
  std::printf("%12s %8s | %10s %10s %10s %10s %6s\n", "deadline_ms", "stride",
              "elapsed_ms", "overshoot", "expands", "checks", "ok?");
  bench::PrintRule();

  bool all_ok = true;
  for (int deadline_ms : {10, 50, 200}) {
    for (uint32_t stride : {64u, BudgetChecker::kDefaultStride, 4096u}) {
      Budget budget = Budget::WithDeadlineMs(deadline_ms);
      DimsatOptions options;
      options.enumerate_all = true;
      options.require_injective_names = true;
      options.budget = &budget;
      options.budget_check_stride = stride;
      WallTimer timer;
      DimsatResult r = Dimsat(ds, root, options);
      const double elapsed = timer.ElapsedMs();
      const bool deadline_hit =
          r.status.code() == StatusCode::kDeadlineExceeded;
      const bool prompt = elapsed < 2.0 * deadline_ms;
      // Only the default stride carries the acceptance bar: a stride of
      // 4096 on a slow machine may legitimately overshoot.
      const bool pass = deadline_hit && r.stats.Any() &&
                        (stride != BudgetChecker::kDefaultStride || prompt);
      all_ok &= pass;
      std::printf("%12d %8u | %10.2f %9.2fx %10llu %10llu %6s\n", deadline_ms,
                  stride, elapsed, elapsed / deadline_ms,
                  static_cast<unsigned long long>(r.stats.expand_calls),
                  static_cast<unsigned long long>(r.stats.check_calls),
                  pass ? "yes" : "NO");
    }
  }

  // The Reasoner view of the same pressure: a deadline degrades the
  // query to "unknown" with the partial work accounted, never an error.
  PrintHeader("Reasoner under the same deadlines (three-valued answers)");
  std::printf("%12s | %-8s %-20s %10s %8s\n", "deadline_ms", "answer",
              "reason", "expands", "rungs");
  bench::PrintRule();
  // A *true* implication is the hard direction: proving it means
  // exhausting the whole search space under the negation (a refutation
  // would stop at the first witness), so deadlines degrade to
  // "unknown".
  DimensionConstraint alpha =
      Unwrap(ParseConstraint(ds.hierarchy(), "Base.All"));
  for (int deadline_ms : {10, 50, 200}) {
    Reasoner reasoner(ds);
    Budget budget = Budget::WithDeadlineMs(deadline_ms);
    ReasonerAnswer answer = reasoner.QueryImplies(alpha, &budget);
    std::printf("%12d | %-8s %-20s %10llu %8d\n", deadline_ms,
                std::string(TruthToString(answer.truth)).c_str(),
                std::string(StatusCodeToString(answer.reason.code())).c_str(),
                static_cast<unsigned long long>(answer.work.expand_calls),
                answer.attempts);
  }

  std::printf("\n%s\n", all_ok
                            ? "PASS: every deadline was honored promptly "
                              "with partial work recorded."
                            : "FAIL: at least one run missed the bar.");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace olapdc

int main() { return olapdc::Run(); }
