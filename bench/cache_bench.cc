// cache_bench — cold vs warm cost of the cross-request cache plane
// (ROADMAP item 2; docs/caching.md), committed as BENCH_cache.json.
//
// Three measurements, driven transport-free through
// DimService::HandleRequest so the numbers isolate the request plane
// and the engines (no socket noise):
//
//   1. service cold/warm — a fixed pool of distinct requests (checks,
//      implies, summarizable over the location example and generated
//      layered schemas) runs once cold, once against the response
//      layer, and once against the closure layer (response layer
//      cleared in between). The warm rows carry cache_hit_ratio and
//      speedup_vs_cold — the fields CI floors (report-only).
//   2. no-good warm-up — the DIMSAT engine alone in enumerate mode
//      (the mode that explores whole subtrees instead of stopping at
//      the first witness, so barren subtrees actually complete and
//      record), every category of a set of generated schemas with one
//      shared NoGoodStore: the second sweep shows the expand-call
//      reduction learned pruning buys without any response/closure
//      short-circuit.
//   3. repeat-fraction sweep — loadgen-shaped traffic where a request
//      is a repeat of an earlier one with probability f; the achieved
//      hit ratio and mean latency per f show how the win scales with
//      traffic self-similarity.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "core/nogood.h"
#include "io/schema_io.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "service/dim_service.h"
#include "service/schema_registry.h"
#include "service/service_caches.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

struct Query {
  std::string path;
  std::string body;
};

obs::HttpRequest Post(const Query& query) {
  obs::HttpRequest request;
  request.method = "POST";
  request.path = query.path;
  request.body = query.body;
  return request;
}

/// The generated slice of the workload: deterministic layered schemas
/// small enough that every query is definitive within the deadline.
std::vector<DimensionSchema> GeneratedSchemas() {
  std::vector<DimensionSchema> schemas;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SchemaGenOptions schema_options;
    schema_options.num_levels = 4;
    schema_options.categories_per_level = 4;
    schema_options.extra_edge_prob = 0.4;
    schema_options.max_level_jump = 2;
    schema_options.seed = seed;
    HierarchySchemaPtr hierarchy =
        bench::Unwrap(GenerateLayeredHierarchy(schema_options));
    ConstraintGenOptions constraint_options;
    constraint_options.into_fraction = 0.7;
    constraint_options.num_choice_constraints = 4;
    constraint_options.num_equality_constraints = 3;
    constraint_options.seed = seed;
    schemas.push_back(bench::Unwrap(
        GenerateConstrainedSchema(hierarchy, constraint_options)));
  }
  return schemas;
}

/// Smaller schemas for the enumerate-mode no-good phase: full frozen
/// enumeration is exponential in practice, so the phase sizes its
/// inputs to finish in seconds while still giving the store thousands
/// of subtrees to learn.
std::vector<DimensionSchema> NoGoodSchemas() {
  std::vector<DimensionSchema> schemas;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SchemaGenOptions schema_options;
    schema_options.num_levels = 4;
    schema_options.categories_per_level = 3;
    schema_options.extra_edge_prob = 0.3;
    schema_options.max_level_jump = 2;
    schema_options.seed = seed;
    HierarchySchemaPtr hierarchy =
        bench::Unwrap(GenerateLayeredHierarchy(schema_options));
    ConstraintGenOptions constraint_options;
    constraint_options.into_fraction = 0.5;
    constraint_options.num_choice_constraints = 3;
    constraint_options.num_equality_constraints = 2;
    constraint_options.seed = seed;
    schemas.push_back(bench::Unwrap(
        GenerateConstrainedSchema(hierarchy, constraint_options)));
  }
  return schemas;
}

/// Distinct request pool over every registered schema: a check per
/// category, a summarizable per intermediate category, and a few
/// implies on the location example (whose constraint grammar is
/// documented).
std::vector<Query> BuildQueries(
    const std::vector<std::pair<std::string, const DimensionSchema*>>&
        schemas) {
  std::vector<Query> queries;
  for (const auto& [name, schema] : schemas) {
    const HierarchySchema& hierarchy = schema->hierarchy();
    for (CategoryId c = 0; c < hierarchy.num_categories(); ++c) {
      if (c == hierarchy.all()) continue;
      queries.push_back(
          {"/v1/check",
           "{\"schema\": " + obs::JsonString(name) + ", \"category\": " +
               obs::JsonString(hierarchy.CategoryName(c)) + "}"});
    }
    for (CategoryId c = 0; c < hierarchy.num_categories(); ++c) {
      if (c == hierarchy.all()) continue;
      bool is_bottom = false;
      for (CategoryId bottom : hierarchy.bottom_categories()) {
        is_bottom |= bottom == c;
      }
      if (is_bottom) continue;
      queries.push_back(
          {"/v1/summarizable",
           "{\"schema\": " + obs::JsonString(name) + ", \"category\": " +
               obs::JsonString(hierarchy.CategoryName(c)) +
               ", \"sources\": []}"});
    }
  }
  for (const char* constraint :
       {"Store/City", "Store.Country -> Store.City.Country",
        "Store/SaleRegion -> Store/City"}) {
    queries.push_back({"/v1/implies",
                       "{\"schema\": \"loc\", \"constraint\": " +
                           obs::JsonString(constraint) + "}"});
  }
  return queries;
}

struct PassResult {
  double total_us = 0;
  uint64_t requests = 0;
  uint64_t cache_served = 0;
  uint64_t non_200 = 0;
};

PassResult RunPass(service::DimService& service,
                   const std::vector<Query>& queries) {
  PassResult pass;
  bench::WallTimer timer;
  for (const Query& query : queries) {
    const obs::HttpResponse response = service.HandleRequest(Post(query));
    ++pass.requests;
    if (response.status != 200) ++pass.non_200;
    if (response.body.find("\"cached\": true") != std::string::npos) {
      ++pass.cache_served;
    }
  }
  pass.total_us = timer.ElapsedUs();
  return pass;
}

double MeanUs(const PassResult& pass) {
  return pass.requests > 0
             ? pass.total_us / static_cast<double>(pass.requests)
             : 0.0;
}

int Run() {
  bench::BenchReporter reporter("cache");
  bench::PrintHeader("cross-request cache plane: cold vs warm");

  DimensionSchema location = bench::Unwrap(LocationSchema());
  std::vector<DimensionSchema> generated = GeneratedSchemas();
  std::vector<std::pair<std::string, const DimensionSchema*>> schemas;
  schemas.emplace_back("loc", &location);
  for (size_t i = 0; i < generated.size(); ++i) {
    schemas.emplace_back("gen" + std::to_string(i), &generated[i]);
  }
  const std::vector<Query> queries = BuildQueries(schemas);

  service::SchemaRegistry registry;
  for (const auto& [name, schema] : schemas) {
    registry.RegisterParsed(name, DimensionSchema(*schema));
  }
  service::ServiceCaches caches;
  service::DimService::Options options;
  options.registry = &registry;
  options.caches = &caches;
  options.default_deadline_ms = 30000;
  service::DimService service(options);

  // --- 1. service cold / response-warm / closure-warm ---------------
  const PassResult cold = RunPass(service, queries);
  const PassResult warm = RunPass(service, queries);
  caches.ClearResponses();
  const PassResult closure = RunPass(service, queries);

  const double warm_ratio =
      warm.requests > 0 ? static_cast<double>(warm.cache_served) /
                              static_cast<double>(warm.requests)
                        : 0.0;
  const double closure_ratio =
      closure.requests > 0 ? static_cast<double>(closure.cache_served) /
                                 static_cast<double>(closure.requests)
                           : 0.0;
  std::printf("%zu distinct queries (%llu non-200 cold)\n", queries.size(),
              static_cast<unsigned long long>(cold.non_200));
  std::printf("cold    %9.1f us/query\n", MeanUs(cold));
  std::printf("warm    %9.1f us/query  (%.0fx, hit ratio %.3f)\n",
              MeanUs(warm), MeanUs(cold) / MeanUs(warm), warm_ratio);
  std::printf("closure %9.1f us/query  (%.0fx, hit ratio %.3f)\n",
              MeanUs(closure), MeanUs(cold) / MeanUs(closure),
              closure_ratio);

  reporter.AddRow()
      .Set("case", "service_cold")
      .Set("queries", cold.requests)
      .Set("non_200", cold.non_200)
      .Set("mean_us_per_query", MeanUs(cold));
  reporter.AddRow()
      .Set("case", "service_warm_response")
      .Set("queries", warm.requests)
      .Set("mean_us_per_query", MeanUs(warm))
      .Set("speedup_vs_cold", MeanUs(cold) / MeanUs(warm))
      .Set("cache_hit_ratio", warm_ratio);
  reporter.AddRow()
      .Set("case", "service_warm_closure")
      .Set("queries", closure.requests)
      .Set("mean_us_per_query", MeanUs(closure))
      .Set("speedup_vs_cold", MeanUs(cold) / MeanUs(closure))
      .Set("cache_hit_ratio", closure_ratio);

  // --- 2. no-good warm-up, engine only ------------------------------
  // Enumerate mode: stop-at-first-witness searches on satisfiable
  // categories never complete a barren subtree, so they have nothing
  // to record — enumeration (the /v1/check shape for frozen-dimension
  // listings, and the engine shape behind implies on unsatisfiable
  // extensions) is where learned pruning pays.
  bench::PrintHeader("DIMSAT no-good store: expand-call reduction");
  uint64_t expand_cold = 0, expand_warm = 0, nogood_prunes = 0;
  double cold_us = 0, warm_us = 0;
  NoGoodStore store;
  for (const DimensionSchema& schema : NoGoodSchemas()) {
    for (CategoryId c = 0; c < schema.hierarchy().num_categories(); ++c) {
      if (c == schema.hierarchy().all()) continue;
      DimsatOptions plain;
      plain.enumerate_all = true;
      bench::WallTimer cold_timer;
      expand_cold += RunDimsat(schema, c, plain).stats.expand_calls;
      cold_us += cold_timer.ElapsedUs();
      DimsatOptions learned = plain;
      learned.nogoods = &store;
      RunDimsat(schema, c, learned);  // fill
      bench::WallTimer warm_timer;
      const DimsatResult warm_result = RunDimsat(schema, c, learned);
      expand_warm += warm_result.stats.expand_calls;
      nogood_prunes += warm_result.stats.nogood_prunes;
      warm_us += warm_timer.ElapsedUs();
    }
  }
  const double reduction =
      expand_cold > 0 ? 100.0 * (1.0 - static_cast<double>(expand_warm) /
                                           static_cast<double>(expand_cold))
                      : 0.0;
  std::printf(
      "expand calls %llu -> %llu (-%.1f%%), %.0f -> %.0f us, %llu "
      "signatures learned, %llu warm prunes\n",
      static_cast<unsigned long long>(expand_cold),
      static_cast<unsigned long long>(expand_warm), reduction, cold_us,
      warm_us, static_cast<unsigned long long>(store.size()),
      static_cast<unsigned long long>(nogood_prunes));
  reporter.AddRow()
      .Set("case", "dimsat_nogood_warm")
      .Set("expand_calls_cold", expand_cold)
      .Set("expand_calls_warm", expand_warm)
      .Set("expand_reduction_pct", reduction)
      .Set("signatures_learned", store.size())
      .Set("nogood_prunes", nogood_prunes)
      .Set("speedup_vs_cold", warm_us > 0 ? cold_us / warm_us : 0.0);

  // --- 3. repeat-fraction sweep -------------------------------------
  bench::PrintHeader("repeat-fraction sweep (fresh caches per point)");
  for (const double f : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    service::ServiceCaches sweep_caches;
    service::DimService::Options sweep_options = options;
    sweep_options.caches = &sweep_caches;
    service::DimService sweep_service(sweep_options);
    uint64_t rng = 0x9E3779B97F4A7C15ull;
    auto rand01 = [&rng]() {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return static_cast<double>(rng >> 11) / 9007199254740992.0;
    };
    size_t next = 0;
    std::vector<size_t> sent;
    PassResult pass;
    bench::WallTimer timer;
    // The fresh stream never recycles the pool, so f=0 really is an
    // all-miss baseline; the request count is capped by the fresh
    // queries available at this f.
    const size_t kRequests = static_cast<size_t>(
        static_cast<double>(queries.size()) / (1.0 - f + 0.05));
    for (size_t i = 0; i < kRequests && next < queries.size(); ++i) {
      size_t pick;
      if (!sent.empty() && rand01() < f) {
        pick = sent[static_cast<size_t>(rand01() *
                                        static_cast<double>(sent.size())) %
                    sent.size()];
      } else {
        pick = next++;
        sent.push_back(pick);
      }
      const obs::HttpResponse response =
          sweep_service.HandleRequest(Post(queries[pick]));
      ++pass.requests;
      if (response.status != 200) ++pass.non_200;
      if (response.body.find("\"cached\": true") != std::string::npos) {
        ++pass.cache_served;
      }
    }
    pass.total_us = timer.ElapsedUs();
    const double achieved =
        static_cast<double>(pass.cache_served) /
        static_cast<double>(pass.requests);
    std::printf("f=%.2f  hit ratio %.3f  %9.1f us/query\n", f, achieved,
                MeanUs(pass));
    reporter.AddRow()
        .Set("case", "repeat_sweep")
        .Set("repeat_fraction", f)
        .Set("achieved_hit_ratio", achieved)
        .Set("mean_us_per_query", MeanUs(pass));
  }

  reporter.WriteJson();
  return 0;
}

}  // namespace
}  // namespace olapdc

int main() { return olapdc::Run(); }
