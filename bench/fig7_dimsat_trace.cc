// E5 (Figure 7): the variable g in an execution of
// DIMSAT(locationSch, Store) — the sequence of subhierarchies EXPAND
// builds until CHECK first succeeds (boxed in the paper's figure).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/dimsat.h"
#include "core/location_example.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;

void Run() {
  DimensionSchema ds = Unwrap(LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  CategoryId store = schema.FindCategory("Store");

  PrintHeader("Figure 7: DIMSAT(locationSch, Store) execution trace");
  DimsatOptions options;
  options.collect_trace = true;
  DimsatResult r = Dimsat(ds, store, options);
  OLAPDC_CHECK(r.status.ok());

  int step = 0;
  for (const DimsatTraceEvent& event : r.trace) {
    std::printf("%3d %s\n", ++step, event.ToString(schema).c_str());
    if (event.kind == DimsatTraceEvent::Kind::kCheckSuccess) {
      std::printf("    ^^^ the boxed subhierarchy: CHECK found a frozen "
                  "dimension; EXPAND aborts all open recursions.\n");
    }
  }
  std::printf("\nsatisfiable=%s  expand_calls=%llu  check_calls=%llu  "
              "into_prunes=%llu  dead_ends=%llu\n",
              r.satisfiable ? "true" : "false",
              static_cast<unsigned long long>(r.stats.expand_calls),
              static_cast<unsigned long long>(r.stats.check_calls),
              static_cast<unsigned long long>(r.stats.into_prunes),
              static_cast<unsigned long long>(r.stats.dead_ends));
  if (!r.frozen.empty()) {
    std::printf("witness: %s\n", r.frozen[0].ToString(schema).c_str());
  }
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
