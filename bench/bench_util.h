// Shared helpers for the olapdc benchmark/figure harnesses.

#ifndef OLAPDC_BENCH_BENCH_UTIL_H_
#define OLAPDC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "exec/work_stealing_pool.h"
#include "obs/json.h"

namespace olapdc {
namespace bench {

/// Wall-clock stopwatch in microseconds.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedMs() const { return ElapsedUs() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Unwraps a Result in harness code (aborts with the error on failure).
template <typename T>
T Unwrap(Result<T> result) {
  OLAPDC_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------------------\n");
}

/// Host and build provenance, rendered as one JSON object. Benchmark
/// numbers are only comparable against a floor or a committed baseline
/// when the JSON records which machine and build produced them — CI
/// (and the single-core speedup exemption in tools/bench_gate) keys
/// off these fields rather than guessing from the numbers.
inline std::string HostJson() {
  std::string flags;
#if defined(NDEBUG)
  flags += "NDEBUG";
#else
  flags += "DEBUG";
#endif
#if defined(__OPTIMIZE__)
  flags += " -O";
#endif
#if defined(__SANITIZE_ADDRESS__)
  flags += " asan";
#endif
#if defined(__SANITIZE_THREAD__)
  flags += " tsan";
#endif
#if defined(__AVX2__)
  flags += " avx2";
#endif
  std::string out = "{\"hardware_concurrency\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += ", \"effective_threads\": ";
  out += std::to_string(exec::DefaultThreadCount());
  out += ", \"compiler\": " + obs::JsonString(__VERSION__);
  out += ", \"build_flags\": " + obs::JsonString(flags);
  out += "}";
  return out;
}

/// Machine-readable benchmark output. A harness creates one reporter,
/// appends one Row per measured case, and calls WriteJson() at exit to
/// produce `BENCH_<name>.json` next to the binary:
///
///   {"bench": "<name>", "host": {...}, "rows": [{"case": ..., "ms": ...}, ...]}
///
/// so CI and offline tooling can diff benchmark runs without scraping
/// the human-oriented stdout tables. The "host" object (HostJson) makes
/// each file self-describing about the machine and build that produced
/// its numbers.
class BenchReporter {
 public:
  class Row {
   public:
    Row& Set(std::string_view key, double value) {
      return SetRendered(key, obs::JsonNumber(value));
    }
    Row& Set(std::string_view key, uint64_t value) {
      return SetRendered(key, std::to_string(value));
    }
    Row& Set(std::string_view key, int64_t value) {
      return SetRendered(key, std::to_string(value));
    }
    Row& Set(std::string_view key, int value) {
      return SetRendered(key, std::to_string(value));
    }
    Row& Set(std::string_view key, bool value) {
      return SetRendered(key, value ? "true" : "false");
    }
    Row& Set(std::string_view key, std::string_view value) {
      return SetRendered(key, obs::JsonString(value));
    }
    Row& Set(std::string_view key, const char* value) {
      return Set(key, std::string_view(value));
    }

   private:
    friend class BenchReporter;
    Row& SetRendered(std::string_view key, std::string rendered) {
      fields_.emplace_back(std::string(key), std::move(rendered));
      return *this;
    }
    /// Values pre-rendered as JSON, in insertion order.
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit BenchReporter(std::string name) : name_(std::move(name)) {}

  /// The reference stays valid for the reporter's lifetime (deque
  /// storage), so a harness can keep filling a row after adding more.
  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes BENCH_<name>.json into the current directory. Returns false
  /// (after printing a warning) when the file cannot be written.
  bool WriteJson() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (out) out << ToJson() << "\n";
    if (!out) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

  std::string ToJson() const {
    std::string out = "{\"bench\": " + obs::JsonString(name_) +
                      ", \"host\": " + HostJson() + ", \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{";
      for (size_t j = 0; j < rows_[i].fields_.size(); ++j) {
        if (j > 0) out += ", ";
        out += obs::JsonString(rows_[i].fields_[j].first) + ": " +
               rows_[i].fields_[j].second;
      }
      out += "}";
    }
    out += "]}";
    return out;
  }

 private:
  std::string name_;
  std::deque<Row> rows_;
};

}  // namespace bench
}  // namespace olapdc

#endif  // OLAPDC_BENCH_BENCH_UTIL_H_
