// Shared helpers for the olapdc benchmark/figure harnesses.

#ifndef OLAPDC_BENCH_BENCH_UTIL_H_
#define OLAPDC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

#include "common/check.h"
#include "common/result.h"

namespace olapdc {
namespace bench {

/// Wall-clock stopwatch in microseconds.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedMs() const { return ElapsedUs() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Unwraps a Result in harness code (aborts with the error on failure).
template <typename T>
T Unwrap(Result<T> result) {
  OLAPDC_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------------------\n");
}

}  // namespace bench
}  // namespace olapdc

#endif  // OLAPDC_BENCH_BENCH_UTIL_H_
