// E12 (Section 6 conjecture): "in most practical situations DIMSAT
// should yield execution times of the order of a few seconds". Three
// realistic schemas (the paper's retail location, a healthcare
// diagnosis dimension, a product catalog) and a battery of implication
// and summarizability queries per schema, each individually timed.
//
// Queries route through the Reasoner (the production entry point), so
// the timings include its cache and expand-budget ladder, and the run
// doubles as a Reasoner smoke test. Emits BENCH_reasoner.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "constraint/parser.h"
#include "core/location_example.h"
#include "core/reasoner.h"
#include "workload/realistic.h"

namespace olapdc {
namespace {

using bench::BenchReporter;
using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

void RunQueries(const std::string& name, const std::string& slug,
                BenchReporter& reporter, DimensionSchema ds,
                const std::vector<std::string>& implication_queries,
                const std::vector<std::pair<std::string,
                                            std::vector<std::string>>>&
                    summarizability_queries) {
  PrintHeader(name);
  Reasoner reasoner(std::move(ds));
  const HierarchySchema& schema = reasoner.schema().hierarchy();
  double total_ms = 0;
  for (const std::string& text : implication_queries) {
    DimensionConstraint alpha = Unwrap(ParseConstraint(schema, text));
    WallTimer timer;
    ReasonerAnswer answer = reasoner.QueryImplies(alpha);
    double ms = timer.ElapsedMs();
    total_ms += ms;
    OLAPDC_CHECK(answer.truth != Truth::kUnknown)
        << answer.reason.ToString();
    std::printf("  implied=%-5s %8.3f ms  ds |= %s\n",
                answer.truth == Truth::kYes ? "yes" : "no", ms, text.c_str());
    reporter.AddRow()
        .Set("schema", slug)
        .Set("kind", "implies")
        .Set("query", text)
        .Set("answer", std::string_view(TruthToString(answer.truth)))
        .Set("ms", ms)
        .Set("attempts", answer.attempts)
        .Set("expand_calls", answer.work.expand_calls);
  }
  for (const auto& [target, sources] : summarizability_queries) {
    CategoryId c = Unwrap(schema.CategoryIdOf(target));
    std::vector<CategoryId> s;
    for (const std::string& source : sources) {
      s.push_back(Unwrap(schema.CategoryIdOf(source)));
    }
    WallTimer timer;
    ReasonerAnswer answer = reasoner.QuerySummarizable(c, s);
    double ms = timer.ElapsedMs();
    total_ms += ms;
    OLAPDC_CHECK(answer.truth != Truth::kUnknown)
        << answer.reason.ToString();
    std::string set;
    for (const std::string& source : sources) {
      set += (set.empty() ? "" : ", ") + source;
    }
    std::printf("  summ.  =%-5s %8.3f ms  %s from {%s}\n",
                answer.truth == Truth::kYes ? "yes" : "no", ms, target.c_str(),
                set.c_str());
    reporter.AddRow()
        .Set("schema", slug)
        .Set("kind", "summarizable")
        .Set("query", target + " from {" + set + "}")
        .Set("answer", std::string_view(TruthToString(answer.truth)))
        .Set("ms", ms)
        .Set("attempts", answer.attempts)
        .Set("expand_calls", answer.work.expand_calls);
  }
  const Reasoner::Stats& stats = reasoner.stats();
  std::printf("  total: %.3f ms (%llu queries, %llu cache hits)\n", total_ms,
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.hits));
}

void Run() {
  BenchReporter reporter("reasoner");
  RunQueries(
      "E12a: retail (the paper's locationSch)", "location", reporter,
      Unwrap(LocationSchema()),
      {
          "Store.Country -> Store.City.Country",
          "Store.SaleRegion",
          "Store.Province -> Store.Country = 'Canada'",
          "Store.City = 'Washington' -> Store.Country = 'USA'",
          "Store.Province -> !Store.State",
          "Store.State -> Store.Country = 'Mexico'",
      },
      {
          {"Country", {"City"}},
          {"Country", {"State", "Province"}},
          {"Country", {"SaleRegion"}},
          {"SaleRegion", {"Province", "State"}},
          {"Province", {"City"}},
      });

  RunQueries(
      "E12b: healthcare (diagnosis dimension)", "healthcare", reporter,
      Unwrap(HealthcareSchema()),
      {
          "Patient.Group",
          "Patient.Diagnosis -> Patient.Group",
          "Diagnosis.Family -> Diagnosis.Group",
          "Patient/Diagnosis",
      },
      {
          {"Group", {"Diagnosis"}},
          {"Group", {"Family"}},
          {"Family", {"Diagnosis"}},
          {"Group", {"Family", "Diagnosis"}},
      });

  RunQueries(
      "E12c: product catalog", "product", reporter, Unwrap(ProductSchema()),
      {
          "Product.Department",
          "Product/Brand -> Product.Company",
          "Product.Department = 'Grocery' -> !Product.Company",
          "Product.Brand",
      },
      {
          {"Department", {"Category"}},
          {"Company", {"Brand"}},
          {"Department", {"Brand"}},
          {"All", {"Department"}},
      });

  RunQueries(
      "E12d: time dimension (weeks vs months)", "time", reporter,
      Unwrap(TimeSchema()),
      {
          "Day.Year",
          "Day.Week",
          "Day/Month -> Day.Quarter",
      },
      {
          {"Year", {"Month"}},
          {"Year", {"Quarter"}},
          {"Year", {"Week"}},
          {"All", {"Week"}},
          {"All", {"Week", "Quarter"}},
      });

  reporter.WriteJson();
  std::printf(
      "\nSection 6 conjecture check: every practical query answered in "
      "well under a second (typically < 1 ms) on this implementation.\n");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
