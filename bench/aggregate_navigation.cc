// E14 (Definition 6 / aggregate navigation): the payoff experiment.
// Answering a Country cube view from a summarizable materialized view
// (per the navigator) vs re-aggregating base facts, across fact-table
// sizes. The rewrite touches |view| rows instead of |facts| rows, so
// the speedup should grow linearly with the fan-in.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "core/location_example.h"
#include "olap/navigator.h"
#include "workload/instance_generator.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

void Run() {
  DimensionSchema ds = Unwrap(LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  CategoryId city = schema.FindCategory("City");
  CategoryId country = schema.FindCategory("Country");

  PrintHeader(
      "E14: cube view at Country from base facts vs from the City view");
  std::printf("%10s %10s %10s | %12s %12s %8s %6s\n", "facts", "members",
              "cities", "direct ms", "rewrite ms", "speedup", "equal");
  bench::PrintRule();

  for (int copies : {2, 8, 32, 128, 512}) {
    InstanceGenOptions gen;
    gen.branching = 2;
    gen.depth_cap = 4;
    gen.copies = copies;
    gen.skip_validation = copies > 64;  // construction is proven correct
    DimensionInstance d = Unwrap(GenerateInstanceFromFrozen(ds, gen));
    FactGenOptions fact_gen;
    fact_gen.facts_per_base_member = 8;
    FactTable facts = GenerateFacts(d, fact_gen);

    // Materialize the City view once (this is the precomputation
    // aggregate navigation amortizes).
    CubeViewResult city_view = ComputeCubeView(d, facts, city, AggFn::kSum);

    const int kReps = 5;
    WallTimer direct_timer;
    CubeViewResult direct;
    for (int i = 0; i < kReps; ++i) {
      direct = ComputeCubeView(d, facts, country, AggFn::kSum);
    }
    double direct_ms = direct_timer.ElapsedMs() / kReps;

    WallTimer rewrite_timer;
    CubeViewResult rewritten;
    for (int i = 0; i < kReps; ++i) {
      rewritten = RewriteFromViews(
          d, {MaterializedView{city, &city_view}}, country, AggFn::kSum);
    }
    double rewrite_ms = rewrite_timer.ElapsedMs() / kReps;

    std::printf("%10zu %10d %10zu | %12.3f %12.3f %7.1fx %6s\n",
                facts.size(), d.num_members(), city_view.size(), direct_ms,
                rewrite_ms, direct_ms / (rewrite_ms > 0 ? rewrite_ms : 1e-3),
                CubeViewsEqual(direct, rewritten) ? "yes" : "NO");
  }

  PrintHeader("The navigator picks the rewrite automatically");
  InstanceGenOptions gen;
  gen.branching = 2;
  gen.copies = 8;
  DimensionInstance d = Unwrap(GenerateInstanceFromFrozen(ds, gen));
  FactTable facts = GenerateFacts(d);
  std::map<CategoryId, CubeViewResult> materialized;
  materialized[city] = ComputeCubeView(d, facts, city, AggFn::kSum);
  materialized[schema.FindCategory("State")] =
      ComputeCubeView(d, facts, schema.FindCategory("State"), AggFn::kSum);
  NavigatorAnswer answer =
      Unwrap(AnswerFromViews(ds, d, materialized, country, AggFn::kSum, {}));
  std::printf("  answered=%s using {", answer.answered ? "yes" : "no");
  for (CategoryId c : answer.used) {
    std::printf("%s", schema.CategoryName(c).c_str());
  }
  std::printf("}; matches direct computation: %s\n",
              CubeViewsEqual(answer.view,
                             ComputeCubeView(d, facts, country, AggFn::kSum))
                  ? "yes"
                  : "NO");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
