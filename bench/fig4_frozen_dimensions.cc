// E3 (Figure 4): the frozen dimensions of locationSch with root Store.
// The paper's figure shows the per-country structures; we enumerate
// them with DIMSAT, cross-check against the brute-force Theorem 3
// oracle, and emit each structure as text + Graphviz.

#include <cstdio>

#include "bench/bench_util.h"
#include "constraint/evaluator.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "core/naive_sat.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

void Run() {
  DimensionSchema ds = Unwrap(LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  CategoryId store = schema.FindCategory("Store");

  PrintHeader("Figure 4: frozen dimensions of locationSch with root Store");
  WallTimer timer;
  DimsatResult r = EnumerateFrozenDimensions(ds, store);
  OLAPDC_CHECK(r.status.ok());
  std::printf("DIMSAT enumerated %zu frozen dimensions in %.2f ms "
              "(%llu EXPAND calls, %llu CHECKs)\n",
              r.frozen.size(), timer.ElapsedMs(),
              static_cast<unsigned long long>(r.stats.expand_calls),
              static_cast<unsigned long long>(r.stats.check_calls));

  int index = 0;
  for (const FrozenDimension& f : r.frozen) {
    ++index;
    std::printf("\nf%d: %s\n", index, f.ToString(schema).c_str());
    DimensionInstance inst = Unwrap(f.ToInstance(ds));
    std::printf("    materialized instance: %d members, C1-C7 %s, "
                "Sigma %s\n",
                inst.num_members(),
                inst.Validate().ok() ? "OK" : "VIOLATED",
                SatisfiesAll(inst, ds.constraints()) ? "satisfied"
                                                     : "VIOLATED");
    std::printf("%s", f.ToDot(schema, "f" + std::to_string(index)).c_str());
  }

  PrintHeader("Cross-check against brute-force enumeration (Theorem 3)");
  NaiveSatOptions naive_options;
  naive_options.enumerate_all = true;
  WallTimer naive_timer;
  DimsatResult naive = Unwrap(NaiveSat(ds, store, naive_options));
  std::printf("NaiveSat enumerated %zu frozen dimensions in %.2f ms "
              "(%llu candidate subhierarchies)\n",
              naive.frozen.size(), naive_timer.ElapsedMs(),
              static_cast<unsigned long long>(naive.stats.check_calls));
  std::printf("agreement: %s\n",
              naive.frozen.size() == r.frozen.size() ? "YES" : "NO");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
