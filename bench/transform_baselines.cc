// E13 (Section 1.3 related work): the cost of the two transformation-
// based alternatives to dimension constraints, measured on the paper's
// location dimension and on growing synthetic heterogeneous instances:
//  - Pedersen-Jensen null padding: member/edge blow-up and the cube
//    sparsity it injects;
//  - Lehner DNF: hierarchy categories demoted to attributes, i.e.
//    aggregation levels lost.
// Constraint-based reasoning (this library) leaves the instance
// untouched: its "cost" column is identically zero.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/location_example.h"
#include "olap/cube_view.h"
#include "transform/dnf_transform.h"
#include "transform/null_padding.h"
#include "workload/instance_generator.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;

void Report(const std::string& name, const DimensionInstance& d) {
  auto padded = PadWithNullMembers(d);
  auto dnf = ToDimensionalNormalForm(d);
  std::printf("%-18s %8d members %6d edges", name.c_str(), d.num_members(),
              d.child_parent().num_edges());
  if (padded.ok()) {
    std::printf(" | pad: +%d members (+%.1f%%), +%d edges",
                padded->stats.padded_members,
                100.0 * padded->stats.placeholder_fraction,
                padded->stats.padded_edges);
  } else {
    std::printf(" | pad: UNSUPPORTED (%s)",
                std::string(StatusCodeToString(padded.status().code())).c_str());
  }
  if (dnf.ok()) {
    std::printf(" | dnf: %zu categories demoted", dnf->demoted.size());
  }
  std::printf("\n");
}

void Run() {
  PrintHeader("E13: transformation baselines vs constraint-based reasoning");
  std::printf("(constraint-based reasoning keeps the instance unchanged: "
              "+0 members, +0 edges, 0 categories lost)\n\n");

  DimensionInstance location = Unwrap(LocationInstance());
  Report("location (Fig 1)", location);

  DimensionSchema ds = Unwrap(LocationSchema());
  for (int copies : {4, 16, 64, 256}) {
    InstanceGenOptions gen;
    gen.branching = 2;
    gen.copies = copies;
    DimensionInstance d = Unwrap(GenerateInstanceFromFrozen(ds, gen));
    Report("synthetic x" + std::to_string(copies), d);
  }

  PrintHeader("Null padding: what the paper means by 'increased sparsity'");
  auto padded = Unwrap(PadWithNullMembers(location));
  FactTable facts;
  for (const char* key : {"st-tor-1", "st-tor-2", "st-ott-1", "st-mex-1",
                          "st-mty-1", "st-aus-1", "st-was-1"}) {
    facts.Add(*padded.padded.MemberIdOf(key), 10.0);
  }
  const HierarchySchema& schema = padded.padded.hierarchy();
  for (const char* category : {"Province", "State"}) {
    CubeViewResult view = ComputeCubeView(
        padded.padded, facts, schema.FindCategory(category), AggFn::kSum);
    int na_groups = 0;
    for (const auto& [member, value] : view) {
      na_groups += padded.padded.member(member).key.rfind("na:", 0) == 0;
    }
    std::printf("  cube view at %-8s: %zu groups, %d of them placeholder "
                "buckets\n", category, view.size(), na_groups);
  }
  std::printf(
      "\nOn the unpadded instance those views simply omit the members that "
      "do not roll up — no storage or group overhead; summarizability "
      "reasoning (Theorem 1) tells the navigator when they are safe.\n");

  PrintHeader("DNF: what the paper means by 'limiting summarizability'");
  auto dnf = Unwrap(ToDimensionalNormalForm(location));
  std::printf("  demoted to attributes:");
  for (CategoryId c : dnf.demoted) {
    std::printf(" %s", location.hierarchy().CategoryName(c).c_str());
  }
  std::printf("\n  after DNF no cube view can be defined at those "
              "categories at all; with dimension constraints, Province "
              "remains queryable and provably summarizable from City.\n");
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
