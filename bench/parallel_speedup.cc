// E16 (supplementary): parallel DIMSAT. Compares three drivers on two
// workloads:
//   sequential — the single-threaded reference search;
//   static     — one thread per first-level seed subtree, no rebalance;
//   worksteal  — the src/exec pool, EXPAND nodes below the split depth
//                become stealable tasks.
// The uniform workload has evenly sized seed subtrees, so both
// parallel drivers should track each other. The skewed workload puts
// nearly all the search under one seed: the static partition degrades
// towards sequential while work stealing keeps every worker busy.
// Every run's frozen-dimension set is checked equal (as a canonical
// sorted serialization) to the sequential baseline.

#include <cstdio>
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/dimsat.h"
#include "core/schema.h"
#include "dim/hierarchy_schema.h"
#include "exec/work_stealing_pool.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::BenchReporter;
using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

std::vector<std::string> Canonical(const std::vector<FrozenDimension>& fs,
                                   const HierarchySchema& schema) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const FrozenDimension& f : fs) out.push_back(f.ToString(schema));
  std::sort(out.begin(), out.end());
  return out;
}

// Evenly balanced seed subtrees: a generated layered hierarchy whose
// first-level choices cover categories of comparable weight.
DimensionSchema UniformWorkload() {
  SchemaGenOptions schema_options;
  schema_options.num_levels = 5;
  schema_options.categories_per_level = 3;
  schema_options.extra_edge_prob = 0.25;
  schema_options.seed = 4;
  HierarchySchemaPtr hierarchy =
      Unwrap(GenerateLayeredHierarchy(schema_options));
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 2;
  constraint_options.num_equality_constraints = 2;
  constraint_options.seed = 29;
  return Unwrap(GenerateConstrainedSchema(hierarchy, constraint_options));
}

// Adversarial for a static partition: Base has two parents, a light
// one going straight to All and a heavy one opening into a dense
// layered subgraph. The three first-level seeds ({L}, {H}, {L,H}) are
// wildly uneven — almost all EXPAND work sits under the seeds that
// include H — so a seed-per-thread split leaves most threads idle.
DimensionSchema SkewedWorkload() {
  HierarchySchemaBuilder builder;
  builder.AddEdge("Base", "Light");
  builder.AddEdge("Light", "All");
  builder.AddEdge("Base", "Heavy");
  // Sized so the full enumeration finishes well under max_frozen: the
  // set-equality check needs every driver to see the complete set.
  constexpr int kLevels = 3;
  constexpr int kWidth = 3;
  for (int w = 0; w < kWidth; ++w) {
    builder.AddEdge("Heavy", "H1_" + std::to_string(w));
  }
  for (int level = 1; level < kLevels; ++level) {
    for (int from = 0; from < kWidth; ++from) {
      for (int to = 0; to < kWidth; ++to) {
        builder.AddEdge("H" + std::to_string(level) + "_" +
                            std::to_string(from),
                        "H" + std::to_string(level + 1) + "_" +
                            std::to_string(to));
      }
    }
  }
  for (int w = 0; w < kWidth; ++w) {
    builder.AddEdge("H" + std::to_string(kLevels) + "_" + std::to_string(w),
                    "All");
  }
  HierarchySchemaPtr hierarchy = Unwrap(builder.BuildShared());
  return DimensionSchema(std::move(hierarchy), {});
}

struct WorkloadCase {
  const char* name;
  DimensionSchema ds;
  CategoryId base;
};

void RunWorkload(BenchReporter& reporter, const WorkloadCase& workload,
                 const DimsatOptions& base_options) {
  PrintHeader(std::string("E16: parallel DIMSAT — ") + workload.name +
              " workload");

  WallTimer seq_timer;
  DimsatResult sequential =
      Dimsat(workload.ds, workload.base, base_options);
  const double seq_ms = seq_timer.ElapsedMs();
  OLAPDC_CHECK(sequential.status.ok()) << sequential.status.ToString();
  const std::vector<std::string> golden =
      Canonical(sequential.frozen, workload.ds.hierarchy());

  std::printf("%10s %8s %12s %10s %10s %8s %8s\n", "mode", "threads", "ms",
              "frozen", "expands", "steals", "speedup");
  bench::PrintRule();
  std::printf("%10s %8d %12.2f %10zu %10llu %8s %8s\n", "sequential", 1,
              seq_ms, sequential.frozen.size(),
              static_cast<unsigned long long>(sequential.stats.expand_calls),
              "-", "1.0x");
  reporter.AddRow()
      .Set("workload", workload.name)
      .Set("mode", "sequential")
      .Set("threads", 1)
      .Set("ms", seq_ms)
      .Set("frozen", static_cast<uint64_t>(sequential.frozen.size()))
      .Set("expand_calls", sequential.stats.expand_calls)
      .Set("tasks", uint64_t{0})
      .Set("steals", uint64_t{0})
      .Set("speedup", 1.0);

  for (const char* mode : {"static", "worksteal"}) {
    for (int threads : {2, 4, 8}) {
      WallTimer timer;
      DimsatResult parallel;
      if (std::string(mode) == "static") {
        parallel = DimsatParallelStatic(workload.ds, workload.base,
                                        base_options, threads);
      } else {
        exec::WorkStealingPool pool(threads);
        DimsatOptions options = base_options;
        options.pool = &pool;
        parallel =
            DimsatParallel(workload.ds, workload.base, options, threads);
      }
      const double ms = timer.ElapsedMs();
      OLAPDC_CHECK(parallel.status.ok()) << parallel.status.ToString();
      OLAPDC_CHECK(Canonical(parallel.frozen, workload.ds.hierarchy()) ==
                   golden)
          << mode << "@" << threads
          << ": parallel enumeration must match the sequential set";
      const double speedup = seq_ms / (ms > 0 ? ms : 1e-3);
      std::printf("%10s %8d %12.2f %10zu %10llu %8llu %7.2fx\n", mode,
                  threads, ms, parallel.frozen.size(),
                  static_cast<unsigned long long>(
                      parallel.stats.expand_calls),
                  static_cast<unsigned long long>(
                      parallel.stats.parallel_steals),
                  speedup);
      BenchReporter::Row& row =
          reporter.AddRow()
              .Set("workload", workload.name)
              .Set("mode", mode)
              .Set("threads", threads)
              .Set("ms", ms)
              .Set("frozen", static_cast<uint64_t>(parallel.frozen.size()))
              .Set("expand_calls", parallel.stats.expand_calls)
              .Set("tasks", parallel.stats.parallel_tasks)
              .Set("steals", parallel.stats.parallel_steals)
              .Set("speedup", speedup);
      // On a single hardware thread no parallel driver can beat the
      // sequential run; mark the row so bench_gate's speedup floors
      // exempt it instead of failing on an impossible claim.
      if (std::thread::hardware_concurrency() <= 1) {
        row.Set("single_core_host", true);
      }
    }
  }
}

void Run() {
  DimsatOptions options;
  options.enumerate_all = true;
  options.max_frozen = 1 << 20;

  BenchReporter reporter("parallel");
  WorkloadCase uniform{"uniform", UniformWorkload(), kNoCategory};
  uniform.base = uniform.ds.hierarchy().FindCategory("Base");
  RunWorkload(reporter, uniform, options);

  WorkloadCase skewed{"skewed", SkewedWorkload(), kNoCategory};
  skewed.base = skewed.ds.hierarchy().FindCategory("Base");
  RunWorkload(reporter, skewed, options);

  std::printf(
      "\nExpected shape: on multi-core hosts the work-stealing driver "
      "tracks the static partition on the uniform workload and beats it "
      "decisively on the skewed one (the static split pins the heavy "
      "seed to one thread). This host reports %u hardware threads — on "
      "a single core only the correctness claim and the scheduling "
      "overhead are observable.\n",
      std::thread::hardware_concurrency());
  reporter.WriteJson();
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
