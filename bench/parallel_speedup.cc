// E16 (supplementary): parallel DIMSAT. The EXPAND search space
// partitions along the root category's first-level choices, so the
// enumeration parallelizes with no coordination beyond a stop flag.
// Speedup is bounded by the skew of subtree sizes (seeds are uneven).

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "core/dimsat.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using bench::PrintHeader;
using bench::Unwrap;
using bench::WallTimer;

void Run() {
  // One reasonably large heterogeneous workload.
  SchemaGenOptions schema_options;
  schema_options.num_levels = 5;
  schema_options.categories_per_level = 3;
  schema_options.extra_edge_prob = 0.25;
  schema_options.seed = 4;
  HierarchySchemaPtr hierarchy =
      Unwrap(GenerateLayeredHierarchy(schema_options));
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 2;
  constraint_options.num_equality_constraints = 2;
  constraint_options.seed = 29;
  DimensionSchema ds =
      Unwrap(GenerateConstrainedSchema(hierarchy, constraint_options));
  CategoryId base = ds.hierarchy().FindCategory("Base");

  DimsatOptions options;
  options.enumerate_all = true;
  options.max_frozen = 1 << 16;

  PrintHeader("E16: parallel DIMSAT full enumeration (17 categories)");
  WallTimer seq_timer;
  DimsatResult sequential = Dimsat(ds, base, options);
  double seq_ms = seq_timer.ElapsedMs();
  OLAPDC_CHECK(sequential.status.ok());
  std::printf("%8s %12s %12s %10s %8s\n", "threads", "ms", "frozen",
              "expands", "speedup");
  bench::PrintRule();
  std::printf("%8d %12.2f %12zu %10llu %8s\n", 1, seq_ms,
              sequential.frozen.size(),
              static_cast<unsigned long long>(sequential.stats.expand_calls),
              "1.0x");
  for (int threads : {2, 4, 8}) {
    WallTimer timer;
    DimsatResult parallel = DimsatParallel(ds, base, options, threads);
    double ms = timer.ElapsedMs();
    OLAPDC_CHECK(parallel.status.ok());
    OLAPDC_CHECK(parallel.frozen.size() == sequential.frozen.size())
        << "parallel enumeration must match";
    std::printf("%8d %12.2f %12zu %10llu %7.1fx\n", threads, ms,
                parallel.frozen.size(),
                static_cast<unsigned long long>(parallel.stats.expand_calls),
                seq_ms / (ms > 0 ? ms : 1e-3));
  }
  std::printf(
      "\nExpected shape: near-linear speedup on multi-core hosts until "
      "the seed-subtree skew dominates (this host reports %u hardware "
      "threads — on a single core only the correctness claim is "
      "observable); identical frozen sets at every thread count.\n",
      std::thread::hardware_concurrency());
}

}  // namespace
}  // namespace olapdc

int main() {
  olapdc::Run();
  return 0;
}
