// Heterogeneous dimensions beyond retail: the healthcare diagnosis
// dimension (Pedersen & Jensen's motivating domain, paper Section 1.3)
// built member by member, model-checked against its constraints, and
// compared against the two legacy homogenization baselines.

#include <cstdio>

#include "constraint/evaluator.h"
#include "core/summarizability.h"
#include "transform/dnf_transform.h"
#include "transform/null_padding.h"
#include "workload/realistic.h"

using namespace olapdc;

int main() {
  DimensionSchema ds = HealthcareSchema().ValueOrDie();
  const HierarchySchema& schema = ds.hierarchy();

  // Hand-build a small patient/diagnosis instance. Two diagnoses sit
  // under a family; one ("diabetes-insipidus") attaches directly to its
  // group — the heterogeneity the schema's one(...) constraint allows.
  DimensionInstanceBuilder builder(ds.hierarchy_ptr());
  builder.AddMember("endocrine", "Group")
      .AddMemberUnder("diabetes", "Family", "endocrine")
      .AddMemberUnder("diabetes-1", "Diagnosis", "diabetes")
      .AddMember("diabetes-2", "Diagnosis", "L3")  // Name = 'L3'
      .AddChildParent("diabetes-2", "diabetes")
      .AddMemberUnder("diabetes-insipidus", "Diagnosis", "endocrine")
      .AddMemberUnder("p1", "Patient", "diabetes-1")
      .AddMemberUnder("p2", "Patient", "diabetes-2")
      .AddMemberUnder("p3", "Patient", "diabetes-insipidus");
  DimensionInstance d = builder.Build().ValueOrDie();

  std::printf("instance valid: %s\n", d.Validate().ToString().c_str());
  std::printf("constraints:\n");
  for (const DimensionConstraint& c : ds.constraints()) {
    std::printf("  %-5s %s\n", c.label.c_str(),
                Satisfies(d, c) ? "holds" : "VIOLATED");
  }

  // Summarizability of Group counts: from Diagnosis yes; from Family
  // no — diabetes-insipidus never passes through a family.
  CategoryId group = schema.FindCategory("Group");
  CategoryId family = schema.FindCategory("Family");
  CategoryId diagnosis = schema.FindCategory("Diagnosis");
  std::printf("\nGroup from {Diagnosis}: %s\n",
              IsSummarizable(ds, group, {diagnosis}).ValueOrDie().summarizable
                  ? "safe"
                  : "unsafe");
  std::printf("Group from {Family}:    %s\n",
              IsSummarizable(ds, group, {family}).ValueOrDie().summarizable
                  ? "safe"
                  : "unsafe");

  // What the legacy fixes would do to this instance:
  NullPaddingResult padded = PadWithNullMembers(d).ValueOrDie();
  std::printf("\nPedersen-Jensen padding: +%d placeholder members, "
              "+%d edges (%.0f%% of the padded dimension is filler)\n",
              padded.stats.padded_members, padded.stats.padded_edges,
              100.0 * padded.stats.placeholder_fraction);
  DnfResult dnf = ToDimensionalNormalForm(d).ValueOrDie();
  std::printf("Lehner DNF: demotes");
  for (CategoryId c : dnf.demoted) {
    std::printf(" %s", schema.CategoryName(c).c_str());
  }
  std::printf(" to attributes — no Family cube views anymore.\n");
  std::printf("\nDimension constraints keep the instance as-is and still "
              "prove which rewrites are safe.\n");
  return 0;
}
