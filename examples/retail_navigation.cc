// Retail aggregate navigation, end to end, on the paper's running
// example: load the location dimension and a sales fact table,
// materialize some cube views, and let the navigator answer queries
// from them — refusing the rewrites that summarizability reasoning
// proves unsafe.

#include <cstdio>
#include <map>

#include "core/location_example.h"
#include "olap/navigator.h"

using namespace olapdc;

int main() {
  DimensionSchema ds = LocationSchema().ValueOrDie();
  DimensionInstance location = LocationInstance().ValueOrDie();
  const HierarchySchema& schema = ds.hierarchy();

  // Daily sales per store.
  FactTable sales;
  const std::pair<const char*, double> rows[] = {
      {"st-tor-1", 120.0}, {"st-tor-2", 80.0}, {"st-ott-1", 64.0},
      {"st-mex-1", 256.0}, {"st-mty-1", 32.0}, {"st-aus-1", 500.0},
      {"st-was-1", 75.0},
  };
  for (const auto& [store, amount] : rows) {
    sales.Add(location.MemberIdOf(store).ValueOrDie(), amount);
  }

  // Materialize the City and State views (say, they were precomputed
  // overnight).
  CategoryId city = schema.FindCategory("City");
  CategoryId state = schema.FindCategory("State");
  CategoryId country = schema.FindCategory("Country");
  CategoryId province = schema.FindCategory("Province");
  std::map<CategoryId, CubeViewResult> materialized;
  materialized[city] = ComputeCubeView(location, sales, city, AggFn::kSum);
  materialized[state] = ComputeCubeView(location, sales, state, AggFn::kSum);

  auto query = [&](CategoryId target) {
    NavigatorAnswer answer =
        AnswerFromViews(ds, location, materialized, target, AggFn::kSum)
            .ValueOrDie();
    std::printf("SUM(sales) BY %s: ", schema.CategoryName(target).c_str());
    if (!answer.answered) {
      std::printf("no safe rewrite from the materialized views — "
                  "falling back to base facts\n");
      answer.view = ComputeCubeView(location, sales, target, AggFn::kSum);
    } else {
      std::printf("answered from {");
      for (size_t i = 0; i < answer.used.size(); ++i) {
        std::printf("%s%s", i ? ", " : "",
                    schema.CategoryName(answer.used[i]).c_str());
      }
      std::printf("}\n");
    }
    for (const auto& [member, value] : answer.view) {
      std::printf("    %-10s %8.1f\n", location.member(member).key.c_str(),
                  value);
    }
  };

  // Country from {City} is provably safe (Example 10)...
  query(country);
  // ...Province too (only Canadian stores have provinces, and they all
  // route through City)...
  query(province);
  // ...but State alone could never answer Country (Washington!), so if
  // we drop the City view, the navigator refuses:
  materialized.erase(city);
  query(country);
  return 0;
}
