// A two-dimensional sales cube (location x time) showing the
// axis-wise product rule: rolling a materialized (City, Month) view up
// to (Country, Year) is provably safe; routing either axis through an
// unsafe category ((State, Month) or (City, Week)) silently corrupts
// the totals — unless you ask the reasoner first.

#include <cstdio>

#include "core/location_example.h"
#include "olap/datacube.h"
#include "workload/instance_generator.h"
#include "workload/realistic.h"

using namespace olapdc;

int main() {
  DimensionSchema location_schema = LocationSchema().ValueOrDie();
  DimensionSchema time_schema = TimeSchema().ValueOrDie();
  DimensionInstance location = LocationInstance().ValueOrDie();
  InstanceGenOptions gen;
  gen.branching = 2;
  DimensionInstance time =
      GenerateInstanceFromFrozen(time_schema, gen).ValueOrDie();

  Datacube cube = Datacube::Create({location, time}).ValueOrDie();
  const HierarchySchema& loc = cube.axis(0).hierarchy();
  const HierarchySchema& tim = cube.axis(1).hierarchy();

  // One fact per (store, day); integer measures keep SUM comparisons
  // exact regardless of accumulation order.
  long measure = 1;
  for (MemberId s : cube.axis(0).MembersOf(loc.FindCategory("Store"))) {
    for (MemberId d : cube.axis(1).MembersOf(tim.FindCategory("Day"))) {
      OLAPDC_CHECK(
          cube.AddFact({s, d}, static_cast<double>(measure)).ok());
      measure = (measure * 3 + 7) % 100;
    }
  }
  std::printf("cube: %d axes, %zu facts\n", cube.num_axes(),
              cube.num_facts());

  std::vector<DimensionSchema> schemas = {location_schema, time_schema};
  std::vector<CategoryId> coarse = {loc.FindCategory("Country"),
                                    tim.FindCategory("Year")};
  auto report = [&](std::vector<CategoryId> fine, const char* name) {
    bool safe = cube.IsRollupSafe(schemas, fine, coarse).ValueOrDie();
    MultiCubeView fine_view =
        cube.ComputeView(fine, AggFn::kSum).ValueOrDie();
    MultiCubeView direct = cube.ComputeView(coarse, AggFn::kSum).ValueOrDie();
    MultiCubeView rolled =
        cube.RollUpView(fine_view, fine, coarse, AggFn::kSum).ValueOrDie();
    std::printf("%-18s reasoner: %-6s  actual: %s\n", name,
                safe ? "SAFE" : "unsafe",
                direct == rolled ? "exact" : "WRONG TOTALS");
  };
  report({loc.FindCategory("City"), tim.FindCategory("Month")},
         "(City, Month)");
  report({loc.FindCategory("SaleRegion"), tim.FindCategory("Quarter")},
         "(SaleRgn, Quarter)");
  report({loc.FindCategory("State"), tim.FindCategory("Month")},
         "(State, Month)");
  report({loc.FindCategory("City"), tim.FindCategory("Week")},
         "(City, Week)");
  return 0;
}
