// Design-time tooling (paper Section 6: constraints "are also helpful
// in the design stage of data cubes"): sanity-check a schema draft by
// finding unsatisfiable categories, understanding its heterogeneity
// through frozen dimensions, and asking the view-selection advisor
// which cube views to materialize.

#include <cstdio>

#include "constraint/parser.h"
#include "constraint/printer.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/location_example.h"
#include "olap/view_selection.h"
#include "workload/instance_generator.h"

using namespace olapdc;

int main() {
  DimensionSchema ds = LocationSchema().ValueOrDie();
  const HierarchySchema& schema = ds.hierarchy();

  // --- 1. Category satisfiability audit -----------------------------
  std::printf("category satisfiability audit:\n");
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    bool satisfiable = IsCategorySatisfiable(ds, c).ValueOrDie();
    std::printf("  %-11s %s\n", schema.CategoryName(c).c_str(),
                satisfiable ? "ok" : "UNSATISFIABLE (drop or fix)");
  }

  // A draft edit gone wrong: forbid SaleRegion -> Country. Example 11
  // shows this silently contradicts condition C7.
  DimensionSchema draft = ds.WithExtraConstraint(
      ParseConstraint(schema, "!SaleRegion/Country").ValueOrDie());
  std::printf("\nafter adding !SaleRegion/Country:\n");
  for (const char* name : {"SaleRegion", "Store"}) {
    CategoryId c = schema.FindCategory(name);
    std::printf("  %-11s %s\n", name,
                IsCategorySatisfiable(draft, c).ValueOrDie()
                    ? "ok"
                    : "UNSATISFIABLE (drop or fix)");
  }

  // --- 2. Heterogeneity report (frozen dimensions) ------------------
  std::printf("\nheterogeneity report for root Store — the minimal\n"
              "homogeneous worlds mixed into this schema:\n");
  DimsatResult frozen =
      EnumerateFrozenDimensions(ds, schema.FindCategory("Store"));
  int index = 0;
  for (const FrozenDimension& f : frozen.frozen) {
    std::printf("  f%d: %s\n", ++index, f.ToString(schema).c_str());
  }

  // --- 3. View-selection advisor -------------------------------------
  std::printf("\nview selection: queries = {Country, Province, "
              "SaleRegion}\n");
  DimensionInstance instance =
      GenerateInstanceFromFrozen(ds).ValueOrDie();
  ViewSelectionResult selection =
      SelectViews(ds, instance,
                  {schema.FindCategory("Country"),
                   schema.FindCategory("Province"),
                   schema.FindCategory("SaleRegion")})
          .ValueOrDie();
  if (selection.found) {
    std::printf("  materialize {");
    for (size_t i = 0; i < selection.selected.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  schema.CategoryName(selection.selected[i]).c_str());
    }
    std::printf("} — every query is then answerable by a provably safe "
                "rewrite.\n");
  } else {
    std::printf("  no materialization of the allowed size covers all "
                "queries.\n");
  }
  return 0;
}
