// Quickstart: define a dimension schema with constraints, ask the
// reasoner what is implied, and test summarizability — the 60-second
// tour of the olapdc public API.

#include <cstdio>

#include "constraint/parser.h"
#include "core/implication.h"
#include "core/schema.h"
#include "core/summarizability.h"
#include "dim/hierarchy_schema.h"

using namespace olapdc;  // examples only; library code never does this

int main() {
  // 1. A hierarchy schema: products roll up to brands and categories;
  //    own-label products have no brand.
  HierarchySchemaBuilder builder;
  builder.AddEdge("Product", "Brand")
      .AddEdge("Product", "Category")
      .AddEdge("Brand", "Category")
      .AddEdge("Category", "All");
  HierarchySchemaPtr hierarchy = builder.BuildShared().ValueOrDie();

  // 2. Dimension constraints, in the library's text syntax:
  //    - every product has a category ancestor (through Brand or not),
  //    - branded products reach Category *through* their brand.
  std::vector<DimensionConstraint> sigma;
  for (const char* text : {
           "Product.Category",
           "Product/Brand -> Product.Brand.Category",
           "Product = 'own-label' <-> !Product/Brand",
       }) {
    sigma.push_back(ParseConstraint(*hierarchy, text).ValueOrDie());
  }
  DimensionSchema ds(hierarchy, std::move(sigma));

  // 3. Implication: is every product's rollup to Category unique
  //    through Brand when a brand exists?
  DimensionConstraint question =
      ParseConstraint(*hierarchy, "Product/Brand | Product/Category")
          .ValueOrDie();
  ImplicationResult answer = Implies(ds, question).ValueOrDie();
  std::printf("ds |= \"%s\"?  %s\n",
              "Product/Brand | Product/Category",
              answer.implied ? "yes" : "no");

  // 4. Summarizability (Theorem 1): can a Category cube view be
  //    derived from a precomputed Brand view? No — own-label products
  //    would be lost. From {Brand, Product}? Also no — branded products
  //    would be double counted. The correct split:
  CategoryId product = hierarchy->FindCategory("Product");
  CategoryId brand = hierarchy->FindCategory("Brand");
  CategoryId category = hierarchy->FindCategory("Category");

  auto report = [&](const std::vector<CategoryId>& s,
                    const char* description) {
    SummarizabilityResult r = IsSummarizable(ds, category, s).ValueOrDie();
    std::printf("Category summarizable from %-18s %s\n", description,
                r.summarizable ? "yes" : "no");
  };
  report({brand}, "{Brand}:");
  report({brand, product}, "{Brand, Product}:");
  report({category}, "{Category}:");

  // 5. When the answer is "no", the reasoner hands back a minimal
  //    counterexample world (a frozen dimension).
  SummarizabilityResult no =
      IsSummarizable(ds, category, {brand}).ValueOrDie();
  if (!no.summarizable && no.details[0].counterexample.has_value()) {
    std::printf("counterexample structure: %s\n",
                no.details[0].counterexample->ToString(*hierarchy).c_str());
  }
  return 0;
}
