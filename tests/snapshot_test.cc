// service/snapshot.h: the olapdc-snapshot v1 build/restore cycle, its
// per-section salvage, and the all-or-nothing contract of the
// underlying ServiceCaches::LoadNoGoods / LoadResponses parsers —
// including the committed adversarial corpus in
// tests/data/corrupt_snapshots/ (truncated mid-record, mangled hex,
// oversized counts, wrong magic): every corpus file must ParseError
// and load *nothing*, never a partial store.

#include "service/snapshot.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "gtest/gtest.h"
#include "io/durable_file.h"
#include "service/schema_registry.h"
#include "service/service_caches.h"

namespace olapdc::service {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

Fingerprint128 Sig(uint64_t hi, uint64_t lo) {
  Fingerprint128 sig;
  sig.hi = hi;
  sig.lo = lo;
  return sig;
}

/// A registry with the shipped location schema, plus caches warmed
/// with two no-goods under its epoch and one cached response.
struct Fixture {
  SchemaRegistry registry;
  ServiceCaches caches;
  Fingerprint128 epoch;

  Fixture() {
    const std::string text =
        ReadFileOrDie(std::string(OLAPDC_SOURCE_DIR) +
                      "/data/location.olapdc");
    EXPECT_TRUE(registry.Register("loc", text).ok());
    epoch = registry.FindEntry("loc").epoch;
    const auto store = caches.NoGoodsFor(epoch);
    store->Record(Sig(0x1111, 0x2222));
    store->Record(Sig(0x3333, 0x4444));
    caches.InsertResponse("check|" + epoch.ToHex() + "|loc",
                          "{\"satisfiable\": true}");
  }
};

TEST(SnapshotTest, BuildLoadRoundTrip) {
  Fixture fix;
  const std::vector<std::string> records =
      BuildSnapshotRecords(/*seq=*/42, fix.registry, fix.caches);
  ASSERT_EQ(records.size(), 4u);  // meta, epochs, nogoods, responses

  ServiceCaches fresh;
  auto restore = LoadSnapshotRecords(records, &fresh);
  ASSERT_TRUE(restore.ok()) << restore.status().message();
  EXPECT_EQ(restore->seq, 42u);
  EXPECT_EQ(restore->nogood_entries, 2u);
  EXPECT_TRUE(restore->loaded_epochs);
  EXPECT_TRUE(restore->loaded_nogoods);
  EXPECT_TRUE(restore->loaded_responses);
  ASSERT_EQ(restore->epochs.size(), 1u);
  EXPECT_EQ(restore->epochs[0].first, "loc");
  EXPECT_EQ(restore->epochs[0].second, fix.epoch);

  EXPECT_EQ(fresh.NoGoodEntryCount(), 2u);
  EXPECT_TRUE(fresh.NoGoodsFor(fix.epoch)->Probe(Sig(0x1111, 0x2222)));
  std::string body;
  ASSERT_TRUE(fresh.LookupResponse("check|" + fix.epoch.ToHex() + "|loc",
                                   &body));
  EXPECT_EQ(body, "{\"satisfiable\": true}");
}

TEST(SnapshotTest, TornTailLosesOnlyTrailingSections) {
  Fixture fix;
  std::vector<std::string> records =
      BuildSnapshotRecords(/*seq=*/7, fix.registry, fix.caches);
  // A kill -9 that tore off the responses record: the no-goods still
  // restore, only the response cache starts cold.
  records.resize(3);

  ServiceCaches fresh;
  auto restore = LoadSnapshotRecords(records, &fresh);
  ASSERT_TRUE(restore.ok());
  EXPECT_TRUE(restore->loaded_epochs);
  EXPECT_TRUE(restore->loaded_nogoods);
  EXPECT_FALSE(restore->loaded_responses);
  EXPECT_EQ(fresh.NoGoodEntryCount(), 2u);
  EXPECT_EQ(fresh.ResponseStats().entries, 0u);
}

TEST(SnapshotTest, MetaRecordIsMandatory) {
  ServiceCaches fresh;
  EXPECT_EQ(LoadSnapshotRecords({}, &fresh).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(LoadSnapshotRecords({"not a snapshot\n"}, &fresh)
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(LoadSnapshotRecords({"olapdc-snapshot v1\nseq x\n"}, &fresh)
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(SnapshotTest, MalformedIntactSectionIsSkippedNotPartiallyLoaded) {
  Fixture fix;
  std::vector<std::string> records =
      BuildSnapshotRecords(/*seq=*/7, fix.registry, fix.caches);
  // A bit flip that survived CRC framing (or a buggy writer): the
  // no-good section parses up to a mangled signature. The section is
  // dropped whole; the later responses section still loads.
  const size_t tail = records[2].size() - 10;
  records[2].replace(tail, 1, "Z");

  ServiceCaches fresh;
  auto restore = LoadSnapshotRecords(records, &fresh);
  ASSERT_TRUE(restore.ok());
  EXPECT_FALSE(restore->loaded_nogoods);
  EXPECT_EQ(fresh.NoGoodEntryCount(), 0u);  // all-or-nothing
  EXPECT_TRUE(restore->loaded_responses);
  EXPECT_EQ(fresh.ResponseStats().entries, 1u);
}

TEST(SnapshotTest, UnknownSectionsAreForwardCompatible) {
  Fixture fix;
  std::vector<std::string> records =
      BuildSnapshotRecords(/*seq=*/7, fix.registry, fix.caches);
  records.push_back("section future-layer\nopaque bytes\n");

  ServiceCaches fresh;
  auto restore = LoadSnapshotRecords(records, &fresh);
  ASSERT_TRUE(restore.ok());
  EXPECT_TRUE(restore->loaded_nogoods);
  EXPECT_TRUE(restore->loaded_responses);
}

TEST(SnapshotTest, SurvivesDurableFileTornTailEndToEnd) {
  Fixture fix;
  const std::string path = ::testing::TempDir() + "/snapshot_torn.olapdc";
  ASSERT_TRUE(
      WriteDurableFile(path,
                       BuildSnapshotRecords(/*seq=*/9, fix.registry,
                                            fix.caches))
          .ok());
  // Tear mid-way into the last record's payload, as a crash would.
  {
    std::ifstream in(path, std::ios::binary);
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << raw.substr(0, raw.size() - 5);
  }
  auto read = ReadDurableFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->torn_tail_truncations, 1u);

  ServiceCaches fresh;
  auto restore = LoadSnapshotRecords(read->records, &fresh);
  ASSERT_TRUE(restore.ok());
  EXPECT_EQ(restore->seq, 9u);
  EXPECT_TRUE(restore->loaded_nogoods);
  EXPECT_FALSE(restore->loaded_responses);
  EXPECT_EQ(fresh.NoGoodEntryCount(), 2u);
}

/// Every file in the committed corpus must be rejected with ParseError
/// and load nothing — a truncated or corrupted snapshot section can
/// never half-populate a cache layer.
TEST(SnapshotTest, CorruptCorpusNeverPartiallyLoads) {
  const std::filesystem::path dir =
      std::filesystem::path(OLAPDC_SOURCE_DIR) / "tests" / "data" /
      "corrupt_snapshots";
  size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    const std::string text = ReadFileOrDie(entry.path().string());
    ServiceCaches fresh;
    Status status = name.rfind("responses_", 0) == 0
                        ? fresh.LoadResponses(text)
                        : fresh.LoadNoGoods(text);
    EXPECT_FALSE(status.ok()) << name;
    EXPECT_EQ(status.code(), StatusCode::kParseError) << name;
    EXPECT_EQ(fresh.NoGoodEntryCount(), 0u) << name;
    EXPECT_EQ(fresh.ResponseStats().entries, 0u) << name;
    ++checked;
  }
  // The corpus is committed; an empty directory means the test checked
  // nothing.
  EXPECT_GE(checked, 10u);
}

TEST(SnapshotTest, LoadNoGoodsRejectsEveryTruncationAtomically) {
  Fixture fix;
  const std::string full = fix.caches.SerializeNoGoods();
  // Any prefix that cuts into the store body must fail whole. (The
  // final newline alone is cosmetic — the last signature line parses
  // without it — so the cuts start one byte deeper.)
  for (const size_t cut :
       {full.size() - 2, full.size() - 17, full.size() / 2}) {
    ServiceCaches fresh;
    const Status status = fresh.LoadNoGoods(full.substr(0, cut));
    EXPECT_FALSE(status.ok()) << "cut=" << cut;
    EXPECT_EQ(fresh.NoGoodEntryCount(), 0u) << "cut=" << cut;
  }
  // The untruncated text still loads, proving the loop above was
  // exercising real content.
  ServiceCaches fresh;
  ASSERT_TRUE(fresh.LoadNoGoods(full).ok());
  EXPECT_EQ(fresh.NoGoodEntryCount(), 2u);
}

TEST(SnapshotTest, LoadResponsesIsAtomicUnderTruncation) {
  Fixture fix;
  fix.caches.InsertResponse("second-key", "second-body");
  const std::string full = fix.caches.SerializeResponses(/*max_entries=*/16);
  for (size_t cut = full.size() - 1; cut > full.size() - 8; --cut) {
    ServiceCaches fresh;
    EXPECT_FALSE(fresh.LoadResponses(full.substr(0, cut)).ok())
        << "cut=" << cut;
    EXPECT_EQ(fresh.ResponseStats().entries, 0u) << "cut=" << cut;
  }
  ServiceCaches fresh;
  ASSERT_TRUE(fresh.LoadResponses(full).ok());
  EXPECT_EQ(fresh.ResponseStats().entries, 2u);
}

TEST(SnapshotTest, SerializeResponsesHonorsWarmSetCap) {
  ServiceCaches caches;
  for (int i = 0; i < 10; ++i) {
    caches.InsertResponse("key" + std::to_string(i), "body");
  }
  ServiceCaches fresh;
  ASSERT_TRUE(fresh.LoadResponses(caches.SerializeResponses(3)).ok());
  EXPECT_EQ(fresh.ResponseStats().entries, 3u);
}

}  // namespace
}  // namespace olapdc::service
