// Tests for Status, Result and DynamicBitset.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "common/status.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, CopyingSharesRepresentation) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kNotFound);
  EXPECT_EQ(b.message(), "x");
}

TEST(StatusTest, EveryCodeHasName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kInvalidModel, StatusCode::kParseError,
        StatusCode::kResourceExhausted, StatusCode::kNotFound,
        StatusCode::kInternal, StatusCode::kDeadlineExceeded,
        StatusCode::kCancelled}) {
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, BudgetCodeFactories) {
  Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "Deadline exceeded: too slow");

  Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: caller gave up");
}

TEST(StatusTest, IsBudgetErrorClassifiesCodes) {
  EXPECT_TRUE(IsBudgetError(Status::ResourceExhausted("cap")));
  EXPECT_TRUE(IsBudgetError(Status::DeadlineExceeded("clock")));
  EXPECT_TRUE(IsBudgetError(Status::Cancelled("token")));
  EXPECT_FALSE(IsBudgetError(Status::OK()));
  EXPECT_FALSE(IsBudgetError(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsBudgetError(Status::ParseError("bad")));
  EXPECT_FALSE(IsBudgetError(Status::Internal("bug")));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::ParseError("oops"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  OLAPDC_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_OK_AND_ASSIGN(int q, Quarter(8));
  EXPECT_EQ(q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(BitsetTest, SetTestReset) {
  DynamicBitset b(100);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(50));
  EXPECT_EQ(b.count(), 4);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3);
}

TEST(BitsetTest, IterationIsAscendingAndComplete) {
  DynamicBitset b(130);
  std::vector<int> expected = {0, 1, 63, 64, 65, 127, 128, 129};
  for (int i : expected) b.set(i);
  EXPECT_EQ(b.ToVector(), expected);
  EXPECT_EQ(b.First(), 0);
  EXPECT_EQ(b.Next(1), 63);
  EXPECT_EQ(b.Next(129), -1);
}

TEST(BitsetTest, EmptyBitsetIteration) {
  DynamicBitset b(10);
  EXPECT_EQ(b.First(), -1);
  EXPECT_TRUE(b.ToVector().empty());
}

TEST(BitsetTest, SetOperations) {
  DynamicBitset a(70), b(70);
  a.set(1);
  a.set(65);
  b.set(65);
  b.set(2);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ((a & b).ToVector(), std::vector<int>({65}));
  EXPECT_EQ((a | b).ToVector(), std::vector<int>({1, 2, 65}));
  EXPECT_EQ((a - b).ToVector(), std::vector<int>({1}));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE((a & b).IsSubsetOf(a));
  DynamicBitset c(70);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(c.IsSubsetOf(a));
}

TEST(BitsetTest, EqualityAndHash) {
  DynamicBitset a(64), b(64);
  EXPECT_EQ(a, b);
  a.set(13);
  EXPECT_NE(a, b);
  b.set(13);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

class BitsetSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BitsetSweepTest, CountMatchesIterationAtEverySize) {
  const int size = GetParam();
  DynamicBitset b(size);
  // Set every third bit.
  int expected = 0;
  for (int i = 0; i < size; i += 3) {
    b.set(i);
    ++expected;
  }
  EXPECT_EQ(b.count(), expected);
  int seen = 0;
  int last = -1;
  b.ForEach([&](int i) {
    EXPECT_GT(i, last);
    EXPECT_EQ(i % 3, 0);
    last = i;
    ++seen;
  });
  EXPECT_EQ(seen, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetSweepTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 200));

}  // namespace
}  // namespace olapdc
