// Tests for the parallel DIMSAT driver: semantic equivalence with the
// sequential search across thread counts, workloads, and modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/dimsat.h"
#include "core/location_example.h"
#include "tests/test_util.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

std::vector<std::string> Canonical(const std::vector<FrozenDimension>& fs,
                                   const HierarchySchema& schema) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const FrozenDimension& f : fs) out.push_back(f.ToString(schema));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ParallelDimsatTest, LocationEnumerationMatchesSequential) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult sequential = Dimsat(ds, store, options);
  for (int threads : {1, 2, 4, 8}) {
    DimsatResult parallel = DimsatParallel(ds, store, options, threads);
    ASSERT_OK(parallel.status);
    EXPECT_EQ(Canonical(parallel.frozen, ds.hierarchy()),
              Canonical(sequential.frozen, ds.hierarchy()))
        << threads << " threads";
  }
}

TEST(ParallelDimsatTest, DecisionModeFindsAWitness) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatResult r = DimsatParallel(ds, store, {}, 4);
  ASSERT_OK(r.status);
  EXPECT_TRUE(r.satisfiable);
  ASSERT_FALSE(r.frozen.empty());
  // Whatever witness a worker found, it is a genuine frozen dimension.
  ASSERT_OK(r.frozen.front().ToInstance(ds).status());
}

TEST(ParallelDimsatTest, UnsatisfiableStaysUnsatisfiable) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  DimensionSchema extended = ds.WithExtraConstraint(
      testing_util::ParseC(ds.hierarchy(), "!SaleRegion/Country"));
  CategoryId store = ds.hierarchy().FindCategory("Store");
  for (int threads : {2, 4}) {
    DimsatResult r = DimsatParallel(extended, store, {}, threads);
    ASSERT_OK(r.status);
    EXPECT_FALSE(r.satisfiable);
  }
}

TEST(ParallelDimsatTest, AllRootFallsBackToSequential) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  DimsatResult r = DimsatParallel(ds, ds.hierarchy().all(), {}, 4);
  EXPECT_TRUE(r.satisfiable);
}

class ParallelRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelRandomTest, MatchesSequentialOnRandomSchemas) {
  const int seed = GetParam();
  SchemaGenOptions schema_options;
  schema_options.num_levels = 3;
  schema_options.categories_per_level = 2;
  schema_options.extra_edge_prob = 0.3;
  schema_options.seed = static_cast<uint64_t>(seed) * 911 + 3;
  auto hierarchy = GenerateLayeredHierarchy(schema_options);
  ASSERT_TRUE(hierarchy.ok());
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 1;
  constraint_options.num_equality_constraints = 1;
  constraint_options.seed = seed;
  auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
  ASSERT_TRUE(ds.ok());
  CategoryId base = ds->hierarchy().FindCategory("Base");

  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult sequential = Dimsat(*ds, base, options);
  ASSERT_OK(sequential.status);
  DimsatResult parallel = DimsatParallel(*ds, base, options, 4);
  ASSERT_OK(parallel.status);
  EXPECT_EQ(Canonical(parallel.frozen, ds->hierarchy()),
            Canonical(sequential.frozen, ds->hierarchy()))
      << "seed " << seed;
  // Decision mode agrees on satisfiability.
  DimsatResult decision = DimsatParallel(*ds, base, {}, 4);
  EXPECT_EQ(decision.satisfiable, sequential.satisfiable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRandomTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace olapdc
