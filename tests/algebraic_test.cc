// Tests for the algebraic-aggregate (AVG) extension and the classic
// time-dimension summarizability failure.

#include <gtest/gtest.h>

#include <map>

#include "core/location_example.h"
#include "core/summarizability.h"
#include "olap/algebraic.h"
#include "tests/test_util.h"
#include "workload/instance_generator.h"
#include "workload/realistic.h"

namespace olapdc {
namespace {

class AlgebraicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(ds_, LocationSchema());
    ASSERT_OK_AND_ASSIGN(d_, LocationInstance());
    const std::pair<const char*, double> rows[] = {
        {"st-tor-1", 10}, {"st-tor-2", 20}, {"st-ott-1", 60},
        {"st-mex-1", 8},  {"st-mty-1", 4},  {"st-aus-1", 5},
        {"st-was-1", 7},
    };
    for (const auto& [key, m] : rows) {
      facts_.Add(*d_->MemberIdOf(key), m);
    }
  }

  std::optional<DimensionSchema> ds_;
  std::optional<DimensionInstance> d_;
  FactTable facts_;
};

TEST_F(AlgebraicTest, DirectAverage) {
  CategoryId country = ds_->hierarchy().FindCategory("Country");
  CubeViewResult avg = ComputeAverageView(*d_, facts_, country);
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg.at(*d_->MemberIdOf("Canada")), (10 + 20 + 60) / 3.0);
  EXPECT_DOUBLE_EQ(avg.at(*d_->MemberIdOf("Mexico")), 6.0);
  EXPECT_DOUBLE_EQ(avg.at(*d_->MemberIdOf("USA")), 6.0);
}

TEST_F(AlgebraicTest, AverageOfAveragesWouldBeWrongButSumCountIsExact) {
  const HierarchySchema& schema = ds_->hierarchy();
  CategoryId city = schema.FindCategory("City");
  CategoryId country = schema.FindCategory("Country");

  // The naive "AVG of the city AVG view" is wrong for Canada (cities
  // have different cardinalities).
  CubeViewResult city_avg = ComputeAverageView(*d_, facts_, city);
  CubeViewResult avg_of_avg =
      RewriteFromViews(*d_, {MaterializedView{city, &city_avg}}, country,
                       AggFn::kSum);  // deliberately nonsensical combine
  (void)avg_of_avg;                   // it is not even well-typed as AVG

  // The SUM/COUNT decomposition is exact.
  std::map<CategoryId, CubeViewResult> sums, counts;
  sums[city] = ComputeCubeView(*d_, facts_, city, AggFn::kSum);
  counts[city] = ComputeCubeView(*d_, facts_, city, AggFn::kCount);
  ASSERT_OK_AND_ASSIGN(
      NavigatorAnswer answer,
      AnswerAverageFromViews(*ds_, *d_, sums, counts, country));
  ASSERT_TRUE(answer.answered);
  EXPECT_TRUE(
      CubeViewsEqual(answer.view, ComputeAverageView(*d_, facts_, country)));
  // And the naive average-of-averages indeed disagrees for Canada:
  // cities average to {15, 60} -> 37.5, true average is 30.
  double canada_true =
      ComputeAverageView(*d_, facts_, country).at(*d_->MemberIdOf("Canada"));
  double toronto = city_avg.at(*d_->MemberIdOf("Toronto"));
  double ottawa = city_avg.at(*d_->MemberIdOf("Ottawa"));
  EXPECT_NE((toronto + ottawa) / 2.0, canada_true);
}

TEST_F(AlgebraicTest, RefusesUnsafeSourceSets) {
  const HierarchySchema& schema = ds_->hierarchy();
  CategoryId state = schema.FindCategory("State");
  CategoryId country = schema.FindCategory("Country");
  std::map<CategoryId, CubeViewResult> sums, counts;
  sums[state] = ComputeCubeView(*d_, facts_, state, AggFn::kSum);
  counts[state] = ComputeCubeView(*d_, facts_, state, AggFn::kCount);
  ASSERT_OK_AND_ASSIGN(
      NavigatorAnswer answer,
      AnswerAverageFromViews(*ds_, *d_, sums, counts, country));
  EXPECT_FALSE(answer.answered);
}

TEST_F(AlgebraicTest, RequiresBothComponents) {
  const HierarchySchema& schema = ds_->hierarchy();
  CategoryId city = schema.FindCategory("City");
  CategoryId country = schema.FindCategory("Country");
  std::map<CategoryId, CubeViewResult> sums, counts;
  sums[city] = ComputeCubeView(*d_, facts_, city, AggFn::kSum);
  // No COUNT view materialized: cannot answer.
  ASSERT_OK_AND_ASSIGN(
      NavigatorAnswer answer,
      AnswerAverageFromViews(*ds_, *d_, sums, counts, country));
  EXPECT_FALSE(answer.answered);
}

TEST(TimeSchemaTest, WeeklyAggregatesCannotRebuildYearly) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema time, TimeSchema());
  const HierarchySchema& schema = time.hierarchy();
  CategoryId year = schema.FindCategory("Year");
  CategoryId month = schema.FindCategory("Month");
  CategoryId week = schema.FindCategory("Week");
  CategoryId quarter = schema.FindCategory("Quarter");

  auto summarizable = [&](CategoryId target,
                          std::vector<CategoryId> sources) {
    auto r = IsSummarizable(time, target, sources);
    OLAPDC_CHECK(r.ok());
    return r->summarizable;
  };
  EXPECT_TRUE(summarizable(year, {month}));
  EXPECT_TRUE(summarizable(year, {quarter}));
  EXPECT_FALSE(summarizable(year, {week}))
      << "weeks cross year boundaries (no Week -> Year path)";
  // Mixing weekly and quarterly views double counts at All.
  EXPECT_FALSE(summarizable(schema.all(), {week, quarter}));
  EXPECT_TRUE(summarizable(schema.all(), {week}));

  // The generated instance realizes it operationally.
  InstanceGenOptions gen;
  gen.branching = 2;
  ASSERT_OK_AND_ASSIGN(DimensionInstance d,
                       GenerateInstanceFromFrozen(time, gen));
  FactTable facts = GenerateFacts(d);
  CubeViewResult direct = ComputeCubeView(d, facts, year, AggFn::kSum);
  CubeViewResult week_view = ComputeCubeView(d, facts, week, AggFn::kSum);
  CubeViewResult rewritten = RewriteFromViews(
      d, {MaterializedView{week, &week_view}}, year, AggFn::kSum);
  EXPECT_FALSE(CubeViewsEqual(direct, rewritten));
  EXPECT_TRUE(rewritten.empty()) << "weeks reach no year member at all";
}

}  // namespace
}  // namespace olapdc
