// Tests for the c-assignment search.

#include <gtest/gtest.h>

#include "core/assignment.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

// Universe: categories 0 (root), 1, 2, 3 (All); chain 0->1->2->3.
Subhierarchy Chain() {
  auto g = Subhierarchy::FromEdges(4, 0, 3, {{0, 1}, {1, 2}, {2, 3}});
  OLAPDC_CHECK(g.has_value());
  return *g;
}

TEST(AssignmentTest, EmptyConstraintSetIsSatisfiedByAllNk) {
  AssignmentSearchResult r = FindAssignments(Chain(), {});
  ASSERT_EQ(r.assignments.size(), 1u);
  for (const auto& v : r.assignments[0]) EXPECT_FALSE(v.has_value());
}

TEST(AssignmentTest, SingleAtomForcesConstant) {
  // 0.2 ~ "a" must hold.
  std::vector<ExprPtr> circled = {MakeEqualityAtom(0, 2, "a")};
  AssignmentSearchResult r = FindAssignments(Chain(), circled);
  ASSERT_EQ(r.assignments.size(), 1u);
  EXPECT_EQ(r.assignments[0][2], "a");
}

TEST(AssignmentTest, NegatedAtomPrefersNk) {
  std::vector<ExprPtr> circled = {MakeNot(MakeEqualityAtom(0, 2, "a"))};
  AssignmentSearchResult r = FindAssignments(Chain(), circled);
  ASSERT_EQ(r.assignments.size(), 1u);
  EXPECT_FALSE(r.assignments[0][2].has_value());
}

TEST(AssignmentTest, ContradictionHasNoAssignment) {
  std::vector<ExprPtr> circled = {MakeEqualityAtom(0, 2, "a"),
                                  MakeEqualityAtom(0, 2, "b")};
  AssignmentSearchResult r = FindAssignments(Chain(), circled);
  EXPECT_TRUE(r.assignments.empty());
  EXPECT_GT(r.tried, 0u);
}

TEST(AssignmentTest, LiteralFalseHasNoAssignment) {
  std::vector<ExprPtr> circled = {MakeFalse()};
  EXPECT_TRUE(FindAssignments(Chain(), circled).assignments.empty());
}

TEST(AssignmentTest, DisjunctionEnumeratesAllModels) {
  // one constraint: 0.1 ~ "x" | 0.2 ~ "y". Models over mentioned cats:
  // (x, nk), (x, y), (nk, y) -> 3 assignments.
  std::vector<ExprPtr> circled = {
      MakeOr({MakeEqualityAtom(0, 1, "x"), MakeEqualityAtom(0, 2, "y")})};
  AssignmentOptions options;
  options.enumerate_all = true;
  AssignmentSearchResult r = FindAssignments(Chain(), circled, options);
  EXPECT_EQ(r.assignments.size(), 3u);
}

TEST(AssignmentTest, ExactlyOneSemantics) {
  std::vector<ExprPtr> circled = {MakeExactlyOne(
      {MakeEqualityAtom(0, 1, "x"), MakeEqualityAtom(0, 2, "y")})};
  AssignmentOptions options;
  options.enumerate_all = true;
  AssignmentSearchResult r = FindAssignments(Chain(), circled, options);
  // (x, nk) and (nk, y) but not (x, y) and not (nk, nk).
  EXPECT_EQ(r.assignments.size(), 2u);
}

TEST(AssignmentTest, InjectivityForbidsSharedConstants) {
  // Both categories must be named "a": satisfiable by default,
  // unsatisfiable under the literal Proposition 2 injectivity.
  std::vector<ExprPtr> circled = {MakeEqualityAtom(0, 1, "a"),
                                  MakeEqualityAtom(0, 2, "a")};
  EXPECT_EQ(FindAssignments(Chain(), circled).assignments.size(), 1u);
  AssignmentOptions injective;
  injective.require_injective = true;
  EXPECT_TRUE(FindAssignments(Chain(), circled, injective).assignments.empty());
}

TEST(AssignmentTest, InjectivityAllowsManyNk) {
  // nk is exempt from injectivity: all-nk remains valid.
  std::vector<ExprPtr> circled = {
      MakeNot(MakeEqualityAtom(0, 1, "a")),
      MakeNot(MakeEqualityAtom(0, 2, "a"))};
  AssignmentOptions injective;
  injective.require_injective = true;
  EXPECT_EQ(FindAssignments(Chain(), circled, injective).assignments.size(),
            1u);
}

TEST(AssignmentTest, MaxResultsCap) {
  std::vector<ExprPtr> circled = {
      MakeOr({MakeEqualityAtom(0, 1, "x"), MakeEqualityAtom(0, 2, "y")})};
  AssignmentOptions options;
  options.enumerate_all = true;
  options.max_results = 2;
  EXPECT_EQ(FindAssignments(Chain(), circled, options).assignments.size(),
            2u);
}

TEST(AssignmentTest, ImplicationConnective) {
  // (0.1 ~ "x") -> (0.2 ~ "y"): enumerate; models over {1,2}:
  // (nk,nk), (nk,y), (x,y) — not (x,nk).
  std::vector<ExprPtr> circled = {MakeImplies(MakeEqualityAtom(0, 1, "x"),
                                              MakeEqualityAtom(0, 2, "y"))};
  AssignmentOptions options;
  options.enumerate_all = true;
  EXPECT_EQ(FindAssignments(Chain(), circled, options).assignments.size(),
            3u);
}

}  // namespace
}  // namespace olapdc
