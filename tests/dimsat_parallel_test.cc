// Tests for the parallel DIMSAT driver: semantic equivalence with the
// sequential search across thread counts, workloads, and modes, plus
// prompt propagation of Budget cancellation to every worker.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "exec/work_stealing_pool.h"
#include "tests/test_util.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

// Canonical serialization of a frozen-dimension set: sorted rendered
// strings, so two enumerations compare as sets regardless of the order
// workers happened to discover them in.
std::vector<std::string> Canonical(const std::vector<FrozenDimension>& fs,
                                   const HierarchySchema& schema) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const FrozenDimension& f : fs) out.push_back(f.ToString(schema));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ParallelDimsatTest, LocationEnumerationMatchesSequential) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult sequential = Dimsat(ds, store, options);
  for (int threads : {1, 2, 4, 8}) {
    DimsatResult parallel = DimsatParallel(ds, store, options, threads);
    ASSERT_OK(parallel.status);
    EXPECT_EQ(Canonical(parallel.frozen, ds.hierarchy()),
              Canonical(sequential.frozen, ds.hierarchy()))
        << threads << " threads";
  }
}

TEST(ParallelDimsatTest, ExplicitPoolIsUsed) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  exec::WorkStealingPool pool(3);
  DimsatOptions options;
  options.enumerate_all = true;
  options.pool = &pool;
  DimsatResult sequential = Dimsat(ds, store, options);
  DimsatResult parallel = DimsatParallel(ds, store, options, 3);
  ASSERT_OK(parallel.status);
  EXPECT_EQ(Canonical(parallel.frozen, ds.hierarchy()),
            Canonical(sequential.frozen, ds.hierarchy()));
  // The search ran as pool tasks, and the pool saw them.
  EXPECT_GT(parallel.stats.parallel_tasks, 0u);
  EXPECT_GT(pool.Stats().tasks_executed, 0u);
}

TEST(ParallelDimsatTest, DecisionModeFindsAWitness) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatResult r = DimsatParallel(ds, store, {}, 4);
  ASSERT_OK(r.status);
  EXPECT_TRUE(r.satisfiable);
  ASSERT_FALSE(r.frozen.empty());
  // Whatever witness a worker found, it is a genuine frozen dimension.
  ASSERT_OK(r.frozen.front().ToInstance(ds).status());
}

TEST(ParallelDimsatTest, UnsatisfiableStaysUnsatisfiable) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  DimensionSchema extended = ds.WithExtraConstraint(
      testing_util::ParseC(ds.hierarchy(), "!SaleRegion/Country"));
  CategoryId store = ds.hierarchy().FindCategory("Store");
  for (int threads : {2, 4}) {
    DimsatResult r = DimsatParallel(extended, store, {}, threads);
    ASSERT_OK(r.status);
    EXPECT_FALSE(r.satisfiable);
  }
}

TEST(ParallelDimsatTest, AllRootFallsBackToSequential) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  DimsatResult r = DimsatParallel(ds, ds.hierarchy().all(), {}, 4);
  EXPECT_TRUE(r.satisfiable);
}

TEST(ParallelDimsatTest, StaticPartitionMatchesSequential) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult sequential = Dimsat(ds, store, options);
  for (int threads : {2, 4}) {
    DimsatResult parallel = DimsatParallelStatic(ds, store, options, threads);
    ASSERT_OK(parallel.status);
    EXPECT_EQ(Canonical(parallel.frozen, ds.hierarchy()),
              Canonical(sequential.frozen, ds.hierarchy()))
        << threads << " threads (static partition)";
  }
}

// A cancelled Budget must stop every worker promptly: cancellation is
// polled through per-worker BudgetCheckers and fanned out via the
// shared stop flag, so the whole pool drains in bounded time even when
// the search space is astronomically larger than any deadline allows.
TEST(ParallelDimsatTest, CancelStopsAllWorkersPromptly) {
  SchemaGenOptions schema_options;
  schema_options.num_levels = 7;
  schema_options.categories_per_level = 3;
  schema_options.extra_edge_prob = 0.35;
  schema_options.seed = 99;
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr hierarchy,
                       GenerateLayeredHierarchy(schema_options));
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.3;
  constraint_options.num_choice_constraints = 1;
  constraint_options.num_equality_constraints = 1;
  constraint_options.seed = 99;
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, GenerateConstrainedSchema(
                                               hierarchy, constraint_options));
  CategoryId base = ds.hierarchy().FindCategory("Base");

  CancellationSource source;
  Budget budget = Budget::Unbounded();
  budget.SetCancellation(source.token());

  DimsatOptions options;
  options.enumerate_all = true;
  options.max_frozen = 1u << 20;
  options.max_expand_calls = ~0ull;
  options.budget = &budget;

  DimsatResult result;
  std::thread runner([&] { result = DimsatParallel(ds, base, options, 4); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto cancel_time = std::chrono::steady_clock::now();
  source.RequestCancel();
  runner.join();
  const double drain_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - cancel_time)
          .count();

  // Generous bound (sanitizer builds are slow), but far below what the
  // full enumeration would take: each worker notices the cancellation
  // within one BudgetChecker stride.
  EXPECT_LT(drain_ms, 10000.0) << "workers did not stop promptly";
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled)
      << result.status.ToString();
}

class ParallelRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelRandomTest, MatchesSequentialOnRandomSchemas) {
  const int seed = GetParam();
  SchemaGenOptions schema_options;
  schema_options.num_levels = 3;
  schema_options.categories_per_level = 2;
  schema_options.extra_edge_prob = 0.3;
  schema_options.seed = static_cast<uint64_t>(seed) * 911 + 3;
  auto hierarchy = GenerateLayeredHierarchy(schema_options);
  ASSERT_TRUE(hierarchy.ok());
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 1;
  constraint_options.num_equality_constraints = 1;
  constraint_options.seed = seed;
  auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
  ASSERT_TRUE(ds.ok());
  CategoryId base = ds->hierarchy().FindCategory("Base");

  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult sequential = Dimsat(*ds, base, options);
  ASSERT_OK(sequential.status);
  DimsatResult parallel = DimsatParallel(*ds, base, options, 4);
  ASSERT_OK(parallel.status);
  EXPECT_EQ(Canonical(parallel.frozen, ds->hierarchy()),
            Canonical(sequential.frozen, ds->hierarchy()))
      << "seed " << seed;
  // Decision mode agrees on satisfiability.
  DimsatResult decision = DimsatParallel(*ds, base, {}, 4);
  EXPECT_EQ(decision.satisfiable, sequential.satisfiable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRandomTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace olapdc
