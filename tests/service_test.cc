// Tests for src/service — the olapdcd request plane (DimService +
// SchemaRegistry) and its hostile-client defenses on the HttpServer
// transport: pipelined requests, truncated POST bodies,
// Content-Length mismatches, oversized JSON, UTF-8 garbage schema
// names. Every hostile shape must be a clean 4xx with a counted
// metric — never a crash, never a 200.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <string>

#include "common/fault_injector.h"
#include "constraint/parser.h"
#include "core/location_example.h"
#include "exec/admission.h"
#include "gtest/gtest.h"
#include "io/schema_io.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/dim_service.h"
#include "service/schema_registry.h"
#include "service/service_caches.h"
#include "workload/schema_generator.h"

namespace olapdc::service {
namespace {

using obs::HttpRequest;
using obs::HttpResponse;

HttpRequest Post(const std::string& path, const std::string& body) {
  HttpRequest request;
  request.method = "POST";
  request.path = path;
  request.body = body;
  return request;
}

std::string LocationSchemaText() {
  Result<DimensionSchema> loc = LocationSchema();
  EXPECT_TRUE(loc.ok());
  return SerializeSchema(*loc);
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::Global().Enable();
    ASSERT_TRUE(registry_.Register("loc", LocationSchemaText()).ok());
    options_.registry = &registry_;
    options_.max_threads = 2;
  }

  static uint64_t Counter(const std::string& name) {
    return obs::MetricsRegistry::Global().Snapshot().counter(name);
  }

  SchemaRegistry registry_;
  DimService::Options options_;
};

// ---------------------------------------------------------------------------
// The request plane, transport-free (HandleRequest directly).

TEST_F(ServiceTest, CheckAnswersDefinitivelyOnLocationExample) {
  DimService service(options_);
  HttpResponse response = service.HandleRequest(
      Post("/v1/check", "{\"schema\": \"loc\", \"category\": \"Store\"}"));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"definitive\": true"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"satisfiable\": "), std::string::npos);
  EXPECT_NE(response.body.find("\"expand_calls\": "), std::string::npos);
  EXPECT_EQ(service.ok(), 1u);
  EXPECT_EQ(service.requests(), 1u);
}

TEST_F(ServiceTest, ImpliesAndSummarizableAndBatchAnswer) {
  DimService service(options_);
  HttpResponse implies = service.HandleRequest(Post(
      "/v1/implies",
      "{\"schema\": \"loc\", \"constraint\": \"Store/City\"}"));
  EXPECT_EQ(implies.status, 200);
  EXPECT_NE(implies.body.find("\"implied\": "), std::string::npos)
      << implies.body;

  HttpResponse summarizable = service.HandleRequest(Post(
      "/v1/summarizable",
      "{\"schema\": \"loc\", \"category\": \"Country\", "
      "\"sources\": [\"Store\"]}"));
  EXPECT_EQ(summarizable.status, 200);
  EXPECT_NE(summarizable.body.find("\"summarizable\": "), std::string::npos)
      << summarizable.body;

  HttpResponse batch = service.HandleRequest(Post(
      "/v1/batch",
      "{\"requests\": [{\"op\": \"check\", \"schema\": \"loc\", "
      "\"category\": \"Store\"}, {\"op\": \"implies\", \"schema\": "
      "\"loc\", \"constraint\": \"Store/City\"}]}"));
  EXPECT_EQ(batch.status, 200);
  EXPECT_NE(batch.body.find("\"count\": 2"), std::string::npos) << batch.body;
  EXPECT_EQ(service.requests(), service.ok());
}

TEST_F(ServiceTest, UnknownSchemaIs404AndUnknownPathIs404) {
  DimService service(options_);
  HttpResponse unknown_schema = service.HandleRequest(
      Post("/v1/check", "{\"schema\": \"nope\", \"category\": \"X\"}"));
  EXPECT_EQ(unknown_schema.status, 404);
  EXPECT_NE(unknown_schema.body.find("Not found"), std::string::npos)
      << unknown_schema.body;

  HttpResponse unknown_path = service.HandleRequest(Post("/v1/zap", "{}"));
  EXPECT_EQ(unknown_path.status, 404);
  EXPECT_EQ(service.errors(), 2u);
}

TEST_F(ServiceTest, NonPostIs405) {
  DimService service(options_);
  HttpRequest get;
  get.method = "GET";
  get.path = "/v1/check";
  EXPECT_EQ(service.HandleRequest(get).status, 405);
}

TEST_F(ServiceTest, MalformedJsonIs400WithLineColumnAndCountedMetric) {
  DimService service(options_);
  const uint64_t before = Counter("olapdc.service.bad_json");
  HttpResponse response =
      service.HandleRequest(Post("/v1/check", "{\"schema\": "));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("line 1:"), std::string::npos) << response.body;
  EXPECT_EQ(Counter("olapdc.service.bad_json"), before + 1);

  // A non-object body is rejected before any field lookup.
  EXPECT_EQ(service.HandleRequest(Post("/v1/check", "[1, 2]")).status, 400);
  EXPECT_EQ(service.errors(), 2u);
}

TEST_F(ServiceTest, MistypedFieldIs400NamingTheField) {
  DimService service(options_);
  HttpResponse response = service.HandleRequest(Post(
      "/v1/check",
      "{\"schema\": \"loc\", \"category\": \"Store\", "
      "\"deadline_ms\": \"soon\"}"));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("deadline_ms"), std::string::npos)
      << response.body;
}

TEST_F(ServiceTest, Utf8GarbageSchemaNamesAre400NeverCrash) {
  DimService service(options_);
  const std::string hostile_names[] = {
      std::string("\xFF\xFE"),     // invalid lead bytes
      std::string("\xC0\xAF"),     // overlong encoding
      std::string("\x80garbled"),  // stray continuation byte
      std::string("trunc\xC3"),    // truncated multibyte sequence
      std::string(200, 'a'),       // over the 128-byte length cap
  };
  for (const std::string& name : hostile_names) {
    // The raw bytes travel inside the JSON string literal unescaped —
    // exactly what a hostile client would send.
    HttpResponse response = service.HandleRequest(Post(
        "/v1/check",
        "{\"schema\": \"" + name + "\", \"category\": \"Store\"}"));
    EXPECT_EQ(response.status, 400) << "name bytes: " << name;
    EXPECT_NE(response.body.find("\"code\": "), std::string::npos)
        << response.body;
  }
  // Valid multibyte UTF-8 is a legal name.
  ASSERT_TRUE(registry_.Register("sch\xC3\xA9ma", LocationSchemaText()).ok());
  HttpResponse ok = service.HandleRequest(Post(
      "/v1/check",
      "{\"schema\": \"sch\xC3\xA9ma\", \"category\": \"Store\"}"));
  EXPECT_EQ(ok.status, 200) << ok.body;
}

TEST_F(ServiceTest, AdmissionShedIs503WithRetryAfterHeader) {
  exec::AdmissionGate gate(exec::AdmissionGate::Options{1, 50});
  options_.gate = &gate;
  DimService service(options_);
  // Hold the only slot so the service's ticket is shed.
  ASSERT_TRUE(gate.TryAdmit().ok());
  HttpResponse response = service.HandleRequest(
      Post("/v1/check", "{\"schema\": \"loc\", \"category\": \"Store\"}"));
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("retry-after-ms="), std::string::npos)
      << response.body;
  bool has_retry_after = false;
  for (const auto& [key, value] : response.headers) {
    if (key == "Retry-After") {
      has_retry_after = true;
      EXPECT_GE(std::stoll(value), 1);
    }
  }
  EXPECT_TRUE(has_retry_after);
  EXPECT_EQ(service.shed(), 1u);
  gate.Release();

  // With the slot free the same request is admitted and succeeds.
  EXPECT_EQ(service
                .HandleRequest(Post("/v1/check",
                                    "{\"schema\": \"loc\", \"category\": "
                                    "\"Store\"}"))
                .status,
            200);
  EXPECT_EQ(service.requests(), service.ok() + service.shed());
}

TEST_F(ServiceTest, DrainShedsNewRequests) {
  exec::AdmissionGate gate;
  options_.gate = &gate;
  DimService service(options_);
  service.BeginDrain();
  EXPECT_TRUE(service.draining());
  HttpResponse response = service.HandleRequest(
      Post("/v1/check", "{\"schema\": \"loc\", \"category\": \"Store\"}"));
  EXPECT_EQ(response.status, 503);
  EXPECT_EQ(service.shed(), 1u);
}

// Pulls the value of a JSON string field out of a rendered response
// body and undoes obs::JsonEscape (checkpoints serialize to printable
// ASCII + newlines, so the n/r/t escapes cover it).
std::string ExtractStringField(const std::string& body,
                               const std::string& field) {
  const std::string key = "\"" + field + "\": \"";
  const size_t start = body.find(key);
  if (start == std::string::npos) return "";
  std::string out;
  size_t i = start + key.size();
  while (i < body.size() && body[i] != '"') {
    if (body[i] == '\\' && i + 1 < body.size()) {
      ++i;
      switch (body[i]) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: out += body[i];
      }
    } else {
      out += body[i];
    }
    ++i;
  }
  return out;
}

TEST_F(ServiceTest, TinyDeadlineDegradesWithCheckpointAndResumesToTruth) {
  // A workload big enough that a 1ms deadline genuinely interrupts the
  // search on most machines. Either outcome of one hop is legitimate;
  // when interrupted, the response must carry a resumable checkpoint
  // and the resume chain must converge to the unbudgeted answer.
  SchemaGenOptions gen;
  gen.num_levels = 5;
  gen.categories_per_level = 4;
  gen.extra_edge_prob = 0.4;
  gen.seed = 1234;
  auto hierarchy = GenerateLayeredHierarchy(gen);
  ASSERT_TRUE(hierarchy.ok());
  ConstraintGenOptions cgen;
  cgen.into_fraction = 0.4;
  cgen.num_choice_constraints = 2;
  cgen.seed = 99;
  auto schema = GenerateConstrainedSchema(*hierarchy, cgen);
  ASSERT_TRUE(schema.ok());
  registry_.RegisterParsed("big", std::move(*schema));

  DimService service(options_);
  // Ground truth with an effectively unbounded budget.
  HttpResponse truth = service.HandleRequest(Post(
      "/v1/check",
      "{\"schema\": \"big\", \"category\": \"Base\", "
      "\"deadline_ms\": 30000}"));
  ASSERT_EQ(truth.status, 200) << truth.body;
  ASSERT_NE(truth.body.find("\"definitive\": true"), std::string::npos)
      << truth.body;
  const bool truth_satisfiable =
      truth.body.find("\"satisfiable\": true") != std::string::npos;

  std::string body =
      "{\"schema\": \"big\", \"category\": \"Base\", \"deadline_ms\": 1}";
  for (int hop = 0; hop < 512; ++hop) {
    HttpResponse response = service.HandleRequest(Post("/v1/check", body));
    ASSERT_EQ(response.status, 200) << response.body;
    if (response.body.find("\"definitive\": true") != std::string::npos) {
      EXPECT_EQ(
          response.body.find("\"satisfiable\": true") != std::string::npos,
          truth_satisfiable)
          << response.body;
      return;
    }
    ASSERT_NE(response.body.find("\"definitive\": false"), std::string::npos);
    const std::string checkpoint =
        ExtractStringField(response.body, "checkpoint");
    if (checkpoint.empty()) {
      continue;  // expired before any frontier existed; try again
    }
    // Give resume hops a workable deadline so the chain terminates.
    body = "{\"schema\": \"big\", \"category\": \"Base\", "
           "\"deadline_ms\": 500, \"resume\": " +
           obs::JsonString(checkpoint) + "}";
  }
  FAIL() << "resume chain did not converge in 512 hops";
}

TEST_F(ServiceTest, RegisterEndpointRoundTripsAndHonorsDisable) {
  DimService service(options_);
  HttpResponse registered = service.HandleRequest(Post(
      "/v1/schemas", "{\"name\": \"copy\", \"text\": " +
                         obs::JsonString(LocationSchemaText()) + "}"));
  EXPECT_EQ(registered.status, 200) << registered.body;
  EXPECT_NE(registered.body.find("\"categories\": "), std::string::npos);
  EXPECT_NE(registry_.Find("copy"), nullptr);

  // A bad schema text must not disturb the existing entry.
  auto before = registry_.Find("copy");
  HttpResponse bad = service.HandleRequest(Post(
      "/v1/schemas", "{\"name\": \"copy\", \"text\": \"category \"}"));
  EXPECT_EQ(bad.status, 400) << bad.body;
  EXPECT_EQ(registry_.Find("copy"), before);

  options_.allow_register = false;
  DimService frozen(options_);
  HttpResponse denied = frozen.HandleRequest(Post(
      "/v1/schemas", "{\"name\": \"x\", \"text\": \"\"}"));
  EXPECT_EQ(denied.status, 400);
  EXPECT_NE(denied.body.find("disabled"), std::string::npos) << denied.body;
}

TEST_F(ServiceTest, BatchCapsFanOutAndEmbedsPerItemErrors) {
  options_.max_batch = 2;
  DimService service(options_);
  HttpResponse overflow = service.HandleRequest(Post(
      "/v1/batch",
      "{\"requests\": [{\"op\": \"check\"}, {\"op\": \"check\"}, "
      "{\"op\": \"check\"}]}"));
  EXPECT_EQ(overflow.status, 400) << overflow.body;

  HttpResponse mixed = service.HandleRequest(Post(
      "/v1/batch",
      "{\"requests\": [{\"op\": \"check\", \"schema\": \"loc\", "
      "\"category\": \"Store\"}, {\"op\": \"check\", \"schema\": "
      "\"nope\", \"category\": \"X\"}]}"));
  EXPECT_EQ(mixed.status, 200);
  EXPECT_NE(mixed.body.find("\"http_status\": 404"), std::string::npos)
      << mixed.body;
}

// ---------------------------------------------------------------------------
// The cross-request cache plane (ServiceCaches wired into DimService).

TEST_F(ServiceTest, CacheHitAfterMissServesMarkedResponse) {
  ServiceCaches caches;
  options_.caches = &caches;
  DimService service(options_);
  const std::string body = "{\"schema\": \"loc\", \"category\": \"Store\"}";

  HttpResponse cold = service.HandleRequest(Post("/v1/check", body));
  ASSERT_EQ(cold.status, 200) << cold.body;
  EXPECT_EQ(cold.body.find("\"cached\""), std::string::npos) << cold.body;
  const bool truth =
      cold.body.find("\"satisfiable\": true") != std::string::npos;

  const uint64_t served_before = Counter("olapdc.service.cache_served");
  HttpResponse warm = service.HandleRequest(Post("/v1/check", body));
  ASSERT_EQ(warm.status, 200);
  EXPECT_NE(warm.body.find("\"cached\": true"), std::string::npos)
      << warm.body;
  EXPECT_NE(warm.body.find("\"cache_layer\": \"response\""),
            std::string::npos)
      << warm.body;
  EXPECT_EQ(warm.body.find("\"satisfiable\": true") != std::string::npos,
            truth);
  EXPECT_EQ(Counter("olapdc.service.cache_served"), served_before + 1);

  // With the response layer flushed, the closure layer still knows the
  // verdict: the served body is synthesized, with zero engine work.
  caches.ClearResponses();
  HttpResponse closure = service.HandleRequest(Post("/v1/check", body));
  ASSERT_EQ(closure.status, 200);
  EXPECT_NE(closure.body.find("\"cache_layer\": \"closure\""),
            std::string::npos)
      << closure.body;
  EXPECT_NE(closure.body.find("\"expand_calls\": 0"), std::string::npos)
      << closure.body;
  EXPECT_EQ(closure.body.find("\"satisfiable\": true") != std::string::npos,
            truth);

  // The other two ops memoize the same way.
  const std::string implies =
      "{\"schema\": \"loc\", \"constraint\": \"Store/City\"}";
  HttpResponse implies_cold = service.HandleRequest(Post("/v1/implies", implies));
  ASSERT_EQ(implies_cold.status, 200) << implies_cold.body;
  HttpResponse implies_warm = service.HandleRequest(Post("/v1/implies", implies));
  EXPECT_NE(implies_warm.body.find("\"cached\": true"), std::string::npos)
      << implies_warm.body;

  const std::string summarizable =
      "{\"schema\": \"loc\", \"category\": \"City\", \"sources\": []}";
  HttpResponse sum_cold =
      service.HandleRequest(Post("/v1/summarizable", summarizable));
  ASSERT_EQ(sum_cold.status, 200) << sum_cold.body;
  HttpResponse sum_warm =
      service.HandleRequest(Post("/v1/summarizable", summarizable));
  EXPECT_NE(sum_warm.body.find("\"cached\": true"), std::string::npos)
      << sum_warm.body;
}

TEST_F(ServiceTest, EpochBumpInvalidatesEveryCacheLayer) {
  ServiceCaches caches;
  options_.caches = &caches;
  DimService service(options_);
  const std::string body = "{\"schema\": \"loc\", \"category\": \"Store\"}";

  // Warm all layers for the current epoch.
  ASSERT_EQ(service.HandleRequest(Post("/v1/check", body)).status, 200);
  HttpResponse warm = service.HandleRequest(Post("/v1/check", body));
  ASSERT_NE(warm.body.find("\"cached\": true"), std::string::npos);

  // Replace "loc" with a *different* theory (one extra constraint):
  // the content epoch changes, so every cached answer for the old
  // theory is logically gone in the same instant.
  Result<DimensionSchema> loc = LocationSchema();
  ASSERT_TRUE(loc.ok());
  auto extra = ParseConstraint(loc->hierarchy(), "Store/SaleRegion");
  ASSERT_TRUE(extra.ok()) << extra.status().ToString();
  registry_.RegisterParsed("loc", loc->WithExtraConstraint(*extra));
  EXPECT_EQ(registry_.invalidations(), 1u);

  HttpResponse fresh = service.HandleRequest(Post("/v1/check", body));
  ASSERT_EQ(fresh.status, 200) << fresh.body;
  EXPECT_EQ(fresh.body.find("\"cached\""), std::string::npos)
      << "served a stale epoch: " << fresh.body;
  // The recompute ran the engine (no closure short-circuit either).
  EXPECT_EQ(fresh.body.find("\"expand_calls\": 0"), std::string::npos)
      << fresh.body;

  // Restoring byte-identical content restores the *original* epoch —
  // and with it every cached answer learned under it.
  Result<DimensionSchema> restored = LocationSchema();
  ASSERT_TRUE(restored.ok());
  registry_.RegisterParsed("loc", std::move(*restored));
  HttpResponse back = service.HandleRequest(Post("/v1/check", body));
  ASSERT_EQ(back.status, 200);
  EXPECT_NE(back.body.find("\"cached\": true"), std::string::npos)
      << back.body;
}

TEST_F(ServiceTest, TinyCacheBudgetEvictsButNeverChangesAnswers) {
  // Truth from an uncached service.
  DimService uncached(options_);
  ServiceCaches::Options tiny;
  tiny.memory_budget_bytes = 4 << 10;  // a few responses at most
  tiny.num_shards = 1;
  ServiceCaches caches(tiny);
  options_.caches = &caches;
  DimService service(options_);

  Result<DimensionSchema> loc = LocationSchema();
  ASSERT_TRUE(loc.ok());
  const HierarchySchema& hierarchy = loc->hierarchy();
  for (int pass = 0; pass < 3; ++pass) {
    for (CategoryId c = 0; c < hierarchy.num_categories(); ++c) {
      if (c == hierarchy.all()) continue;
      const std::string body =
          "{\"schema\": \"loc\", \"category\": " +
          obs::JsonString(hierarchy.CategoryName(c)) + "}";
      HttpResponse truth = uncached.HandleRequest(Post("/v1/check", body));
      HttpResponse cached = service.HandleRequest(Post("/v1/check", body));
      ASSERT_EQ(truth.status, 200);
      ASSERT_EQ(cached.status, 200);
      EXPECT_EQ(
          cached.body.find("\"satisfiable\": true") != std::string::npos,
          truth.body.find("\"satisfiable\": true") != std::string::npos)
          << "category " << hierarchy.CategoryName(c) << " pass " << pass;
    }
  }
}

TEST_F(ServiceTest, ResumeRequestsBypassTheCacheReadPath) {
  SchemaGenOptions gen;
  gen.num_levels = 5;
  gen.categories_per_level = 4;
  gen.extra_edge_prob = 0.4;
  gen.seed = 1234;
  auto hierarchy = GenerateLayeredHierarchy(gen);
  ASSERT_TRUE(hierarchy.ok());
  ConstraintGenOptions cgen;
  cgen.into_fraction = 0.4;
  cgen.num_choice_constraints = 2;
  cgen.seed = 99;
  auto schema = GenerateConstrainedSchema(*hierarchy, cgen);
  ASSERT_TRUE(schema.ok());
  registry_.RegisterParsed("big", std::move(*schema));

  ServiceCaches caches;
  options_.caches = &caches;
  DimService service(options_);

  std::string body =
      "{\"schema\": \"big\", \"category\": \"Base\", \"deadline_ms\": 1}";
  bool saw_resume = false;
  for (int hop = 0; hop < 512; ++hop) {
    HttpResponse response = service.HandleRequest(Post("/v1/check", body));
    ASSERT_EQ(response.status, 200) << response.body;
    // Neither a degraded answer nor a resumed one may come from (or
    // land in) the response cache: only definitive first-shot answers
    // are memoized.
    EXPECT_EQ(response.body.find("\"cached\""), std::string::npos)
        << response.body;
    if (response.body.find("\"definitive\": true") != std::string::npos) {
      // On most machines the 1ms first hop was interrupted and the
      // chain went through >= 1 resume; a machine fast enough to finish
      // inside the deadline legitimately never exercises the bypass.
      (void)saw_resume;
      return;
    }
    const std::string checkpoint =
        ExtractStringField(response.body, "checkpoint");
    if (checkpoint.empty()) continue;
    saw_resume = true;
    body = "{\"schema\": \"big\", \"category\": \"Base\", "
           "\"deadline_ms\": 500, \"resume\": " +
           obs::JsonString(checkpoint) + "}";
  }
  FAIL() << "resume chain did not converge in 512 hops";
}

TEST_F(ServiceTest, ChaosMidCacheFillNeverCachesFailures) {
  ServiceCaches caches;
  options_.caches = &caches;
  DimService service(options_);
  const std::string body = "{\"schema\": \"loc\", \"category\": \"Store\"}";
  {
    ScopedFaultInjection guard(/*seed=*/77);
    FaultInjector::Global().SetFault("dimsat.expand", StatusCode::kInternal,
                                     1.0, "injected mid-fill bug");
    HttpResponse failed = service.HandleRequest(Post("/v1/check", body));
    EXPECT_EQ(failed.status, 500) << failed.body;
  }
  // The failure must not have populated any layer: the first fault-free
  // request recomputes, the second is the real first hit.
  HttpResponse recomputed = service.HandleRequest(Post("/v1/check", body));
  ASSERT_EQ(recomputed.status, 200) << recomputed.body;
  EXPECT_EQ(recomputed.body.find("\"cached\""), std::string::npos)
      << recomputed.body;
  HttpResponse warm = service.HandleRequest(Post("/v1/check", body));
  ASSERT_EQ(warm.status, 200);
  EXPECT_NE(warm.body.find("\"cached\": true"), std::string::npos)
      << warm.body;
}

// ---------------------------------------------------------------------------
// The transport: hostile parsing edges over a real loopback socket.

/// Sends raw bytes and collects everything the server writes back
/// until it closes (or `linger_ms` of quiet).
std::string RawExchange(int port, const std::string& bytes,
                        bool half_close = true, int linger_ms = 5000) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  if (half_close) ::shutdown(fd, SHUT_WR);
  timeval tv{linger_ms / 1000, (linger_ms % 1000) * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class ServiceTransportTest : public ServiceTest {
 protected:
  void StartServer(obs::HttpServer::Options overrides = {}) {
    service_.emplace(options_);
    overrides.handler = [this](const HttpRequest& request) {
      return service_->HandleRequest(request);
    };
    ASSERT_TRUE(server_.Start(overrides)) << server_.last_error();
  }

  void TearDown() override { server_.Stop(); }

  static std::string FramedPost(const std::string& path,
                                const std::string& body) {
    return "POST " + path + " HTTP/1.1\r\nHost: x\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
  }

  std::optional<DimService> service_;
  obs::HttpServer server_;
};

TEST_F(ServiceTransportTest, PipelinedRequestsAllServedInOrder) {
  StartServer();
  const std::string one = FramedPost(
      "/v1/check", "{\"schema\": \"loc\", \"category\": \"Store\"}");
  const std::string two = FramedPost(
      "/v1/implies", "{\"schema\": \"loc\", \"constraint\": \"Store/City\"}");
  const std::string response = RawExchange(server_.port(), one + two);
  // Two complete responses on one connection, in request order.
  const size_t first = response.find("HTTP/1.1 200");
  ASSERT_NE(first, std::string::npos) << response;
  ASSERT_NE(response.find("HTTP/1.1 200", first + 1), std::string::npos)
      << response;
  EXPECT_LT(response.find("\"satisfiable\""), response.find("\"implied\""))
      << response;
  EXPECT_EQ(service_->requests(), 2u);
}

TEST_F(ServiceTransportTest, TruncatedPostBodyIs400AndCounted) {
  StartServer();
  const uint64_t before = Counter("olapdc.http.bad_requests");
  // Promise 100 bytes, deliver 9, half-close: the server must answer
  // 400 (truncated request), count it, and survive.
  const std::string response = RawExchange(
      server_.port(),
      "POST /v1/check HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n"
      "{\"trunc\":");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  EXPECT_GE(Counter("olapdc.http.bad_requests"), before + 1);
  EXPECT_EQ(service_->requests(), 0u);  // never reached the handler
}

TEST_F(ServiceTransportTest, ContentLengthMismatchFailsCleanly) {
  StartServer();
  // Content-Length smaller than the bytes actually sent: the surplus
  // is parsed as a next pipelined request and must fail as a clean
  // 4xx on that connection, leaving the server healthy.
  const std::string body =
      "{\"schema\": \"loc\", \"category\": \"Store\"}GARBAGE TRAILING";
  const std::string request =
      "POST /v1/check HTTP/1.1\r\nHost: x\r\nContent-Length: " +
      std::to_string(body.size() - 16) + "\r\n\r\n" + body;
  const std::string response = RawExchange(server_.port(), request);
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;

  // The server is still healthy for the next connection.
  const std::string again = RawExchange(
      server_.port(),
      FramedPost("/v1/check",
                 "{\"schema\": \"loc\", \"category\": \"Store\"}"));
  EXPECT_NE(again.find("HTTP/1.1 200"), std::string::npos) << again;
}

TEST_F(ServiceTransportTest, OversizedJsonBodyIs413AndCounted) {
  obs::HttpServer::Options small;
  small.max_body_bytes = 1024;
  StartServer(small);
  const uint64_t before = Counter("olapdc.http.bad_requests");
  const std::string big = "{\"pad\": \"" + std::string(4096, 'x') + "\"}";
  const std::string response =
      RawExchange(server_.port(), FramedPost("/v1/check", big));
  EXPECT_NE(response.find("413"), std::string::npos) << response;
  EXPECT_GE(Counter("olapdc.http.bad_requests"), before + 1);
  EXPECT_EQ(service_->requests(), 0u);
}

TEST_F(ServiceTransportTest, OversizedHeadersAre431) {
  obs::HttpServer::Options small;
  small.max_header_bytes = 512;
  StartServer(small);
  const std::string response = RawExchange(
      server_.port(), "POST /v1/check HTTP/1.1\r\nX-Pad: " +
                          std::string(2048, 'h') + "\r\n\r\n");
  EXPECT_NE(response.find("431"), std::string::npos) << response;
}

TEST_F(ServiceTransportTest, SlowLorisTimesOutWith408) {
  obs::HttpServer::Options impatient;
  impatient.read_timeout_ms = 150;
  StartServer(impatient);
  const uint64_t before = Counter("olapdc.http.timeouts");
  // Dribble an incomplete request line and then stall (no half-close:
  // the connection stays open, the server's read deadline must fire).
  const std::string response = RawExchange(
      server_.port(), "POST /v1/check HTT", /*half_close=*/false,
      /*linger_ms=*/5000);
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  EXPECT_GE(Counter("olapdc.http.timeouts"), before + 1);
}

TEST_F(ServiceTransportTest, GarbageRequestLineIs400) {
  StartServer();
  const std::string response =
      RawExchange(server_.port(), "EXPLODE now\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
}

}  // namespace
}  // namespace olapdc::service
