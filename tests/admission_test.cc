// AdmissionGate: shed-don't-queue semantics (kUnavailable with a
// retry-after-ms hint, no partial work), the Ticket RAII, the hint
// parser RetryPolicy consumes, and the end-to-end property — a
// DimsatParallel request arriving beyond the gate's high-water mark is
// shed before doing any work, and runs normally once the gate drains.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/retry.h"
#include "common/status.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "exec/admission.h"
#include "exec/work_stealing_pool.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

TEST(AdmissionGateTest, AdmitsUpToHighWaterThenSheds) {
  exec::AdmissionGate gate(
      exec::AdmissionGate::Options{/*high_water=*/2, /*retry_after_ms=*/50});
  ASSERT_OK(gate.TryAdmit());
  ASSERT_OK(gate.TryAdmit());
  EXPECT_EQ(gate.in_flight(), 2);

  Status shed = gate.TryAdmit();
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(gate.in_flight(), 2);  // the shed request holds no slot
  EXPECT_EQ(gate.admitted(), 2u);
  EXPECT_EQ(gate.shed(), 1u);

  gate.Release();
  ASSERT_OK(gate.TryAdmit());  // a drained slot admits again
  gate.Release();
  gate.Release();
  EXPECT_EQ(gate.in_flight(), 0);
}

TEST(AdmissionGateTest, TicketReleasesOnlyWhenAdmitted) {
  exec::AdmissionGate gate(
      exec::AdmissionGate::Options{/*high_water=*/1, /*retry_after_ms=*/50});
  {
    exec::AdmissionGate::Ticket first(&gate);
    ASSERT_TRUE(first.admitted());
    exec::AdmissionGate::Ticket second(&gate);
    EXPECT_FALSE(second.admitted());
    EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(gate.in_flight(), 1);
  }
  // Only the admitted ticket released; the shed one had nothing to
  // release and must not drive in_flight negative.
  EXPECT_EQ(gate.in_flight(), 0);
}

TEST(AdmissionGateTest, NullGateTicketAdmitsEverything) {
  exec::AdmissionGate::Ticket ticket(nullptr);
  EXPECT_TRUE(ticket.admitted());
}

TEST(AdmissionGateTest, RetryAfterHintRoundTrips) {
  exec::AdmissionGate gate(
      exec::AdmissionGate::Options{/*high_water=*/0, /*retry_after_ms=*/123});
  Status shed = gate.TryAdmit();
  ASSERT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(exec::RetryAfterMsFromStatus(shed), 123);

  EXPECT_EQ(exec::RetryAfterMsFromStatus(Status::OK()), 0);
  EXPECT_EQ(exec::RetryAfterMsFromStatus(Status::Unavailable("no hint")), 0);
  // A shed is transient by design: the retry policy classifies it as
  // retryable, unlike a hard error.
  RetryPolicy policy;
  EXPECT_TRUE(policy.ShouldRetry(shed, 0));
  EXPECT_FALSE(policy.ShouldRetry(Status::Internal("boom"), 0));
}

TEST(AdmissionGateTest, AdaptiveHintTracksObservedDrainRate) {
  exec::AdmissionGate gate(
      exec::AdmissionGate::Options{/*high_water=*/4, /*retry_after_ms=*/5});
  // No releases observed yet: the hint is the configured floor.
  EXPECT_EQ(gate.RetryAfterMsHint(), 5);

  // Slow drain: releases ~40ms apart pull the EWMA up, so the hint a
  // shed client receives reflects roughly how long until a slot frees
  // (bounds are generous — CI timing only has to land in the ballpark).
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(gate.TryAdmit());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    gate.Release();
  }
  const int64_t slow_hint = gate.RetryAfterMsHint();
  EXPECT_GE(slow_hint, 10);
  EXPECT_LE(slow_hint, 60000);

  // Fast drain: a burst of back-to-back releases decays the EWMA back
  // toward the floor — the hint adapts downward, not just upward.
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(gate.TryAdmit());
    gate.Release();
  }
  EXPECT_LT(gate.RetryAfterMsHint(), slow_hint);

  // One source of truth: the shed status carries the same adaptive
  // hint the HTTP plane turns into Retry-After.
  exec::AdmissionGate full(
      exec::AdmissionGate::Options{/*high_water=*/0, /*retry_after_ms=*/7});
  Status shed = full.TryAdmit();
  ASSERT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(exec::RetryAfterMsFromStatus(shed), full.RetryAfterMsHint());
}

TEST(AdmissionGateTest, DrainShedsNewAdmitsWhileInFlightKeepSlots) {
  exec::AdmissionGate gate(
      exec::AdmissionGate::Options{/*high_water=*/4, /*retry_after_ms=*/5});
  ASSERT_OK(gate.TryAdmit());
  gate.BeginDrain();
  gate.BeginDrain();  // idempotent
  EXPECT_TRUE(gate.draining());

  // Plenty of headroom, but draining sheds everything new.
  Status shed = gate.TryAdmit();
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(gate.in_flight(), 1);

  // WaitIdle times out while the in-flight request holds its slot and
  // succeeds promptly once it releases.
  EXPECT_FALSE(gate.WaitIdle(/*timeout_ms=*/20));
  gate.Release();
  EXPECT_TRUE(gate.WaitIdle(/*timeout_ms=*/1000));
  EXPECT_EQ(gate.in_flight(), 0);
}

TEST(AdmissionGateTest, ParallelDimsatIsShedBeforeDoingAnyWork) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");

  exec::WorkStealingPool pool(1);
  exec::AdmissionGate gate(
      exec::AdmissionGate::Options{/*high_water=*/1, /*retry_after_ms=*/25});
  DimsatOptions options;
  options.enumerate_all = true;
  options.pool = &pool;
  options.admission = &gate;

  // The saturated pool's slot is taken; the next request must be shed
  // immediately — kUnavailable, retry hint, and zero work performed.
  ASSERT_OK(gate.TryAdmit());
  DimsatResult shed = DimsatParallel(ds, store, options, 2);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(exec::RetryAfterMsFromStatus(shed.status), 25);
  EXPECT_FALSE(shed.satisfiable);
  EXPECT_TRUE(shed.frozen.empty());
  EXPECT_FALSE(shed.stats.Any());
  EXPECT_EQ(gate.in_flight(), 1);  // only the slot we took by hand

  // Once the gate drains the identical request runs to completion.
  gate.Release();
  DimsatResult admitted = DimsatParallel(ds, store, options, 2);
  ASSERT_OK(admitted.status);
  EXPECT_EQ(admitted.frozen.size(), 4u);
  EXPECT_EQ(gate.in_flight(), 0);
  EXPECT_EQ(gate.shed(), 1u);
}

TEST(AdmissionGateTest, SequentialFallbackIgnoresTheGate) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");

  exec::AdmissionGate gate(
      exec::AdmissionGate::Options{/*high_water=*/0, /*retry_after_ms=*/50});
  DimsatOptions options;
  options.enumerate_all = true;
  options.admission = &gate;
  options.num_threads = 1;
  // The sequential engine holds no pool resources, so a full gate must
  // not block it (RunDimsat dispatches it past the gate).
  DimsatResult r = RunDimsat(ds, store, options);
  ASSERT_OK(r.status);
  EXPECT_EQ(r.frozen.size(), 4u);
  EXPECT_EQ(gate.shed(), 0u);
}

}  // namespace
}  // namespace olapdc
