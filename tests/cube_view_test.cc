// Tests for the OLAP substrate: fact tables, aggregates, cube views,
// and the Definition 6 rewriting on the location dimension.

#include <gtest/gtest.h>

#include "core/location_example.h"
#include "olap/cube_view.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

class CubeViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(d_, LocationInstance());
    const HierarchySchema& schema = d_->hierarchy();
    store_ = schema.FindCategory("Store");
    city_ = schema.FindCategory("City");
    country_ = schema.FindCategory("Country");
    state_ = schema.FindCategory("State");
    province_ = schema.FindCategory("Province");
    sale_region_ = schema.FindCategory("SaleRegion");

    // One fact per store with a distinct power-of-two-ish measure so
    // sums identify their contributors.
    const std::pair<const char*, double> rows[] = {
        {"st-tor-1", 1},  {"st-tor-2", 2},  {"st-ott-1", 4},
        {"st-mex-1", 8},  {"st-mty-1", 16}, {"st-aus-1", 32},
        {"st-was-1", 64},
    };
    for (const auto& [key, measure] : rows) {
      facts_.Add(*d_->MemberIdOf(key), measure);
    }
  }

  double ValueOf(const CubeViewResult& view, const std::string& key) {
    auto it = view.find(*d_->MemberIdOf(key));
    return it == view.end() ? -1 : it->second;
  }

  std::optional<DimensionInstance> d_;
  FactTable facts_;
  CategoryId store_, city_, country_, state_, province_, sale_region_;
};

TEST_F(CubeViewTest, AggregateFunctions) {
  EXPECT_EQ(Combiner(AggFn::kCount), AggFn::kSum);
  EXPECT_EQ(Combiner(AggFn::kSum), AggFn::kSum);
  EXPECT_EQ(Combiner(AggFn::kMin), AggFn::kMin);
  EXPECT_EQ(AggFnName(AggFn::kMax), "MAX");
  AggState state;
  state.AccumulateRaw(AggFn::kMin, 5);
  state.AccumulateRaw(AggFn::kMin, 3);
  state.AccumulateRaw(AggFn::kMin, 9);
  EXPECT_EQ(state.value, 3);
}

TEST_F(CubeViewTest, FactValidation) {
  EXPECT_OK(facts_.ValidateAgainst(*d_));
  FactTable bad;
  bad.Add(*d_->MemberIdOf("Toronto"), 1.0);  // City is not a bottom category
  EXPECT_FALSE(bad.ValidateAgainst(*d_).ok());
  FactTable bogus;
  bogus.Add(9999, 1.0);
  EXPECT_FALSE(bogus.ValidateAgainst(*d_).ok());
}

TEST_F(CubeViewTest, SumByCountry) {
  CubeViewResult view = ComputeCubeView(*d_, facts_, country_, AggFn::kSum);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(ValueOf(view, "Canada"), 1 + 2 + 4);
  EXPECT_EQ(ValueOf(view, "Mexico"), 8 + 16);
  EXPECT_EQ(ValueOf(view, "USA"), 32 + 64);
}

TEST_F(CubeViewTest, CountAndMinMaxByCity) {
  CubeViewResult count = ComputeCubeView(*d_, facts_, city_, AggFn::kCount);
  EXPECT_EQ(ValueOf(count, "Toronto"), 2);
  EXPECT_EQ(ValueOf(count, "Washington"), 1);
  CubeViewResult mx = ComputeCubeView(*d_, facts_, city_, AggFn::kMax);
  EXPECT_EQ(ValueOf(mx, "Toronto"), 2);
  CubeViewResult mn = ComputeCubeView(*d_, facts_, city_, AggFn::kMin);
  EXPECT_EQ(ValueOf(mn, "Toronto"), 1);
}

TEST_F(CubeViewTest, FactsNotRollingUpAreDropped) {
  // Only Mexican and Texan stores have State ancestors.
  CubeViewResult view = ComputeCubeView(*d_, facts_, state_, AggFn::kSum);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(ValueOf(view, "DF"), 8);
  EXPECT_EQ(ValueOf(view, "Texas"), 32);
  double total = 0;
  for (const auto& [m, v] : view) total += v;
  EXPECT_EQ(total, 8 + 16 + 32);  // Washington/Canada facts dropped
}

TEST_F(CubeViewTest, RewriteFromCityIsExact) {
  // Country is summarizable from {City} (Example 10) — rewriting must
  // reproduce the direct view for every distributive aggregate.
  for (AggFn agg :
       {AggFn::kSum, AggFn::kCount, AggFn::kMin, AggFn::kMax}) {
    CubeViewResult direct = ComputeCubeView(*d_, facts_, country_, agg);
    CubeViewResult city_view = ComputeCubeView(*d_, facts_, city_, agg);
    CubeViewResult rewritten = RewriteFromViews(
        *d_, {MaterializedView{city_, &city_view}}, country_, agg);
    EXPECT_TRUE(CubeViewsEqual(direct, rewritten))
        << AggFnName(agg);
  }
}

TEST_F(CubeViewTest, RewriteFromStateProvinceLosesWashington) {
  // Country is NOT summarizable from {State, Province}: the rewrite
  // drops the Washington store's facts.
  CubeViewResult direct = ComputeCubeView(*d_, facts_, country_, AggFn::kSum);
  CubeViewResult state_view = ComputeCubeView(*d_, facts_, state_, AggFn::kSum);
  CubeViewResult prov_view =
      ComputeCubeView(*d_, facts_, province_, AggFn::kSum);
  CubeViewResult rewritten =
      RewriteFromViews(*d_,
                       {MaterializedView{state_, &state_view},
                        MaterializedView{province_, &prov_view}},
                       country_, AggFn::kSum);
  EXPECT_FALSE(CubeViewsEqual(direct, rewritten));
  EXPECT_EQ(ValueOf(rewritten, "USA"), 32);           // lost 64
  EXPECT_EQ(ValueOf(rewritten, "Canada"), 1 + 2 + 4);  // unaffected
}

TEST_F(CubeViewTest, RewriteFromCityAndSaleRegionDoubleCounts) {
  CubeViewResult direct = ComputeCubeView(*d_, facts_, country_, AggFn::kSum);
  CubeViewResult city_view = ComputeCubeView(*d_, facts_, city_, AggFn::kSum);
  CubeViewResult sr_view =
      ComputeCubeView(*d_, facts_, sale_region_, AggFn::kSum);
  CubeViewResult rewritten =
      RewriteFromViews(*d_,
                       {MaterializedView{city_, &city_view},
                        MaterializedView{sale_region_, &sr_view}},
                       country_, AggFn::kSum);
  // Every store reaches Country through both -> exactly double.
  for (const auto& [member, value] : direct) {
    EXPECT_EQ(rewritten.at(member), 2 * value);
  }
  // MAX is idempotent, so the same non-summarizable set *happens* to
  // work — which is why Definition 6 quantifies over all aggregates.
  CubeViewResult direct_max =
      ComputeCubeView(*d_, facts_, country_, AggFn::kMax);
  CubeViewResult city_max = ComputeCubeView(*d_, facts_, city_, AggFn::kMax);
  CubeViewResult sr_max =
      ComputeCubeView(*d_, facts_, sale_region_, AggFn::kMax);
  CubeViewResult rewritten_max =
      RewriteFromViews(*d_,
                       {MaterializedView{city_, &city_max},
                        MaterializedView{sale_region_, &sr_max}},
                       country_, AggFn::kMax);
  EXPECT_TRUE(CubeViewsEqual(direct_max, rewritten_max));
}

TEST_F(CubeViewTest, CubeViewsEqualEdgeCases) {
  CubeViewResult a, b;
  EXPECT_TRUE(CubeViewsEqual(a, b));
  a[1] = 1.0;
  EXPECT_FALSE(CubeViewsEqual(a, b));
  b[1] = 1.0 + 1e-12;
  EXPECT_TRUE(CubeViewsEqual(a, b));
  b[1] = 1.5;
  EXPECT_FALSE(CubeViewsEqual(a, b));
  a[2] = 1.0;
  b[1] = 1.0;
  b[3] = 1.0;
  EXPECT_FALSE(CubeViewsEqual(a, b));  // different keys
}

TEST_F(CubeViewTest, EmptyFactTable) {
  FactTable empty;
  CubeViewResult view = ComputeCubeView(*d_, empty, country_, AggFn::kSum);
  EXPECT_TRUE(view.empty());
}

}  // namespace
}  // namespace olapdc
