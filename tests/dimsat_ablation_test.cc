// Equivalence pinning for the DIMSAT speed techniques
// (DimsatOptions::decompose, DimsatOptions::branch_heuristic, and the
// wide bitset kernels): every technique, alone and combined, must
// produce the same canonical frozen-dimension set as the baseline
// search — across the seeded random corpus, the multi-component
// workloads that actually trigger decomposition, both witness and
// enumerate modes, with and without no-good stores, and across
// checkpoint interrupt/resume chains.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "core/decompose.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "core/nogood.h"
#include "tests/test_util.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

std::vector<std::string> Canonical(const std::vector<FrozenDimension>& fs,
                                   const HierarchySchema& schema) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const FrozenDimension& f : fs) out.push_back(f.ToString(schema));
  std::sort(out.begin(), out.end());
  return out;
}

DimensionSchema RandomSchema(int seed) {
  SchemaGenOptions schema_options;
  schema_options.num_levels = 3;
  schema_options.categories_per_level = 2;
  schema_options.extra_edge_prob = 0.3;
  schema_options.seed = static_cast<uint64_t>(seed) * 911 + 3;
  auto hierarchy = GenerateLayeredHierarchy(schema_options);
  OLAPDC_CHECK(hierarchy.ok()) << hierarchy.status().ToString();
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 1;
  constraint_options.num_equality_constraints = 1;
  constraint_options.seed = seed;
  auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
  OLAPDC_CHECK(ds.ok()) << ds.status().ToString();
  return *std::move(ds);
}

DimensionSchema MultiComponentSchema(int seed, int components = 3) {
  MultiComponentGenOptions options;
  options.num_components = components;
  options.levels_per_component = 2;
  options.categories_per_level = 3;
  options.seed = static_cast<uint64_t>(seed) * 613 + 7;
  auto ds = GenerateMultiComponentSchema(options);
  OLAPDC_CHECK(ds.ok()) << ds.status().ToString();
  return *std::move(ds);
}

struct Technique {
  const char* name;
  bool decompose;
  bool branch_heuristic;
  bool wide_kernels;
};

constexpr Technique kTechniques[] = {
    {"decompose", true, false, false},
    {"branching", false, true, false},
    {"simd", false, false, true},
    {"all", true, true, true},
};

/// Restores the process-global kernel toggle on scope exit so a failed
/// ASSERT cannot leak a disabled-SIMD state into later tests.
class WideKernelsGuard {
 public:
  explicit WideKernelsGuard(bool enabled) { bitset_kernels::SetWideKernelsEnabled(enabled); }
  ~WideKernelsGuard() { bitset_kernels::SetWideKernelsEnabled(true); }
};

class AblationCorpusTest : public ::testing::TestWithParam<int> {};

TEST_P(AblationCorpusTest, EveryTechniquePreservesTheModelSet) {
  const int seed = GetParam();
  const DimensionSchema ds =
      seed % 3 == 0 ? MultiComponentSchema(seed) : RandomSchema(seed);
  const CategoryId base = ds.hierarchy().FindCategory("Base");
  ASSERT_NE(base, kNoCategory);

  for (bool enumerate : {false, true}) {
    DimsatOptions baseline_options;
    baseline_options.enumerate_all = enumerate;
    const DimsatResult baseline = Dimsat(ds, base, baseline_options);
    ASSERT_OK(baseline.status);
    const std::vector<std::string> want =
        Canonical(baseline.frozen, ds.hierarchy());

    for (const Technique& t : kTechniques) {
      WideKernelsGuard guard(t.wide_kernels);
      DimsatOptions options;
      options.enumerate_all = enumerate;
      options.decompose = t.decompose;
      options.branch_heuristic = t.branch_heuristic;
      const DimsatResult got = Dimsat(ds, base, options);
      ASSERT_TRUE(got.status.ok()) << t.name << ": " << got.status.ToString();
      EXPECT_EQ(got.satisfiable, baseline.satisfiable)
          << t.name << " enumerate=" << enumerate << " seed " << seed;
      if (enumerate) {
        EXPECT_EQ(Canonical(got.frozen, ds.hierarchy()), want)
            << t.name << " seed " << seed;
      } else if (got.satisfiable) {
        // Witness mode: any valid model is acceptable; materialization
        // re-checks C1-C7 and every constraint.
        ASSERT_EQ(got.frozen.size(), 1u) << t.name;
        EXPECT_TRUE(got.frozen[0].ToInstance(ds).ok()) << t.name;
      }
    }
  }
}

TEST_P(AblationCorpusTest, TechniquesComposeWithNoGoodStores) {
  const int seed = GetParam();
  const DimensionSchema ds =
      seed % 2 == 0 ? MultiComponentSchema(seed, 2) : RandomSchema(seed);
  const CategoryId base = ds.hierarchy().FindCategory("Base");
  ASSERT_NE(base, kNoCategory);

  DimsatOptions baseline_options;
  baseline_options.enumerate_all = true;
  const DimsatResult baseline = Dimsat(ds, base, baseline_options);
  ASSERT_OK(baseline.status);
  const std::vector<std::string> want =
      Canonical(baseline.frozen, ds.hierarchy());

  // A warm store must not change the model set either: component
  // searches salt their signatures away from the monolithic space.
  NoGoodStore store;
  for (int round = 0; round < 2; ++round) {
    DimsatOptions options;
    options.enumerate_all = true;
    options.decompose = true;
    options.branch_heuristic = true;
    options.nogoods = &store;
    const DimsatResult got = Dimsat(ds, base, options);
    ASSERT_TRUE(got.status.ok())
        << "round " << round << ": " << got.status.ToString();
    EXPECT_EQ(Canonical(got.frozen, ds.hierarchy()), want)
        << "round " << round << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, AblationCorpusTest,
                         ::testing::Range(0, 24));

TEST(DecomposeSplitTest, MultiComponentSchemasSplitAsBuilt) {
  for (int components : {2, 3, 4}) {
    const DimensionSchema ds = MultiComponentSchema(17, components);
    const CategoryId base = ds.hierarchy().FindCategory("Base");
    std::vector<DimensionConstraint> relevant;
    for (const DimensionConstraint* c : ds.RelevantConstraints(base)) {
      relevant.push_back(*c);
    }
    const ComponentSplit split =
        ComputeComponentSplit(ds, base, relevant, /*nogood_salt=*/0);
    ASSERT_TRUE(split.eligible) << split.ineligible_reason;
    EXPECT_EQ(static_cast<int>(split.num_components()), components);
    // Base's edges carry no constraints, so every component may be
    // absent and salts must be pairwise distinct.
    for (size_t k = 0; k < split.num_components(); ++k) {
      EXPECT_TRUE(split.absent_valid[k]);
      for (size_t j = k + 1; j < split.num_components(); ++j) {
        EXPECT_NE(split.salts[k], split.salts[j]);
      }
    }
  }
}

TEST(DecomposeSplitTest, LocationSchemaFallsBackToMonolithic) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  const CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatOptions options;
  options.enumerate_all = true;
  const DimsatResult baseline = Dimsat(ds, store, options);
  options.decompose = true;
  const DimsatResult decomposed = Dimsat(ds, store, options);
  ASSERT_OK(decomposed.status);
  EXPECT_EQ(Canonical(decomposed.frozen, ds.hierarchy()),
            Canonical(baseline.frozen, ds.hierarchy()));
}

TEST(DecomposeSpeedTest, DecompositionReducesExpandCalls) {
  const DimensionSchema ds = MultiComponentSchema(5, 3);
  const CategoryId base = ds.hierarchy().FindCategory("Base");
  DimsatOptions options;
  options.enumerate_all = true;
  const DimsatResult baseline = Dimsat(ds, base, options);
  ASSERT_OK(baseline.status);
  options.decompose = true;
  const DimsatResult decomposed = Dimsat(ds, base, options);
  ASSERT_OK(decomposed.status);
  EXPECT_EQ(Canonical(decomposed.frozen, ds.hierarchy()),
            Canonical(baseline.frozen, ds.hierarchy()));
  // The CI bench gate holds the calibrated floor; this is the cheap
  // always-on sanity version of the same claim.
  EXPECT_LT(decomposed.stats.expand_calls, baseline.stats.expand_calls);
}

TEST(DecomposeParallelTest, ParallelDecomposedMatchesSequential) {
  for (int seed : {1, 4, 9}) {
    const DimensionSchema ds = MultiComponentSchema(seed, 3);
    const CategoryId base = ds.hierarchy().FindCategory("Base");
    for (bool enumerate : {false, true}) {
      DimsatOptions options;
      options.enumerate_all = enumerate;
      options.decompose = true;
      options.branch_heuristic = true;
      const DimsatResult sequential = Dimsat(ds, base, options);
      ASSERT_OK(sequential.status);
      for (int threads : {2, 4}) {
        const DimsatResult parallel =
            DimsatParallel(ds, base, options, threads);
        ASSERT_OK(parallel.status);
        EXPECT_EQ(parallel.satisfiable, sequential.satisfiable)
            << "seed " << seed << " threads " << threads;
        if (enumerate) {
          EXPECT_EQ(Canonical(parallel.frozen, ds.hierarchy()),
                    Canonical(sequential.frozen, ds.hierarchy()))
              << "seed " << seed << " threads " << threads;
        } else if (parallel.satisfiable) {
          ASSERT_EQ(parallel.frozen.size(), 1u);
          EXPECT_OK(parallel.frozen[0].ToInstance(ds).status());
        }
      }
    }
  }
}

TEST(DecomposeCheckpointTest, InterruptedChainMatchesUninterrupted) {
  for (int seed : {2, 6, 12}) {
    const DimensionSchema ds = MultiComponentSchema(seed, 3);
    const CategoryId base = ds.hierarchy().FindCategory("Base");

    DimsatOptions full_options;
    full_options.enumerate_all = true;
    full_options.decompose = true;
    full_options.branch_heuristic = true;
    const DimsatResult full = Dimsat(ds, base, full_options);
    ASSERT_OK(full.status);

    // Interrupt every few expand calls; resume until the chain runs to
    // completion. The final resumed result must carry the whole
    // composed model set.
    DimsatCheckpoint checkpoint;
    DimsatOptions chunk_options = full_options;
    chunk_options.max_expand_calls = 7;
    chunk_options.checkpoint = &checkpoint;
    DimsatResult result = Dimsat(ds, base, chunk_options);
    int resumes = 0;
    while (!checkpoint.empty()) {
      ASSERT_LT(resumes, 10000) << "resume chain does not converge";
      // Round-trip through the text format so every resume exercises
      // the v2 serialization.
      ASSERT_OK_AND_ASSIGN(
          DimsatCheckpoint reloaded,
          DimsatCheckpoint::Deserialize(checkpoint.Serialize()));
      checkpoint = DimsatCheckpoint{};
      result = ResumeDimsat(ds, base, chunk_options, std::move(reloaded));
      ++resumes;
    }
    ASSERT_TRUE(result.status.ok())
        << "seed " << seed << ": " << result.status.ToString();
    EXPECT_GT(resumes, 0) << "seed " << seed
                          << ": workload too small to interrupt";
    EXPECT_EQ(Canonical(result.frozen, ds.hierarchy()),
              Canonical(full.frozen, ds.hierarchy()))
        << "seed " << seed;
  }
}

TEST(DecomposeCheckpointTest, DecomposedCheckpointNeedsMatchingOptions) {
  const DimensionSchema ds = MultiComponentSchema(3, 3);
  const CategoryId base = ds.hierarchy().FindCategory("Base");
  DimsatCheckpoint checkpoint;
  DimsatOptions options;
  options.enumerate_all = true;
  options.decompose = true;
  options.max_expand_calls = 5;
  options.checkpoint = &checkpoint;
  const DimsatResult interrupted = Dimsat(ds, base, options);
  ASSERT_FALSE(interrupted.status.ok());
  ASSERT_FALSE(checkpoint.empty());
  ASSERT_GT(checkpoint.num_components, 0);

  // Resuming without decomposition enabled cannot reproduce the
  // component split and must be rejected, not silently misresumed.
  DimsatOptions plain;
  plain.enumerate_all = true;
  const DimsatResult rejected = ResumeDimsat(ds, base, plain, checkpoint);
  EXPECT_FALSE(rejected.status.ok());
}

}  // namespace
}  // namespace olapdc
