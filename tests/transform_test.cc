// Tests for the related-work baselines: Pedersen-Jensen null padding,
// Lehner dimensional normal form, and ICDT'01 split constraints.

#include <gtest/gtest.h>

#include <string>

#include "constraint/evaluator.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "tests/test_util.h"
#include "transform/dnf_transform.h"
#include "transform/null_padding.h"
#include "transform/split_constraints.h"

namespace olapdc {
namespace {

using testing_util::MakeHierarchy;
using testing_util::MakeSchema;

TEST(NullPaddingTest, LocationPadsToTotalRollups) {
  auto d_result = LocationInstance();
  ASSERT_TRUE(d_result.ok());
  const DimensionInstance& d = *d_result;
  ASSERT_OK_AND_ASSIGN(NullPaddingResult padded, PadWithNullMembers(d));
  const DimensionInstance& p = padded.padded;
  const HierarchySchema& schema = p.hierarchy();

  // Placeholder members were added and the stats record the blow-up.
  EXPECT_GT(padded.stats.padded_members, 0);
  EXPECT_GT(padded.stats.padded_edges, 0);
  EXPECT_GT(padded.stats.placeholder_fraction, 0.0);
  EXPECT_EQ(padded.stats.original_members, d.num_members());

  // After padding, every member rolls up to every category reachable
  // from its own (the Pedersen-Jensen "covering" totality).
  for (MemberId m = 0; m < p.num_members(); ++m) {
    CategoryId c = p.member(m).category;
    schema.UpSet(c).ForEach([&](int target) {
      EXPECT_NE(p.RollUpMember(m, target), kNoMember)
          << p.member(m).key << " misses "
          << schema.CategoryName(target);
    });
  }

  // Fusion resolved Washington's missing SaleRegion onto the real
  // SR-USA (its store carries the direct link).
  ASSERT_OK_AND_ASSIGN(MemberId washington, p.MemberIdOf("Washington"));
  ASSERT_OK_AND_ASSIGN(MemberId sr_usa, p.MemberIdOf("SR-USA"));
  EXPECT_EQ(
      p.RollUpMember(washington, schema.FindCategory("SaleRegion")), sr_usa);

  // C5 is intentionally relaxed; everything else still validates.
  EXPECT_OK(p.Validate(/*enforce_shortcut_condition=*/false));
}

TEST(NullPaddingTest, HomogeneousInstanceIsUntouched) {
  HierarchySchemaPtr schema =
      MakeHierarchy({{"A", "B"}, {"B", "All"}});
  DimensionInstanceBuilder builder(schema);
  builder.AddMember("b1", "B").AddMemberUnder("a1", "A", "b1");
  auto d = builder.Build();
  ASSERT_TRUE(d.ok());
  ASSERT_OK_AND_ASSIGN(NullPaddingResult padded, PadWithNullMembers(*d));
  EXPECT_EQ(padded.stats.padded_members, 0);
  EXPECT_EQ(padded.stats.placeholder_fraction, 0.0);
}

TEST(NullPaddingTest, UnfusablePairsOfRealMembersRejected) {
  // Two stores share the city but carry different direct sale regions:
  // the city's missing SaleRegion would have to fuse with both.
  HierarchySchemaPtr schema = MakeHierarchy({{"Store", "City"},
                                             {"Store", "SaleRegion"},
                                             {"City", "SaleRegion"},
                                             {"City", "Country"},
                                             {"SaleRegion", "Country"},
                                             {"Country", "All"}});
  DimensionInstanceBuilder builder(schema);
  builder.AddMember("X", "Country")
      .AddMemberUnder("SR1", "SaleRegion", "X")
      .AddMemberUnder("SR2", "SaleRegion", "X")
      .AddMemberUnder("c", "City", "X")
      .AddMemberUnder("s1", "Store", "c")
      .AddChildParent("s1", "SR1")
      .AddMemberUnder("s2", "Store", "c")
      .AddChildParent("s2", "SR2");
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, builder.Build());
  Status status = PadWithNullMembers(d).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidModel);
  EXPECT_NE(status.message().find("fuse"), std::string::npos);
}

TEST(DnfTest, LocationDemotesProvinceAndState) {
  auto d_result = LocationInstance();
  ASSERT_TRUE(d_result.ok());
  ASSERT_OK_AND_ASSIGN(DnfResult dnf, ToDimensionalNormalForm(*d_result));
  const HierarchySchema& original = d_result->hierarchy();

  // Every store reaches City, SaleRegion, Country, All -> kept; only
  // Canadian stores reach Province and only Mexican/US ones reach
  // State -> demoted.
  auto name_of = [&](CategoryId c) { return original.CategoryName(c); };
  std::vector<std::string> demoted;
  for (CategoryId c : dnf.demoted) demoted.push_back(name_of(c));
  EXPECT_EQ(demoted, std::vector<std::string>({"Province", "State"}));
  EXPECT_EQ(dnf.kept.size(), 5u);

  // The homogeneous instance keeps all non-demoted members and is
  // fully valid (C1-C7, including C5).
  EXPECT_OK(dnf.homogeneous.Validate());
  const HierarchySchema& reduced = dnf.homogeneous.hierarchy();
  EXPECT_EQ(reduced.FindCategory("Province"), kNoCategory);
  EXPECT_EQ(dnf.homogeneous
                .MembersOf(reduced.FindCategory("Store")).size(),
            7u);

  // Rollups into kept categories are preserved.
  ASSERT_OK_AND_ASSIGN(MemberId store,
                       dnf.homogeneous.MemberIdOf("st-tor-1"));
  ASSERT_OK_AND_ASSIGN(MemberId canada, dnf.homogeneous.MemberIdOf("Canada"));
  EXPECT_EQ(dnf.homogeneous.RollUpMember(
                store, reduced.FindCategory("Country")),
            canada);

  // The attribute tables record the lost ancestors: st-tor-1's former
  // province.
  const auto& province_attrs =
      dnf.attributes.at(original.FindCategory("Province"));
  EXPECT_EQ(province_attrs.at("st-tor-1"), "Ontario");
  EXPECT_EQ(province_attrs.count("st-was-1"), 0u);  // had none

  // The paper's criticism, made concrete: after DNF, a Province cube
  // view can no longer be derived (the category is gone).
}

TEST(DnfTest, HomogeneousInstanceIsFixpoint) {
  HierarchySchemaPtr schema = MakeHierarchy({{"A", "B"}, {"B", "All"}});
  DimensionInstanceBuilder builder(schema);
  builder.AddMember("b1", "B").AddMemberUnder("a1", "A", "b1");
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, builder.Build());
  ASSERT_OK_AND_ASSIGN(DnfResult dnf, ToDimensionalNormalForm(d));
  EXPECT_TRUE(dnf.demoted.empty());
  EXPECT_EQ(dnf.homogeneous.num_members(), d.num_members());
}

TEST(SplitConstraintTest, CompilesToDimensionConstraint) {
  auto schema_result = LocationHierarchy();
  ASSERT_TRUE(schema_result.ok());
  const HierarchySchema& schema = **schema_result;
  CategoryId city = schema.FindCategory("City");
  CategoryId province = schema.FindCategory("Province");
  CategoryId state = schema.FindCategory("State");
  CategoryId country = schema.FindCategory("Country");

  // Cities have parents in exactly {Province} or exactly {State} or
  // exactly {Country} — the Fig 1 reality.
  SplitConstraint split{city, {{province}, {state}, {country}}};
  ASSERT_OK_AND_ASSIGN(DimensionConstraint compiled,
                       CompileSplitConstraint(schema, split));
  EXPECT_EQ(compiled.root, city);

  // The location instance satisfies the compiled constraint.
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());
  EXPECT_TRUE(Satisfies(d, compiled));

  // A different split (cities always under provinces) is violated.
  SplitConstraint wrong{city, {{province}}};
  ASSERT_OK_AND_ASSIGN(DimensionConstraint wrong_compiled,
                       CompileSplitConstraint(schema, wrong));
  EXPECT_FALSE(Satisfies(d, wrong_compiled));
}

TEST(SplitConstraintTest, DrivesDimsatLikeAnyConstraint) {
  // Split constraints are a subclass of dimension constraints: feed the
  // compiled form to DIMSAT and check the structures obey it.
  auto schema_result = LocationHierarchy();
  ASSERT_TRUE(schema_result.ok());
  HierarchySchemaPtr schema = *schema_result;
  CategoryId store = schema->FindCategory("Store");
  CategoryId city = schema->FindCategory("City");
  CategoryId sale_region = schema->FindCategory("SaleRegion");

  SplitConstraint split{store, {{city}}};  // stores only under City
  ASSERT_OK_AND_ASSIGN(DimensionConstraint compiled,
                       CompileSplitConstraint(*schema, split));
  DimensionSchema ds(schema, {compiled});
  DimsatResult r = EnumerateFrozenDimensions(ds, store);
  ASSERT_OK(r.status);
  EXPECT_TRUE(r.satisfiable);
  for (const FrozenDimension& f : r.frozen) {
    EXPECT_TRUE(f.g.HasEdge(store, city));
    EXPECT_FALSE(f.g.HasEdge(store, sale_region));
  }
}

TEST(SplitConstraintTest, InputValidation) {
  auto schema_result = LocationHierarchy();
  ASSERT_TRUE(schema_result.ok());
  const HierarchySchema& schema = **schema_result;
  CategoryId city = schema.FindCategory("City");
  CategoryId country = schema.FindCategory("Country");
  EXPECT_FALSE(CompileSplitConstraint(schema, {city, {}}).ok());
  EXPECT_FALSE(CompileSplitConstraint(schema, {city, {{}}}).ok());
  // Country is not directly above Store.
  CategoryId store = schema.FindCategory("Store");
  EXPECT_FALSE(CompileSplitConstraint(schema, {store, {{country}}}).ok());
  EXPECT_FALSE(CompileSplitConstraint(schema, {-1, {{city}}}).ok());
}

}  // namespace
}  // namespace olapdc
