// Tests for the circle operator Sigma ∘ g (Definition 8), including a
// verbatim reproduction of Figure 5 on the Example 12 subhierarchy.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "constraint/normalize.h"
#include "constraint/printer.h"
#include "core/assignment.h"
#include "core/circle.h"
#include "core/location_example.h"
#include "core/schema.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

class CircleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(ds_, LocationSchema());
    const HierarchySchema& schema = ds_->hierarchy();
    store_ = schema.FindCategory("Store");
    city_ = schema.FindCategory("City");
    province_ = schema.FindCategory("Province");
    state_ = schema.FindCategory("State");
    sale_region_ = schema.FindCategory("SaleRegion");
    country_ = schema.FindCategory("Country");
    all_ = schema.all();
  }

  /// The Example 12 subhierarchy: a "mixed" structure containing both
  /// Province and State:
  ///   Store->City, City->{Province, State}, Province->SaleRegion,
  ///   State->Country, SaleRegion->Country, Country->All.
  Subhierarchy Example12Subhierarchy() {
    auto g = Subhierarchy::FromEdges(
        ds_->hierarchy().num_categories(), store_, all_,
        {{store_, city_},
         {city_, province_},
         {city_, state_},
         {province_, sale_region_},
         {state_, country_},
         {sale_region_, country_},
         {country_, all_}});
    OLAPDC_CHECK(g.has_value());
    return *g;
  }

  std::string Circled(const DimensionConstraint& c, const Subhierarchy& g,
                      const std::vector<DynamicBitset>& reach) {
    PrinterOptions paper;
    paper.paper_symbols = true;
    return ExprToString(ds_->hierarchy(),
                        ApplyCircleToConstraint(c, g, reach), paper);
  }

  std::optional<DimensionSchema> ds_;
  CategoryId store_, city_, province_, state_, sale_region_, country_, all_;
};

TEST_F(CircleTest, Figure5Reproduction) {
  Subhierarchy g = Example12Subhierarchy();
  EXPECT_FALSE(g.HasCycleIn());
  EXPECT_FALSE(g.HasShortcut());
  auto reach = g.ComputeReach();

  const auto& sigma = ds_->constraints();
  ASSERT_EQ(sigma.size(), 7u);

  // Figure 5, right column, row by row.
  EXPECT_EQ(Circled(sigma[0], g, reach), "⊤");  // (a) Store_City
  EXPECT_EQ(Circled(sigma[1], g, reach), "⊤");  // (b) Store.SaleRegion
  EXPECT_EQ(Circled(sigma[2], g, reach),
            "City≈Washington ≡ ⊥");  // (c)
  EXPECT_EQ(Circled(sigma[3], g, reach),
            "City≈Washington ⊃ City.Country≈USA");  // (d) unchanged
  EXPECT_EQ(Circled(sigma[4], g, reach),
            "State.Country≈Mexico ∨ State.Country≈USA");  // (e) unchanged
  EXPECT_EQ(Circled(sigma[5], g, reach),
            "State.Country≈Mexico ≡ ⊥");  // (f)
  EXPECT_EQ(Circled(sigma[6], g, reach),
            "Province.Country≈Canada");  // (g) unchanged
}

TEST_F(CircleTest, Example12SubhierarchyInducesNoFrozenDimension) {
  // (e) forces Country ∈ {Mexico, USA}; (g) forces Country = Canada.
  // The mixed subhierarchy therefore fails CHECK — the schema keeps the
  // Canadian and Mexican/US structures apart.
  Subhierarchy g = Example12Subhierarchy();
  auto reach = g.ComputeReach();
  std::vector<ExprPtr> circled;
  for (const DimensionConstraint& c : ds_->constraints()) {
    ExprPtr e = Simplify(ApplyCircleToConstraint(c, g, reach));
    if (!IsTrueLiteral(e)) circled.push_back(e);
  }
  AssignmentSearchResult search = FindAssignments(g, circled);
  EXPECT_TRUE(search.assignments.empty());
}

TEST_F(CircleTest, ConstraintWithRootOutsideGIsVacuous) {
  // The Canada structure contains no State category; the State-rooted
  // constraints (e) and (f) must circle to ⊤, not ⊥ (DESIGN.md
  // deviation 1).
  auto g = Subhierarchy::FromEdges(
      ds_->hierarchy().num_categories(), store_, all_,
      {{store_, city_},
       {city_, province_},
       {province_, sale_region_},
       {sale_region_, country_},
       {country_, all_}});
  ASSERT_TRUE(g.has_value());
  auto reach = g->ComputeReach();
  const auto& sigma = ds_->constraints();
  EXPECT_TRUE(IsTrueLiteral(ApplyCircleToConstraint(sigma[4], *g, reach)));
  EXPECT_TRUE(IsTrueLiteral(ApplyCircleToConstraint(sigma[5], *g, reach)));
  // And the Canada structure does induce a frozen dimension.
  std::vector<ExprPtr> circled;
  for (const DimensionConstraint& c : sigma) {
    ExprPtr e = Simplify(ApplyCircleToConstraint(c, *g, reach));
    ASSERT_FALSE(IsFalseLiteral(e)) << c.label;
    if (!IsTrueLiteral(e)) circled.push_back(e);
  }
  AssignmentSearchResult search = FindAssignments(*g, circled);
  ASSERT_EQ(search.assignments.size(), 1u);
  EXPECT_EQ(search.assignments[0][country_], "Canada");
  EXPECT_FALSE(search.assignments[0][city_].has_value());  // nk
}

TEST_F(CircleTest, PathAtomsReplacedByTruthValues) {
  Subhierarchy g = Example12Subhierarchy();
  auto reach = g.ComputeReach();
  ExprPtr in_g = MakePathAtom({store_, city_, province_});
  ExprPtr not_in_g = MakePathAtom({store_, sale_region_});
  EXPECT_TRUE(IsTrueLiteral(ApplyCircleToExpr(in_g, g, reach)));
  EXPECT_TRUE(IsFalseLiteral(ApplyCircleToExpr(not_in_g, g, reach)));
}

TEST_F(CircleTest, ComposedAndThroughAtomsCircledByReachability) {
  Subhierarchy g = Example12Subhierarchy();
  auto reach = g.ComputeReach();
  EXPECT_TRUE(IsTrueLiteral(
      ApplyCircleToExpr(MakeComposedAtom(store_, country_), g, reach)));
  EXPECT_TRUE(IsTrueLiteral(
      ApplyCircleToExpr(MakeThroughAtom(store_, state_, country_), g, reach)));
  // No path from Store through SaleRegion to State exists in g:
  EXPECT_TRUE(IsFalseLiteral(ApplyCircleToExpr(
      MakeThroughAtom(store_, sale_region_, state_), g, reach)));
  EXPECT_TRUE(IsTrueLiteral(
      ApplyCircleToExpr(MakeComposedAtom(store_, store_), g, reach)));
}

TEST_F(CircleTest, EqualityAtomTargetOutsideReachIsFalse) {
  Subhierarchy g = Example12Subhierarchy();
  auto reach = g.ComputeReach();
  // Province-rooted atom about State: no path Province -> State.
  ExprPtr atom = MakeEqualityAtom(province_, state_, "x");
  EXPECT_TRUE(IsFalseLiteral(ApplyCircleToExpr(atom, g, reach)));
}

}  // namespace
}  // namespace olapdc
