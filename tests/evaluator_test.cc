// Tests for the model checker (Definition 4 semantics) on the paper's
// location instance.

#include <gtest/gtest.h>

#include "constraint/evaluator.h"
#include "constraint/parser.h"
#include "core/location_example.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::ParseC;

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(instance_, LocationInstance());
    schema_ = instance_->schema();
  }

  bool Holds(const std::string& text) {
    auto c = ParseConstraintWithRoot(*schema_, "Store", text);
    OLAPDC_CHECK(c.ok()) << text << ": " << c.status().ToString();
    return Satisfies(*instance_, *c);
  }

  bool HoldsFor(const std::string& member, const std::string& text) {
    DimensionConstraint c = ParseC(*schema_, text);
    auto m = instance_->MemberIdOf(member);
    OLAPDC_CHECK(m.ok());
    return EvalForMember(*instance_, *c.expr, *m);
  }

  std::optional<DimensionInstance> instance_;
  HierarchySchemaPtr schema_;
};

TEST_F(EvaluatorTest, AllLocationSchConstraintsHold) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  for (const DimensionConstraint& c : ds.constraints()) {
    EXPECT_TRUE(Satisfies(*instance_, c)) << c.label;
    EXPECT_TRUE(ViolatingMembers(*instance_, c).empty()) << c.label;
  }
  EXPECT_TRUE(SatisfiesAll(*instance_, ds.constraints()));
}

TEST_F(EvaluatorTest, PathAtoms) {
  // Example 5: all the stores roll up to City via a direct edge.
  EXPECT_TRUE(Holds("Store/City"));
  // Not all stores have a *direct* SaleRegion parent.
  EXPECT_FALSE(Holds("Store/SaleRegion"));
  EXPECT_TRUE(HoldsFor("st-aus-1", "Store/SaleRegion"));
  EXPECT_FALSE(HoldsFor("st-tor-1", "Store/SaleRegion"));
  // Multi-step path atoms.
  EXPECT_TRUE(HoldsFor("st-tor-1", "Store/City/Province/SaleRegion"));
  EXPECT_FALSE(HoldsFor("st-mex-1", "Store/City/Province"));
  EXPECT_TRUE(HoldsFor("st-mex-1", "Store/City/State/SaleRegion"));
}

TEST_F(EvaluatorTest, ComposedAtoms) {
  // Example 7: all the stores roll up to SaleRegion.
  EXPECT_TRUE(Holds("Store.SaleRegion"));
  EXPECT_TRUE(Holds("Store.Country"));
  EXPECT_TRUE(Holds("Store.City"));
  EXPECT_FALSE(Holds("Store.Province"));  // only the Canadian ones
  EXPECT_TRUE(HoldsFor("st-tor-1", "Store.Province"));
  EXPECT_FALSE(HoldsFor("st-was-1", "Store.Province"));
}

TEST_F(EvaluatorTest, EqualityAtoms) {
  // Example 6's antecedent/consequent pieces.
  EXPECT_TRUE(HoldsFor("st-tor-1", "Store.Country = 'Canada'"));
  EXPECT_FALSE(HoldsFor("st-tor-1", "Store.Country = 'USA'"));
  EXPECT_TRUE(HoldsFor("st-was-1", "Store.City = 'Washington'"));
  // Abbreviated own-category equality.
  EXPECT_TRUE(HoldsFor("Washington", "City = 'Washington'"));
  EXPECT_FALSE(HoldsFor("Toronto", "City = 'Washington'"));
  // Equality on a category the member does not reach is false.
  EXPECT_FALSE(HoldsFor("Washington", "City.Province = 'Ontario'"));
}

TEST_F(EvaluatorTest, Example6Constraint) {
  // If a store rolls up to Canada it reaches Province through City.
  EXPECT_TRUE(Holds("Store.Country = 'Canada' -> Store/City/Province"));
  // The USA variant is false: Washington stores have no Province.
  EXPECT_FALSE(Holds("Store.Country = 'USA' -> Store/City/State"));
}

TEST_F(EvaluatorTest, ThroughAtoms) {
  // Example 10 instance-level checks.
  EXPECT_TRUE(Holds("Store.Country -> Store.City.Country"));
  EXPECT_FALSE(Holds(
      "Store.Country -> (Store.State.Country ^ Store.Province.Country)"));
  EXPECT_TRUE(HoldsFor("st-mex-1", "Store.State.Country"));
  EXPECT_FALSE(HoldsFor("st-was-1", "Store.State.Country"));
  EXPECT_TRUE(HoldsFor("st-was-1", "Store.City.Country"));
  EXPECT_TRUE(HoldsFor("st-was-1", "Store.SaleRegion.Country"));
}

TEST_F(EvaluatorTest, ConnectivesAndExactlyOne) {
  EXPECT_TRUE(Holds("true"));
  EXPECT_FALSE(Holds("false"));
  EXPECT_TRUE(Holds("Store.City & Store.SaleRegion"));
  EXPECT_TRUE(Holds("Store.Province | Store.State | Store/City"));
  EXPECT_TRUE(Holds("!Store.Province | Store.Country = 'Canada'"));
  // Every store reaches Country through exactly one of City-direct,
  // Province, State... no: through exactly one of {Province, State} or
  // neither, so one(...) over those two fails for Washington stores.
  EXPECT_FALSE(
      Holds("one(Store.Province.Country, Store.State.Country)"));
  EXPECT_TRUE(Holds(
      "one(Store.Province.Country, Store.State.Country) | "
      "Store.City = 'Washington'"));
}

TEST_F(EvaluatorTest, VacuousOnEmptyCategory) {
  // Build an instance with no stores at all: Store-rooted constraints
  // hold vacuously.
  DimensionInstanceBuilder builder(schema_);
  builder.AddMember("Canada", "Country");
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, builder.Build());
  EXPECT_TRUE(Satisfies(d, ParseC(*schema_, "false & Store/City | false")));
}

TEST_F(EvaluatorTest, ViolatingMembersPinpointsCulprits) {
  DimensionConstraint c = ParseC(*schema_, "Store.Province");
  std::vector<MemberId> violators = ViolatingMembers(*instance_, c);
  // All four non-Canadian stores violate.
  EXPECT_EQ(violators.size(), 4u);
  for (MemberId m : violators) {
    EXPECT_TRUE(instance_->member(m).key.find("tor") == std::string::npos &&
                instance_->member(m).key.find("ott") == std::string::npos)
        << instance_->member(m).key;
  }
}

}  // namespace
}  // namespace olapdc
