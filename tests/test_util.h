// Shared helpers for olapdc tests.

#ifndef OLAPDC_TESTS_TEST_UTIL_H_
#define OLAPDC_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "constraint/parser.h"
#include "core/schema.h"
#include "dim/hierarchy_schema.h"

#define ASSERT_OK(expr)                                               \
  do {                                                                \
    const auto& _st = (expr);                                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                          \
  } while (false)

#define EXPECT_OK(expr)                                               \
  do {                                                                \
    const auto& _st = (expr);                                         \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                          \
  } while (false)

/// Unwraps a Result<T>, failing the test on error.
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                              \
  ASSERT_OK_AND_ASSIGN_IMPL(OLAPDC_CONCAT_NAME(_r, __COUNTER__), lhs, rexpr)
#define ASSERT_OK_AND_ASSIGN_IMPL(var, lhs, rexpr)                    \
  auto var = (rexpr);                                                 \
  ASSERT_TRUE(var.ok()) << var.status().ToString();                  \
  lhs = std::move(var).ValueOrDie()

namespace olapdc {
namespace testing_util {

/// Builds a hierarchy schema from an edge list of category names.
inline HierarchySchemaPtr MakeHierarchy(
    const std::vector<std::pair<std::string, std::string>>& edges) {
  HierarchySchemaBuilder builder;
  for (const auto& [a, b] : edges) builder.AddEdge(a, b);
  auto result = builder.BuildShared();
  OLAPDC_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

/// Parses a constraint, aborting on error (for known-good test input).
inline DimensionConstraint ParseC(const HierarchySchema& schema,
                                  const std::string& text,
                                  std::string label = "") {
  auto result = ParseConstraint(schema, text, std::move(label));
  OLAPDC_CHECK(result.ok()) << text << ": " << result.status().ToString();
  return std::move(result).ValueOrDie();
}

/// Builds a DimensionSchema from edges + constraint texts.
inline DimensionSchema MakeSchema(
    const std::vector<std::pair<std::string, std::string>>& edges,
    const std::vector<std::string>& constraint_texts) {
  HierarchySchemaPtr hierarchy = MakeHierarchy(edges);
  std::vector<DimensionConstraint> constraints;
  for (const std::string& text : constraint_texts) {
    constraints.push_back(ParseC(*hierarchy, text));
  }
  return DimensionSchema(std::move(hierarchy), std::move(constraints));
}

}  // namespace testing_util
}  // namespace olapdc

#endif  // OLAPDC_TESTS_TEST_UTIL_H_
