// Tests for DimensionSchema itself: relevant-constraint selection
// (Sigma(ds, c)), the Const_ds map, into-edge derivation, and schema
// extension.

#include <gtest/gtest.h>

#include "core/location_example.h"
#include "core/schema.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::ParseC;

class SchemaTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK_AND_ASSIGN(ds_, LocationSchema()); }
  std::optional<DimensionSchema> ds_;
};

TEST_F(SchemaTest, RelevantConstraintsFollowReachability) {
  const HierarchySchema& schema = ds_->hierarchy();
  // From Store every constraint root is reachable: all 7 relevant.
  EXPECT_EQ(ds_->RelevantConstraints(schema.FindCategory("Store")).size(),
            7u);
  // From City: the City-, State- and Province-rooted ones (not (a),(b)).
  EXPECT_EQ(ds_->RelevantConstraints(schema.FindCategory("City")).size(),
            5u);
  // From State: (e) and (f) only.
  auto state_relevant =
      ds_->RelevantConstraints(schema.FindCategory("State"));
  ASSERT_EQ(state_relevant.size(), 2u);
  EXPECT_EQ(state_relevant[0]->label, "(e)");
  EXPECT_EQ(state_relevant[1]->label, "(f)");
  // From Country / All: none.
  EXPECT_TRUE(ds_->RelevantConstraints(schema.FindCategory("Country")).empty());
  EXPECT_TRUE(ds_->RelevantConstraints(schema.all()).empty());
}

TEST_F(SchemaTest, ConstMapAndNk) {
  const HierarchySchema& schema = ds_->hierarchy();
  EXPECT_EQ(ds_->ConstantsOf(schema.FindCategory("City")),
            std::vector<std::string>({"Washington"}));
  EXPECT_EQ(ds_->ConstantsOf(schema.FindCategory("Country")),
            std::vector<std::string>({"Canada", "Mexico", "USA"}));
  EXPECT_TRUE(ds_->ConstantsOf(schema.FindCategory("Store")).empty());
  EXPECT_EQ(ds_->max_constants_per_category(), 3);
}

TEST_F(SchemaTest, IntoTargetsDerivedSyntactically) {
  const HierarchySchema& schema = ds_->hierarchy();
  // Only (a) Store/City is syntactically an into constraint; (b) is a
  // composed atom, and (c)/(f) wrap path atoms inside equivalences.
  EXPECT_EQ(ds_->IntoTargets(schema.FindCategory("Store")).ToVector(),
            std::vector<int>({schema.FindCategory("City")}));
  EXPECT_TRUE(ds_->IntoTargets(schema.FindCategory("City")).none());
  EXPECT_TRUE(ds_->IntoTargets(schema.FindCategory("State")).none());
}

TEST_F(SchemaTest, WithExtraConstraintIsNonDestructive) {
  const HierarchySchema& schema = ds_->hierarchy();
  DimensionSchema extended = ds_->WithExtraConstraint(
      ParseC(schema, "Store/SaleRegion", "(h)"));
  EXPECT_EQ(extended.constraints().size(), 8u);
  EXPECT_EQ(ds_->constraints().size(), 7u);
  // The new into constraint shows up in the derived edge set of the
  // extended schema only.
  EXPECT_TRUE(extended.IntoTargets(schema.FindCategory("Store"))
                  .test(schema.FindCategory("SaleRegion")));
  EXPECT_FALSE(ds_->IntoTargets(schema.FindCategory("Store"))
                   .test(schema.FindCategory("SaleRegion")));
  // Both share the hierarchy object.
  EXPECT_EQ(&extended.hierarchy(), &ds_->hierarchy());
}

TEST(SchemaBasicsTest, EmptyConstraintSet) {
  auto hierarchy = testing_util::MakeHierarchy({{"A", "All"}});
  DimensionSchema ds(hierarchy, {});
  EXPECT_TRUE(ds.constraints().empty());
  EXPECT_EQ(ds.max_constants_per_category(), 0);
  EXPECT_TRUE(ds.RelevantConstraints(0).empty());
}

TEST(SchemaBasicsTest, DuplicateConstantsDeduplicated) {
  auto hierarchy = testing_util::MakeHierarchy({{"A", "B"}, {"B", "All"}});
  DimensionSchema ds(
      hierarchy,
      {ParseC(*hierarchy, "A.B = 'x' | A.B = 'x' | A.B = 'y'")});
  EXPECT_EQ(ds.ConstantsOf(hierarchy->FindCategory("B")),
            std::vector<std::string>({"x", "y"}));
  EXPECT_EQ(ds.max_constants_per_category(), 2);
}

}  // namespace
}  // namespace olapdc
