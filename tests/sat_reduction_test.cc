// Tests for the Theorem 4 reduction: DIMSAT on the reduced schema must
// agree with brute-force CNF satisfiability.

#include <gtest/gtest.h>

#include "core/dimsat.h"
#include "core/sat_reduction.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

TEST(SatReductionTest, TinyFormulas) {
  // (x1) satisfiable.
  Cnf sat{1, {{1}}};
  ASSERT_OK_AND_ASSIGN(SatReduction r,
                       ReduceCnfToCategorySatisfiability(sat));
  EXPECT_TRUE(Dimsat(r.schema, r.query).satisfiable);

  // (x1) and (!x1) unsatisfiable.
  Cnf unsat{1, {{1}, {-1}}};
  ASSERT_OK_AND_ASSIGN(SatReduction r2,
                       ReduceCnfToCategorySatisfiability(unsat));
  EXPECT_FALSE(Dimsat(r2.schema, r2.query).satisfiable);
}

TEST(SatReductionTest, WitnessEncodesModel) {
  // (x1 | x2) & (!x1 | x2): x2 must be true.
  Cnf cnf{2, {{1, 2}, {-1, 2}}};
  ASSERT_OK_AND_ASSIGN(SatReduction r, ReduceCnfToCategorySatisfiability(cnf));
  DimsatResult result = Dimsat(r.schema, r.query);
  ASSERT_TRUE(result.satisfiable);
  const HierarchySchema& schema = r.schema.hierarchy();
  CategoryId x2 = schema.FindCategory("X2");
  EXPECT_TRUE(result.frozen[0].g.HasEdge(r.query, x2));
}

TEST(SatReductionTest, EvalAndBruteForce) {
  Cnf cnf{3, {{1, -2}, {2, 3}, {-1, -3}}};
  EXPECT_TRUE(EvalCnf(cnf, {true, true, true}) == false);  // clause 3
  EXPECT_TRUE(EvalCnf(cnf, {true, true, false}));
  EXPECT_TRUE(BruteForceCnfSat(cnf));
  Cnf contradiction{1, {{1}, {-1}}};
  EXPECT_FALSE(BruteForceCnfSat(contradiction));
}

TEST(SatReductionTest, InvalidInputs) {
  EXPECT_FALSE(ReduceCnfToCategorySatisfiability(Cnf{0, {}}).ok());
  EXPECT_FALSE(ReduceCnfToCategorySatisfiability(Cnf{1, {{2}}}).ok());
  EXPECT_FALSE(ReduceCnfToCategorySatisfiability(Cnf{1, {{}}}).ok());
}

TEST(SatReductionTest, RandomCnfShape) {
  Cnf cnf = RandomCnf(6, 10, 3, /*seed=*/42);
  EXPECT_EQ(cnf.num_variables, 6);
  EXPECT_EQ(cnf.clauses.size(), 10u);
  for (const auto& clause : cnf.clauses) {
    EXPECT_EQ(clause.size(), 3u);
    for (int lit : clause) {
      EXPECT_NE(lit, 0);
      EXPECT_LE(std::abs(lit), 6);
    }
  }
  // Deterministic in the seed.
  Cnf again = RandomCnf(6, 10, 3, 42);
  EXPECT_EQ(cnf.clauses, again.clauses);
  EXPECT_NE(RandomCnf(6, 10, 3, 43).clauses, cnf.clauses);
}

// Differential: DIMSAT through the reduction == brute-force SAT, over a
// sweep of random 3-SAT instances around the sat/unsat threshold.
class SatDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SatDifferentialTest, DimsatAgreesWithBruteForce) {
  const int seed = GetParam();
  // ~4.3 clauses/variable is the hard band; sample both sides.
  const int num_variables = 5;
  const int num_clauses = 4 + (seed % 4) * 6;  // 4, 10, 16, 22
  Cnf cnf = RandomCnf(num_variables, num_clauses, 3, seed);
  ASSERT_OK_AND_ASSIGN(SatReduction r, ReduceCnfToCategorySatisfiability(cnf));
  DimsatResult result = Dimsat(r.schema, r.query);
  ASSERT_OK(result.status);
  EXPECT_EQ(result.satisfiable, BruteForceCnfSat(cnf)) << "seed " << seed;
  if (result.satisfiable) {
    // Decode the witness into an assignment and re-check.
    std::vector<bool> assignment(num_variables);
    const HierarchySchema& schema = r.schema.hierarchy();
    for (int i = 1; i <= num_variables; ++i) {
      CategoryId xi = schema.FindCategory("X" + std::to_string(i));
      assignment[i - 1] = result.frozen[0].g.HasEdge(r.query, xi);
    }
    EXPECT_TRUE(EvalCnf(cnf, assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatDifferentialTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace olapdc
