// Tests for src/io/json_parse.h — the hardened request-body parser:
// line:column diagnostics, the nesting-depth cap, and the
// required/optional field accessors that never silently default a
// present-but-mistyped field.

#include "io/json_parse.h"

#include <string>

#include "gtest/gtest.h"

namespace olapdc {
namespace {

TEST(JsonParseTest, ParsesScalarsArraysAndObjects) {
  JsonValue v;
  ASSERT_TRUE(ParseJsonText(
      "{\"s\": \"x\", \"n\": 2.5, \"i\": -7, \"b\": true, \"z\": null, "
      "\"a\": [1, 2, 3], \"o\": {\"k\": \"v\"}}",
      &v));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("s")->string_value, "x");
  EXPECT_DOUBLE_EQ(v.Find("n")->number_value, 2.5);
  EXPECT_DOUBLE_EQ(v.Find("i")->number_value, -7);
  EXPECT_TRUE(v.Find("b")->bool_value);
  EXPECT_TRUE(v.Find("z")->is_null());
  ASSERT_TRUE(v.Find("a")->is_array());
  EXPECT_EQ(v.Find("a")->array.size(), 3u);
  ASSERT_TRUE(v.Find("o")->is_object());
  EXPECT_EQ(v.Find("o")->Find("k")->string_value, "v");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParseTest, DecodesEscapes) {
  JsonValue v;
  ASSERT_TRUE(ParseJsonText(
      R"({"e": "a\"b\\c\/d\ne\tf", "u": "Aé"})", &v));
  EXPECT_EQ(v.Find("e")->string_value, "a\"b\\c/d\ne\tf");
  EXPECT_EQ(v.Find("u")->string_value, "A\xc3\xa9");
}

TEST(JsonParseTest, ErrorsCarryLineAndColumn) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJsonText("{\n  \"a\": }", &v, &error));
  EXPECT_NE(error.find("line 2:"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(ParseJsonText("{\"a\": 1,\n\"b\" 2}", &v, &error));
  EXPECT_NE(error.find("line 2:"), std::string::npos) << error;

  // The Status-typed wrapper surfaces the same diagnostic as
  // kParseError.
  Result<JsonValue> parsed = ParseJson("[1, 2,");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().ToString().find("line 1:"), std::string::npos);
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJsonText("{} extra", &v, &error));
  EXPECT_FALSE(ParseJsonText("1 2", &v, &error));
  EXPECT_TRUE(ParseJsonText("  {}  \n", &v, &error));
}

TEST(JsonParseTest, DepthCapStopsHostileNesting) {
  // A deeply nested body must be a parse error, not a stack overflow.
  std::string hostile(100000, '[');
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJsonText(hostile, &v, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;

  // The cap is configurable and tight bounds work.
  JsonParseOptions shallow;
  shallow.max_depth = 2;
  EXPECT_TRUE(ParseJsonText("[[1]]", &v, nullptr, shallow));
  EXPECT_FALSE(ParseJsonText("[[[1]]]", &v, nullptr, shallow));
}

TEST(JsonParseTest, RequireAccessorsNameTheField) {
  JsonValue v;
  ASSERT_TRUE(ParseJsonText(
      "{\"name\": \"x\", \"count\": 3, \"frac\": 1.5, \"list\": []}", &v));
  EXPECT_EQ(*v.RequireString("name"), "x");
  EXPECT_EQ(*v.RequireInt("count"), 3);
  EXPECT_TRUE(v.RequireArray("list").ok());

  Result<std::string> missing = v.RequireString("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("nope"), std::string::npos);

  Result<std::string> mistyped = v.RequireString("count");
  ASSERT_FALSE(mistyped.ok());
  EXPECT_NE(mistyped.status().ToString().find("count"), std::string::npos);

  // Non-integral numbers are not silently truncated into ints.
  EXPECT_FALSE(v.RequireInt("frac").ok());
}

TEST(JsonParseTest, OptionalAccessorsDefaultOnlyOnAbsence) {
  JsonValue v;
  ASSERT_TRUE(ParseJsonText(
      "{\"n\": 5, \"s\": \"y\", \"b\": false, \"bad\": \"soon\"}", &v));
  EXPECT_EQ(*v.OptionalInt("n", 9), 5);
  EXPECT_EQ(*v.OptionalInt("absent", 9), 9);
  EXPECT_EQ(*v.OptionalString("s", "d"), "y");
  EXPECT_EQ(*v.OptionalString("absent", "d"), "d");
  EXPECT_EQ(*v.OptionalBool("b", true), false);
  EXPECT_EQ(*v.OptionalBool("absent", true), true);

  // A *present* field of the wrong type is an error naming the field,
  // never the default (the input-side silent-default fix).
  Result<int64_t> mistyped = v.OptionalInt("bad", 9);
  ASSERT_FALSE(mistyped.ok());
  EXPECT_NE(mistyped.status().ToString().find("bad"), std::string::npos);
}

}  // namespace
}  // namespace olapdc
