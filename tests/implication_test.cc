// Tests for the implication problem (Theorem 2 reduction), including
// the paper's Example 2: without constraints the hierarchy schema alone
// cannot prove that stores reach Country through City.

#include <gtest/gtest.h>

#include "constraint/evaluator.h"
#include "constraint/parser.h"
#include "core/implication.h"
#include "core/location_example.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::MakeSchema;
using testing_util::ParseC;

class ImplicationTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK_AND_ASSIGN(ds_, LocationSchema()); }

  bool Implied(const std::string& text) {
    auto alpha = ParseConstraintWithRoot(ds_->hierarchy(), "Store", text);
    OLAPDC_CHECK(alpha.ok()) << text << ": " << alpha.status().ToString();
    auto result = Implies(*ds_, *alpha);
    OLAPDC_CHECK(result.ok()) << result.status().ToString();
    return result->implied;
  }

  std::optional<DimensionSchema> ds_;
};

TEST_F(ImplicationTest, Example2WithConstraints) {
  // locationSch ⊨ "stores reach Country through City".
  EXPECT_TRUE(Implied("Store.Country -> Store.City.Country"));
  // Indeed all stores reach Country outright.
  EXPECT_TRUE(Implied("Store.Country"));
  EXPECT_TRUE(Implied("Store.City"));
  EXPECT_TRUE(Implied("Store.SaleRegion"));
}

TEST_F(ImplicationTest, Example2WithoutConstraintsFails) {
  // The bare hierarchy schema admits stores that reach Country only
  // through SaleRegion, so the implication must fail (this is the
  // paper's motivation for dimension constraints).
  DimensionSchema bare(ds_->hierarchy_ptr(), {});
  ASSERT_OK_AND_ASSIGN(
      ImplicationResult r,
      Implies(bare, ParseC(ds_->hierarchy(), "Store.Country -> Store.City.Country")));
  EXPECT_FALSE(r.implied);
  // The counterexample is a frozen dimension avoiding City.
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_FALSE(r.counterexample->g.Contains(
      ds_->hierarchy().FindCategory("City")));
}

TEST_F(ImplicationTest, NonImplications) {
  EXPECT_FALSE(Implied("Store.Province"));
  EXPECT_FALSE(Implied("Store/SaleRegion"));
  EXPECT_FALSE(Implied("Store.Country = 'Canada'"));
  EXPECT_FALSE(Implied("Store.City.Province"));
}

TEST_F(ImplicationTest, ConstraintConsequences) {
  // (g) Province.Country = 'Canada' propagates to stores with a
  // province.
  EXPECT_TRUE(Implied("Store.Province -> Store.Country = 'Canada'"));
  // (f)+(e): a state whose country is not Mexico is a US state.
  EXPECT_TRUE(Implied(
      "Store.State.Country -> "
      "(Store.Country = 'Mexico' | Store.Country = 'USA')"));
  // Washington stores are in the USA (via (c) and (d)).
  EXPECT_TRUE(
      Implied("Store.City = 'Washington' -> Store.Country = 'USA'"));
  // Stores reaching Province never reach State (structures are
  // disjoint).
  EXPECT_TRUE(Implied("Store.Province -> !Store.State"));
  // But reaching State does not pin the country to Mexico.
  EXPECT_FALSE(Implied("Store.State -> Store.Country = 'Mexico'"));
}

TEST_F(ImplicationTest, CounterexamplesSatisfySchemaAndViolateAlpha) {
  DimensionConstraint alpha =
      ParseC(ds_->hierarchy(), "Store.State -> Store.Country = 'Mexico'");
  ASSERT_OK_AND_ASSIGN(ImplicationResult r, Implies(*ds_, alpha));
  ASSERT_FALSE(r.implied);
  ASSERT_TRUE(r.counterexample.has_value());
  ASSERT_OK_AND_ASSIGN(DimensionInstance witness,
                       r.counterexample->ToInstance(*ds_));
  EXPECT_TRUE(SatisfiesAll(witness, ds_->constraints()));
  EXPECT_FALSE(Satisfies(witness, alpha));
}

TEST_F(ImplicationTest, TautologiesAlwaysImplied) {
  EXPECT_TRUE(Implied("Store/City | !Store/City"));
  EXPECT_TRUE(Implied("true"));
  EXPECT_FALSE(Implied("false"));
}

TEST(ImplicationBasicsTest, CategorySatisfiabilityApi) {
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"B", "All"}}, {"!A/B"});
  // !A/B contradicts C7 (B is A's only parent category).
  ASSERT_OK_AND_ASSIGN(
      bool a_sat,
      IsCategorySatisfiable(ds, ds.hierarchy().FindCategory("A")));
  EXPECT_FALSE(a_sat);
  ASSERT_OK_AND_ASSIGN(
      bool b_sat,
      IsCategorySatisfiable(ds, ds.hierarchy().FindCategory("B")));
  EXPECT_TRUE(b_sat);
}

TEST(ImplicationBasicsTest, Proposition1EverySchemaSatisfiable) {
  // Even wildly contradictory constraint sets leave All satisfiable
  // (Proposition 1: the one-member instance).
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"B", "All"}},
      {"A/B & !A/B", "false & B/All | false"});
  ASSERT_OK_AND_ASSIGN(bool all_sat,
                       IsCategorySatisfiable(ds, ds.hierarchy().all()));
  EXPECT_TRUE(all_sat);
}

TEST(ImplicationBasicsTest, UnsatisfiableCategoryImpliesEverything) {
  DimensionSchema ds = MakeSchema({{"A", "B"}, {"B", "All"}}, {"!A/B"});
  // A is unsatisfiable, so any A-rooted constraint is implied.
  ASSERT_OK_AND_ASSIGN(
      ImplicationResult r,
      Implies(ds, testing_util::ParseC(ds.hierarchy(), "A.B = 'anything'")));
  EXPECT_TRUE(r.implied);
}

}  // namespace
}  // namespace olapdc
