// Tests for the constraint parser and printer, including the
// round-trip property: parse(print(parse(text))) == parse(text).

#include <gtest/gtest.h>

#include <string>

#include "constraint/parser.h"
#include "constraint/printer.h"
#include "core/location_example.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK_AND_ASSIGN(schema_, LocationHierarchy()); }
  HierarchySchemaPtr schema_;
};

TEST_F(ParserTest, PathAtom) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpr(*schema_, "Store/City/Province"));
  ASSERT_EQ(e->kind, ExprKind::kPathAtom);
  EXPECT_EQ(e->path.size(), 3u);
  EXPECT_EQ(e->path[0], schema_->FindCategory("Store"));
  EXPECT_EQ(e->path[2], schema_->FindCategory("Province"));
}

TEST_F(ParserTest, ComposedAtom) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpr(*schema_, "Store.SaleRegion"));
  ASSERT_EQ(e->kind, ExprKind::kComposedAtom);
  EXPECT_EQ(e->root, schema_->FindCategory("Store"));
  EXPECT_EQ(e->target, schema_->FindCategory("SaleRegion"));
}

TEST_F(ParserTest, ThroughAtom) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpr(*schema_, "Store.City.Country"));
  ASSERT_EQ(e->kind, ExprKind::kThroughAtom);
  EXPECT_EQ(e->via, schema_->FindCategory("City"));
  EXPECT_EQ(e->target, schema_->FindCategory("Country"));
}

TEST_F(ParserTest, EqualityAtoms) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e,
                       ParseExpr(*schema_, "State.Country = 'Mexico'"));
  ASSERT_EQ(e->kind, ExprKind::kEqualityAtom);
  EXPECT_EQ(e->constant, "Mexico");
  // Abbreviated form c = k means c.c = k.
  ASSERT_OK_AND_ASSIGN(ExprPtr abbr,
                       ParseExpr(*schema_, "City = 'Washington'"));
  ASSERT_EQ(abbr->kind, ExprKind::kEqualityAtom);
  EXPECT_EQ(abbr->root, abbr->target);
  // Double-quoted and bare constants.
  ASSERT_OK_AND_ASSIGN(ExprPtr dq,
                       ParseExpr(*schema_, "City = \"Washington\""));
  EXPECT_EQ(dq->constant, "Washington");
  ASSERT_OK_AND_ASSIGN(ExprPtr bare, ParseExpr(*schema_, "City = Washington"));
  EXPECT_EQ(bare->constant, "Washington");
  ASSERT_OK_AND_ASSIGN(ExprPtr num, ParseExpr(*schema_, "City = 42"));
  EXPECT_EQ(num->constant, "42");
}

TEST_F(ParserTest, ConnectivesAndPrecedence) {
  // a -> b | c parses as a -> (b | c).
  ASSERT_OK_AND_ASSIGN(
      ExprPtr e,
      ParseExpr(*schema_, "Store/City -> Store.Province | Store.State"));
  ASSERT_EQ(e->kind, ExprKind::kImplies);
  EXPECT_EQ(e->children[1]->kind, ExprKind::kOr);

  // & binds tighter than |.
  ASSERT_OK_AND_ASSIGN(
      ExprPtr and_or,
      ParseExpr(*schema_, "Store.City | Store.State & Store.Province"));
  ASSERT_EQ(and_or->kind, ExprKind::kOr);
  EXPECT_EQ(and_or->children[1]->kind, ExprKind::kAnd);

  // Implication is right-associative.
  ASSERT_OK_AND_ASSIGN(
      ExprPtr impl,
      ParseExpr(*schema_, "Store.City -> Store.State -> Store.Province"));
  ASSERT_EQ(impl->kind, ExprKind::kImplies);
  EXPECT_EQ(impl->children[1]->kind, ExprKind::kImplies);

  // Parentheses override.
  ASSERT_OK_AND_ASSIGN(
      ExprPtr paren,
      ParseExpr(*schema_, "(Store.City | Store.State) & Store.Province"));
  ASSERT_EQ(paren->kind, ExprKind::kAnd);

  // Negation and xor.
  ASSERT_OK_AND_ASSIGN(ExprPtr x,
                       ParseExpr(*schema_, "!Store.City ^ Store.State"));
  ASSERT_EQ(x->kind, ExprKind::kXor);
  EXPECT_EQ(x->children[0]->kind, ExprKind::kNot);

  // one(...).
  ASSERT_OK_AND_ASSIGN(
      ExprPtr one,
      ParseExpr(*schema_, "one(Store/City, Store/SaleRegion)"));
  ASSERT_EQ(one->kind, ExprKind::kExactlyOne);
  EXPECT_EQ(one->children.size(), 2u);

  // true/false literals, alternative arrows.
  ASSERT_OK_AND_ASSIGN(ExprPtr t, ParseExpr(*schema_, "true <-> false"));
  EXPECT_EQ(t->kind, ExprKind::kEquiv);
  ASSERT_OK_AND_ASSIGN(ExprPtr t2, ParseExpr(*schema_, "true <=> false"));
  EXPECT_EQ(t2->kind, ExprKind::kEquiv);
  ASSERT_OK_AND_ASSIGN(ExprPtr t3, ParseExpr(*schema_, "true => false"));
  EXPECT_EQ(t3->kind, ExprKind::kImplies);
}

TEST_F(ParserTest, Errors) {
  EXPECT_FALSE(ParseExpr(*schema_, "").ok());
  EXPECT_FALSE(ParseExpr(*schema_, "Store/Galaxy").ok());  // unknown category
  EXPECT_FALSE(ParseExpr(*schema_, "Store/City extra").ok());  // trailing
  EXPECT_FALSE(ParseExpr(*schema_, "Store/").ok());
  EXPECT_FALSE(ParseExpr(*schema_, "(Store.City").ok());  // unbalanced
  EXPECT_FALSE(ParseExpr(*schema_, "Store.City = ").ok());
  EXPECT_FALSE(ParseExpr(*schema_, "City = 'unterminated").ok());
  EXPECT_FALSE(ParseExpr(*schema_, "one(Store.City").ok());
  EXPECT_FALSE(ParseExpr(*schema_, "Store").ok());  // bare category
  EXPECT_FALSE(ParseExpr(*schema_, "@").ok());      // bad character
  EXPECT_FALSE(ParseExpr(*schema_, "Store.City.State.Country").ok());
}

TEST_F(ParserTest, ParseConstraintInfersRootAndValidates) {
  ASSERT_OK_AND_ASSIGN(DimensionConstraint c,
                       ParseConstraint(*schema_, "Store/City", "(a)"));
  EXPECT_EQ(c.root, schema_->FindCategory("Store"));
  EXPECT_EQ(c.label, "(a)");
  // A path that does not follow schema edges is rejected at the
  // constraint level (Store has no edge to Province).
  EXPECT_FALSE(ParseConstraint(*schema_, "Store/Province").ok());
  // Root must not be All — no atom can produce that, but mixed roots:
  EXPECT_FALSE(ParseConstraint(*schema_, "Store/City & City/Province").ok());
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintThenReparseIsIdentity) {
  auto schema_result = LocationHierarchy();
  ASSERT_TRUE(schema_result.ok());
  const HierarchySchema& schema = **schema_result;
  ASSERT_OK_AND_ASSIGN(ExprPtr parsed, ParseExpr(schema, GetParam()));
  std::string printed = ExprToString(schema, parsed);
  ASSERT_OK_AND_ASSIGN(ExprPtr reparsed, ParseExpr(schema, printed));
  EXPECT_TRUE(ExprEquals(parsed, reparsed))
      << GetParam() << " printed as " << printed;
  // Printing is a fixpoint after one round.
  EXPECT_EQ(printed, ExprToString(schema, reparsed));
}

INSTANTIATE_TEST_SUITE_P(
    Constraints, RoundTripTest,
    ::testing::Values(
        "Store/City", "Store/City/Province", "Store.SaleRegion",
        "Store.City.Country", "City = 'Washington'",
        "State.Country = 'Mexico'",
        "City = 'Washington' <-> City/Country",
        "City = 'Washington' -> City.Country = 'USA'",
        "State.Country = 'Mexico' | State.Country = 'USA'",
        "one(Store.State.Country, Store.Province.Country)",
        "!Store/SaleRegion", "!(Store.City | Store.State)",
        "Store.City & Store.State & Store.Province",
        "Store.City | Store.State | Store.Province",
        "Store.City ^ Store.State",
        "Store.City -> Store.State -> Store.Province",
        "(Store.City -> Store.State) -> Store.Province",
        "Store.City <-> Store.State",
        "true", "false", "true & Store/City",
        "one(Store/City, true, false)",
        "!(!Store/City)",
        "Store.City & (Store.State | Store.Province)"));

TEST_F(ParserTest, PaperSymbolsOutput) {
  PrinterOptions paper;
  paper.paper_symbols = true;
  ASSERT_OK_AND_ASSIGN(
      ExprPtr e, ParseExpr(*schema_, "City = 'Washington' <-> City/Country"));
  std::string out = ExprToString(*schema_, e, paper);
  EXPECT_NE(out.find("City≈Washington"), std::string::npos) << out;
  EXPECT_NE(out.find("≡"), std::string::npos) << out;
  EXPECT_NE(out.find("City_Country"), std::string::npos) << out;
}

}  // namespace
}  // namespace olapdc
