// Tests for the live telemetry plane: Prometheus text exposition
// (name mapping, value rendering, the cumulative-bucket golden),
// the TelemetryServer endpoints (routed via Handle() and over a real
// loopback socket), and the SearchTreeRecorder explain stream —
// including the cross-check that the drained event counts agree
// exactly with DimsatStats on the paper's location example.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/dimsat.h"
#include "core/location_example.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/search_tree.h"
#include "obs/span.h"
#include "obs/telemetry_server.h"
#include "tests/test_util.h"

namespace olapdc {
namespace obs {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    MetricsRegistry::Global().Enable();
  }
  void TearDown() override {
    MetricsRegistry::Global().Disable();
    MetricsRegistry::Global().Reset();
    TraceSink::Global().Close();
    SearchTreeRecorder::Global().Disable();
  }
};

// ---------------------------------------------------------------------------
// Prometheus exposition primitives.

TEST(PrometheusNameTest, MapsDotsAndInvalidCharacters) {
  EXPECT_EQ(PrometheusName("olapdc.dimsat.expand_calls"),
            "olapdc_dimsat_expand_calls");
  EXPECT_EQ(PrometheusName("a-b c.d"), "a_b_c_d");
  EXPECT_EQ(PrometheusName("ns:sub"), "ns:sub");  // colon is legal
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");  // no leading digit
}

TEST(PrometheusLabelEscapeTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(PrometheusLabelEscape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(PrometheusLabelEscape("plain"), "plain");
}

TEST(PrometheusValueTest, RendersFiniteAndNonFinite) {
  EXPECT_EQ(PrometheusValue(0), "0");
  EXPECT_EQ(PrometheusValue(10), "10");
  EXPECT_EQ(PrometheusValue(1000000), "1000000");
  EXPECT_EQ(PrometheusValue(-3), "-3");
  EXPECT_EQ(PrometheusValue(0.5), "0.5");
  EXPECT_EQ(PrometheusValue(123.5), "123.5");
  // Non-finite values are representable in the text format (unlike the
  // JSON path, which nulls them out).
  EXPECT_EQ(PrometheusValue(std::nan("")), "NaN");
  EXPECT_EQ(PrometheusValue(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(PrometheusValue(-std::numeric_limits<double>::infinity()), "-Inf");
}

// Exact-text golden over a hand-built snapshot: counter and gauge
// families with # TYPE lines, and a histogram rendered with
// *cumulative* buckets ending at le="+Inf" == _count, plus _sum.
TEST(PrometheusRenderTest, GoldenExposition) {
  MetricsSnapshot snapshot;
  snapshot.counters["olapdc.dimsat.runs"] = 3;
  snapshot.gauges["olapdc.exec.pool_size"] = 4;
  HistogramSnapshot histogram;
  histogram.count = 3;
  histogram.sum_us = 123.5;
  histogram.buckets[0] = 1;                       // sample <= 1us
  histogram.buckets[2] = 1;                       // sample <= 5us
  histogram.buckets[kNumLatencyBuckets - 1] = 1;  // overflow sample
  snapshot.histograms["olapdc.test.latency_us"] = histogram;

  const std::string expected =
      "# TYPE olapdc_dimsat_runs counter\n"
      "olapdc_dimsat_runs 3\n"
      "# TYPE olapdc_exec_pool_size gauge\n"
      "olapdc_exec_pool_size 4\n"
      "# TYPE olapdc_test_latency_us histogram\n"
      "olapdc_test_latency_us_bucket{le=\"1\"} 1\n"
      "olapdc_test_latency_us_bucket{le=\"2\"} 1\n"
      "olapdc_test_latency_us_bucket{le=\"5\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"10\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"20\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"50\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"100\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"200\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"500\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"1000\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"2000\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"5000\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"10000\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"100000\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"1000000\"} 2\n"
      "olapdc_test_latency_us_bucket{le=\"+Inf\"} 3\n"
      "olapdc_test_latency_us_sum 123.5\n"
      "olapdc_test_latency_us_count 3\n";
  EXPECT_EQ(RenderPrometheusText(snapshot), expected);
}

// The live registry path: a recorded latency sample must surface with
// a consistent bucket/count/sum family.
TEST_F(TelemetryTest, LiveRegistryRendersHistogramConsistently) {
  Count("olapdc.test.hits", 2);
  LatencyUs("olapdc.test.wait_us", 3.0);
  const std::string text =
      RenderPrometheusText(MetricsRegistry::Global().Snapshot());
  EXPECT_NE(text.find("olapdc_test_hits 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE olapdc_test_wait_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("olapdc_test_wait_us_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("olapdc_test_wait_us_count 1\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TelemetryServer routing (Handle() is the transport-free core).

TEST_F(TelemetryTest, HandleRoutesMetricsVarzAndIndex) {
  Count("olapdc.test.routed");
  TelemetryServer server;
  TelemetryServer::Response metrics = server.Handle("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("olapdc_test_routed 1\n"), std::string::npos);

  TelemetryServer::Response varz = server.Handle("/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_EQ(varz.content_type, "application/json");
  EXPECT_NE(varz.body.find("\"olapdc.test.routed\""), std::string::npos);

  EXPECT_EQ(server.Handle("/").status, 200);
  EXPECT_EQ(server.Handle("/nope").status, 404);
}

TEST_F(TelemetryTest, HealthzReflectsInjectedProbe) {
  TelemetryServer healthy;  // no probe: unconditionally ok
  EXPECT_EQ(healthy.Handle("/healthz").status, 200);
  EXPECT_EQ(healthy.Handle("/healthz").body, "ok\n");

  // A degrading probe (what the CLI builds over AdmissionGate /
  // MemoryBudget) must flip the endpoint to 503 with its detail.
  std::atomic<bool> shedding{false};
  TelemetryServer server;
  TelemetryServer::Options options;
  options.port = 0;
  options.health = [&shedding] {
    HealthReport report;
    report.ok = !shedding.load();
    report.detail = "admission: in_flight=9 high_water=8\n";
    return report;
  };
  ASSERT_TRUE(server.Start(options)) << server.last_error();
  EXPECT_EQ(server.Handle("/healthz").status, 200);
  shedding.store(true);
  TelemetryServer::Response degraded = server.Handle("/healthz");
  EXPECT_EQ(degraded.status, 503);
  EXPECT_NE(degraded.body.find("degraded"), std::string::npos);
  EXPECT_NE(degraded.body.find("high_water=8"), std::string::npos);
  server.Stop();
}

TEST_F(TelemetryTest, TracezListsRecentSpans) {
  TraceSink::Global().EnableRing(8);
  { ObsSpan span("test.tracez_span"); }
  TelemetryServer server;
  TelemetryServer::Response tracez = server.Handle("/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_EQ(tracez.content_type, "application/json");
  EXPECT_NE(tracez.body.find("\"spans\": ["), std::string::npos);
  EXPECT_NE(tracez.body.find("test.tracez_span"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TelemetryServer over a real loopback socket.

/// Minimal HTTP client: sends `request` to 127.0.0.1:`port` and
/// returns everything the server wrote back.
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(TelemetryTest, ScrapeOverLoopbackSocket) {
  Count("olapdc.test.scraped", 7);
  TelemetryServer server;
  TelemetryServer::Options options;
  options.port = 0;  // ephemeral
  ASSERT_TRUE(server.Start(options)) << server.last_error();
  ASSERT_GT(server.port(), 0);

  const std::string response = RawRequest(
      server.port(), "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("olapdc_test_scraped 7\n"), std::string::npos);

  // Query strings are stripped before routing.
  const std::string with_query = RawRequest(
      server.port(), "GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(with_query.find("HTTP/1.1 200 OK"), std::string::npos);

  // GET only.
  const std::string post = RawRequest(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.running());

  // The server observes itself: the three requests above were counted.
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snapshot.counter("olapdc.http.requests"), 3u);
  auto it = snapshot.histograms.find("olapdc.http.scrape_latency_us");
  ASSERT_NE(it, snapshot.histograms.end());
  EXPECT_GE(it->second.count, 3u);
}

TEST_F(TelemetryTest, StartFailsOnPortInUse) {
  TelemetryServer first;
  TelemetryServer::Options options;
  options.port = 0;
  ASSERT_TRUE(first.Start(options));
  TelemetryServer second;
  TelemetryServer::Options clash;
  clash.port = first.port();
  EXPECT_FALSE(second.Start(clash));
  EXPECT_NE(second.last_error().find("bind"), std::string::npos);
  first.Stop();
}

TEST_F(TelemetryTest, HostilePeersAreBoundedAndCounted) {
  TelemetryServer server;
  TelemetryServer::Options options;
  options.port = 0;
  ASSERT_TRUE(server.Start(options)) << server.last_error();

  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  // Oversized headers: the scrape plane caps total request bytes, so a
  // peer spraying header bytes gets 431, not unbounded buffering.
  const std::string oversized = RawRequest(
      server.port(),
      "GET /metrics HTTP/1.1\r\nX-Pad: " + std::string(32 * 1024, 'h') +
          "\r\n\r\n");
  EXPECT_NE(oversized.find("431"), std::string::npos) << oversized;

  // Garbage that never resembles HTTP is a clean 400.
  const std::string garbage = RawRequest(server.port(), "\x01\x02\x03\r\n\r\n");
  EXPECT_NE(garbage.find("400"), std::string::npos) << garbage;

  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.counter("olapdc.http.bad_requests"),
            before.counter("olapdc.http.bad_requests") + 2);

  // The server is still healthy for a legitimate scrape afterwards.
  const std::string scrape = RawRequest(
      server.port(), "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(scrape.find("HTTP/1.1 200 OK"), std::string::npos) << scrape;
  server.Stop();
}

// ---------------------------------------------------------------------------
// SearchTreeRecorder: the explain event stream.

TEST_F(TelemetryTest, RecorderDrainsInDecisionOrder) {
  SearchTreeRecorder& recorder = SearchTreeRecorder::Global();
  recorder.Enable();
  for (int i = 0; i < 5; ++i) {
    ExplainEvent event;
    event.kind = ExplainEvent::Kind::kExpandBegin;
    event.depth = i;
    event.category = i;
    recorder.Record(event);
  }
  std::vector<ExplainEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[4].depth, 4);
  // Drain clears and publishes the counters.
  EXPECT_TRUE(recorder.Drain().empty());
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("olapdc.explain.events"), 5u);
  EXPECT_EQ(snapshot.counter("olapdc.explain.dropped"), 0u);
  recorder.Disable();
}

TEST_F(TelemetryTest, RecorderBoundsMemoryAndCountsDrops) {
  SearchTreeRecorder& recorder = SearchTreeRecorder::Global();
  recorder.Enable(/*per_thread_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ExplainEvent event;
    event.kind = ExplainEvent::Kind::kDeadEnd;
    event.depth = i;
    recorder.Record(event);
  }
  EXPECT_EQ(recorder.dropped(), 6u);
  std::vector<ExplainEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 4u);
  // The ring keeps the newest decisions (the interesting tail).
  EXPECT_EQ(events.front().depth, 6);
  EXPECT_EQ(events.back().depth, 9);
  recorder.Disable();
}

TEST_F(TelemetryTest, RecorderDisabledRecordIsNoOp) {
  SearchTreeRecorder& recorder = SearchTreeRecorder::Global();
  ASSERT_FALSE(recorder.enabled());
  ExplainEvent event;
  event.kind = ExplainEvent::Kind::kCheckOk;
  recorder.Record(event);
  recorder.Enable();
  EXPECT_TRUE(recorder.Drain().empty());
  recorder.Disable();
}

TEST(ExplainRenderTest, ReportNamesEveryPruneRuleWithDepth) {
  std::vector<ExplainEvent> events;
  ExplainEvent expand;
  expand.kind = ExplainEvent::Kind::kExpandBegin;
  expand.depth = 0;
  expand.category = 0;
  expand.aux = 1;
  events.push_back(expand);
  for (ExplainEvent::Kind kind : {ExplainEvent::Kind::kPruneInto,
                                  ExplainEvent::Kind::kPruneShortcut,
                                  ExplainEvent::Kind::kPruneCycle}) {
    ExplainEvent prune;
    prune.kind = kind;
    prune.depth = 1;
    prune.category = 0;
    prune.edge_from = 0;
    prune.edge_to = 2;
    events.push_back(prune);
  }
  const std::vector<std::string> names = {"Store", "City", "Country"};
  const std::string report = RenderExplainReport(
      events, [&names](int id) { return names[static_cast<size_t>(id)]; });
  EXPECT_NE(report.find("EXPAND Store depth=0 expand_calls=1"),
            std::string::npos);
  EXPECT_NE(report.find("PRUNE[into] edge Store->Country depth=1"),
            std::string::npos);
  EXPECT_NE(report.find("PRUNE[Ss] edge Store->Country depth=1"),
            std::string::npos);
  EXPECT_NE(report.find("PRUNE[Sc] edge Store->Country depth=1"),
            std::string::npos);
  // Null resolver: ids render as "#<id>".
  const std::string anonymous = RenderExplainReport(events, nullptr);
  EXPECT_NE(anonymous.find("EXPAND #0"), std::string::npos);
}

TEST(ExplainRenderTest, ChromeTraceBalancesBeginEndAndMarksInstants) {
  std::vector<ExplainEvent> events;
  ExplainEvent begin;
  begin.kind = ExplainEvent::Kind::kExpandBegin;
  begin.category = 1;
  events.push_back(begin);
  ExplainEvent prune;
  prune.kind = ExplainEvent::Kind::kPruneShortcut;
  prune.edge_from = 1;
  prune.edge_to = 2;
  events.push_back(prune);
  ExplainEvent end;
  end.kind = ExplainEvent::Kind::kExpandEnd;
  end.category = 1;
  events.push_back(end);
  const std::string json = RenderChromeTrace(events, nullptr);
  EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);  // thread instant
}

// ---------------------------------------------------------------------------
// End to end: the explain stream of a real DIMSAT run on the paper's
// location schema must agree *exactly* with the search's own counters.

TEST_F(TelemetryTest, ExplainStreamMatchesDimsatStatsOnLocationExample) {
  std::optional<DimensionSchema> ds;
  ASSERT_OK_AND_ASSIGN(ds, LocationSchema());
  const CategoryId store = ds->hierarchy().FindCategory("Store");

  SearchTreeRecorder& recorder = SearchTreeRecorder::Global();
  recorder.Enable();
  DimsatResult result = EnumerateFrozenDimensions(*ds, store);
  std::vector<ExplainEvent> events = recorder.Drain();
  recorder.Disable();
  ASSERT_OK(result.status);
  ASSERT_EQ(result.frozen.size(), 4u);  // Figure 4
  ASSERT_FALSE(events.empty());

  std::map<ExplainEvent::Kind, uint64_t> count;
  uint64_t frozen_reported = 0;
  for (const ExplainEvent& event : events) {
    ++count[event.kind];
    if (event.kind == ExplainEvent::Kind::kCheckOk) {
      frozen_reported += event.aux;
    }
  }
  EXPECT_EQ(count[ExplainEvent::Kind::kPruneShortcut],
            result.stats.shortcut_prunes);
  EXPECT_EQ(count[ExplainEvent::Kind::kPruneCycle], result.stats.cycle_prunes);
  EXPECT_EQ(count[ExplainEvent::Kind::kDeadEnd], result.stats.dead_ends);
  EXPECT_EQ(count[ExplainEvent::Kind::kCheckOk] +
                count[ExplainEvent::Kind::kCheckFail],
            result.stats.check_calls);
  // Every non-leaf node brackets: begin/end balance, and together with
  // the CHECK leaves they account for every counted expansion.
  EXPECT_EQ(count[ExplainEvent::Kind::kExpandBegin],
            count[ExplainEvent::Kind::kExpandEnd]);
  EXPECT_EQ(count[ExplainEvent::Kind::kExpandBegin] + result.stats.check_calls,
            result.stats.expand_calls);
  EXPECT_EQ(frozen_reported, result.frozen.size());
  EXPECT_EQ(count[ExplainEvent::Kind::kBudgetStop], 0u);

  // The rendered report names the rules against real category names.
  const std::string report = RenderExplainReport(events, [&ds](int id) {
    return ds->hierarchy().CategoryName(static_cast<CategoryId>(id));
  });
  if (result.stats.shortcut_prunes > 0) {
    EXPECT_NE(report.find("PRUNE[Ss] edge "), std::string::npos);
  }
  EXPECT_NE(report.find("EXPAND "), std::string::npos);
  EXPECT_NE(report.find("CHECK(ok) frozen="), std::string::npos);
  EXPECT_NE(report.find("depth="), std::string::npos);
}

// An explain run under a budget records the stop decision.
TEST_F(TelemetryTest, BudgetStopAppearsInExplainStream) {
  std::optional<DimensionSchema> ds;
  ASSERT_OK_AND_ASSIGN(ds, LocationSchema());
  const CategoryId store = ds->hierarchy().FindCategory("Store");

  SearchTreeRecorder& recorder = SearchTreeRecorder::Global();
  recorder.Enable();
  DimsatOptions options;
  options.max_expand_calls = 1;
  DimsatResult result = EnumerateFrozenDimensions(*ds, store, options);
  std::vector<ExplainEvent> events = recorder.Drain();
  recorder.Disable();
  EXPECT_FALSE(result.status.ok());

  bool saw_stop = false;
  for (const ExplainEvent& event : events) {
    if (event.kind == ExplainEvent::Kind::kBudgetStop) saw_stop = true;
  }
  EXPECT_TRUE(saw_stop);
}

}  // namespace
}  // namespace obs
}  // namespace olapdc
