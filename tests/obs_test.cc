// Tests for the observability substrate: MetricsRegistry counters /
// gauges / histograms (including bucket-edge behavior and concurrent
// increments across threads), the disabled no-op guarantee, and the
// ObsSpan / TraceSink JSONL span stream.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace olapdc {
namespace obs {
namespace {

/// The registry and sink are process-global; every test starts from a
/// clean enabled registry and leaves both disabled and empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    MetricsRegistry::Global().Enable();
  }
  void TearDown() override {
    MetricsRegistry::Global().Disable();
    MetricsRegistry::Global().Reset();
    TraceSink::Global().Close();
  }
};

TEST_F(ObsTest, CountersAccumulate) {
  Count("olapdc.test.a");
  Count("olapdc.test.a", 4);
  Count("olapdc.test.b", 0);  // zero delta still creates the entry
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("olapdc.test.a"), 5u);
  EXPECT_EQ(snapshot.counter("olapdc.test.b"), 0u);
  EXPECT_EQ(snapshot.counters.count("olapdc.test.b"), 1u);
  EXPECT_EQ(snapshot.counter("olapdc.test.absent"), 0u);
  EXPECT_EQ(snapshot.counters.count("olapdc.test.absent"), 0u);
}

TEST_F(ObsTest, DisabledRecordingIsANoOp) {
  MetricsRegistry::Global().Disable();
  Count("olapdc.test.off");
  Gauge("olapdc.test.off_gauge", 7);
  LatencyUs("olapdc.test.off_hist", 3.0);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST_F(ObsTest, GaugesAreLastWriteWins) {
  Gauge("olapdc.test.g", 3);
  Gauge("olapdc.test.g", -2);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(snapshot.gauges.count("olapdc.test.g"), 1u);
  EXPECT_EQ(snapshot.gauges.at("olapdc.test.g"), -2);
}

TEST_F(ObsTest, ResetClearsEverything) {
  Count("olapdc.test.a");
  Gauge("olapdc.test.g", 1);
  LatencyUs("olapdc.test.h", 10.0);
  MetricsRegistry::Global().Reset();
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
  EXPECT_TRUE(MetricsRegistry::Global().enabled());  // Reset keeps the switch
}

TEST_F(ObsTest, HistogramBucketing) {
  // A sample equal to a bucket's upper bound lands in that bucket
  // (bounds are inclusive); anything past the last bound lands in the
  // overflow bucket.
  LatencyUs("olapdc.test.h", 1.0);       // bucket 0 (le 1)
  LatencyUs("olapdc.test.h", 1.5);       // bucket 1 (le 2)
  LatencyUs("olapdc.test.h", 2.0);       // bucket 1
  LatencyUs("olapdc.test.h", 999.0);     // bucket 9 (le 1000)
  LatencyUs("olapdc.test.h", 2e6);       // overflow
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(snapshot.histograms.count("olapdc.test.h"), 1u);
  const HistogramSnapshot& h = snapshot.histograms.at("olapdc.test.h");
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum_us, 1.0 + 1.5 + 2.0 + 999.0 + 2e6);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 2u);
  EXPECT_EQ(h.buckets[9], 1u);
  EXPECT_EQ(h.buckets[kNumLatencyBuckets - 1], 1u);
  uint64_t total = 0;
  for (uint64_t b : h.buckets) total += b;
  EXPECT_EQ(total, h.count);
}

TEST_F(ObsTest, ConcurrentIncrementsMergeExactly) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIncrements; ++i) {
        Count("olapdc.test.concurrent");
        if (i % 100 == 0) LatencyUs("olapdc.test.concurrent_h", 5.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("olapdc.test.concurrent"),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(snapshot.histograms.at("olapdc.test.concurrent_h").count,
            static_cast<uint64_t>(kThreads) * (kIncrements / 100));
}

TEST_F(ObsTest, SnapshotJsonHasAllSections) {
  Count("olapdc.test.a", 3);
  Gauge("olapdc.test.g", 9);
  LatencyUs("olapdc.test.h", 42.0);
  std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"olapdc.test.a\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"olapdc.test.g\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"le_us\": \"inf\""), std::string::npos);
}

TEST(JsonTest, EscapesAndNumbers) {
  EXPECT_EQ(JsonString("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(JsonNumber(12), "12");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  // Non-finite values are not representable in JSON; masking them as a
  // finite value would hide a poisoned histogram, so they render null.
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST_F(ObsTest, NonFiniteJsonNumbersAreCounted) {
  (void)JsonNumber(std::nan(""));
  (void)JsonNumber(std::numeric_limits<double>::infinity());
  (void)JsonNumber(1.0);  // finite: not counted
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("olapdc.obs.json_nonfinite"), 2u);
}

TEST_F(ObsTest, SpanInactiveWhenSinkClosed) {
  ObsSpan span("test.noop");
  EXPECT_FALSE(span.active());
  span.AddStat("ignored", 1);  // must not crash or allocate stats
}

TEST_F(ObsTest, SpansEmitJsonlWithNestingDepth) {
  const std::string path = ::testing::TempDir() + "/obs_test_trace.jsonl";
  ASSERT_TRUE(TraceSink::Global().Open(path));
  {
    ObsSpan outer("test.outer");
    EXPECT_TRUE(outer.active());
    EXPECT_EQ(outer.depth(), 0);
    outer.AddStat("answer", static_cast<uint64_t>(42));
    outer.AddStat("label", "hello \"quoted\"");
    outer.AddStat("flag", true);
    {
      ObsSpan inner("test.inner");
      EXPECT_EQ(inner.depth(), 1);
    }
  }
  TraceSink::Global().Close();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  // Inner closes (and is emitted) first.
  EXPECT_NE(lines[0].find("\"name\": \"test.inner\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"depth\": 1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\": \"test.outer\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"depth\": 0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"answer\": 42"), std::string::npos);
  EXPECT_NE(lines[1].find("\"label\": \"hello \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"flag\": true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"dur_us\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, SinkOpenFailsOnBadPath) {
  EXPECT_FALSE(TraceSink::Global().Open("/nonexistent-dir/x/y/trace.jsonl"));
  EXPECT_FALSE(TraceSink::Global().enabled());
}

TEST_F(ObsTest, SpanIdsAndParentageFollowNesting) {
  const std::string path = ::testing::TempDir() + "/obs_test_ids.jsonl";
  ASSERT_TRUE(TraceSink::Global().Open(path));
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  uint64_t inner_parent = 0;
  {
    ObsSpan outer("test.outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(outer.parent(), 0u);  // root of its strand
    EXPECT_EQ(CurrentTraceContext().span_id, outer_id);
    EXPECT_EQ(CurrentTraceContext().depth, 1);
    {
      ObsSpan inner("test.inner");
      inner_id = inner.id();
      inner_parent = inner.parent();
    }
    // Closing the inner span restores the outer context.
    EXPECT_EQ(CurrentTraceContext().span_id, outer_id);
  }
  EXPECT_EQ(CurrentTraceContext().span_id, 0u);
  EXPECT_EQ(inner_parent, outer_id);
  EXPECT_NE(inner_id, outer_id);
  TraceSink::Global().Close();

  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"id\": " + std::to_string(inner_id)),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"parent\": " + std::to_string(outer_id)),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"parent\": 0"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, ScopedTraceContextInstallsAndRestores) {
  const std::string path = ::testing::TempDir() + "/obs_test_ctx.jsonl";
  ASSERT_TRUE(TraceSink::Global().Open(path));
  TraceContext captured;
  {
    ObsSpan outer("test.outer");
    captured = CurrentTraceContext();
  }
  // The outer span is closed; reinstalling its captured context makes a
  // new span parent to it anyway (what the pool does after a steal).
  {
    ScopedTraceContext restore(captured);
    ObsSpan child("test.child");
    EXPECT_EQ(child.parent(), captured.span_id);
    EXPECT_EQ(child.depth(), captured.depth);
  }
  EXPECT_EQ(CurrentTraceContext().span_id, 0u);
  TraceSink::Global().Close();
  std::remove(path.c_str());
}

TEST_F(ObsTest, RingKeepsMostRecentLines) {
  TraceSink::Global().EnableRing(3);
  EXPECT_TRUE(TraceSink::Global().enabled());
  for (int i = 0; i < 5; ++i) {
    ObsSpan span("test.ring" + std::to_string(i));
  }
  std::vector<std::string> lines = TraceSink::Global().RecentLines();
  ASSERT_EQ(lines.size(), 3u);  // bounded: oldest two evicted
  EXPECT_NE(lines[0].find("test.ring2"), std::string::npos);
  EXPECT_NE(lines[2].find("test.ring4"), std::string::npos);
  TraceSink::Global().Close();
  EXPECT_TRUE(TraceSink::Global().RecentLines().empty());
  EXPECT_FALSE(TraceSink::Global().enabled());
}

}  // namespace
}  // namespace obs
}  // namespace olapdc
