// Tests for shorthand expansion (Sections 3.1 and 3.3) and truth-
// constant simplification.

#include <gtest/gtest.h>

#include <tuple>

#include "constraint/normalize.h"
#include "constraint/parser.h"
#include "constraint/printer.h"
#include "core/location_example.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

class NormalizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, LocationHierarchy());
    store_ = schema_->FindCategory("Store");
    city_ = schema_->FindCategory("City");
    state_ = schema_->FindCategory("State");
    province_ = schema_->FindCategory("Province");
    sale_region_ = schema_->FindCategory("SaleRegion");
    country_ = schema_->FindCategory("Country");
  }

  int CountPathAtoms(const ExprPtr& e) {
    std::vector<const Expr*> atoms;
    CollectAtoms(e, &atoms);
    int count = 0;
    for (const Expr* a : atoms) count += (a->kind == ExprKind::kPathAtom);
    return count;
  }

  HierarchySchemaPtr schema_;
  CategoryId store_, city_, state_, province_, sale_region_, country_;
};

TEST_F(NormalizeTest, ComposedAtomExpandsToAllSimplePaths) {
  // Store rolls up to SaleRegion via: Store/SaleRegion,
  // Store/City/Province/SaleRegion, Store/City/State/SaleRegion.
  ASSERT_OK_AND_ASSIGN(
      ExprPtr e,
      ExpandShorthands(*schema_, MakeComposedAtom(store_, sale_region_)));
  EXPECT_EQ(e->kind, ExprKind::kOr);
  EXPECT_EQ(CountPathAtoms(e), 3);
}

TEST_F(NormalizeTest, ComposedAtomSameCategoryIsTrue) {
  ASSERT_OK_AND_ASSIGN(
      ExprPtr e, ExpandShorthands(*schema_, MakeComposedAtom(store_, store_)));
  EXPECT_TRUE(IsTrueLiteral(e));
}

TEST_F(NormalizeTest, ComposedAtomUnreachableIsFalse) {
  ASSERT_OK_AND_ASSIGN(
      ExprPtr e,
      ExpandShorthands(*schema_, MakeComposedAtom(country_, store_)));
  EXPECT_TRUE(IsFalseLiteral(e));
}

TEST_F(NormalizeTest, ThroughAtomFiveCases) {
  // c == ci == cj: True.
  ASSERT_OK_AND_ASSIGN(
      ExprPtr all_equal,
      ExpandShorthands(*schema_, MakeThroughAtom(store_, store_, store_)));
  EXPECT_TRUE(IsTrueLiteral(all_equal));

  // c == cj != ci: False.
  ASSERT_OK_AND_ASSIGN(
      ExprPtr back_to_self,
      ExpandShorthands(*schema_, MakeThroughAtom(store_, city_, store_)));
  EXPECT_TRUE(IsFalseLiteral(back_to_self));

  // c == ci != cj: same as c.cj.
  ASSERT_OK_AND_ASSIGN(
      ExprPtr via_self,
      ExpandShorthands(*schema_, MakeThroughAtom(store_, store_, country_)));
  ASSERT_OK_AND_ASSIGN(
      ExprPtr composed,
      ExpandShorthands(*schema_, MakeComposedAtom(store_, country_)));
  EXPECT_TRUE(ExprEquals(via_self, composed));

  // ci == cj != c: same as c.ci.
  ASSERT_OK_AND_ASSIGN(
      ExprPtr to_via,
      ExpandShorthands(*schema_, MakeThroughAtom(store_, city_, city_)));
  ASSERT_OK_AND_ASSIGN(
      ExprPtr composed_city,
      ExpandShorthands(*schema_, MakeComposedAtom(store_, city_)));
  EXPECT_TRUE(ExprEquals(to_via, composed_city));

  // All distinct: only paths through the via category.
  ASSERT_OK_AND_ASSIGN(
      ExprPtr through_prov,
      ExpandShorthands(*schema_,
                       MakeThroughAtom(store_, province_, country_)));
  // Exactly one simple path Store..Country passes through Province:
  // Store/City/Province/SaleRegion/Country.
  EXPECT_EQ(through_prov->kind, ExprKind::kPathAtom);
  EXPECT_EQ(through_prov->path.size(), 5u);
}

TEST_F(NormalizeTest, ThroughAtomNoMatchingPathIsFalse) {
  // No path from Province to Country passes through City.
  ASSERT_OK_AND_ASSIGN(
      ExprPtr e,
      ExpandShorthands(*schema_, MakeThroughAtom(province_, city_, country_)));
  EXPECT_TRUE(IsFalseLiteral(e));
}

TEST_F(NormalizeTest, ExpansionRecursesThroughConnectives) {
  ASSERT_OK_AND_ASSIGN(
      ExprPtr parsed,
      ParseExpr(*schema_, "Store.SaleRegion -> Store.City.Country"));
  ASSERT_OK_AND_ASSIGN(ExprPtr expanded, ExpandShorthands(*schema_, parsed));
  std::vector<const Expr*> atoms;
  CollectAtoms(expanded, &atoms);
  for (const Expr* a : atoms) {
    EXPECT_TRUE(a->kind == ExprKind::kPathAtom ||
                a->kind == ExprKind::kEqualityAtom);
  }
}

TEST_F(NormalizeTest, ExpansionIsIdentityWithoutShorthands) {
  ASSERT_OK_AND_ASSIGN(ExprPtr parsed,
                       ParseExpr(*schema_, "Store/City & !Store/SaleRegion"));
  ASSERT_OK_AND_ASSIGN(ExprPtr expanded, ExpandShorthands(*schema_, parsed));
  EXPECT_EQ(parsed, expanded);  // same node, not merely equal
}

TEST_F(NormalizeTest, PathLimitEnforced) {
  EXPECT_EQ(ExpandShorthands(*schema_, MakeComposedAtom(store_, country_),
                             /*path_limit=*/2)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

// --- Simplify ---------------------------------------------------------

TEST_F(NormalizeTest, SimplifyConnectives) {
  ExprPtr atom = MakePathAtom({store_, city_});
  ExprPtr t = MakeTrue(), f = MakeFalse();

  EXPECT_TRUE(IsFalseLiteral(Simplify(MakeNot(t))));
  EXPECT_TRUE(IsTrueLiteral(Simplify(MakeNot(f))));
  EXPECT_TRUE(ExprEquals(Simplify(MakeNot(MakeNot(atom))), atom));

  EXPECT_TRUE(ExprEquals(Simplify(MakeAnd({t, atom, t})), atom));
  EXPECT_TRUE(IsFalseLiteral(Simplify(MakeAnd({atom, f}))));
  EXPECT_TRUE(IsTrueLiteral(Simplify(MakeAnd({}))));
  EXPECT_TRUE(ExprEquals(Simplify(MakeOr({f, atom})), atom));
  EXPECT_TRUE(IsTrueLiteral(Simplify(MakeOr({atom, t}))));
  EXPECT_TRUE(IsFalseLiteral(Simplify(MakeOr({}))));

  EXPECT_TRUE(IsTrueLiteral(Simplify(MakeImplies(f, atom))));
  EXPECT_TRUE(ExprEquals(Simplify(MakeImplies(t, atom)), atom));
  EXPECT_TRUE(IsTrueLiteral(Simplify(MakeImplies(atom, t))));
  EXPECT_EQ(Simplify(MakeImplies(atom, f))->kind, ExprKind::kNot);

  EXPECT_TRUE(ExprEquals(Simplify(MakeEquiv(t, atom)), atom));
  EXPECT_EQ(Simplify(MakeEquiv(atom, f))->kind, ExprKind::kNot);
  EXPECT_TRUE(ExprEquals(Simplify(MakeXor(f, atom)), atom));
  EXPECT_EQ(Simplify(MakeXor(atom, t))->kind, ExprKind::kNot);
}

TEST_F(NormalizeTest, SimplifyExactlyOne) {
  ExprPtr a = MakePathAtom({store_, city_});
  ExprPtr b = MakePathAtom({store_, sale_region_});
  ExprPtr t = MakeTrue(), f = MakeFalse();

  // Two known-true: contradiction.
  EXPECT_TRUE(IsFalseLiteral(Simplify(MakeExactlyOne({t, t, a}))));
  // One known-true: all the rest must be false.
  ExprPtr forced = Simplify(MakeExactlyOne({t, a, b}));
  EXPECT_EQ(forced->kind, ExprKind::kAnd);
  EXPECT_EQ(forced->children[0]->kind, ExprKind::kNot);
  // One true, nothing else: True.
  EXPECT_TRUE(IsTrueLiteral(Simplify(MakeExactlyOne({t, f}))));
  // All false: False.
  EXPECT_TRUE(IsFalseLiteral(Simplify(MakeExactlyOne({f, f}))));
  EXPECT_TRUE(IsFalseLiteral(Simplify(MakeExactlyOne({}))));
  // Single unknown: itself.
  EXPECT_TRUE(ExprEquals(Simplify(MakeExactlyOne({f, a})), a));
  // Several unknowns stay.
  EXPECT_EQ(Simplify(MakeExactlyOne({a, b}))->kind, ExprKind::kExactlyOne);
}

// Exhaustive truth-table check: for every binary connective and every
// combination of truth constants, Simplify agrees with the semantics.
using TruthCase = std::tuple<ExprKind, bool, bool, bool>;

class TruthTableTest : public ::testing::TestWithParam<TruthCase> {};

TEST_P(TruthTableTest, SimplifyMatchesSemantics) {
  auto [kind, a, b, expected] = GetParam();
  ExprPtr ea = MakeBool(a), eb = MakeBool(b);
  ExprPtr e;
  switch (kind) {
    case ExprKind::kAnd: e = MakeAnd({ea, eb}); break;
    case ExprKind::kOr: e = MakeOr({ea, eb}); break;
    case ExprKind::kImplies: e = MakeImplies(ea, eb); break;
    case ExprKind::kEquiv: e = MakeEquiv(ea, eb); break;
    case ExprKind::kXor: e = MakeXor(ea, eb); break;
    default: FAIL();
  }
  ExprPtr s = Simplify(e);
  ASSERT_TRUE(s->IsLiteralTruth());
  EXPECT_EQ(IsTrueLiteral(s), expected);
}

std::vector<TruthCase> AllTruthCases() {
  std::vector<TruthCase> cases;
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      cases.emplace_back(ExprKind::kAnd, a, b, a && b);
      cases.emplace_back(ExprKind::kOr, a, b, a || b);
      cases.emplace_back(ExprKind::kImplies, a, b, !a || b);
      cases.emplace_back(ExprKind::kEquiv, a, b, a == b);
      cases.emplace_back(ExprKind::kXor, a, b, a != b);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConnectives, TruthTableTest,
                         ::testing::ValuesIn(AllTruthCases()));

}  // namespace
}  // namespace olapdc
