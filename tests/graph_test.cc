// Tests for the graph substrate: Digraph and its algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "graph/dot.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

Digraph Diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3.
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  return g;
}

TEST(DigraphTest, EdgesAndDegrees) {
  Digraph g = Diamond();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.InDegree(3), 2);
  EXPECT_EQ(g.Edges().size(), 4u);
}

TEST(DigraphTest, DuplicateEdgeIgnored) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(DigraphTest, Equality) {
  Digraph a = Diamond();
  Digraph b(4);
  // Same edges inserted in a different order.
  b.AddEdge(2, 3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(0, 1);
  EXPECT_EQ(a, b);
  b.AddEdge(3, 0);
  EXPECT_FALSE(a == b);
}

TEST(ReachabilityTest, ForwardAndBackward) {
  Digraph g = Diamond();
  EXPECT_EQ(ReachableFrom(g, 0).ToVector(), std::vector<int>({0, 1, 2, 3}));
  EXPECT_EQ(ReachableFrom(g, 1).ToVector(), std::vector<int>({1, 3}));
  EXPECT_EQ(ReachesTo(g, 3).ToVector(), std::vector<int>({0, 1, 2, 3}));
  EXPECT_EQ(ReachesTo(g, 1).ToVector(), std::vector<int>({0, 1}));
}

TEST(ReachabilityTest, TransitiveClosure) {
  Digraph g = Diamond();
  auto closure = TransitiveClosure(g);
  EXPECT_EQ(closure[0].count(), 4);
  EXPECT_EQ(closure[3].count(), 1);  // reflexive only
}

TEST(TopologicalSortTest, ValidOrder) {
  Digraph g = Diamond();
  ASSERT_OK_AND_ASSIGN(std::vector<int> order, TopologicalSort(g));
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](int x) {
    return std::find(order.begin(), order.end(), x) - order.begin();
  };
  for (const auto& [u, v] : g.Edges()) EXPECT_LT(pos(u), pos(v));
}

TEST(TopologicalSortTest, DetectsCycle) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  EXPECT_FALSE(TopologicalSort(g).ok());
  EXPECT_TRUE(HasCycle(g));
  EXPECT_FALSE(HasCycle(Diamond()));
}

TEST(ShortcutTest, DirectPlusLongerPath) {
  Digraph g = Diamond();
  g.AddEdge(0, 3);  // shortcut: 0->3 with 0->1->3
  auto shortcuts = FindShortcuts(g);
  ASSERT_EQ(shortcuts.size(), 1u);
  EXPECT_EQ(shortcuts[0], std::make_pair(0, 3));
  EXPECT_TRUE(HasSimplePathThroughThirdNode(g, 0, 3));
  EXPECT_FALSE(HasSimplePathThroughThirdNode(g, 0, 1));
}

TEST(ShortcutTest, DiamondAloneIsNotAShortcut) {
  EXPECT_TRUE(FindShortcuts(Diamond()).empty());
}

TEST(ShortcutTest, CycleDoesNotFakeASimplePath) {
  // 0 -> 1, 1 -> 0, 0 -> 2: the walk 0 -> 1 -> 0 -> 2 is not simple, so
  // (0, 2) must NOT be reported as a shortcut.
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(0, 2);
  EXPECT_FALSE(HasSimplePathThroughThirdNode(g, 0, 2));
  // But adding 1 -> 2 creates a genuine simple path 0 -> 1 -> 2.
  g.AddEdge(1, 2);
  EXPECT_TRUE(HasSimplePathThroughThirdNode(g, 0, 2));
}

TEST(SimplePathTest, EnumerateAllPaths) {
  Digraph g = Diamond();
  ASSERT_OK_AND_ASSIGN(auto paths, EnumerateSimplePaths(g, 0, 3));
  ASSERT_EQ(paths.size(), 2u);
  std::sort(paths.begin(), paths.end());
  EXPECT_EQ(paths[0], std::vector<int>({0, 1, 3}));
  EXPECT_EQ(paths[1], std::vector<int>({0, 2, 3}));
}

TEST(SimplePathTest, TrivialPathWhenEndpointsEqual) {
  Digraph g = Diamond();
  ASSERT_OK_AND_ASSIGN(auto paths, EnumerateSimplePaths(g, 2, 2));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], std::vector<int>({2}));
}

TEST(SimplePathTest, NoPath) {
  Digraph g = Diamond();
  ASSERT_OK_AND_ASSIGN(auto paths, EnumerateSimplePaths(g, 3, 0));
  EXPECT_TRUE(paths.empty());
}

TEST(SimplePathTest, LimitEnforced) {
  // Complete bipartite-ish layered graph with many paths.
  Digraph g(8);
  for (int a = 1; a <= 3; ++a) {
    g.AddEdge(0, a);
    for (int b = 4; b <= 6; ++b) g.AddEdge(a, b);
  }
  for (int b = 4; b <= 6; ++b) g.AddEdge(b, 7);
  // 3 * 3 = 9 paths from 0 to 7.
  ASSERT_OK_AND_ASSIGN(auto paths, EnumerateSimplePaths(g, 0, 7));
  EXPECT_EQ(paths.size(), 9u);
  EXPECT_FALSE(EnumerateSimplePaths(g, 0, 7, /*limit=*/4).ok());
}

TEST(SimplePathTest, IsSimplePath) {
  Digraph g = Diamond();
  EXPECT_TRUE(IsSimplePath(g, {0, 1, 3}));
  EXPECT_TRUE(IsSimplePath(g, {2}));
  EXPECT_FALSE(IsSimplePath(g, {0, 3}));        // no edge
  EXPECT_FALSE(IsSimplePath(g, {}));            // empty
  Digraph cyc(2);
  cyc.AddEdge(0, 1);
  cyc.AddEdge(1, 0);
  EXPECT_FALSE(IsSimplePath(cyc, {0, 1, 0}));   // repeated node
}

TEST(DotTest, RendersNodesAndEdges) {
  Digraph g(2);
  g.AddEdge(0, 1);
  std::string dot =
      ToDot(g, [](int u) { return u == 0 ? "child" : "parent"; });
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("child"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(DotTest, OmitsUnlabeledNodes) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  std::string dot = ToDot(g, [](int u) -> std::string {
    return u == 2 ? "" : "n" + std::to_string(u);
  });
  EXPECT_EQ(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

}  // namespace
}  // namespace olapdc
