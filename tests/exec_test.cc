// Tests for the work-stealing execution layer: task-execution
// guarantees of WorkStealingPool/TaskGroup (every spawned task runs
// exactly once, nested groups make progress even on a one-worker pool)
// and the Chase-Lev TaskDeque's owner/thief protocol under concurrency.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "exec/task_deque.h"
#include "exec/work_stealing_pool.h"

namespace olapdc {
namespace exec {
namespace {

TEST(WorkStealingPoolTest, RunsEveryTaskExactlyOnce) {
  WorkStealingPool pool(4);
  constexpr int kTasks = 2000;
  std::vector<std::atomic<int>> runs(kTasks);
  {
    TaskGroup group(&pool);
    for (int i = 0; i < kTasks; ++i) {
      group.Spawn([&runs, i] { runs[i].fetch_add(1); });
    }
    group.Wait();
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  EXPECT_GE(pool.Stats().tasks_executed, static_cast<uint64_t>(kTasks));
}

TEST(WorkStealingPoolTest, WaitFromExternalThreadBlocksUntilDone) {
  WorkStealingPool pool(2);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Spawn([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      done.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 64);
}

// A task that spawns a child group and waits on it must not deadlock,
// even when the pool has a single worker: Wait() on a worker thread
// helps run queued tasks instead of blocking.
TEST(WorkStealingPoolTest, NestedGroupOnOneWorkerPoolDoesNotDeadlock) {
  WorkStealingPool pool(1);
  std::atomic<int> inner_runs{0};
  {
    TaskGroup outer(&pool);
    for (int i = 0; i < 8; ++i) {
      outer.Spawn([&pool, &inner_runs] {
        TaskGroup inner(&pool);
        for (int j = 0; j < 4; ++j) {
          inner.Spawn([&inner_runs] { inner_runs.fetch_add(1); });
        }
        inner.Wait();
      });
    }
    outer.Wait();
  }
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(WorkStealingPoolTest, CurrentWorkerIdOnlyInsideTasks) {
  EXPECT_EQ(WorkStealingPool::CurrentWorkerId(), -1);
  WorkStealingPool pool(2);
  std::atomic<int> in_range{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) {
    group.Spawn([&] {
      int id = WorkStealingPool::CurrentWorkerId();
      if (id >= 0 && id < pool.num_threads()) in_range.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(in_range.load(), 32);
}

// Slow tasks spawned from inside the pool land in one worker's deque;
// with more sleepers than producers, the other workers must steal to
// stay busy.
TEST(WorkStealingPoolTest, StealsHappenUnderImbalance) {
  WorkStealingPool pool(4);
  std::atomic<int> done{0};
  {
    TaskGroup group(&pool);
    group.Spawn([&] {
      // All 128 children go into this worker's own deque.
      for (int i = 0; i < 128; ++i) {
        group.Spawn([&done] {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          done.fetch_add(1);
        });
      }
    });
    group.Wait();
  }
  EXPECT_EQ(done.load(), 128);
  EXPECT_GT(pool.Stats().steals, 0u);
}

TEST(WorkStealingPoolTest, ProcessPoolIsSharedAndSized) {
  WorkStealingPool& a = ProcessPool();
  WorkStealingPool& b = ProcessPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
}

TEST(WorkStealingPoolTest, EnvThreadCountParsesPositiveIntegers) {
  // No env mutation here (other tests may run concurrently); just
  // check the current value is sane.
  EXPECT_GE(EnvThreadCount(), 0);
}

// Deque protocol: one owner pushes/pops while thieves steal; every
// pushed item must be consumed exactly once, none twice, none lost.
TEST(TaskDequeTest, ConservationUnderConcurrentSteals) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  TaskDeque<int> deque;
  std::vector<std::unique_ptr<int>> items;
  items.reserve(kItems);
  for (int i = 0; i < kItems; ++i) items.push_back(std::make_unique<int>(i));

  std::vector<std::atomic<int>> seen(kItems);
  std::atomic<bool> owner_done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (true) {
        int* item = deque.Steal();
        if (item != nullptr) {
          seen[*item].fetch_add(1);
          continue;
        }
        if (owner_done.load()) {
          // Re-check once after observing the owner finish: anything
          // still in the deque is now stable.
          item = deque.Steal();
          if (item == nullptr) break;
          seen[*item].fetch_add(1);
        }
      }
    });
  }

  // Owner: push in batches, pop some back (LIFO), leave the rest to
  // the thieves.
  int pushed = 0;
  while (pushed < kItems) {
    const int batch = std::min(64, kItems - pushed);
    for (int i = 0; i < batch; ++i) deque.Push(items[pushed + i].get());
    pushed += batch;
    for (int i = 0; i < batch / 2; ++i) {
      int* item = deque.Pop();
      if (item == nullptr) break;
      seen[*item].fetch_add(1);
    }
  }
  while (int* item = deque.Pop()) seen[*item].fetch_add(1);
  owner_done.store(true);
  for (std::thread& t : thieves) t.join();
  while (int* item = deque.Steal()) seen[*item].fetch_add(1);

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

TEST(TaskDequeTest, GrowsPastInitialCapacity) {
  TaskDeque<int> deque;
  std::vector<std::unique_ptr<int>> items;
  constexpr int kItems = 500;  // > initial capacity of 64
  for (int i = 0; i < kItems; ++i) {
    items.push_back(std::make_unique<int>(i));
    deque.Push(items.back().get());
  }
  // LIFO for the owner.
  for (int i = kItems - 1; i >= 0; --i) {
    int* item = deque.Pop();
    ASSERT_NE(item, nullptr);
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(deque.Pop(), nullptr);
}

}  // namespace
}  // namespace exec
}  // namespace olapdc
