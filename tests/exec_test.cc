// Tests for the work-stealing execution layer: task-execution
// guarantees of WorkStealingPool/TaskGroup (every spawned task runs
// exactly once, nested groups make progress even on a one-worker pool)
// and the Chase-Lev TaskDeque's owner/thief protocol under concurrency.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "exec/task_deque.h"
#include "exec/work_stealing_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace olapdc {
namespace exec {
namespace {

TEST(WorkStealingPoolTest, RunsEveryTaskExactlyOnce) {
  WorkStealingPool pool(4);
  constexpr int kTasks = 2000;
  std::vector<std::atomic<int>> runs(kTasks);
  {
    TaskGroup group(&pool);
    for (int i = 0; i < kTasks; ++i) {
      group.Spawn([&runs, i] { runs[i].fetch_add(1); });
    }
    group.Wait();
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  EXPECT_GE(pool.Stats().tasks_executed, static_cast<uint64_t>(kTasks));
}

TEST(WorkStealingPoolTest, WaitFromExternalThreadBlocksUntilDone) {
  WorkStealingPool pool(2);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Spawn([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      done.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 64);
}

// A task that spawns a child group and waits on it must not deadlock,
// even when the pool has a single worker: Wait() on a worker thread
// helps run queued tasks instead of blocking.
TEST(WorkStealingPoolTest, NestedGroupOnOneWorkerPoolDoesNotDeadlock) {
  WorkStealingPool pool(1);
  std::atomic<int> inner_runs{0};
  {
    TaskGroup outer(&pool);
    for (int i = 0; i < 8; ++i) {
      outer.Spawn([&pool, &inner_runs] {
        TaskGroup inner(&pool);
        for (int j = 0; j < 4; ++j) {
          inner.Spawn([&inner_runs] { inner_runs.fetch_add(1); });
        }
        inner.Wait();
      });
    }
    outer.Wait();
  }
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(WorkStealingPoolTest, CurrentWorkerIdOnlyInsideTasks) {
  EXPECT_EQ(WorkStealingPool::CurrentWorkerId(), -1);
  WorkStealingPool pool(2);
  std::atomic<int> in_range{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) {
    group.Spawn([&] {
      int id = WorkStealingPool::CurrentWorkerId();
      if (id >= 0 && id < pool.num_threads()) in_range.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(in_range.load(), 32);
}

// Slow tasks spawned from inside the pool land in one worker's deque;
// with more sleepers than producers, the other workers must steal to
// stay busy.
TEST(WorkStealingPoolTest, StealsHappenUnderImbalance) {
  WorkStealingPool pool(4);
  std::atomic<int> done{0};
  {
    TaskGroup group(&pool);
    group.Spawn([&] {
      // All 128 children go into this worker's own deque.
      for (int i = 0; i < 128; ++i) {
        group.Spawn([&done] {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          done.fetch_add(1);
        });
      }
    });
    group.Wait();
  }
  EXPECT_EQ(done.load(), 128);
  EXPECT_GT(pool.Stats().steals, 0u);
}

TEST(WorkStealingPoolTest, ProcessPoolIsSharedAndSized) {
  WorkStealingPool& a = ProcessPool();
  WorkStealingPool& b = ProcessPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
}

TEST(WorkStealingPoolTest, EnvThreadCountParsesPositiveIntegers) {
  // No env mutation here (other tests may run concurrently); just
  // check the current value is sane.
  EXPECT_GE(EnvThreadCount(), 0);
}

// ---------------------------------------------------------------------------
// Steal-safe trace propagation (obs/span.h contract): the TraceContext
// captured at Spawn() must be reinstalled on whichever thread executes
// the task, so a span opened inside the task parents to the spawner's
// open span — identically whether the task ran in place, was helped,
// drained from the injector, or was stolen.

class TracePropagationTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::TraceSink::Global().EnableRing(64); }
  void TearDown() override { obs::TraceSink::Global().Close(); }
};

// External-thread submit goes through the injector; the worker that
// drains it is by definition not the submitter.
TEST_F(TracePropagationTest, ParentageSurvivesInjectorMigration) {
  WorkStealingPool pool(2);
  uint64_t outer_id = 0;
  uint64_t child_parent = 0;
  bool child_stolen = false;
  {
    obs::ObsSpan outer("test.injector_outer");
    outer_id = outer.id();
    ASSERT_NE(outer_id, 0u);
    TaskGroup group(&pool);
    group.Spawn([&] {
      child_stolen = WorkStealingPool::CurrentTaskStolen();
      obs::ObsSpan child("test.injector_child");
      child_parent = child.parent();
    });
    group.Wait();
  }
  EXPECT_TRUE(child_stolen);  // injector drain counts as a migration
  EXPECT_EQ(child_parent, outer_id);
}

// Deterministic forced steal: on a two-worker pool the spawning worker
// pushes the child into its own deque and then spin-waits *without
// helping*, so the only way the child can run is a steal by the other
// worker. A naive per-thread nesting stack would give the child no
// parent here; explicit TraceContext propagation keeps outer -> child.
TEST_F(TracePropagationTest, ParentageSurvivesForcedSteal) {
  WorkStealingPool pool(2);
  std::atomic<bool> child_done{false};
  std::atomic<uint64_t> outer_id{0};
  std::atomic<uint64_t> child_parent{0};
  std::atomic<bool> child_stolen{false};
  {
    TaskGroup group(&pool);
    group.Spawn([&] {
      obs::ObsSpan outer("test.steal_outer");
      outer_id.store(outer.id());
      group.Spawn([&] {
        child_stolen.store(WorkStealingPool::CurrentTaskStolen());
        obs::ObsSpan child("test.steal_child");
        child_parent.store(child.parent());
        child_done.store(true);
      });
      // Busy-wait without running queued tasks: forces the other worker
      // to steal the child. Bounded only by the test timeout.
      while (!child_done.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
    group.Wait();
  }
  EXPECT_TRUE(child_stolen.load());
  EXPECT_NE(outer_id.load(), 0u);
  EXPECT_EQ(child_parent.load(), outer_id.load());
}

// The unstolen control for the test above: a one-worker pool cannot
// steal, so the child runs on the spawning worker via help-while-
// waiting — and the parentage must come out the same.
TEST_F(TracePropagationTest, ParentageIdenticalWhenNotStolen) {
  WorkStealingPool pool(1);
  std::atomic<uint64_t> outer_id{0};
  std::atomic<uint64_t> child_parent{0};
  std::atomic<bool> child_stolen{true};
  {
    TaskGroup group(&pool);
    group.Spawn([&] {
      obs::ObsSpan outer("test.local_outer");
      outer_id.store(outer.id());
      TaskGroup inner(&pool);
      inner.Spawn([&] {
        child_stolen.store(WorkStealingPool::CurrentTaskStolen());
        obs::ObsSpan child("test.local_child");
        child_parent.store(child.parent());
      });
      inner.Wait();
    });
    group.Wait();
  }
  EXPECT_FALSE(child_stolen.load());
  EXPECT_NE(outer_id.load(), 0u);
  EXPECT_EQ(child_parent.load(), outer_id.load());
}

// After a task closes, its spans must not leak into whatever the worker
// runs next: the pool restores the worker's previous (empty) context.
TEST_F(TracePropagationTest, ContextDoesNotLeakAcrossTasks) {
  WorkStealingPool pool(1);
  std::atomic<uint64_t> second_parent{1};  // sentinel: must become 0
  {
    TaskGroup group(&pool);
    group.Spawn([&] { obs::ObsSpan span("test.first"); });
    group.Wait();
  }
  {
    TaskGroup group(&pool);
    group.Spawn([&] { second_parent.store(obs::CurrentTraceContext().span_id); });
    group.Wait();
  }
  EXPECT_EQ(second_parent.load(), 0u);
}

// Context reinstalls with a live parent span are counted under
// olapdc.exec.ctx_restores; tasks spawned with no open span are not.
TEST_F(TracePropagationTest, ContextRestoresAreCounted) {
  obs::MetricsRegistry::Global().Reset();
  obs::MetricsRegistry::Global().Enable();
  WorkStealingPool pool(2);
  {
    TaskGroup group(&pool);
    group.Spawn([] {});  // no open span at spawn: not a restore
    group.Wait();
  }
  {
    obs::ObsSpan outer("test.counted_outer");
    TaskGroup group(&pool);
    for (int i = 0; i < 4; ++i) group.Spawn([] {});
    group.Wait();
  }
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  obs::MetricsRegistry::Global().Disable();
  obs::MetricsRegistry::Global().Reset();
  EXPECT_EQ(snapshot.counter("olapdc.exec.ctx_restores"), 4u);
}

// Deque protocol: one owner pushes/pops while thieves steal; every
// pushed item must be consumed exactly once, none twice, none lost.
TEST(TaskDequeTest, ConservationUnderConcurrentSteals) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  TaskDeque<int> deque;
  std::vector<std::unique_ptr<int>> items;
  items.reserve(kItems);
  for (int i = 0; i < kItems; ++i) items.push_back(std::make_unique<int>(i));

  std::vector<std::atomic<int>> seen(kItems);
  std::atomic<bool> owner_done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (true) {
        int* item = deque.Steal();
        if (item != nullptr) {
          seen[*item].fetch_add(1);
          continue;
        }
        if (owner_done.load()) {
          // Re-check once after observing the owner finish: anything
          // still in the deque is now stable.
          item = deque.Steal();
          if (item == nullptr) break;
          seen[*item].fetch_add(1);
        }
      }
    });
  }

  // Owner: push in batches, pop some back (LIFO), leave the rest to
  // the thieves.
  int pushed = 0;
  while (pushed < kItems) {
    const int batch = std::min(64, kItems - pushed);
    for (int i = 0; i < batch; ++i) deque.Push(items[pushed + i].get());
    pushed += batch;
    for (int i = 0; i < batch / 2; ++i) {
      int* item = deque.Pop();
      if (item == nullptr) break;
      seen[*item].fetch_add(1);
    }
  }
  while (int* item = deque.Pop()) seen[*item].fetch_add(1);
  owner_done.store(true);
  for (std::thread& t : thieves) t.join();
  while (int* item = deque.Steal()) seen[*item].fetch_add(1);

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

TEST(TaskDequeTest, GrowsPastInitialCapacity) {
  TaskDeque<int> deque;
  std::vector<std::unique_ptr<int>> items;
  constexpr int kItems = 500;  // > initial capacity of 64
  for (int i = 0; i < kItems; ++i) {
    items.push_back(std::make_unique<int>(i));
    deque.Push(items.back().get());
  }
  // LIFO for the owner.
  for (int i = kItems - 1; i >= 0; --i) {
    int* item = deque.Pop();
    ASSERT_NE(item, nullptr);
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(deque.Pop(), nullptr);
}

}  // namespace
}  // namespace exec
}  // namespace olapdc
