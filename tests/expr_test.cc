// Tests for the constraint AST: factories, root inference, validation,
// into-constraint detection, structural equality.

#include <gtest/gtest.h>

#include "constraint/expr.h"
#include "core/location_example.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, LocationHierarchy());
    store_ = schema_->FindCategory("Store");
    city_ = schema_->FindCategory("City");
    country_ = schema_->FindCategory("Country");
    state_ = schema_->FindCategory("State");
  }

  HierarchySchemaPtr schema_;
  CategoryId store_, city_, country_, state_;
};

TEST_F(ExprTest, FactoriesProduceExpectedKinds) {
  EXPECT_EQ(MakeTrue()->kind, ExprKind::kTrue);
  EXPECT_EQ(MakeFalse()->kind, ExprKind::kFalse);
  EXPECT_EQ(MakeBool(true), MakeTrue());
  EXPECT_EQ(MakePathAtom({store_, city_})->kind, ExprKind::kPathAtom);
  EXPECT_EQ(MakeEqualityAtom(city_, country_, "USA")->kind,
            ExprKind::kEqualityAtom);
  EXPECT_EQ(MakeComposedAtom(store_, country_)->kind,
            ExprKind::kComposedAtom);
  EXPECT_EQ(MakeThroughAtom(store_, city_, country_)->kind,
            ExprKind::kThroughAtom);
  EXPECT_TRUE(MakePathAtom({store_, city_})->IsAtom());
  EXPECT_FALSE(MakeTrue()->IsAtom());
  EXPECT_TRUE(MakeTrue()->IsLiteralTruth());
}

TEST_F(ExprTest, InferRoot) {
  ExprPtr e = MakeImplies(MakeEqualityAtom(city_, city_, "Washington"),
                          MakePathAtom({city_, country_}));
  ASSERT_OK_AND_ASSIGN(CategoryId root, InferRoot(e));
  EXPECT_EQ(root, city_);

  // Mixed roots rejected.
  ExprPtr mixed = MakeAnd({MakePathAtom({store_, city_}),
                           MakePathAtom({city_, country_})});
  EXPECT_EQ(InferRoot(mixed).status().code(), StatusCode::kInvalidArgument);

  // No atoms: NotFound.
  EXPECT_EQ(InferRoot(MakeTrue()).status().code(), StatusCode::kNotFound);
}

TEST_F(ExprTest, MakeConstraintValidates) {
  // Valid.
  EXPECT_OK(MakeConstraint(*schema_, MakePathAtom({store_, city_})).status());
  // Root at All rejected.
  EXPECT_FALSE(
      MakeConstraint(*schema_, MakeComposedAtom(schema_->all(), city_)).ok());
  // Path atom that is not a schema path rejected (Store -> Country has
  // no edge).
  EXPECT_FALSE(
      MakeConstraint(*schema_, MakePathAtom({store_, country_})).ok());
  // Path atom with repeated category rejected (not simple).
  EXPECT_FALSE(MakeConstraint(*schema_,
                              MakePathAtom({store_, city_, state_, city_}))
                   .ok());
  // Constraint with no atoms needs an explicit root.
  EXPECT_FALSE(MakeConstraint(*schema_, MakeFalse()).ok());
  EXPECT_OK(MakeConstraintWithRoot(*schema_, store_, MakeFalse()).status());
}

TEST_F(ExprTest, IsIntoConstraint) {
  ASSERT_OK_AND_ASSIGN(
      DimensionConstraint into,
      MakeConstraint(*schema_, MakePathAtom({store_, city_})));
  CategoryId child, parent;
  EXPECT_TRUE(IsIntoConstraint(into, &child, &parent));
  EXPECT_EQ(child, store_);
  EXPECT_EQ(parent, city_);

  ASSERT_OK_AND_ASSIGN(
      DimensionConstraint longer,
      MakeConstraint(*schema_, MakePathAtom({store_, city_, state_})));
  EXPECT_FALSE(IsIntoConstraint(longer, nullptr, nullptr));

  ASSERT_OK_AND_ASSIGN(
      DimensionConstraint wrapped,
      MakeConstraint(*schema_, MakeNot(MakePathAtom({store_, city_}))));
  EXPECT_FALSE(IsIntoConstraint(wrapped, nullptr, nullptr));
}

TEST_F(ExprTest, ExprEquals) {
  ExprPtr a = MakeAnd({MakePathAtom({store_, city_}),
                       MakeEqualityAtom(store_, country_, "USA")});
  ExprPtr b = MakeAnd({MakePathAtom({store_, city_}),
                       MakeEqualityAtom(store_, country_, "USA")});
  ExprPtr c = MakeAnd({MakePathAtom({store_, city_}),
                       MakeEqualityAtom(store_, country_, "Mexico")});
  EXPECT_TRUE(ExprEquals(a, b));
  EXPECT_FALSE(ExprEquals(a, c));
  EXPECT_FALSE(ExprEquals(a, MakeOr({MakePathAtom({store_, city_})})));
}

TEST_F(ExprTest, CollectAtomsAndConstants) {
  ExprPtr e = MakeOr({MakeEqualityAtom(state_, country_, "Mexico"),
                      MakeEqualityAtom(state_, country_, "USA"),
                      MakePathAtom({state_, country_})});
  std::vector<const Expr*> atoms;
  CollectAtoms(e, &atoms);
  EXPECT_EQ(atoms.size(), 3u);
  std::vector<std::string> constants;
  CollectConstantsFor(e, country_, &constants);
  EXPECT_EQ(constants.size(), 2u);
  constants.clear();
  CollectConstantsFor(e, state_, &constants);
  EXPECT_TRUE(constants.empty());
}

}  // namespace
}  // namespace olapdc
