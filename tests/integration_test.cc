// End-to-end integration: generate schema -> instance -> facts, then
// drive the aggregate navigator and check every answer against direct
// computation from base facts. This exercises the full pipeline the
// paper motivates: dimension constraints -> DIMSAT -> summarizability
// -> correct aggregate navigation.

#include <gtest/gtest.h>

#include <map>

#include "constraint/evaluator.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "core/summarizability.h"
#include "olap/navigator.h"
#include "tests/test_util.h"
#include "workload/instance_generator.h"
#include "workload/realistic.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

void RunNavigatorPipeline(const DimensionSchema& ds, uint64_t seed,
                          NavigatorMode mode) {
  InstanceGenOptions gen;
  gen.branching = 2;
  gen.copies = 2;
  auto d_result = GenerateInstanceFromFrozen(ds, gen);
  ASSERT_TRUE(d_result.ok()) << d_result.status().ToString();
  const DimensionInstance& d = *d_result;
  ASSERT_TRUE(SatisfiesAll(d, ds.constraints()));

  FactGenOptions fact_options;
  fact_options.seed = seed;
  FactTable facts = GenerateFacts(d, fact_options);
  ASSERT_OK(facts.ValidateAgainst(d));

  const HierarchySchema& schema = ds.hierarchy();
  // Materialize every category except All and the bottoms.
  std::map<CategoryId, CubeViewResult> materialized;
  std::vector<CategoryId> categories;
  DynamicBitset excluded(schema.num_categories());
  excluded.set(schema.all());
  for (CategoryId b : schema.bottom_categories()) excluded.set(b);
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    if (!excluded.test(c)) {
      materialized[c] = ComputeCubeView(d, facts, c, AggFn::kSum);
    }
  }

  NavigatorOptions options;
  options.mode = mode;
  int answered = 0;
  for (CategoryId target = 0; target < schema.num_categories(); ++target) {
    if (excluded.test(target) && target != schema.all()) continue;
    auto answer =
        AnswerFromViews(ds, d, materialized, target, AggFn::kSum, options);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    if (!answer->answered) continue;
    ++answered;
    CubeViewResult direct = ComputeCubeView(d, facts, target, AggFn::kSum);
    EXPECT_TRUE(CubeViewsEqual(answer->view, direct))
        << "navigator answer diverged for "
        << schema.CategoryName(target);
  }
  // At least the materialized categories themselves are answerable.
  EXPECT_GT(answered, 0);
}

TEST(IntegrationTest, LocationPipelineSchemaLevel) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  RunNavigatorPipeline(ds, 1, NavigatorMode::kSchemaLevel);
}

TEST(IntegrationTest, LocationPipelineInstanceLevel) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  RunNavigatorPipeline(ds, 2, NavigatorMode::kInstanceLevel);
}

TEST(IntegrationTest, HealthcarePipeline) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, HealthcareSchema());
  RunNavigatorPipeline(ds, 3, NavigatorMode::kSchemaLevel);
}

TEST(IntegrationTest, ProductPipeline) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, ProductSchema());
  RunNavigatorPipeline(ds, 4, NavigatorMode::kSchemaLevel);
}

class GeneratedPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedPipelineTest, NavigatorNeverLies) {
  const int seed = GetParam();
  SchemaGenOptions schema_options;
  schema_options.num_levels = 2;
  schema_options.categories_per_level = 2;
  schema_options.extra_edge_prob = 0.35;
  schema_options.seed = static_cast<uint64_t>(seed) * 101 + 7;
  auto hierarchy = GenerateLayeredHierarchy(schema_options);
  ASSERT_TRUE(hierarchy.ok());
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.5;
  constraint_options.num_choice_constraints = 1;
  constraint_options.seed = seed;
  auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
  ASSERT_TRUE(ds.ok());
  if (!Dimsat(*ds, ds->hierarchy().FindCategory("Base")).satisfiable) {
    GTEST_SKIP() << "generated schema unsatisfiable at Base";
  }
  RunNavigatorPipeline(*ds, seed, NavigatorMode::kSchemaLevel);
  RunNavigatorPipeline(*ds, seed, NavigatorMode::kInstanceLevel);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedPipelineTest, ::testing::Range(0, 10));

// Instance-level navigation is a superset of schema-level navigation:
// anything the schema proves, the instance admits too (Theorem 1 is an
// instance property; the schema quantifies over instances).
class ModeMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(ModeMonotonicityTest, SchemaRewritesAreInstanceRewrites) {
  const int seed = GetParam();
  auto ds_result = LocationSchema();
  ASSERT_TRUE(ds_result.ok());
  const DimensionSchema& ds = *ds_result;
  InstanceGenOptions gen;
  gen.branching = 1 + seed % 3;
  auto d_result = GenerateInstanceFromFrozen(ds, gen);
  ASSERT_TRUE(d_result.ok());
  const DimensionInstance& d = *d_result;
  const HierarchySchema& schema = ds.hierarchy();

  std::vector<CategoryId> middles;
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    if (c != schema.all() && schema.graph().InDegree(c) > 0) {
      middles.push_back(c);
    }
  }
  for (CategoryId target : middles) {
    NavigatorOptions schema_mode;
    auto schema_rewrite =
        FindRewriteSet(ds, d, middles, target, schema_mode);
    ASSERT_TRUE(schema_rewrite.ok());
    if (!schema_rewrite->has_value()) continue;
    // The exact set found at schema level must verify at instance
    // level too.
    auto inst = IsSummarizableInInstance(d, target, **schema_rewrite);
    ASSERT_TRUE(inst.ok());
    EXPECT_TRUE(*inst) << schema.CategoryName(target);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeMonotonicityTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace olapdc
