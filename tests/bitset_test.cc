// Property tests for the widened DynamicBitset kernels
// (common/bitset.h): every vectorized operation — scalar-unrolled or
// AVX2, inline-buffer or heap — must agree with a std::vector<bool>
// reference model across randomized operation sequences, sizes
// straddling the small-buffer boundary, and both settings of the
// process-global wide-kernel toggle.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/bitset.h"

namespace olapdc {
namespace {

/// Reference model: the same bit-level semantics, one bit at a time.
struct RefBits {
  explicit RefBits(int n) : bits(n, false) {}
  std::vector<bool> bits;

  void Or(const RefBits& o) {
    for (size_t i = 0; i < bits.size(); ++i) bits[i] = bits[i] || o.bits[i];
  }
  void And(const RefBits& o) {
    for (size_t i = 0; i < bits.size(); ++i) bits[i] = bits[i] && o.bits[i];
  }
  void AndNot(const RefBits& o) {
    for (size_t i = 0; i < bits.size(); ++i) bits[i] = bits[i] && !o.bits[i];
  }
  bool AndNotAny(const RefBits& o) const {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (bits[i] && !o.bits[i]) return true;
    }
    return false;
  }
  bool Intersects(const RefBits& o) const {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (bits[i] && o.bits[i]) return true;
    }
    return false;
  }
  int Count() const {
    int c = 0;
    for (bool b : bits) c += b;
    return c;
  }
};

void ExpectSame(const DynamicBitset& got, const RefBits& want) {
  ASSERT_EQ(static_cast<size_t>(got.size()), want.bits.size());
  for (int i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.test(i), want.bits[i]) << "bit " << i;
  }
  EXPECT_EQ(got.count(), want.Count());
  EXPECT_EQ(got.any(), want.Count() > 0);
}

class WideKernelsGuard {
 public:
  explicit WideKernelsGuard(bool enabled) { bitset_kernels::SetWideKernelsEnabled(enabled); }
  ~WideKernelsGuard() { bitset_kernels::SetWideKernelsEnabled(true); }
};

class BitsetKernelTest : public ::testing::TestWithParam<bool> {};

TEST_P(BitsetKernelTest, RandomOpSequencesMatchReference) {
  WideKernelsGuard guard(GetParam());
  std::mt19937_64 rng(20260808);
  // Sizes straddle word boundaries, the unrolled 4-word stride, the
  // AVX2 256-bit stride, and the inline/heap small-buffer boundary
  // (kInlineWords * 64 = 512 bits).
  for (int n : {1, 63, 64, 65, 127, 128, 255, 256, 257, 320, 511, 512, 513,
                640, 1024}) {
    std::uniform_int_distribution<int> bit(0, n - 1);
    std::uniform_int_distribution<int> op(0, 6);
    DynamicBitset a(n), b(n);
    RefBits ra(n), rb(n);
    // Seed ~n/3 random bits on each side.
    for (int i = 0; i < n / 3 + 1; ++i) {
      int x = bit(rng), y = bit(rng);
      a.set(x);
      ra.bits[x] = true;
      b.set(y);
      rb.bits[y] = true;
    }
    for (int step = 0; step < 200; ++step) {
      switch (op(rng)) {
        case 0:
          a |= b;
          ra.Or(rb);
          break;
        case 1:
          a &= b;
          ra.And(rb);
          break;
        case 2:
          a -= b;
          ra.AndNot(rb);
          break;
        case 3: {
          int x = bit(rng);
          a.set(x);
          ra.bits[x] = true;
          break;
        }
        case 4: {
          int x = bit(rng);
          b.set(x);
          rb.bits[x] = true;
          break;
        }
        case 5: {
          int x = bit(rng);
          a.reset(x);
          ra.bits[x] = false;
          break;
        }
        default: {
          int x = bit(rng);
          b.set(x);
          rb.bits[x] = true;
          break;
        }
      }
      ASSERT_EQ(a.AndNotAny(b), ra.AndNotAny(rb)) << "n=" << n;
      ASSERT_EQ(a.IsSubsetOf(b), !ra.AndNotAny(rb)) << "n=" << n;
      ASSERT_EQ(a.Intersects(b), ra.Intersects(rb)) << "n=" << n;
      if (step % 20 == 0) {
        ExpectSame(a, ra);
        ExpectSame(b, rb);
      }
    }
    ExpectSame(a, ra);
    ExpectSame(b, rb);
  }
}

TEST_P(BitsetKernelTest, FusedAndNotAnyAgreesWithMaterializedDifference) {
  WideKernelsGuard guard(GetParam());
  std::mt19937_64 rng(99);
  for (int n : {64, 320, 512, 513, 2048}) {
    std::uniform_int_distribution<int> bit(0, n - 1);
    for (int trial = 0; trial < 50; ++trial) {
      DynamicBitset a(n), b(n);
      for (int i = 0; i < n / 4 + 1; ++i) {
        a.set(bit(rng));
        b.set(bit(rng));
      }
      DynamicBitset diff = a - b;
      EXPECT_EQ(a.AndNotAny(b), diff.any());
      EXPECT_EQ(a.IsSubsetOf(b), diff.none());
    }
  }
}

TEST_P(BitsetKernelTest, SmallBufferBoundaryCopiesAndMoves) {
  WideKernelsGuard guard(GetParam());
  // 512 bits is the last inline size, 513 the first heap size: copies,
  // moves, and assignments across the boundary must preserve content.
  for (int n : {511, 512, 513, 514}) {
    DynamicBitset a(n);
    for (int i = 0; i < n; i += 7) a.set(i);
    DynamicBitset copy(a);
    EXPECT_EQ(copy, a);
    DynamicBitset assigned;
    assigned = a;
    EXPECT_EQ(assigned, a);
    DynamicBitset moved(std::move(copy));
    EXPECT_EQ(moved, a);
    moved = std::move(assigned);
    EXPECT_TRUE(moved.test(0));
    EXPECT_EQ(moved.count(), a.count());
    // Hash is content-determined regardless of storage class.
    DynamicBitset rebuilt(n);
    for (int i = 0; i < n; i += 7) rebuilt.set(i);
    EXPECT_EQ(rebuilt.Hash(), a.Hash());
    EXPECT_EQ(rebuilt, a);
  }
}

TEST_P(BitsetKernelTest, EqualityAndHashIgnoreTailGarbage) {
  WideKernelsGuard guard(GetParam());
  // Partial-word sizes: operations must keep the unused high bits of
  // the last word clear, or equality/count would drift.
  for (int n : {1, 5, 65, 321, 519}) {
    DynamicBitset a(n), b(n);
    for (int i = 0; i < n; ++i) {
      a.set(i);
      b.set(i);
    }
    a -= b;
    EXPECT_EQ(a.count(), 0);
    EXPECT_TRUE(a.none());
    a |= b;
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.Hash(), b.Hash());
    EXPECT_EQ(a.count(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(WideAndScalar, BitsetKernelTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "wide" : "scalar";
                         });

}  // namespace
}  // namespace olapdc
