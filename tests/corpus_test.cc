// Data-driven corpus test: every schema file shipped under data/ must
// load, satisfy the well-formedness rules, keep all categories
// satisfiable, enumerate its frozen dimensions within budget, and
// round-trip through serialization with identical reasoning results.
// Adding a schema file to data/ automatically brings it under test.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/dimsat.h"
#include "core/implication.h"
#include "core/report.h"
#include "io/schema_io.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  std::filesystem::path dir = std::filesystem::path(OLAPDC_SOURCE_DIR) /
                              "data";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".olapdc") {
      files.push_back(entry.path().string());
    }
  }
  OLAPDC_CHECK(!files.empty()) << "corpus directory empty";
  std::sort(files.begin(), files.end());
  return files;
}

class CorpusTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusTest, LoadsAuditsAndRoundTrips) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LoadSchemaFile(GetParam()));
  const HierarchySchema& schema = ds.hierarchy();
  EXPECT_GE(schema.num_categories(), 2);

  // Every category of the shipped schemas is satisfiable.
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    ASSERT_OK_AND_ASSIGN(bool satisfiable, IsCategorySatisfiable(ds, c));
    EXPECT_TRUE(satisfiable) << schema.CategoryName(c);
  }

  // Frozen enumeration completes within a tight budget from every
  // bottom category, and the structures materialize into valid models.
  for (CategoryId b : schema.bottom_categories()) {
    DimsatOptions options;
    options.enumerate_all = true;
    options.max_expand_calls = 100000;
    DimsatResult r = Dimsat(ds, b, options);
    ASSERT_OK(r.status);
    EXPECT_TRUE(r.satisfiable);
    for (const FrozenDimension& f : r.frozen) {
      ASSERT_OK(f.ToInstance(ds).status());
    }
  }

  // Serialization round-trip preserves reasoning.
  ASSERT_OK_AND_ASSIGN(DimensionSchema reparsed,
                       ParseSchemaText(SerializeSchema(ds)));
  for (CategoryId b : schema.bottom_categories()) {
    DimsatOptions options;
    options.enumerate_all = true;
    DimsatResult a = Dimsat(ds, b, options);
    DimsatResult b2 = Dimsat(
        reparsed, reparsed.hierarchy().FindCategory(schema.CategoryName(b)),
        options);
    EXPECT_EQ(a.frozen.size(), b2.frozen.size()) << GetParam();
  }

  // The heterogeneity report renders without error.
  ReportOptions report_options;
  report_options.include_summarizability_matrix = false;
  EXPECT_OK(HeterogeneityReport(ds, report_options).status());
}

INSTANTIATE_TEST_SUITE_P(
    DataDir, CorpusTest, ::testing::ValuesIn(CorpusFiles()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = std::filesystem::path(info.param).stem().string();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace olapdc
