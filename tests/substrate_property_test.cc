// Differential property tests for the substrate against naive
// reference models: DynamicBitset vs std::set, graph reachability /
// transitive closure / shortcut detection vs Floyd-Warshall-style
// references, on randomized inputs with deterministic seeds.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "common/bitset.h"
#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

class BitsetDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(BitsetDifferentialTest, MatchesStdSetUnderRandomOps) {
  std::mt19937_64 rng(GetParam() * 1009 + 5);
  const int universe = 150;
  DynamicBitset a(universe), b(universe);
  std::set<int> ra, rb;
  std::uniform_int_distribution<int> value(0, universe - 1);
  std::uniform_int_distribution<int> op(0, 5);

  for (int step = 0; step < 300; ++step) {
    int v = value(rng);
    switch (op(rng)) {
      case 0:
        a.set(v);
        ra.insert(v);
        break;
      case 1:
        a.reset(v);
        ra.erase(v);
        break;
      case 2:
        b.set(v);
        rb.insert(v);
        break;
      case 3: {
        a |= b;
        for (int x : rb) ra.insert(x);
        break;
      }
      case 4: {
        DynamicBitset inter = a & b;
        std::set<int> rinter;
        for (int x : ra) {
          if (rb.count(x)) rinter.insert(x);
        }
        EXPECT_EQ(inter.ToVector(),
                  std::vector<int>(rinter.begin(), rinter.end()));
        break;
      }
      default: {
        DynamicBitset diff = a - b;
        std::set<int> rdiff;
        for (int x : ra) {
          if (!rb.count(x)) rdiff.insert(x);
        }
        EXPECT_EQ(diff.ToVector(),
                  std::vector<int>(rdiff.begin(), rdiff.end()));
        break;
      }
    }
    ASSERT_EQ(a.ToVector(), std::vector<int>(ra.begin(), ra.end()));
    ASSERT_EQ(a.count(), static_cast<int>(ra.size()));
    ASSERT_EQ(a.none(), ra.empty());
    ASSERT_EQ(a.Intersects(b), [&] {
      for (int x : ra) {
        if (rb.count(x)) return true;
      }
      return false;
    }());
    ASSERT_EQ(a.IsSubsetOf(b), [&] {
      for (int x : ra) {
        if (!rb.count(x)) return false;
      }
      return true;
    }());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetDifferentialTest,
                         ::testing::Range(0, 8));

/// Reference closure by repeated relaxation.
std::vector<std::vector<bool>> ReferenceClosure(const Digraph& g) {
  const int n = g.num_nodes();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (int u = 0; u < n; ++u) reach[u][u] = true;
  for (const auto& [u, v] : g.Edges()) reach[u][v] = true;
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (int j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  return reach;
}

Digraph RandomGraph(std::mt19937_64& rng, int n, double p) {
  Digraph g(n);
  std::uniform_real_distribution<double> coin(0, 1);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && coin(rng) < p) g.AddEdge(u, v);
    }
  }
  return g;
}

class GraphDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphDifferentialTest, ClosureAndReachabilityMatchReference) {
  std::mt19937_64 rng(GetParam() * 37 + 2);
  for (double density : {0.05, 0.15, 0.35}) {
    Digraph g = RandomGraph(rng, 14, density);
    auto reference = ReferenceClosure(g);
    auto closure = TransitiveClosure(g);
    for (int u = 0; u < g.num_nodes(); ++u) {
      DynamicBitset forward = ReachableFrom(g, u);
      for (int v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(closure[u].test(v), reference[u][v])
            << u << "->" << v << " density " << density;
        ASSERT_EQ(forward.test(v), reference[u][v]);
        ASSERT_EQ(ReachesTo(g, v).test(u), reference[u][v]);
      }
    }
    // Topological sort succeeds iff the reference closure is acyclic.
    bool reference_cyclic = false;
    for (int u = 0; u < g.num_nodes(); ++u) {
      for (int v : g.OutNeighbors(u)) {
        reference_cyclic |= reference[v][u];
      }
    }
    EXPECT_EQ(HasCycle(g), reference_cyclic);
  }
}

TEST_P(GraphDifferentialTest, ShortcutsMatchPathEnumerationOnDags) {
  std::mt19937_64 rng(GetParam() * 53 + 9);
  // Random DAG: edges only from lower to higher ids.
  const int n = 10;
  Digraph g(n);
  std::uniform_real_distribution<double> coin(0, 1);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (coin(rng) < 0.3) g.AddEdge(u, v);
    }
  }
  // Reference: edge (u,v) is a shortcut iff >= 1 simple path u..v of
  // length >= 2 exists (enumerate them all).
  for (const auto& [u, v] : g.Edges()) {
    auto paths = EnumerateSimplePaths(g, u, v);
    ASSERT_TRUE(paths.ok());
    bool reference = false;
    for (const auto& path : *paths) reference |= path.size() > 2;
    EXPECT_EQ(HasSimplePathThroughThirdNode(g, u, v), reference)
        << u << "->" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphDifferentialTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace olapdc
