// Tests for schema diagnostics: redundant-constraint detection,
// constraint-set minimization, and unsatisfiable cores.

#include <gtest/gtest.h>

#include "core/diagnostics.h"
#include "core/implication.h"
#include "core/location_example.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::MakeSchema;
using testing_util::ParseC;

TEST(RedundancyTest, DetectsImpliedConstraint) {
  // With the detour A -> C -> B available, the composed atom A.B is
  // strictly weaker than the into constraint A/B: only the latter is
  // redundant.
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"A", "C"}, {"C", "B"}, {"B", "All"}},
      {"A/B", "A.B"});
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> redundant,
                       FindRedundantConstraints(ds));
  EXPECT_EQ(redundant, std::vector<size_t>({1}));
}

TEST(RedundancyTest, MutuallyRedundantPairBothReported) {
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"B", "All"}}, {"A/B", "A/B"});
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> redundant,
                       FindRedundantConstraints(ds));
  EXPECT_EQ(redundant.size(), 2u);
}

TEST(RedundancyTest, LocationSchemaIsIrredundant) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> redundant,
                       FindRedundantConstraints(ds));
  EXPECT_TRUE(redundant.empty())
      << "every locationSch constraint is load-bearing";
}

TEST(MinimizeTest, KeepsSemanticsDropsDuplicates) {
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"A", "C"}, {"B", "All"}, {"C", "All"}},
      {"A/B", "A.B", "A/B & true"});
  ASSERT_OK_AND_ASSIGN(DimensionSchema minimized, MinimizeConstraintSet(ds));
  EXPECT_LT(minimized.constraints().size(), ds.constraints().size());
  // Semantics preserved: each original constraint still implied.
  for (const DimensionConstraint& c : ds.constraints()) {
    ASSERT_OK_AND_ASSIGN(ImplicationResult r, Implies(minimized, c));
    EXPECT_TRUE(r.implied);
  }
  // And minimal: nothing left is redundant.
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> still_redundant,
                       FindRedundantConstraints(minimized));
  EXPECT_TRUE(still_redundant.empty());
}

TEST(UnsatCoreTest, FindsMinimalConflict) {
  // Constraints 0 and 2 conflict; 1 and 3 are innocent bystanders.
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"A", "C"}, {"B", "All"}, {"C", "All"}},
      {"A/B", "A.C | A.B", "!A/B & !A/C", "B/All"});
  CategoryId a = ds.hierarchy().FindCategory("A");
  ASSERT_OK_AND_ASSIGN(bool satisfiable, IsCategorySatisfiable(ds, a));
  ASSERT_FALSE(satisfiable);
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> core, UnsatisfiableCore(ds, a));
  // The core is {2} alone: !A/B & !A/C contradicts C7 by itself.
  EXPECT_EQ(core, std::vector<size_t>({2}));
}

TEST(UnsatCoreTest, TwoConstraintCore) {
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"A", "C"}, {"B", "All"}, {"C", "All"}},
      {"B/All", "A/B", "!A/B | false"});
  CategoryId a = ds.hierarchy().FindCategory("A");
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> core, UnsatisfiableCore(ds, a));
  EXPECT_EQ(core, std::vector<size_t>({1, 2}));
}

TEST(UnsatCoreTest, RejectsSatisfiableCategory) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  EXPECT_EQ(UnsatisfiableCore(ds, ds.hierarchy().FindCategory("Store"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(UnsatCoreTest, Example11Core) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  DimensionSchema extended = ds.WithExtraConstraint(
      ParseC(ds.hierarchy(), "!SaleRegion/Country", "(x)"));
  CategoryId sale_region = ds.hierarchy().FindCategory("SaleRegion");
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> core,
                       UnsatisfiableCore(extended, sale_region));
  // The Example 11 constraint alone kills SaleRegion (C7 provides the
  // other half), so the core is just the new constraint.
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(extended.constraints()[core[0]].label, "(x)");
}

}  // namespace
}  // namespace olapdc
