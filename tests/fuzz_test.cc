// Randomized robustness tests ("fuzz-lite", deterministic seeds):
//  F1 random expression trees survive print -> reparse -> identical AST
//  F2 random byte-ish garbage never crashes the parsers (they return
//     ParseError statuses)
//  F3 random single-edit mutations of a valid instance either stay
//     valid or are rejected with an InvalidModel status naming a
//     condition — never accepted silently as something else.
//  F4 every byte-prefix of valid schema/instance text (truncated file,
//     interrupted transfer) is either parsed or rejected with a
//     positioned error — never crashes, never yields a surprise code.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "constraint/parser.h"
#include "constraint/printer.h"
#include "core/location_example.h"
#include "io/instance_io.h"
#include "io/schema_io.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

/// Random expression tree over the location hierarchy.
ExprPtr RandomExpr(const HierarchySchema& schema, std::mt19937_64& rng,
                   int depth) {
  std::uniform_int_distribution<int> cat_dist(0,
                                              schema.num_categories() - 1);
  auto non_all = [&] {
    CategoryId c;
    do {
      c = cat_dist(rng);
    } while (c == schema.all());
    return c;
  };
  const CategoryId root = schema.FindCategory("Store");

  std::uniform_int_distribution<int> kind_dist(0, depth <= 0 ? 4 : 11);
  switch (kind_dist(rng)) {
    case 0:
      return MakeComposedAtom(root, cat_dist(rng));
    case 1:
      return MakeThroughAtom(root, non_all(), cat_dist(rng));
    case 2:
      return MakeEqualityAtom(root, cat_dist(rng),
                              "k" + std::to_string(rng() % 3));
    case 3:
      return MakeOrderAtom(root, cat_dist(rng),
                           static_cast<CmpOp>(rng() % 4),
                           static_cast<double>(rng() % 100));
    case 4: {
      // A short valid path atom from Store.
      CategoryId next =
          schema.graph().OutNeighbors(root)[rng() %
                                            schema.graph()
                                                .OutNeighbors(root)
                                                .size()];
      return MakePathAtom({root, next});
    }
    case 5:
      return MakeNot(RandomExpr(schema, rng, depth - 1));
    case 6:
      return MakeAnd({RandomExpr(schema, rng, depth - 1),
                      RandomExpr(schema, rng, depth - 1)});
    case 7:
      return MakeOr({RandomExpr(schema, rng, depth - 1),
                     RandomExpr(schema, rng, depth - 1)});
    case 8:
      return MakeImplies(RandomExpr(schema, rng, depth - 1),
                         RandomExpr(schema, rng, depth - 1));
    case 9:
      return MakeEquiv(RandomExpr(schema, rng, depth - 1),
                       RandomExpr(schema, rng, depth - 1));
    case 10:
      return MakeXor(RandomExpr(schema, rng, depth - 1),
                     RandomExpr(schema, rng, depth - 1));
    default:
      return MakeExactlyOne({RandomExpr(schema, rng, depth - 1),
                             RandomExpr(schema, rng, depth - 1),
                             RandomExpr(schema, rng, depth - 1)});
  }
}

class PrintParseFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PrintParseFuzzTest, F1RandomTreesRoundTrip) {
  auto hierarchy = LocationHierarchy();
  ASSERT_TRUE(hierarchy.ok());
  std::mt19937_64 rng(GetParam() * 7919 + 11);
  for (int i = 0; i < 50; ++i) {
    ExprPtr e = RandomExpr(**hierarchy, rng, 4);
    std::string printed = ExprToString(**hierarchy, e);
    auto reparsed = ParseExpr(**hierarchy, printed);
    ASSERT_TRUE(reparsed.ok())
        << printed << ": " << reparsed.status().ToString();
    EXPECT_TRUE(ExprEquals(e, *reparsed)) << printed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintParseFuzzTest, ::testing::Range(0, 8));

TEST(GarbageInputTest, F2ParsersReturnErrorsNotCrashes) {
  auto hierarchy = LocationHierarchy();
  ASSERT_TRUE(hierarchy.ok());
  std::mt19937_64 rng(1234);
  const std::string alphabet =
      "StoreCity/.&|!()<->= '\"0123456789abc_,^#\n\t";
  std::uniform_int_distribution<size_t> char_dist(0, alphabet.size() - 1);
  int parse_failures = 0;
  for (int i = 0; i < 500; ++i) {
    std::uniform_int_distribution<int> len_dist(0, 40);
    std::string garbage;
    const int length = len_dist(rng);
    for (int j = 0; j < length; ++j) {
      garbage.push_back(alphabet[char_dist(rng)]);
    }
    // Must not crash; most inputs fail to parse.
    parse_failures += !ParseExpr(**hierarchy, garbage).ok();
    (void)ParseSchemaText(garbage);
    (void)ParseInstanceText(*hierarchy, garbage);
  }
  EXPECT_GT(parse_failures, 400) << "garbage should rarely parse";
}

class MutationFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationFuzzTest, F3MutatedInstancesNeverValidateWrongly) {
  auto original = LocationInstance();
  ASSERT_TRUE(original.ok());
  const HierarchySchema& schema = original->hierarchy();
  std::mt19937_64 rng(GetParam() * 613 + 7);

  for (int i = 0; i < 40; ++i) {
    // Rebuild the instance with one random extra child/parent edge.
    DimensionInstanceBuilder builder(original->schema());
    builder.set_skip_validation(true);
    for (MemberId m = 0; m < original->num_members(); ++m) {
      const Member& member = original->member(m);
      builder.AddMember(member.key, schema.CategoryName(member.category),
                        member.name);
    }
    for (const auto& [x, y] : original->child_parent().Edges()) {
      builder.AddChildParent(original->member(x).key,
                             original->member(y).key);
    }
    std::uniform_int_distribution<int> member_dist(
        0, original->num_members() - 1);
    MemberId a = member_dist(rng);
    MemberId b = member_dist(rng);
    builder.AddChildParent(original->member(a).key, original->member(b).key);

    Result<DimensionInstance> mutated = builder.Build();
    if (!mutated.ok()) {
      // Rejected during table construction: must be a model violation.
      EXPECT_EQ(mutated.status().code(), StatusCode::kInvalidModel);
      continue;
    }
    // Accepted by construction: the full validator must agree or name
    // a C-condition.
    Status status = mutated->Validate();
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kInvalidModel);
      EXPECT_NE(status.message().find("C"), std::string::npos);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzzTest, ::testing::Range(0, 6));

/// Checks that a parser over every prefix of `text` never crashes and
/// only returns the expected class of statuses, with parse errors
/// carrying a "line N:C:"-style position.
template <typename ParseFn>
void CheckAllPrefixes(const std::string& text, ParseFn parse) {
  for (size_t cut = 0; cut <= text.size(); ++cut) {
    Status status = parse(text.substr(0, cut));
    if (status.ok()) continue;
    EXPECT_TRUE(status.code() == StatusCode::kParseError ||
                status.code() == StatusCode::kInvalidModel ||
                status.code() == StatusCode::kInvalidArgument)
        << "prefix of length " << cut << ": " << status.ToString();
    if (status.code() == StatusCode::kParseError) {
      EXPECT_NE(status.message().find("line "), std::string::npos)
          << "parse error without a position (prefix length " << cut
          << "): " << status.ToString();
    }
  }
}

TEST(TruncatedInputTest, F4SchemaPrefixesFailCleanlyWithPositions) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CheckAllPrefixes(SerializeSchema(ds), [](const std::string& prefix) {
    return ParseSchemaText(prefix).status();
  });
}

TEST(TruncatedInputTest, F4InstancePrefixesFailCleanlyWithPositions) {
  auto hierarchy = LocationHierarchy();
  ASSERT_TRUE(hierarchy.ok());
  auto instance = LocationInstance();
  ASSERT_TRUE(instance.ok());
  CheckAllPrefixes(SerializeInstance(*instance),
                   [&](const std::string& prefix) {
                     return ParseInstanceText(*hierarchy, prefix).status();
                   });
}

TEST(TruncatedInputTest, F4ErrorsCarryLineAndColumn) {
  // Spot-check the positions themselves, not just their presence.
  Result<DimensionSchema> bad_edge =
      ParseSchemaText("category A\nedge A\n");
  ASSERT_FALSE(bad_edge.ok());
  EXPECT_NE(bad_edge.status().message().find("line 2:1:"),
            std::string::npos)
      << bad_edge.status().ToString();

  // An expression error inside a constraint points at the offending
  // token's column in the file, not at an offset into the expression.
  Result<DimensionSchema> bad_expr =
      ParseSchemaText("category A\nedge A All\nconstraint A.Bogus\n");
  ASSERT_FALSE(bad_expr.ok());
  EXPECT_NE(bad_expr.status().message().find("line 3:"), std::string::npos)
      << bad_expr.status().ToString();

  auto hierarchy = LocationHierarchy();
  ASSERT_TRUE(hierarchy.ok());
  Result<DimensionInstance> bad_quote = ParseInstanceText(
      *hierarchy, "member s1 Store 'unterminated\n");
  ASSERT_FALSE(bad_quote.ok());
  EXPECT_NE(bad_quote.status().message().find("line 1:17:"),
            std::string::npos)
      << bad_quote.status().ToString();
}

}  // namespace
}  // namespace olapdc
