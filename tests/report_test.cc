// Tests for the heterogeneity report and the homogeneity test.

#include <gtest/gtest.h>

#include <string>

#include "core/location_example.h"
#include "core/report.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::MakeSchema;

TEST(ReportTest, LocationReportMentionsEverything) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  ASSERT_OK_AND_ASSIGN(std::string report, HeterogeneityReport(ds));
  // Sections.
  for (const char* marker :
       {"== structure ==", "== constraints (7) ==", "== satisfiability ==",
        "== frozen dimensions", "== summarizability matrix"}) {
    EXPECT_NE(report.find(marker), std::string::npos) << marker;
  }
  // Content spot checks.
  EXPECT_NE(report.find("4 frozen dimension(s)"), std::string::npos);
  EXPECT_NE(report.find("all categories satisfiable"), std::string::npos);
  EXPECT_NE(report.find("Washington"), std::string::npos);
  EXPECT_NE(report.find("City->Country"), std::string::npos);  // shortcut
}

TEST(ReportTest, UnsatisfiableCategoryCalledOut) {
  DimensionSchema ds = MakeSchema({{"A", "B"}, {"B", "All"}}, {"!A/B"});
  ReportOptions options;
  options.include_summarizability_matrix = false;
  ASSERT_OK_AND_ASSIGN(std::string report, HeterogeneityReport(ds, options));
  EXPECT_NE(report.find("A: UNSATISFIABLE"), std::string::npos);
  EXPECT_EQ(report.find("summarizability matrix"), std::string::npos);
}

TEST(HomogeneityTest, LocationIsHeterogeneous) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  ASSERT_OK_AND_ASSIGN(bool homogeneous, IsHomogeneousSchema(ds));
  EXPECT_FALSE(homogeneous);
}

TEST(HomogeneityTest, FullyIntoConstrainedChainIsHomogeneous) {
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"B", "C"}, {"C", "All"}}, {"A/B", "B/C"});
  ASSERT_OK_AND_ASSIGN(bool homogeneous, IsHomogeneousSchema(ds));
  EXPECT_TRUE(homogeneous);
}

TEST(HomogeneityTest, UnconstrainedDiamondIsHeterogeneous) {
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"A", "C"}, {"B", "All"}, {"C", "All"}}, {});
  ASSERT_OK_AND_ASSIGN(bool homogeneous, IsHomogeneousSchema(ds));
  EXPECT_FALSE(homogeneous) << "members may pick B, C, or both";
}

TEST(HomogeneityTest, ConstraintsCanRestoreHomogeneity) {
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"A", "C"}, {"B", "All"}, {"C", "All"}},
      {"A/B & A/C"});
  ASSERT_OK_AND_ASSIGN(bool homogeneous, IsHomogeneousSchema(ds));
  EXPECT_TRUE(homogeneous) << "both parents forced -> single structure";
}

TEST(ReportTest, FrozenDotOutput) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  DimsatResult r = EnumerateFrozenDimensions(
      ds, ds.hierarchy().FindCategory("Store"));
  ASSERT_OK(r.status);
  ASSERT_FALSE(r.frozen.empty());
  std::string all_dots;
  for (const FrozenDimension& f : r.frozen) {
    std::string dot = f.ToDot(ds.hierarchy());
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    all_dots += dot;
  }
  // The Washington structure annotates City with its constant.
  EXPECT_NE(all_dots.find("Washington"), std::string::npos);
}

}  // namespace
}  // namespace olapdc
