// Tests for summarizability (Theorem 1): the paper's Example 10 at
// schema and instance level, plus the end-to-end property that
// schema-level summarizability exactly predicts correctness of the
// Definition 6 cube-view rewriting.

#include <gtest/gtest.h>

#include <vector>

#include "core/location_example.h"
#include "core/summarizability.h"
#include "olap/cube_view.h"
#include "tests/test_util.h"
#include "workload/instance_generator.h"

namespace olapdc {
namespace {

class SummarizabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(ds_, LocationSchema());
    ASSERT_OK_AND_ASSIGN(instance_, LocationInstance());
    const HierarchySchema& schema = ds_->hierarchy();
    store_ = schema.FindCategory("Store");
    city_ = schema.FindCategory("City");
    province_ = schema.FindCategory("Province");
    state_ = schema.FindCategory("State");
    sale_region_ = schema.FindCategory("SaleRegion");
    country_ = schema.FindCategory("Country");
  }

  bool SchemaLevel(CategoryId c, std::vector<CategoryId> s) {
    auto result = IsSummarizable(*ds_, c, s);
    OLAPDC_CHECK(result.ok()) << result.status().ToString();
    return result->summarizable;
  }

  bool InstanceLevel(CategoryId c, std::vector<CategoryId> s) {
    auto result = IsSummarizableInInstance(*instance_, c, s);
    OLAPDC_CHECK(result.ok()) << result.status().ToString();
    return *result;
  }

  std::optional<DimensionSchema> ds_;
  std::optional<DimensionInstance> instance_;
  CategoryId store_, city_, province_, state_, sale_region_, country_;
};

TEST_F(SummarizabilityTest, Example10SchemaLevel) {
  EXPECT_TRUE(SchemaLevel(country_, {city_}));
  EXPECT_FALSE(SchemaLevel(country_, {state_, province_}));
  EXPECT_TRUE(SchemaLevel(country_, {sale_region_}));
}

TEST_F(SummarizabilityTest, Example10InstanceLevel) {
  EXPECT_TRUE(InstanceLevel(country_, {city_}));
  EXPECT_FALSE(InstanceLevel(country_, {state_, province_}));
  EXPECT_TRUE(InstanceLevel(country_, {sale_region_}));
}

TEST_F(SummarizabilityTest, MoreSchemaLevelCases) {
  // Province is only reached through City.
  EXPECT_TRUE(SchemaLevel(province_, {city_}));
  // SaleRegion is NOT summarizable from {Province, State}: US stores
  // reach it directly.
  EXPECT_FALSE(SchemaLevel(sale_region_, {province_, state_}));
  // Country from {City, SaleRegion} double-counts: every store reaches
  // Country through both.
  EXPECT_FALSE(SchemaLevel(country_, {city_, sale_region_}));
  // A category is summarizable from itself.
  EXPECT_TRUE(SchemaLevel(country_, {country_}));
  EXPECT_TRUE(SchemaLevel(city_, {city_}));
  // Empty S: only works if nothing reaches c at all — not here.
  EXPECT_FALSE(SchemaLevel(country_, {}));
  // All from {Country}: every store reaches All through Country.
  EXPECT_TRUE(SchemaLevel(ds_->hierarchy().all(), {country_}));
}

TEST_F(SummarizabilityTest, DetailsIdentifyCounterexample) {
  ASSERT_OK_AND_ASSIGN(SummarizabilityResult r,
                       IsSummarizable(*ds_, country_, {state_, province_}));
  EXPECT_FALSE(r.summarizable);
  ASSERT_EQ(r.details.size(), 1u);  // one bottom category: Store
  EXPECT_EQ(r.details[0].bottom, store_);
  EXPECT_FALSE(r.details[0].implied);
  // The counterexample is the Washington structure: City -> Country.
  ASSERT_TRUE(r.details[0].counterexample.has_value());
  EXPECT_TRUE(r.details[0].counterexample->g.HasEdge(city_, country_));
}

TEST_F(SummarizabilityTest, ViolatorsPinpointWashingtonStores) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<MemberId> violators,
      SummarizabilityViolators(*instance_, country_, {state_, province_}));
  ASSERT_EQ(violators.size(), 1u);
  EXPECT_EQ(instance_->member(violators[0]).key, "st-was-1");
  // A summarizable pair has no violators.
  ASSERT_OK_AND_ASSIGN(std::vector<MemberId> none,
                       SummarizabilityViolators(*instance_, country_, {city_}));
  EXPECT_TRUE(none.empty());
  // Double counting also names the culprits (here: every store reaches
  // Country through both City and SaleRegion).
  ASSERT_OK_AND_ASSIGN(
      std::vector<MemberId> doubled,
      SummarizabilityViolators(*instance_, country_, {city_, sale_region_}));
  EXPECT_EQ(doubled.size(), 7u);
}

// The parallel per-bottom sweep (options.num_threads > 1) must agree
// with the sequential loop bottom-for-bottom; the location schema has
// a single bottom, so build a two-bottom schema where the sweep
// actually fans out.
TEST_F(SummarizabilityTest, ParallelSweepMatchesSequential) {
  HierarchySchemaBuilder b;
  b.AddEdge("Store", "City").AddEdge("Warehouse", "City");
  b.AddEdge("Warehouse", "Region").AddEdge("City", "Region");
  b.AddEdge("Region", "All");
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr g, b.BuildShared());
  DimensionSchema ds(g, {});
  const CategoryId region = g->FindCategory("Region");
  const CategoryId city = g->FindCategory("City");

  DimsatOptions sequential_options;
  DimsatOptions parallel_options;
  parallel_options.num_threads = 4;
  for (const std::vector<CategoryId>& sources :
       {std::vector<CategoryId>{city}, std::vector<CategoryId>{region}}) {
    ASSERT_OK_AND_ASSIGN(SummarizabilityResult seq,
                         IsSummarizable(ds, region, sources,
                                        sequential_options));
    ASSERT_OK_AND_ASSIGN(SummarizabilityResult par,
                         IsSummarizable(ds, region, sources,
                                        parallel_options));
    EXPECT_EQ(par.summarizable, seq.summarizable);
    ASSERT_EQ(par.details.size(), seq.details.size());
    for (size_t i = 0; i < seq.details.size(); ++i) {
      EXPECT_EQ(par.details[i].bottom, seq.details[i].bottom);
      EXPECT_EQ(par.details[i].implied, seq.details[i].implied);
    }
  }
}

TEST_F(SummarizabilityTest, InstanceMoreSummarizableThanSchema) {
  // Drop the Washington store: in the remaining instance Country IS
  // summarizable from {State, Province, City-direct}: actually from
  // {State, Province} since all remaining stores pass through one of
  // them. The schema still refuses (it must cover Washington-like
  // instances).
  DimensionInstanceBuilder builder(ds_->hierarchy_ptr());
  builder.AddMember("Canada", "Country")
      .AddMemberUnder("SR-Canada", "SaleRegion", "Canada")
      .AddMemberUnder("Ontario", "Province", "SR-Canada")
      .AddMemberUnder("Toronto", "City", "Ontario")
      .AddMemberUnder("s1", "Store", "Toronto");
  ASSERT_OK_AND_ASSIGN(DimensionInstance small, builder.Build());
  ASSERT_OK_AND_ASSIGN(
      bool inst_level,
      IsSummarizableInInstance(small, country_, {state_, province_}));
  EXPECT_TRUE(inst_level);
  EXPECT_FALSE(SchemaLevel(country_, {state_, province_}));
}

// End-to-end Theorem 1 / Definition 6 coherence: for every candidate
// (c, S) pair on the location dimension, schema-level summarizability
// must exactly predict whether the rewriting reproduces the direct cube
// view on the concrete instance... (one direction: summarizable =>
// equal; the converse needs the right witness instance, so for
// non-summarizable pairs we check against an instance generated from
// the schema's own frozen dimensions, which realizes every structure).
class RewriteCoherenceTest
    : public ::testing::TestWithParam<std::tuple<int, AggFn>> {};

TEST_P(RewriteCoherenceTest, SummarizabilityPredictsRewriteEquality) {
  auto [case_index, agg] = GetParam();
  auto ds_result = LocationSchema();
  ASSERT_TRUE(ds_result.ok());
  const DimensionSchema& ds = *ds_result;
  const HierarchySchema& schema = ds.hierarchy();
  CategoryId city = schema.FindCategory("City");
  CategoryId province = schema.FindCategory("Province");
  CategoryId state = schema.FindCategory("State");
  CategoryId sale_region = schema.FindCategory("SaleRegion");
  CategoryId country = schema.FindCategory("Country");

  struct Case {
    CategoryId target;
    std::vector<CategoryId> sources;
  };
  const std::vector<Case> cases = {
      {country, {city}},
      {country, {sale_region}},
      {country, {state, province}},
      {country, {city, sale_region}},
      {sale_region, {province, state}},
      {province, {city}},
      {country, {country}},
      {sale_region, {city}},
  };
  const Case& c = cases[case_index];

  // Instance realizing every structure of the schema + random facts.
  InstanceGenOptions gen;
  gen.branching = 2;
  gen.copies = 2;
  auto inst_result = GenerateInstanceFromFrozen(ds, gen);
  ASSERT_TRUE(inst_result.ok()) << inst_result.status().ToString();
  const DimensionInstance& d = *inst_result;
  FactGenOptions fact_gen;
  fact_gen.facts_per_base_member = 3;
  FactTable facts = GenerateFacts(d, fact_gen);

  auto summ = IsSummarizable(ds, c.target, c.sources);
  ASSERT_TRUE(summ.ok());

  CubeViewResult direct = ComputeCubeView(d, facts, c.target, agg);
  std::vector<CubeViewResult> source_views;
  for (CategoryId s : c.sources) {
    source_views.push_back(ComputeCubeView(d, facts, s, agg));
  }
  std::vector<MaterializedView> sources;
  for (size_t i = 0; i < c.sources.size(); ++i) {
    sources.push_back(MaterializedView{c.sources[i], &source_views[i]});
  }
  CubeViewResult rewritten = RewriteFromViews(d, sources, c.target, agg);

  if (summ->summarizable) {
    EXPECT_TRUE(CubeViewsEqual(direct, rewritten))
        << "summarizable pair must rewrite exactly (case " << case_index
        << ")";
  } else if (agg == AggFn::kSum || agg == AggFn::kCount) {
    // For SUM/COUNT the generated instance contains a structure
    // realizing the failure, so the rewriting must differ. (MIN/MAX
    // can coincide by accident: duplicates are absorbed.)
    EXPECT_FALSE(CubeViewsEqual(direct, rewritten))
        << "non-summarizable pair rewrote exactly (case " << case_index
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCasesAllAggregates, RewriteCoherenceTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(AggFn::kSum, AggFn::kCount,
                                         AggFn::kMin, AggFn::kMax)));

}  // namespace
}  // namespace olapdc
