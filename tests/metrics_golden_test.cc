// Golden metrics test: runs DIMSAT on the paper's location schema with
// the registry enabled and asserts the exported olapdc.dimsat.*
// counters agree exactly with the DimsatStats the run returned — the
// flush-based instrumentation must neither drop nor double-count, and
// the per-rule pruning counters must always be present in the export
// (zero or not) so the metric inventory is stable across workloads.

#include <gtest/gtest.h>

#include <string>

#include "common/budget.h"
#include "common/memory_budget.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/location_example.h"
#include "core/reasoner.h"
#include "exec/admission.h"
#include "exec/work_stealing_pool.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/search_tree.h"
#include "obs/telemetry_server.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

class MetricsGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(ds_, LocationSchema());
    store_ = ds_->hierarchy().FindCategory("Store");
    obs::MetricsRegistry::Global().Reset();
    obs::MetricsRegistry::Global().Enable();
  }
  void TearDown() override {
    obs::MetricsRegistry::Global().Disable();
    obs::MetricsRegistry::Global().Reset();
  }

  std::optional<DimensionSchema> ds_;
  CategoryId store_;
};

TEST_F(MetricsGoldenTest, DimsatCountersMatchReturnedStats) {
  DimsatResult r = EnumerateFrozenDimensions(*ds_, store_);
  ASSERT_OK(r.status);
  ASSERT_EQ(r.frozen.size(), 4u);  // Figure 4: four frozen dimensions

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.runs"), 1u);
  EXPECT_GT(snapshot.counter("olapdc.dimsat.nodes_expanded"), 0u);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.nodes_expanded"),
            r.stats.expand_calls);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.check_calls"),
            r.stats.check_calls);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.structural_rejections"),
            r.stats.structural_rejections);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.assignments_tried"),
            r.stats.assignments_tried);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.prune.into"),
            r.stats.into_prunes);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.prune.shortcut"),
            r.stats.shortcut_prunes);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.prune.cycle"),
            r.stats.cycle_prunes);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.dead_ends"), r.stats.dead_ends);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.frozen_found"), 4u);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.budget_stops"), 0u);

  // The inventory is complete even when a rule never fired: all three
  // per-rule pruning counters exist as keys in the export.
  for (const char* name :
       {"olapdc.dimsat.prune.into", "olapdc.dimsat.prune.shortcut",
        "olapdc.dimsat.prune.cycle", "olapdc.dimsat.dead_ends",
        "olapdc.dimsat.budget_stops"}) {
    EXPECT_EQ(snapshot.counters.count(name), 1u) << name;
  }

  // One run, one latency sample.
  ASSERT_EQ(snapshot.histograms.count("olapdc.dimsat.latency_us"), 1u);
  EXPECT_EQ(snapshot.histograms.at("olapdc.dimsat.latency_us").count, 1u);
}

TEST_F(MetricsGoldenTest, PruningRulesFireOnTheLocationEnumeration) {
  // The location hierarchy has the City->Country shortcut edge next to
  // the City->Province/State->Country paths, so the full enumeration
  // must exercise the structural rules; DIMSAT surfaces that work
  // either as successor-level prunes (Ss/Sc) or as CHECK-level
  // structural rejections.
  DimsatResult r = EnumerateFrozenDimensions(*ds_, store_);
  ASSERT_OK(r.status);
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GT(snapshot.counter("olapdc.dimsat.prune.shortcut") +
                snapshot.counter("olapdc.dimsat.prune.cycle") +
                snapshot.counter("olapdc.dimsat.structural_rejections"),
            0u);
}

TEST_F(MetricsGoldenTest, ParallelDimsatAndExecCountersFlow) {
  exec::WorkStealingPool pool(3);
  DimsatOptions options;
  options.enumerate_all = true;
  options.pool = &pool;
  DimsatResult r = DimsatParallel(*ds_, store_, options, 3);
  ASSERT_OK(r.status);
  ASSERT_EQ(r.frozen.size(), 4u);

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  // The per-run worker stats exported to the registry agree with the
  // stats the run returned.
  EXPECT_GT(r.stats.parallel_tasks, 0u);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.parallel.tasks"),
            r.stats.parallel_tasks);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.parallel.steals"),
            r.stats.parallel_steals);
  // DIMSAT work counters still flow from the worker searches.
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.nodes_expanded"),
            r.stats.expand_calls);

  // The olapdc.exec.* inventory is stable: all pool counters exist as
  // keys (zero or not) whenever an observed parallel run used the pool.
  for (const char* name :
       {"olapdc.exec.tasks_executed", "olapdc.exec.steals",
        "olapdc.exec.steal_failures"}) {
    EXPECT_EQ(snapshot.counters.count(name), 1u) << name;
  }
  EXPECT_GT(snapshot.counter("olapdc.exec.tasks_executed"), 0u);
  ASSERT_EQ(snapshot.gauges.count("olapdc.exec.pool_size"), 1u);
  EXPECT_EQ(snapshot.gauges.at("olapdc.exec.pool_size"), 3);
}

TEST_F(MetricsGoldenTest, MemoryAccountingCountersBalance) {
  MemoryBudget memory(1 << 20);
  Budget budget;
  budget.SetMemory(&memory);
  DimsatOptions options;
  options.enumerate_all = true;
  options.budget = &budget;
  DimsatResult r = Dimsat(*ds_, store_, options);
  ASSERT_OK(r.status);
  memory.PublishGauges();

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  // Every reserved byte of the finished request was released — the
  // quiescence invariant the chaos campaign asserts fleet-wide.
  EXPECT_GT(snapshot.counter("olapdc.mem.reserved_bytes"), 0u);
  EXPECT_EQ(snapshot.counter("olapdc.mem.reserved_bytes"),
            snapshot.counter("olapdc.mem.released_bytes"));
  EXPECT_EQ(snapshot.counter("olapdc.mem.exhausted"), 0u);
  ASSERT_EQ(snapshot.gauges.count("olapdc.mem.reserved_bytes_now"), 1u);
  EXPECT_EQ(snapshot.gauges.at("olapdc.mem.reserved_bytes_now"), 0);
  ASSERT_EQ(snapshot.gauges.count("olapdc.mem.peak_bytes"), 1u);
  EXPECT_EQ(snapshot.gauges.at("olapdc.mem.peak_bytes"),
            static_cast<int64_t>(memory.peak()));
}

TEST_F(MetricsGoldenTest, MemoryExhaustionCountsOnceAndClassifies) {
  MemoryBudget memory(512);
  Budget budget;
  budget.SetMemory(&memory);
  DimsatOptions options;
  options.enumerate_all = true;
  options.budget = &budget;
  options.budget_check_stride = 1;
  DimsatResult r = Dimsat(*ds_, store_, options);
  ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted);

  // Any checker probing the shared Budget now classifies the trip as
  // memory pressure (with its per-site expiry counter), not a deadline.
  BudgetChecker checker(&budget, 1, "golden.site");
  EXPECT_EQ(checker.Check().code(), StatusCode::kResourceExhausted);

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("olapdc.mem.exhausted"), 1u);
  EXPECT_GE(snapshot.counter("olapdc.budget.memory_exhausted"), 1u);
  EXPECT_EQ(snapshot.counter("olapdc.budget.expired.golden.site"), 1u);
  EXPECT_EQ(snapshot.counter("olapdc.budget.deadline_exceeded"), 0u);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.budget_stops"), 1u);
}

TEST_F(MetricsGoldenTest, CheckpointAndResumeCountersFlow) {
  DimsatCheckpoint cp;
  DimsatOptions options;
  options.enumerate_all = true;
  options.max_expand_calls = 3;
  options.checkpoint = &cp;
  DimsatResult interrupted = Dimsat(*ds_, store_, options);
  ASSERT_EQ(interrupted.status.code(), StatusCode::kResourceExhausted);
  ASSERT_FALSE(cp.empty());
  options.max_expand_calls = UINT64_MAX;
  DimsatResult resumed =
      ResumeDimsat(*ds_, store_, options, std::move(cp));
  ASSERT_OK(resumed.status);

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.checkpoints"), 1u);
  EXPECT_EQ(snapshot.counter("olapdc.dimsat.resumes"), 1u);
}

TEST_F(MetricsGoldenTest, AdmissionCountersMatchGateState) {
  exec::WorkStealingPool pool(2);
  exec::AdmissionGate gate(
      exec::AdmissionGate::Options{/*high_water=*/1, /*retry_after_ms=*/10});
  DimsatOptions options;
  options.enumerate_all = true;
  options.pool = &pool;
  options.admission = &gate;

  DimsatResult admitted = DimsatParallel(*ds_, store_, options, 2);
  ASSERT_OK(admitted.status);
  ASSERT_OK(gate.TryAdmit());  // saturate by hand
  DimsatResult shed = DimsatParallel(*ds_, store_, options, 2);
  ASSERT_EQ(shed.status.code(), StatusCode::kUnavailable);
  gate.Release();

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("olapdc.exec.admitted"), gate.admitted());
  EXPECT_EQ(snapshot.counter("olapdc.exec.shed"), 1u);
  ASSERT_EQ(snapshot.gauges.count("olapdc.exec.in_flight"), 1u);
  EXPECT_EQ(snapshot.gauges.at("olapdc.exec.in_flight"), 0);
}

TEST_F(MetricsGoldenTest, TelemetryPlaneInventoryIsStable) {
  // The PR-5 metric families: the exposition server registers its
  // inventory on Start(), the pool registers ctx_restores with its
  // other names, and the explain recorder publishes on Drain().
  obs::TelemetryServer server;
  obs::TelemetryServer::Options server_options;
  server_options.port = 0;
  ASSERT_TRUE(server.Start(server_options)) << server.last_error();
  server.Stop();

  exec::WorkStealingPool pool(1);
  pool.PublishMetricNames();

  obs::SearchTreeRecorder::Global().Enable();
  (void)obs::SearchTreeRecorder::Global().Drain();
  obs::SearchTreeRecorder::Global().Disable();

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  for (const char* name :
       {"olapdc.http.requests", "olapdc.exec.ctx_restores",
        "olapdc.explain.events", "olapdc.explain.dropped"}) {
    EXPECT_EQ(snapshot.counters.count(name), 1u) << name;
  }
}

TEST_F(MetricsGoldenTest, PrometheusExpositionCoversEveryFamily) {
  // Every counter, gauge, and histogram in a real run's snapshot must
  // appear in the rendered exposition with its # TYPE line, and every
  // histogram family must close with le="+Inf" == _count.
  DimsatResult r = EnumerateFrozenDimensions(*ds_, store_);
  ASSERT_OK(r.status);
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const std::string text = obs::RenderPrometheusText(snapshot);
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = obs::PrometheusName(name);
    EXPECT_NE(text.find("# TYPE " + prom + " counter\n"), std::string::npos)
        << name;
    EXPECT_NE(text.find(prom + " " + std::to_string(value) + "\n"),
              std::string::npos)
        << name;
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string prom = obs::PrometheusName(name);
    EXPECT_NE(text.find("# TYPE " + prom + " histogram\n"), std::string::npos)
        << name;
    EXPECT_NE(text.find(prom + "_bucket{le=\"+Inf\"} " +
                        std::to_string(histogram.count) + "\n"),
              std::string::npos)
        << name;
    EXPECT_NE(text.find(prom + "_count " + std::to_string(histogram.count) +
                        "\n"),
              std::string::npos)
        << name;
  }
  // The dot-to-underscore mapping is 1:1: the internal names never
  // collide after sanitization, so no family is silently merged.
  EXPECT_NE(text.find("olapdc_dimsat_prune_shortcut"), std::string::npos);
}

TEST_F(MetricsGoldenTest, ImplicationAndReasonerCountersFlow) {
  Reasoner reasoner(*ds_);
  ReasonerAnswer first = reasoner.QuerySatisfiable(store_);
  EXPECT_EQ(first.truth, Truth::kYes);
  ReasonerAnswer second = reasoner.QuerySatisfiable(store_);
  EXPECT_TRUE(second.from_cache);

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("olapdc.reasoner.queries"), 2u);
  EXPECT_EQ(snapshot.counter("olapdc.reasoner.cache_hits"), 1u);
  EXPECT_EQ(snapshot.counter("olapdc.reasoner.cache_misses"), 1u);
  EXPECT_EQ(snapshot.counter("olapdc.reasoner.unknown"), 0u);
  // The miss ran DIMSAT underneath; its run counter flows too.
  EXPECT_GE(snapshot.counter("olapdc.dimsat.runs"), 1u);
}

}  // namespace
}  // namespace olapdc
