// Metamorphic properties of the reasoner: transformations of the input
// that must not change (or must change predictably) the output.
//
//  M1 Constraint order irrelevance: permuting Sigma leaves the frozen
//     set unchanged.
//  M2 Implied-constraint invariance: adding a constraint the schema
//     already implies leaves the frozen set unchanged.
//  M3 Isomorphism invariance: renaming categories (rebuilding the
//     schema under a permuted insertion order) preserves frozen counts
//     and satisfiability.
//  M4 Constraint strengthening monotonicity: adding any constraint can
//     only shrink the frozen set (as a set of structures).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>

#include "constraint/parser.h"
#include "constraint/printer.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/location_example.h"
#include "tests/test_util.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

std::multiset<std::string> FrozenSet(const DimensionSchema& ds,
                                     CategoryId root) {
  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult r = Dimsat(ds, root, options);
  OLAPDC_CHECK(r.status.ok());
  std::multiset<std::string> out;
  for (const FrozenDimension& f : r.frozen) {
    out.insert(f.ToString(ds.hierarchy()));
  }
  return out;
}

class MetamorphicTest : public ::testing::TestWithParam<int> {
 protected:
  DimensionSchema RandomSchema(int seed) {
    SchemaGenOptions schema_options;
    schema_options.num_levels = 2;
    schema_options.categories_per_level = 2;
    schema_options.extra_edge_prob = 0.35;
    schema_options.seed = static_cast<uint64_t>(seed) * 271 + 13;
    auto hierarchy = GenerateLayeredHierarchy(schema_options);
    OLAPDC_CHECK(hierarchy.ok());
    ConstraintGenOptions constraint_options;
    constraint_options.into_fraction = 0.4;
    constraint_options.num_choice_constraints = 1;
    constraint_options.num_equality_constraints = 1;
    constraint_options.seed = seed;
    auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
    OLAPDC_CHECK(ds.ok());
    return std::move(ds).ValueOrDie();
  }
};

TEST_P(MetamorphicTest, M1ConstraintOrderIrrelevant) {
  DimensionSchema ds = RandomSchema(GetParam());
  CategoryId base = ds.hierarchy().FindCategory("Base");
  auto original = FrozenSet(ds, base);

  std::vector<DimensionConstraint> shuffled = ds.constraints();
  std::mt19937_64 rng(GetParam());
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  DimensionSchema permuted(ds.hierarchy_ptr(), std::move(shuffled));
  EXPECT_EQ(FrozenSet(permuted, base), original);
}

TEST_P(MetamorphicTest, M2AddingImpliedConstraintChangesNothing) {
  DimensionSchema ds = RandomSchema(GetParam());
  CategoryId base = ds.hierarchy().FindCategory("Base");
  auto original = FrozenSet(ds, base);
  if (ds.constraints().empty()) GTEST_SKIP();

  // Weaken an existing constraint: c | anything is implied by c.
  const DimensionConstraint& c = ds.constraints().front();
  DimensionConstraint weakened{
      c.root, MakeOr({c.expr, MakeComposedAtom(c.root, ds.hierarchy().all())}),
      "weak"};
  ASSERT_OK_AND_ASSIGN(ImplicationResult check, Implies(ds, weakened));
  ASSERT_TRUE(check.implied);
  DimensionSchema extended = ds.WithExtraConstraint(weakened);
  EXPECT_EQ(FrozenSet(extended, base), original);
}

TEST_P(MetamorphicTest, M4StrengtheningShrinksTheFrozenSet) {
  DimensionSchema ds = RandomSchema(GetParam());
  const HierarchySchema& schema = ds.hierarchy();
  CategoryId base = schema.FindCategory("Base");
  auto original = FrozenSet(ds, base);

  // Force an arbitrary extra condition rooted at Base.
  CategoryId target = schema.graph().OutNeighbors(base).front();
  DimensionSchema strengthened = ds.WithExtraConstraint(
      DimensionConstraint{base, MakePathAtom({base, target}), "force"});
  auto restricted = FrozenSet(strengthened, base);
  EXPECT_LE(restricted.size(), original.size());
  for (const std::string& f : restricted) {
    EXPECT_TRUE(original.count(f) > 0)
        << "strengthening may only filter, never invent: " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicTest, ::testing::Range(0, 15));

TEST(IsomorphismTest, M3LocationUnderReversedInsertion) {
  // Build locationSch with edges inserted in reverse order: category
  // ids permute, reasoning results must not.
  ASSERT_OK_AND_ASSIGN(DimensionSchema original, LocationSchema());
  HierarchySchemaBuilder builder;
  auto edges = original.hierarchy().graph().Edges();
  std::reverse(edges.begin(), edges.end());
  for (const auto& [u, v] : edges) {
    builder.AddEdge(original.hierarchy().CategoryName(u),
                    original.hierarchy().CategoryName(v));
  }
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr reversed, builder.BuildShared());
  std::vector<DimensionConstraint> constraints;
  for (const DimensionConstraint& c : original.constraints()) {
    constraints.push_back(testing_util::ParseC(
        *reversed, ExprToString(original.hierarchy(), c.expr), c.label));
  }
  DimensionSchema renamed(reversed, std::move(constraints));

  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult a = Dimsat(
      original, original.hierarchy().FindCategory("Store"), options);
  DimsatResult b =
      Dimsat(renamed, reversed->FindCategory("Store"), options);
  ASSERT_OK(a.status);
  ASSERT_OK(b.status);
  EXPECT_EQ(a.frozen.size(), b.frozen.size());
  EXPECT_EQ(a.satisfiable, b.satisfiable);
  // Structure sets agree after normalizing ids back to names.
  auto canonical = [](const std::vector<FrozenDimension>& frozen,
                      const HierarchySchema& schema) {
    std::multiset<std::string> out;
    for (const FrozenDimension& f : frozen) {
      std::multiset<std::string> edge_names;
      for (auto [u, v] : f.g.Edges()) {
        edge_names.insert(schema.CategoryName(u) + ">" +
                          schema.CategoryName(v));
      }
      std::string key;
      for (const std::string& e : edge_names) key += e + ";";
      out.insert(std::move(key));
    }
    return out;
  };
  EXPECT_EQ(canonical(a.frozen, original.hierarchy()),
            canonical(b.frozen, *reversed));
}

}  // namespace
}  // namespace olapdc
