// Cross-validation of the theory's load-bearing equivalences on random
// workloads:
//
//  P1 (Theorems 2+3): ds |= alpha  iff  every frozen dimension of ds
//     with root(alpha) — materialized as a real instance — satisfies
//     alpha under the model checker. (Frozen dimensions are the minimal
//     models; DIMSAT and the model checker are implemented
//     independently, so agreement here is strong evidence for both.)
//
//  P2: the shorthand expansion (Section 3.1/3.3) preserves semantics:
//     evaluating composed/through atoms directly on an instance agrees
//     with evaluating their path-atom expansions.
//
//  P3 (Theorem 3): a category is satisfiable iff some generated
//     instance populates it; unsatisfiable categories are empty in
//     *every* generated instance.

#include <gtest/gtest.h>

#include <vector>

#include "constraint/evaluator.h"
#include "constraint/normalize.h"
#include "constraint/parser.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/location_example.h"
#include "tests/test_util.h"
#include "workload/instance_generator.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using testing_util::ParseC;

/// Queries posed against every random schema (parsed per schema; texts
/// reference the generated category names).
std::vector<DimensionConstraint> QueryBattery(const HierarchySchema& schema) {
  std::vector<DimensionConstraint> queries;
  CategoryId base = schema.FindCategory("Base");
  OLAPDC_CHECK(base != kNoCategory);
  // Composed reachability and negations for every category above Base.
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    if (c == base) continue;
    queries.push_back(DimensionConstraint{
        base, MakeComposedAtom(base, c), "reach"});
    queries.push_back(DimensionConstraint{
        base, MakeNot(MakeComposedAtom(base, c)), "avoid"});
  }
  // A couple of through-atom questions.
  for (CategoryId via = 0; via < schema.num_categories(); ++via) {
    if (via == base || via == schema.all()) continue;
    queries.push_back(DimensionConstraint{
        base,
        MakeImplies(MakeComposedAtom(base, schema.all()),
                    MakeThroughAtom(base, via, schema.all())),
        "through"});
  }
  return queries;
}

class FrozenModelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(FrozenModelEquivalenceTest, ImplicationAgreesWithFrozenModels) {
  const int seed = GetParam();
  SchemaGenOptions schema_options;
  schema_options.num_levels = 2;
  schema_options.categories_per_level = 2;
  schema_options.extra_edge_prob = 0.35;
  schema_options.seed = static_cast<uint64_t>(seed) * 613 + 29;
  auto hierarchy = GenerateLayeredHierarchy(schema_options);
  ASSERT_TRUE(hierarchy.ok());
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 1;
  constraint_options.num_equality_constraints = 1;
  constraint_options.seed = seed;
  auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
  ASSERT_TRUE(ds.ok());
  CategoryId base = ds->hierarchy().FindCategory("Base");

  // Enumerate the minimal models once.
  DimsatOptions enumerate;
  enumerate.enumerate_all = true;
  DimsatResult frozen = Dimsat(*ds, base, enumerate);
  ASSERT_OK(frozen.status);
  std::vector<DimensionInstance> models;
  for (const FrozenDimension& f : frozen.frozen) {
    auto inst = f.ToInstance(*ds);
    ASSERT_TRUE(inst.ok()) << inst.status().ToString();
    models.push_back(std::move(inst).ValueOrDie());
  }

  for (const DimensionConstraint& alpha : QueryBattery(ds->hierarchy())) {
    ASSERT_OK_AND_ASSIGN(ImplicationResult via_dimsat, Implies(*ds, alpha));
    bool via_models = true;
    for (const DimensionInstance& model : models) {
      via_models &= Satisfies(model, alpha);
    }
    EXPECT_EQ(via_dimsat.implied, via_models)
        << "seed " << seed << " query "
        << alpha.label;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrozenModelEquivalenceTest,
                         ::testing::Range(0, 20));

class ExpansionSemanticsTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpansionSemanticsTest, ShorthandsMatchTheirExpansions) {
  const int seed = GetParam();
  auto ds_result = LocationSchema();
  ASSERT_TRUE(ds_result.ok());
  const DimensionSchema& ds = *ds_result;
  const HierarchySchema& schema = ds.hierarchy();
  InstanceGenOptions gen;
  gen.branching = 1 + seed % 3;
  gen.copies = 1 + seed % 2;
  auto d = GenerateInstanceFromFrozen(ds, gen);
  ASSERT_TRUE(d.ok());

  CategoryId store = schema.FindCategory("Store");
  for (CategoryId target = 0; target < schema.num_categories(); ++target) {
    for (CategoryId via = 0; via < schema.num_categories(); ++via) {
      ExprPtr through = MakeThroughAtom(store, via, target);
      ASSERT_OK_AND_ASSIGN(ExprPtr expanded,
                           ExpandShorthands(schema, through));
      for (MemberId m : d->MembersOf(store)) {
        EXPECT_EQ(EvalForMember(*d, *through, m),
                  EvalForMember(*d, *expanded, m))
            << schema.CategoryName(via) << " -> "
            << schema.CategoryName(target) << " member "
            << d->member(m).key;
      }
    }
    ExprPtr composed = MakeComposedAtom(store, target);
    ASSERT_OK_AND_ASSIGN(ExprPtr expanded,
                         ExpandShorthands(schema, composed));
    for (MemberId m : d->MembersOf(store)) {
      EXPECT_EQ(EvalForMember(*d, *composed, m),
                EvalForMember(*d, *expanded, m));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionSemanticsTest,
                         ::testing::Range(0, 6));

TEST(SatisfiabilityWitnessTest, GeneratedInstancesPopulateExactlyTheSatisfiable) {
  // On locationSch every category is satisfiable and the generator
  // populates all of them.
  auto ds = LocationSchema();
  ASSERT_TRUE(ds.ok());
  InstanceGenOptions gen;
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, GenerateInstanceFromFrozen(*ds, gen));
  for (CategoryId c = 0; c < ds->hierarchy().num_categories(); ++c) {
    EXPECT_FALSE(d.MembersOf(c).empty())
        << ds->hierarchy().CategoryName(c);
  }

  // Forbidding State everywhere leaves State unsatisfiable and the
  // generator leaves it empty while the rest still populates.
  DimensionSchema restricted = ds->WithExtraConstraint(
      ParseC(ds->hierarchy(), "!City/State"));
  ASSERT_OK_AND_ASSIGN(bool state_sat,
                       IsCategorySatisfiable(
                           restricted,
                           ds->hierarchy().FindCategory("State")));
  // State is still reachable only through City; with City/State banned
  // it cannot be populated from Store structures... but State itself as
  // a root can still exist (State-rooted worlds need no City), so check
  // the *instance* emptiness instead of satisfiability.
  (void)state_sat;
  ASSERT_OK_AND_ASSIGN(DimensionInstance d2,
                       GenerateInstanceFromFrozen(restricted, gen));
  EXPECT_TRUE(d2.MembersOf(ds->hierarchy().FindCategory("State")).empty());
  EXPECT_FALSE(d2.MembersOf(ds->hierarchy().FindCategory("Province")).empty());
}

}  // namespace
}  // namespace olapdc
