// Tests for dimension instances: each of the conditions C1-C7
// (Definition 2 / Figure 2) violated individually, plus rollup
// machinery on valid instances.

#include <gtest/gtest.h>

#include <string>

#include "core/location_example.h"
#include "dim/dimension_instance.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::MakeHierarchy;

HierarchySchemaPtr SmallSchema() {
  return MakeHierarchy({{"Store", "City"},
                        {"City", "Province"},
                        {"City", "State"},
                        {"Province", "Country"},
                        {"State", "Country"},
                        {"Country", "All"}});
}

TEST(InstanceBuilderTest, BuildsValidInstance) {
  DimensionInstanceBuilder builder(SmallSchema());
  builder.AddMember("Canada", "Country")
      .AddMemberUnder("Ontario", "Province", "Canada")
      .AddMemberUnder("Toronto", "City", "Ontario")
      .AddMemberUnder("s1", "Store", "Toronto");
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, builder.Build());
  EXPECT_EQ(d.num_members(), 5);  // + auto "all"
  EXPECT_OK(d.Validate());
}

TEST(InstanceBuilderTest, DuplicateKeyRejected) {
  DimensionInstanceBuilder builder(SmallSchema());
  builder.AddMember("x", "Country").AddMember("x", "Province");
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceBuilderTest, UnknownCategoryRejected) {
  DimensionInstanceBuilder builder(SmallSchema());
  builder.AddMember("x", "Galaxy");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, UnknownEdgeEndpointRejected) {
  DimensionInstanceBuilder builder(SmallSchema());
  builder.AddMember("Canada", "Country");
  builder.AddChildParent("Canada", "nowhere");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceConditionsTest, C1ConnectivityViolation) {
  // Store directly under Country: no schema edge Store -> Country.
  DimensionInstanceBuilder builder(SmallSchema());
  builder.AddMember("Canada", "Country").AddMemberUnder("s1", "Store",
                                                        "Canada");
  Status status = builder.Build().status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidModel);
  EXPECT_NE(status.message().find("C1"), std::string::npos);
}

TEST(InstanceConditionsTest, C2PartitioningViolation) {
  // Toronto under two different provinces.
  DimensionInstanceBuilder builder(SmallSchema());
  builder.AddMember("Canada", "Country")
      .AddMemberUnder("Ontario", "Province", "Canada")
      .AddMemberUnder("Quebec", "Province", "Canada")
      .AddMemberUnder("Toronto", "City", "Ontario")
      .AddChildParent("Toronto", "Quebec")
      .AddMemberUnder("s1", "Store", "Toronto");
  Status status = builder.Build().status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidModel);
  EXPECT_NE(status.message().find("C2"), std::string::npos);
}

TEST(InstanceConditionsTest, C2DeepDiamondViolation) {
  // The two-ancestor conflict only appears transitively: city under
  // province and state that belong to different countries.
  DimensionInstanceBuilder builder(SmallSchema());
  builder.AddMember("Canada", "Country")
      .AddMember("USA", "Country")
      .AddMemberUnder("Ontario", "Province", "Canada")
      .AddMemberUnder("NY", "State", "USA")
      .AddMemberUnder("Weird", "City", "Ontario")
      .AddChildParent("Weird", "NY")
      .AddMemberUnder("s1", "Store", "Weird");
  Status status = builder.Build().status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidModel);
  EXPECT_NE(status.message().find("C2"), std::string::npos);
}

TEST(InstanceConditionsTest, C2ConvergingDiamondIsFine) {
  DimensionInstanceBuilder builder(SmallSchema());
  builder.AddMember("Canada", "Country")
      .AddMemberUnder("Ontario", "Province", "Canada")
      .AddMemberUnder("OntState", "State", "Canada")
      .AddMemberUnder("Toronto", "City", "Ontario")
      .AddChildParent("Toronto", "OntState")
      .AddMemberUnder("s1", "Store", "Toronto");
  ASSERT_OK(builder.Build().status());
}

TEST(InstanceConditionsTest, C4TopCategoryViolation) {
  DimensionInstanceBuilder builder(SmallSchema());
  builder.AddMember("all1", "All").AddMember("all2", "All");
  Status status = builder.Build().status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidModel);
  EXPECT_NE(status.message().find("C4"), std::string::npos);
}

TEST(InstanceConditionsTest, C5ShortcutViolation) {
  // Schema with a shortcut edge Store -> Province lets us build the
  // member-level shortcut.
  HierarchySchemaPtr schema = MakeHierarchy({{"Store", "City"},
                                             {"Store", "Province"},
                                             {"City", "Province"},
                                             {"Province", "All"}});
  DimensionInstanceBuilder builder(schema);
  builder.AddMember("Ontario", "Province")
      .AddMemberUnder("Toronto", "City", "Ontario")
      .AddMemberUnder("s1", "Store", "Toronto")
      .AddChildParent("s1", "Ontario");  // parallels s1 < Toronto < Ontario
  Status status = builder.Build().status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidModel);
  EXPECT_NE(status.message().find("C5"), std::string::npos);
  // The relaxed validation used by the transform baselines accepts it.
  DimensionInstanceBuilder relaxed(schema);
  relaxed.AddMember("Ontario", "Province")
      .AddMemberUnder("Toronto", "City", "Ontario")
      .AddMemberUnder("s1", "Store", "Toronto")
      .AddChildParent("s1", "Ontario")
      .set_skip_validation(true);
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, relaxed.Build());
  EXPECT_OK(d.Validate(/*enforce_shortcut_condition=*/false));
  EXPECT_FALSE(d.Validate().ok());
}

TEST(InstanceConditionsTest, C6StratificationCycleViolation) {
  // Cyclic schema (allowed) but cyclic member chain (not allowed).
  HierarchySchemaPtr schema = MakeHierarchy(
      {{"A", "B"}, {"B", "A"}, {"A", "All"}, {"B", "All"}});
  DimensionInstanceBuilder builder(schema);
  builder.AddMember("a1", "A")
      .AddMember("b1", "B")
      .AddChildParent("a1", "b1")
      .AddChildParent("b1", "a1");
  Status status = builder.Build().status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidModel);
  EXPECT_NE(status.message().find("C6"), std::string::npos);
}

TEST(InstanceConditionsTest, C6SameCategoryAncestorViolation) {
  HierarchySchemaPtr schema = MakeHierarchy(
      {{"A", "B"}, {"B", "A"}, {"A", "All"}, {"B", "All"}});
  DimensionInstanceBuilder builder(schema);
  builder.AddMember("a1", "A")
      .AddMember("b1", "B")
      .AddMember("a2", "A")
      .AddChildParent("a1", "b1")
      .AddChildParent("b1", "a2");
  // a1 << a2 within category A (a2 itself is auto-linked to all).
  Status status = builder.Build().status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidModel);
  EXPECT_NE(status.message().find("C6"), std::string::npos);
}

TEST(InstanceConditionsTest, C7UpConnectivityViolation) {
  DimensionInstanceBuilder builder(SmallSchema());
  // A store with no parent; Store has no edge to All so auto-linking
  // does not apply.
  builder.AddMember("s1", "Store");
  Status status = builder.Build().status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidModel);
  EXPECT_NE(status.message().find("C7"), std::string::npos);
}

TEST(InstanceTest, RollUpMemberAndMappings) {
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());
  const HierarchySchema& schema = d.hierarchy();
  ASSERT_OK_AND_ASSIGN(MemberId toronto, d.MemberIdOf("Toronto"));
  ASSERT_OK_AND_ASSIGN(MemberId canada, d.MemberIdOf("Canada"));
  ASSERT_OK_AND_ASSIGN(MemberId store, d.MemberIdOf("st-tor-1"));

  CategoryId country = schema.FindCategory("Country");
  CategoryId state = schema.FindCategory("State");
  EXPECT_EQ(d.RollUpMember(toronto, country), canada);
  EXPECT_EQ(d.RollUpMember(toronto, state), kNoMember);
  EXPECT_EQ(d.RollUpMember(store, country), canada);
  // Reflexive.
  EXPECT_EQ(d.RollUpMember(canada, country), canada);
  EXPECT_TRUE(d.RollsUpTo(store, canada));
  EXPECT_FALSE(d.RollsUpTo(canada, store));
  EXPECT_TRUE(d.RollsUpTo(store, d.all_member()));

  // Gamma_{Store}^{Country} maps all 7 stores.
  auto gamma = d.RollupMapping(schema.FindCategory("Store"), country);
  EXPECT_EQ(gamma.size(), 7u);
  // Gamma_{Store}^{State}: only the Mexico and Austin stores.
  auto gamma_state = d.RollupMapping(schema.FindCategory("Store"), state);
  EXPECT_EQ(gamma_state.size(), 3u);
}

TEST(InstanceTest, LocationInstanceIsValidAndComplete) {
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());
  EXPECT_OK(d.Validate());
  const HierarchySchema& schema = d.hierarchy();
  EXPECT_EQ(d.MembersOf(schema.FindCategory("Store")).size(), 7u);
  EXPECT_EQ(d.MembersOf(schema.FindCategory("City")).size(), 6u);
  EXPECT_EQ(d.MembersOf(schema.FindCategory("Country")).size(), 3u);
  EXPECT_EQ(d.MembersOf(schema.all()).size(), 1u);
}

TEST(InstanceTest, ParentsAndChildren) {
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());
  ASSERT_OK_AND_ASSIGN(MemberId ontario, d.MemberIdOf("Ontario"));
  EXPECT_EQ(d.Children(ontario).size(), 2u);  // Toronto, Ottawa
  EXPECT_EQ(d.Parents(ontario).size(), 1u);   // SR-Canada
  EXPECT_FALSE(d.MemberIdOf("nonexistent").ok());
}

TEST(InstanceTest, DotOutput) {
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());
  std::string dot = d.ToDot();
  EXPECT_NE(dot.find("Washington"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace olapdc
