// Tests for the aggregate navigator and the view-selection advisor.

#include <gtest/gtest.h>

#include <map>

#include "core/location_example.h"
#include "olap/navigator.h"
#include "olap/view_selection.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

class NavigatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(ds_, LocationSchema());
    ASSERT_OK_AND_ASSIGN(d_, LocationInstance());
    const HierarchySchema& schema = ds_->hierarchy();
    city_ = schema.FindCategory("City");
    state_ = schema.FindCategory("State");
    province_ = schema.FindCategory("Province");
    sale_region_ = schema.FindCategory("SaleRegion");
    country_ = schema.FindCategory("Country");

    for (const char* key : {"st-tor-1", "st-tor-2", "st-ott-1", "st-mex-1",
                            "st-mty-1", "st-aus-1", "st-was-1"}) {
      facts_.Add(*d_->MemberIdOf(key), 10.0);
    }
  }

  std::optional<DimensionSchema> ds_;
  std::optional<DimensionInstance> d_;
  FactTable facts_;
  CategoryId city_, state_, province_, sale_region_, country_;
};

TEST_F(NavigatorTest, FindsSingleCategoryRewrite) {
  ASSERT_OK_AND_ASSIGN(
      auto rewrite,
      FindRewriteSet(*ds_, *d_, {state_, city_}, country_, {}));
  ASSERT_TRUE(rewrite.has_value());
  EXPECT_EQ(*rewrite, std::vector<CategoryId>({city_}));
}

TEST_F(NavigatorTest, MaterializedTargetShortCircuits) {
  ASSERT_OK_AND_ASSIGN(
      auto rewrite,
      FindRewriteSet(*ds_, *d_, {state_, country_}, country_, {}));
  ASSERT_TRUE(rewrite.has_value());
  EXPECT_EQ(*rewrite, std::vector<CategoryId>({country_}));
}

TEST_F(NavigatorTest, RefusesWhenNoSummarizableSubsetExists) {
  // {State, Province} cannot answer Country at the schema level
  // (Washington), and no other materialized view helps.
  ASSERT_OK_AND_ASSIGN(
      auto rewrite,
      FindRewriteSet(*ds_, *d_, {state_, province_}, country_, {}));
  EXPECT_FALSE(rewrite.has_value());
}

TEST_F(NavigatorTest, InstanceModeAdmitsMoreRewrites) {
  // Build a Washington-free instance: {State, Province} then answers
  // Country at the instance level, though never at the schema level.
  DimensionInstanceBuilder builder(ds_->hierarchy_ptr());
  builder.AddMember("Canada", "Country")
      .AddMemberUnder("SR-Canada", "SaleRegion", "Canada")
      .AddMemberUnder("Ontario", "Province", "SR-Canada")
      .AddMemberUnder("Toronto", "City", "Ontario")
      .AddMemberUnder("s1", "Store", "Toronto");
  ASSERT_OK_AND_ASSIGN(DimensionInstance small, builder.Build());

  NavigatorOptions schema_mode;
  ASSERT_OK_AND_ASSIGN(
      auto schema_rewrite,
      FindRewriteSet(*ds_, small, {state_, province_}, country_,
                     schema_mode));
  EXPECT_FALSE(schema_rewrite.has_value());

  NavigatorOptions instance_mode;
  instance_mode.mode = NavigatorMode::kInstanceLevel;
  ASSERT_OK_AND_ASSIGN(
      auto instance_rewrite,
      FindRewriteSet(*ds_, small, {state_, province_}, country_,
                     instance_mode));
  EXPECT_TRUE(instance_rewrite.has_value());
}

TEST_F(NavigatorTest, AnswerMatchesDirectComputation) {
  std::map<CategoryId, CubeViewResult> materialized;
  materialized[city_] = ComputeCubeView(*d_, facts_, city_, AggFn::kSum);
  materialized[state_] = ComputeCubeView(*d_, facts_, state_, AggFn::kSum);

  ASSERT_OK_AND_ASSIGN(
      NavigatorAnswer answer,
      AnswerFromViews(*ds_, *d_, materialized, country_, AggFn::kSum, {}));
  ASSERT_TRUE(answer.answered);
  EXPECT_EQ(answer.used, std::vector<CategoryId>({city_}));
  CubeViewResult direct = ComputeCubeView(*d_, facts_, country_, AggFn::kSum);
  EXPECT_TRUE(CubeViewsEqual(answer.view, direct));
}

TEST_F(NavigatorTest, AnswerRefusesUnanswerableQuery) {
  std::map<CategoryId, CubeViewResult> materialized;
  materialized[state_] = ComputeCubeView(*d_, facts_, state_, AggFn::kSum);
  ASSERT_OK_AND_ASSIGN(
      NavigatorAnswer answer,
      AnswerFromViews(*ds_, *d_, materialized, country_, AggFn::kSum, {}));
  EXPECT_FALSE(answer.answered);
  EXPECT_TRUE(answer.view.empty());
}

TEST_F(NavigatorTest, ViewSelectionCoversQueries) {
  ViewSelectionOptions options;
  ASSERT_OK_AND_ASSIGN(
      ViewSelectionResult selection,
      SelectViews(*ds_, *d_, {country_, sale_region_, province_}, options));
  ASSERT_TRUE(selection.found);
  // A single materialized City view answers Province; Country and
  // SaleRegion need more. Whatever the choice, it must cover all
  // queries via the navigator.
  EXPECT_LE(selection.selected.size(), 4u);
  ASSERT_EQ(selection.rewrite_sets.size(), 3u);
  for (const auto& rewrite : selection.rewrite_sets) {
    EXPECT_FALSE(rewrite.empty());
    for (CategoryId c : rewrite) {
      EXPECT_TRUE(std::find(selection.selected.begin(),
                            selection.selected.end(),
                            c) != selection.selected.end());
    }
  }
}

TEST_F(NavigatorTest, ViewSelectionMinimality) {
  // Query {Province} alone: materializing {City} or {Province} works;
  // the advisor must find a single-view solution.
  ASSERT_OK_AND_ASSIGN(ViewSelectionResult selection,
                       SelectViews(*ds_, *d_, {province_}, {}));
  ASSERT_TRUE(selection.found);
  EXPECT_EQ(selection.selected.size(), 1u);
}

TEST_F(NavigatorTest, ViewSelectionEmptyQuerySet) {
  ASSERT_OK_AND_ASSIGN(ViewSelectionResult selection,
                       SelectViews(*ds_, *d_, {}, {}));
  EXPECT_TRUE(selection.found);
  EXPECT_TRUE(selection.selected.empty());
}

}  // namespace
}  // namespace olapdc
