// Tests for hierarchy schemas (Definition 1), including the paper's
// Example 3 (shortcuts) and Example 4 (cycles).

#include <gtest/gtest.h>

#include "core/location_example.h"
#include "dim/hierarchy_schema.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::MakeHierarchy;

TEST(HierarchySchemaTest, BasicLookups) {
  HierarchySchemaPtr schema =
      MakeHierarchy({{"Store", "City"}, {"City", "All"}});
  EXPECT_EQ(schema->num_categories(), 3);
  EXPECT_NE(schema->FindCategory("Store"), kNoCategory);
  EXPECT_EQ(schema->FindCategory("Nowhere"), kNoCategory);
  EXPECT_FALSE(schema->CategoryIdOf("Nowhere").ok());
  EXPECT_EQ(schema->CategoryName(schema->all()), "All");
  EXPECT_TRUE(
      schema->HasEdge(schema->FindCategory("Store"), schema->FindCategory("City")));
}

TEST(HierarchySchemaTest, RejectsSelfLoop) {
  HierarchySchemaBuilder builder;
  builder.AddEdge("A", "A");
  builder.AddEdge("A", "All");
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidModel);
}

TEST(HierarchySchemaTest, RejectsCategoryNotReachingAll) {
  HierarchySchemaBuilder builder;
  builder.AddEdge("A", "All");
  builder.AddCategory("Orphan");
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidModel);
}

TEST(HierarchySchemaTest, RejectsEdgesOutOfAll) {
  HierarchySchemaBuilder builder;
  builder.AddEdge("All", "A");
  builder.AddEdge("A", "All");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(HierarchySchemaTest, AllAloneIsValid) {
  HierarchySchemaBuilder builder;
  ASSERT_OK_AND_ASSIGN(HierarchySchema schema, builder.Build());
  EXPECT_EQ(schema.num_categories(), 1);
  EXPECT_EQ(schema.bottom_categories(),
            std::vector<CategoryId>({schema.all()}));
}

TEST(HierarchySchemaTest, CyclesBetweenDistinctCategoriesAllowed) {
  // Example 4: SaleDistrict <-> City.
  HierarchySchemaBuilder builder;
  builder.AddEdge("Store", "SaleDistrict")
      .AddEdge("SaleDistrict", "City")
      .AddEdge("City", "SaleDistrict")
      .AddEdge("City", "All")
      .AddEdge("SaleDistrict", "All");
  ASSERT_OK_AND_ASSIGN(HierarchySchema schema, builder.Build());
  EXPECT_TRUE(schema.Reaches(schema.FindCategory("SaleDistrict"),
                             schema.FindCategory("City")));
  EXPECT_TRUE(schema.Reaches(schema.FindCategory("City"),
                             schema.FindCategory("SaleDistrict")));
}

TEST(HierarchySchemaTest, BottomCategories) {
  HierarchySchemaPtr schema = MakeHierarchy(
      {{"A", "C"}, {"B", "C"}, {"C", "All"}});
  std::vector<CategoryId> bottoms = schema->bottom_categories();
  EXPECT_EQ(bottoms.size(), 2u);
}

TEST(HierarchySchemaTest, UpSetIsReflexiveTransitive) {
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr schema, LocationHierarchy());
  CategoryId store = schema->FindCategory("Store");
  CategoryId country = schema->FindCategory("Country");
  CategoryId province = schema->FindCategory("Province");
  EXPECT_TRUE(schema->Reaches(store, store));
  EXPECT_TRUE(schema->Reaches(store, country));
  EXPECT_TRUE(schema->Reaches(province, country));
  EXPECT_FALSE(schema->Reaches(country, store));
  // Every category reaches All (Definition 1(a)).
  for (CategoryId c = 0; c < schema->num_categories(); ++c) {
    EXPECT_TRUE(schema->Reaches(c, schema->all()));
  }
}

TEST(HierarchySchemaTest, Example3CityCountryShortcut) {
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr schema, LocationHierarchy());
  auto shortcuts = schema->Shortcuts();
  // Example 3 names (City, Country); the hierarchy has two more
  // shortcut edges: Store -> SaleRegion (shadowed by
  // Store/City/Province/SaleRegion) and State -> Country (shadowed by
  // State/SaleRegion/Country).
  ASSERT_EQ(shortcuts.size(), 3u);
  bool found_city_country = false;
  for (const auto& [u, v] : shortcuts) {
    found_city_country |= (u == schema->FindCategory("City") &&
                           v == schema->FindCategory("Country"));
  }
  EXPECT_TRUE(found_city_country);
}

TEST(HierarchySchemaTest, LocationHierarchyShape) {
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr schema, LocationHierarchy());
  EXPECT_EQ(schema->num_categories(), 7);  // incl. All
  EXPECT_EQ(schema->graph().num_edges(), 10);
  EXPECT_EQ(schema->bottom_categories(),
            std::vector<CategoryId>({schema->FindCategory("Store")}));
}

TEST(HierarchySchemaTest, DotContainsAllCategories) {
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr schema, LocationHierarchy());
  std::string dot = schema->ToDot();
  for (const char* name :
       {"Store", "City", "Province", "State", "SaleRegion", "Country"}) {
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace olapdc
