// Tests for the Section 6 extension: order atoms (built-in comparison
// predicates over numeric Name domains), end to end — parser, printer,
// model checker, circle operator, c-assignment region abstraction,
// DIMSAT, implication.

#include <gtest/gtest.h>

#include "constraint/evaluator.h"
#include "constraint/parser.h"
#include "constraint/printer.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/naive_sat.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::MakeHierarchy;
using testing_util::MakeSchema;
using testing_util::ParseC;

// Product -> PriceBand -> All; Product -> Luxury -> All. The paper's
// own example: "if the value of the price of a product is less than a
// given amount, the product rolls up to some particular path".
HierarchySchemaPtr PriceSchema() {
  return MakeHierarchy({{"Product", "PriceBand"},
                        {"Product", "Luxury"},
                        {"PriceBand", "All"},
                        {"Luxury", "All"}});
}

TEST(OrderAtomTest, ParseAndPrint) {
  HierarchySchemaPtr schema = PriceSchema();
  ASSERT_OK_AND_ASSIGN(ExprPtr e,
                       ParseExpr(*schema, "Product.PriceBand < 100"));
  ASSERT_EQ(e->kind, ExprKind::kOrderAtom);
  EXPECT_EQ(e->cmp_op, CmpOp::kLt);
  EXPECT_EQ(e->threshold, 100.0);
  EXPECT_EQ(ExprToString(*schema, e), "Product.PriceBand < 100");

  // All four operators round-trip; own-category form too.
  for (const char* text :
       {"Product.PriceBand < 100", "Product.PriceBand <= 99.5",
        "Product.PriceBand > 0.25", "Product.PriceBand >= 10",
        "Product < 5"}) {
    ASSERT_OK_AND_ASSIGN(ExprPtr parsed, ParseExpr(*schema, text));
    std::string printed = ExprToString(*schema, parsed);
    ASSERT_OK_AND_ASSIGN(ExprPtr reparsed, ParseExpr(*schema, printed));
    EXPECT_TRUE(ExprEquals(parsed, reparsed)) << text;
  }
  // Errors: missing / non-numeric operand.
  EXPECT_FALSE(ParseExpr(*schema, "Product.PriceBand < ").ok());
  EXPECT_FALSE(ParseExpr(*schema, "Product.PriceBand < cheap").ok());
  // '<=' must not be confused with '<' '=' or '<->'.
  ASSERT_OK_AND_ASSIGN(ExprPtr le, ParseExpr(*schema, "Product <= 3"));
  EXPECT_EQ(le->cmp_op, CmpOp::kLe);
}

TEST(OrderAtomTest, CmpSemantics) {
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, 1, 2));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, 2, 2));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, 2, 2));
  EXPECT_TRUE(EvalCmp(CmpOp::kGt, 3, 2));
  EXPECT_FALSE(EvalCmp(CmpOp::kGe, 1, 2));
  EXPECT_EQ(CmpOpToString(CmpOp::kGe), ">=");
  EXPECT_EQ(ParseNumericName("42"), 42.0);
  EXPECT_EQ(ParseNumericName("-1.5"), -1.5);
  EXPECT_FALSE(ParseNumericName("Canada").has_value());
  EXPECT_FALSE(ParseNumericName("").has_value());
  EXPECT_FALSE(ParseNumericName("12x").has_value());
}

TEST(OrderAtomTest, ModelChecking) {
  HierarchySchemaPtr schema = PriceSchema();
  DimensionInstanceBuilder builder(schema);
  builder.AddMember("band-low", "PriceBand", "49.99")
      .AddMember("band-high", "PriceBand", "500")
      .AddMember("lux", "Luxury")
      .AddMemberUnder("soap", "Product", "band-low")
      .AddMemberUnder("watch", "Product", "band-high")
      .AddChildParent("watch", "lux");
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, builder.Build());

  DimensionConstraint cheap_no_lux = ParseC(
      *schema, "Product.PriceBand < 100 -> !Product/Luxury");
  EXPECT_TRUE(Satisfies(d, cheap_no_lux));
  DimensionConstraint all_cheap = ParseC(*schema, "Product.PriceBand < 100");
  EXPECT_FALSE(Satisfies(d, all_cheap));
  // Non-numeric names never satisfy order atoms.
  DimensionConstraint lux_priced =
      ParseC(*schema, "Product.Luxury >= 0");
  auto watch = d.MemberIdOf("watch");
  ASSERT_TRUE(watch.ok());
  EXPECT_FALSE(EvalForMember(d, *lux_priced.expr, *watch))
      << "'lux' is not numeric";
  // Boundary semantics.
  DimensionConstraint le = ParseC(*schema, "Product.PriceBand <= 500");
  EXPECT_TRUE(Satisfies(d, le));
  DimensionConstraint lt = ParseC(*schema, "Product.PriceBand < 500");
  EXPECT_FALSE(EvalForMember(d, *lt.expr, *watch));
}

TEST(OrderAtomTest, DimsatRegionAbstraction) {
  // The paper's Section 6 scenario: cheap products skip Luxury.
  HierarchySchemaPtr schema = PriceSchema();
  std::vector<DimensionConstraint> sigma = {
      ParseC(*schema, "Product/PriceBand"),
      ParseC(*schema, "Product.PriceBand < 100 -> !Product/Luxury"),
  };
  DimensionSchema ds(schema, sigma);
  CategoryId product = schema->FindCategory("Product");
  CategoryId price_band = schema->FindCategory("PriceBand");
  CategoryId luxury = schema->FindCategory("Luxury");

  DimsatResult r = EnumerateFrozenDimensions(ds, product);
  ASSERT_OK(r.status);
  EXPECT_TRUE(r.satisfiable);
  // Structures with Luxury may carry a numeric price band only in the
  // >= 100 region (the < 100 region is contradictory); a non-numeric
  // (nk) band name is also fine — it never satisfies "< 100".
  for (const FrozenDimension& f : r.frozen) {
    if (f.g.HasEdge(product, luxury) && f.names[price_band].has_value()) {
      std::optional<double> price = ParseNumericName(*f.names[price_band]);
      ASSERT_TRUE(price.has_value());
      EXPECT_GE(*price, 100.0) << *f.names[price_band];
    }
  }
  // And at least one Luxury structure exists (price >= 100 works).
  bool has_luxury_structure = false;
  for (const FrozenDimension& f : r.frozen) {
    has_luxury_structure |= f.g.HasEdge(product, luxury);
  }
  EXPECT_TRUE(has_luxury_structure);

  // Frozen dimensions materialize and satisfy Sigma (order atoms
  // checked by the model checker on the materialized instance).
  for (const FrozenDimension& f : r.frozen) {
    ASSERT_OK_AND_ASSIGN(DimensionInstance inst, f.ToInstance(ds));
    EXPECT_TRUE(SatisfiesAll(inst, ds.constraints()))
        << f.ToString(*schema);
  }
}

TEST(OrderAtomTest, ImplicationWithOrderAtoms) {
  HierarchySchemaPtr schema = PriceSchema();
  std::vector<DimensionConstraint> sigma = {
      ParseC(*schema, "Product/PriceBand"),
      ParseC(*schema, "Product.PriceBand < 100 -> !Product/Luxury"),
  };
  DimensionSchema ds(schema, sigma);

  auto implied = [&](const char* text) {
    auto r = Implies(ds, ParseC(*schema, text));
    OLAPDC_CHECK(r.ok()) << r.status().ToString();
    return r->implied;
  };
  // Contrapositive reasoning across the region abstraction.
  EXPECT_TRUE(implied("Product/Luxury -> !(Product.PriceBand < 100)"));
  EXPECT_TRUE(implied("Product.PriceBand < 50 -> !Product/Luxury"));
  EXPECT_FALSE(implied("Product.PriceBand < 200 -> !Product/Luxury"));
  EXPECT_FALSE(implied("Product.PriceBand >= 100"));
  // Interval reasoning: < 100 and >= 100 cannot hold together.
  EXPECT_TRUE(implied(
      "!(Product.PriceBand < 100 & Product.PriceBand >= 100)"));
  // But < 100 and >= 50 can.
  EXPECT_FALSE(implied(
      "!(Product.PriceBand < 100 & Product.PriceBand >= 50)"));
  // Strict/inclusive boundary distinction: <= 100 and >= 100 meet at
  // exactly 100.
  EXPECT_FALSE(implied(
      "!(Product.PriceBand <= 100 & Product.PriceBand >= 100)"));
}

TEST(OrderAtomTest, EqualityAndOrderInteract) {
  HierarchySchemaPtr schema = PriceSchema();
  std::vector<DimensionConstraint> sigma = {
      ParseC(*schema, "Product/PriceBand"),
      // Named band "100" is also numerically 100.
      ParseC(*schema,
             "Product.PriceBand = '100' -> Product.PriceBand >= 100"),
  };
  DimensionSchema ds(schema, sigma);
  CategoryId product = schema->FindCategory("Product");
  EXPECT_TRUE(Dimsat(ds, product).satisfiable);

  // A schema where the named constant contradicts the order atom makes
  // that constant unusable but the category stays satisfiable via nk.
  std::vector<DimensionConstraint> contradictory = {
      ParseC(*schema, "Product/PriceBand"),
      ParseC(*schema, "Product.PriceBand = '100'"),
      ParseC(*schema, "Product.PriceBand < 50"),
  };
  DimensionSchema ds2(schema, contradictory);
  EXPECT_FALSE(Dimsat(ds2, product).satisfiable)
      << "name must be '100' but numerically < 50 — impossible";
}

TEST(OrderAtomTest, NaiveOracleAgreesWithOrderAtoms) {
  HierarchySchemaPtr schema = PriceSchema();
  for (const char* extra :
       {"Product.PriceBand < 100 -> !Product/Luxury",
        "Product/Luxury <-> Product.PriceBand >= 250",
        "Product.PriceBand > 10 & Product.PriceBand < 20 -> "
        "Product/Luxury"}) {
    std::vector<DimensionConstraint> sigma = {
        ParseC(*schema, "Product/PriceBand"), ParseC(*schema, extra)};
    DimensionSchema ds(schema, sigma);
    CategoryId product = schema->FindCategory("Product");
    DimsatOptions options;
    options.enumerate_all = true;
    DimsatResult dimsat = Dimsat(ds, product, options);
    ASSERT_OK(dimsat.status);
    NaiveSatOptions naive_options;
    naive_options.enumerate_all = true;
    ASSERT_OK_AND_ASSIGN(DimsatResult naive,
                         NaiveSat(ds, product, naive_options));
    EXPECT_EQ(dimsat.satisfiable, naive.satisfiable) << extra;
    EXPECT_EQ(dimsat.frozen.size(), naive.frozen.size()) << extra;
  }
}

}  // namespace
}  // namespace olapdc
