// io/durable_file.h: the CRC-framed crash-durability primitive under
// olapdcd's snapshot plane. Writing must be all-or-nothing at the file
// level (temp + fsync + rename; a failed write leaves the previous
// file intact), and reading must be *recovery*: torn tails, truncated
// frames, bit flips, and implausible length words salvage the longest
// valid record prefix instead of failing the startup.

#include "io/durable_file.h"

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "gtest/gtest.h"

namespace olapdc {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/durable_" + name;
}

std::string ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<uint64_t>(st.st_size);
}

/// Records with embedded NUL, newlines, and binary bytes — the frame
/// is length-prefixed, so payload content must be irrelevant.
std::vector<std::string> BinaryRecords() {
  return {std::string("meta\nseq 7\n"),
          std::string("\x00\x01\xff\xfe binary \n\n", 12),
          std::string(4096, 'x'), std::string()};
}

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 reflected CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(DurableFileTest, RoundTripsBinaryRecords) {
  const std::string path = TestPath("roundtrip");
  const std::vector<std::string> records = BinaryRecords();
  DurableWriteStats stats;
  ASSERT_TRUE(WriteDurableFile(path, records, &stats).ok());
  EXPECT_EQ(stats.records, records.size());
  EXPECT_EQ(stats.bytes, FileSize(path));

  auto read = ReadDurableFile(path);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(read->records, records);
  EXPECT_EQ(read->bytes_total, stats.bytes);
  EXPECT_EQ(read->bytes_salvaged, stats.bytes);
  EXPECT_EQ(read->torn_tail_truncations, 0u);
  EXPECT_EQ(read->crc_drops, 0u);
}

TEST(DurableFileTest, RoundTripsEmptyRecordList) {
  const std::string path = TestPath("empty_list");
  ASSERT_TRUE(WriteDurableFile(path, {}).ok());
  auto read = ReadDurableFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->torn_tail_truncations, 0u);
}

TEST(DurableFileTest, MissingFileIsNotFound) {
  auto read = ReadDurableFile(TestPath("does_not_exist"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(DurableFileTest, WrongMagicIsParseError) {
  const std::string path = TestPath("wrong_magic");
  WriteRaw(path, "not a durable file at all\nmore bytes\n");
  auto read = ReadDurableFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kParseError);
}

TEST(DurableFileTest, TornPayloadSalvagesPrefix) {
  const std::string path = TestPath("torn_payload");
  const std::vector<std::string> records = BinaryRecords();
  ASSERT_TRUE(WriteDurableFile(path, records).ok());
  // Lose the last 3 bytes — inside the final frame (the empty record's
  // 8-byte frame), as a lost tail page would.
  const std::string raw = ReadRaw(path);
  WriteRaw(path, raw.substr(0, raw.size() - 3));

  auto read = ReadDurableFile(path);
  ASSERT_TRUE(read.ok()) << read.status().message();
  ASSERT_EQ(read->records.size(), records.size() - 1);
  for (size_t i = 0; i + 1 < records.size(); ++i) {
    EXPECT_EQ(read->records[i], records[i]);
  }
  EXPECT_EQ(read->torn_tail_truncations, 1u);
  EXPECT_EQ(read->crc_drops, 0u);
}

TEST(DurableFileTest, TornFrameAfterMagicSalvagesNothing) {
  const std::string path = TestPath("torn_frame");
  ASSERT_TRUE(WriteDurableFile(path, BinaryRecords()).ok());
  const std::string raw = ReadRaw(path);
  // Magic plus half a length word: zero complete records survive.
  WriteRaw(path, raw.substr(0, 18 + 2));

  auto read = ReadDurableFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->torn_tail_truncations, 1u);
}

TEST(DurableFileTest, CrcFlipDropsRecordAndEverythingAfter) {
  const std::string path = TestPath("crc_flip");
  const std::vector<std::string> records = BinaryRecords();
  ASSERT_TRUE(WriteDurableFile(path, records).ok());
  std::string raw = ReadRaw(path);
  // Flip one payload byte of record 1: magic(18) + frame(8) +
  // payload0(11) + frame(8) + 2 bytes in.
  const size_t flip_at = 18 + 8 + records[0].size() + 8 + 2;
  ASSERT_LT(flip_at, raw.size());
  raw[flip_at] = static_cast<char>(raw[flip_at] ^ 0x40);
  WriteRaw(path, raw);

  auto read = ReadDurableFile(path);
  ASSERT_TRUE(read.ok());
  // Record 0 survives; the flipped record and all records after it are
  // dropped (framing cannot resync past corruption).
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0], records[0]);
  EXPECT_EQ(read->crc_drops, 1u);
}

TEST(DurableFileTest, ImplausibleLengthWordStopsSalvage) {
  const std::string path = TestPath("bad_length");
  const std::vector<std::string> records = BinaryRecords();
  ASSERT_TRUE(WriteDurableFile(path, records).ok());
  std::string raw = ReadRaw(path);
  // Overwrite record 1's length word with 0xFFFFFFFF — far past
  // kMaxDurableRecordBytes; the reader must stop, not allocate 4GB.
  const size_t frame1 = 18 + 8 + records[0].size();
  for (size_t i = 0; i < 4; ++i) raw[frame1 + i] = '\xff';
  WriteRaw(path, raw);

  auto read = ReadDurableFile(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0], records[0]);
  EXPECT_EQ(read->torn_tail_truncations, 1u);
}

TEST(DurableFileTest, OversizedRecordRefusedAtWrite) {
  // Refused up front (would exceed the length-word ceiling) — checked
  // via the documented cap rather than allocating 1GB in a unit test.
  static_assert(kMaxDurableRecordBytes == (1u << 30));
}

TEST(DurableFileTest, TruncateTornTailLeavesCleanFile) {
  const std::string path = TestPath("truncate_tail");
  const std::vector<std::string> records = BinaryRecords();
  ASSERT_TRUE(WriteDurableFile(path, records).ok());
  const std::string raw = ReadRaw(path);
  WriteRaw(path, raw.substr(0, raw.size() - 3));

  auto read = ReadDurableFile(path, /*truncate_torn_tail=*/true);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->torn_tail_truncations, 1u);
  EXPECT_EQ(FileSize(path), read->bytes_salvaged);

  // The truncated file now reads clean: same salvage, no drops.
  auto again = ReadDurableFile(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records, read->records);
  EXPECT_EQ(again->torn_tail_truncations, 0u);
  EXPECT_EQ(again->crc_drops, 0u);
}

TEST(DurableFileTest, InjectedWriteFailureLeavesPreviousFileIntact) {
  const std::string path = TestPath("fault_write");
  const std::vector<std::string> v1 = {"generation one"};
  ASSERT_TRUE(WriteDurableFile(path, v1).ok());

  for (const char* site : {"durable.write", "durable.fsync",
                           "durable.rename"}) {
    ScopedFaultInjection faults(/*seed=*/7);
    FaultInjector::Global().SetFault(site, StatusCode::kUnavailable,
                                     /*probability=*/1.0, "injected");
    const Status failed = WriteDurableFile(path, {"generation two"});
    ASSERT_FALSE(failed.ok()) << site;
    // The previous generation still reads back whole, and no temp file
    // lingers.
    auto read = ReadDurableFile(path);
    ASSERT_TRUE(read.ok()) << site;
    EXPECT_EQ(read->records, v1) << site;
    struct stat st;
    EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0) << site;
  }

  // Disarmed again, the replacement goes through.
  ASSERT_TRUE(WriteDurableFile(path, {"generation two"}).ok());
  auto read = ReadDurableFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, std::vector<std::string>{"generation two"});
}

}  // namespace
}  // namespace olapdc
