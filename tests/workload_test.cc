// Tests for the workload generators: structural validity, determinism,
// and the central property that generated instances are valid models of
// their schemas (C1-C7 + Sigma).

#include <gtest/gtest.h>

#include "constraint/evaluator.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "tests/test_util.h"
#include "workload/instance_generator.h"
#include "workload/realistic.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

TEST(SchemaGeneratorTest, ShapeAndDeterminism) {
  SchemaGenOptions options;
  options.num_levels = 3;
  options.categories_per_level = 3;
  options.seed = 11;
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr a, GenerateLayeredHierarchy(options));
  // 1 (Base) + 3*3 + All = 11 categories; Base is the unique bottom.
  EXPECT_EQ(a->num_categories(), 11);
  EXPECT_EQ(a->bottom_categories().size(), 1u);
  EXPECT_EQ(a->CategoryName(a->bottom_categories()[0]), "Base");

  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr b, GenerateLayeredHierarchy(options));
  EXPECT_TRUE(a->graph() == b->graph()) << "same seed, same schema";
  options.seed = 12;
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr c, GenerateLayeredHierarchy(options));
  EXPECT_FALSE(a->graph() == c->graph());
}

TEST(SchemaGeneratorTest, ConstraintsRespectKnobs) {
  SchemaGenOptions schema_options;
  schema_options.seed = 5;
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr hierarchy,
                       GenerateLayeredHierarchy(schema_options));

  ConstraintGenOptions none;
  none.into_fraction = 0.0;
  none.num_choice_constraints = 0;
  none.num_equality_constraints = 0;
  ASSERT_OK_AND_ASSIGN(DimensionSchema empty,
                       GenerateConstrainedSchema(hierarchy, none));
  EXPECT_TRUE(empty.constraints().empty());

  ConstraintGenOptions full;
  full.into_fraction = 1.0;
  full.num_choice_constraints = 0;
  full.num_equality_constraints = 0;
  ASSERT_OK_AND_ASSIGN(DimensionSchema homogeneous,
                       GenerateConstrainedSchema(hierarchy, full));
  // Every non-shortcut edge carries an into constraint.
  for (const DimensionConstraint& c : homogeneous.constraints()) {
    EXPECT_TRUE(IsIntoConstraint(c, nullptr, nullptr));
  }
  EXPECT_GT(homogeneous.constraints().size(), 0u);

  ConstraintGenOptions eq;
  eq.into_fraction = 0.0;
  eq.num_choice_constraints = 1;
  eq.num_equality_constraints = 2;
  eq.num_constants = 3;
  ASSERT_OK_AND_ASSIGN(DimensionSchema with_eq,
                       GenerateConstrainedSchema(hierarchy, eq));
  EXPECT_GE(with_eq.constraints().size(), 1u);
}

class GeneratedInstanceValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedInstanceValidityTest, InstancesAreModelsOfTheirSchema) {
  const int seed = GetParam();
  SchemaGenOptions schema_options;
  schema_options.num_levels = 2 + seed % 2;
  schema_options.categories_per_level = 2 + seed % 2;
  schema_options.extra_edge_prob = 0.3;
  schema_options.seed = static_cast<uint64_t>(seed) * 37 + 5;
  auto hierarchy = GenerateLayeredHierarchy(schema_options);
  ASSERT_TRUE(hierarchy.ok());
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 1 + seed % 2;
  constraint_options.num_equality_constraints = seed % 3;
  constraint_options.seed = seed;
  auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
  ASSERT_TRUE(ds.ok());

  InstanceGenOptions gen;
  gen.branching = 2;
  gen.copies = 1 + seed % 2;
  gen.max_structures = 8;
  auto d = GenerateInstanceFromFrozen(*ds, gen);
  if (!d.ok()) {
    // Only acceptable cause: the schema is unsatisfiable at the base.
    EXPECT_FALSE(
        Dimsat(*ds, ds->hierarchy().FindCategory("Base")).satisfiable)
        << d.status().ToString();
    return;
  }
  // Builder already validated C1-C7; re-assert plus Sigma satisfaction.
  EXPECT_OK(d->Validate());
  for (const DimensionConstraint& c : ds->constraints()) {
    EXPECT_TRUE(Satisfies(*d, c)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedInstanceValidityTest,
                         ::testing::Range(0, 20));

TEST(InstanceGeneratorTest, SizeKnobs) {
  auto ds = LocationSchema();
  ASSERT_TRUE(ds.ok());
  InstanceGenOptions small;
  small.branching = 1;
  small.copies = 1;
  ASSERT_OK_AND_ASSIGN(DimensionInstance a, GenerateInstanceFromFrozen(*ds, small));
  InstanceGenOptions bigger = small;
  bigger.copies = 3;
  ASSERT_OK_AND_ASSIGN(DimensionInstance b,
                       GenerateInstanceFromFrozen(*ds, bigger));
  // Copies scale member count (shared all member excluded).
  EXPECT_EQ((b.num_members() - 1), (a.num_members() - 1) * 3);
  InstanceGenOptions deeper = small;
  deeper.branching = 3;
  ASSERT_OK_AND_ASSIGN(DimensionInstance c,
                       GenerateInstanceFromFrozen(*ds, deeper));
  EXPECT_GT(c.num_members(), a.num_members());
}

TEST(InstanceGeneratorTest, UnsatisfiableSchemaRejected) {
  DimensionSchema ds = testing_util::MakeSchema(
      {{"A", "B"}, {"B", "All"}}, {"!A/B"});
  // A (the only bottom) is unsatisfiable -> no instance.
  EXPECT_FALSE(GenerateInstanceFromFrozen(ds).ok());
}

TEST(FactGeneratorTest, FactsCoverBaseMembers) {
  auto ds = LocationSchema();
  ASSERT_TRUE(ds.ok());
  InstanceGenOptions gen;
  gen.branching = 2;
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, GenerateInstanceFromFrozen(*ds, gen));
  FactGenOptions fact_options;
  fact_options.facts_per_base_member = 3;
  FactTable facts = GenerateFacts(d, fact_options);
  size_t base_members = 0;
  for (CategoryId b : d.hierarchy().bottom_categories()) {
    base_members += d.MembersOf(b).size();
  }
  EXPECT_EQ(facts.size(), base_members * 3);
  EXPECT_OK(facts.ValidateAgainst(d));
  // Deterministic.
  FactTable again = GenerateFacts(d, fact_options);
  ASSERT_EQ(again.size(), facts.size());
  for (size_t i = 0; i < facts.size(); ++i) {
    EXPECT_EQ(facts.rows()[i].measure, again.rows()[i].measure);
  }
}

TEST(RealisticSchemaTest, HealthcareAndProductAreWellFormed) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema healthcare, HealthcareSchema());
  ASSERT_OK_AND_ASSIGN(DimensionSchema product, ProductSchema());
  // Every category satisfiable in both.
  for (const DimensionSchema* ds : {&healthcare, &product}) {
    for (CategoryId c = 0; c < ds->hierarchy().num_categories(); ++c) {
      EXPECT_TRUE(Dimsat(*ds, c).satisfiable)
          << ds->hierarchy().CategoryName(c);
    }
  }
  // Healthcare heterogeneity: exactly two diagnosis structures.
  DimsatResult frozen = EnumerateFrozenDimensions(
      healthcare, healthcare.hierarchy().FindCategory("Diagnosis"));
  ASSERT_OK(frozen.status);
  EXPECT_EQ(frozen.frozen.size(), 2u);
  // Generated instances over both schemas are valid models.
  for (const DimensionSchema* ds : {&healthcare, &product}) {
    InstanceGenOptions gen;
    gen.branching = 2;
    ASSERT_OK_AND_ASSIGN(DimensionInstance d,
                         GenerateInstanceFromFrozen(*ds, gen));
    EXPECT_OK(d.Validate());
    EXPECT_TRUE(SatisfiesAll(d, ds->constraints()));
  }
}

}  // namespace
}  // namespace olapdc
