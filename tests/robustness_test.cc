// Robustness tests: every resource-exhaustion path (expand-call cap,
// path limit, frozen cap, wall-clock deadline, cancellation) must stop
// the procedures early with the right status code and the partial
// statistics accumulated so far; the Reasoner ladder must degrade to
// kUnknown instead of erroring; and each degradation path must be
// reproducible deterministically through the fault injector.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/fault_injector.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/location_example.h"
#include "core/naive_sat.h"
#include "core/reasoner.h"
#include "core/summarizability.h"
#include "io/instance_io.h"
#include "io/schema_io.h"
#include "olap/navigator.h"
#include "olap/view_selection.h"
#include "tests/test_util.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

using testing_util::MakeSchema;
using testing_util::ParseC;

Budget ExpiredBudget() {
  return Budget::WithDeadline(std::chrono::milliseconds(-1));
}

/// A generated schema hard enough that full frozen-dimension
/// enumeration blows any reasonable expand budget. `Hardness` verifies
/// the premise so the deadline/cancellation tests cannot pass
/// vacuously.
DimensionSchema AdversarialSchema() {
  SchemaGenOptions schema_options;
  schema_options.num_levels = 6;
  schema_options.categories_per_level = 4;
  schema_options.extra_edge_prob = 0.5;
  schema_options.max_level_jump = 3;
  schema_options.seed = 11;
  auto hierarchy = GenerateLayeredHierarchy(schema_options);
  OLAPDC_CHECK(hierarchy.ok()) << hierarchy.status().ToString();
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.25;
  constraint_options.num_choice_constraints = 3;
  constraint_options.num_equality_constraints = 3;
  constraint_options.seed = 11;
  auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
  OLAPDC_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).ValueOrDie();
}

DimsatOptions EnumerateAllOptions() {
  DimsatOptions options;
  options.enumerate_all = true;
  options.require_injective_names = true;
  return options;
}

class AdversarialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_.emplace(AdversarialSchema());
    root_ = ds_->hierarchy().FindCategory("Base");
    ASSERT_NE(root_, kNoCategory);
    // Premise: the full enumeration needs far more than kProbeCap
    // EXPAND calls, so a generous deadline can reliably interrupt it.
    DimsatOptions probe = EnumerateAllOptions();
    probe.max_expand_calls = kProbeCap;
    DimsatResult r = Dimsat(*ds_, root_, probe);
    ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted)
        << "generated schema too easy to exercise budgets";
  }

  static constexpr uint64_t kProbeCap = 200000;
  std::optional<DimensionSchema> ds_;
  CategoryId root_ = kNoCategory;
};

TEST_F(AdversarialTest, DeadlineStopsSearchWithPartialStats) {
  Budget budget = Budget::WithDeadlineMs(50);
  DimsatOptions options = EnumerateAllOptions();
  options.budget = &budget;
  auto start = std::chrono::steady_clock::now();
  DimsatResult r = Dimsat(*ds_, root_, options);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.stats.Any());
  EXPECT_GT(r.stats.expand_calls, 0u);
  // Amortized checks must stop the search promptly; the generous bound
  // only guards against a stuck/unchecked loop on a loaded machine.
  EXPECT_LT(elapsed.count(), 2000);
}

TEST_F(AdversarialTest, CancellationStopsSearchWithPartialStats) {
  CancellationSource source;
  Budget budget;
  budget.SetCancellation(source.token());
  DimsatOptions options = EnumerateAllOptions();
  options.budget = &budget;
  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    source.RequestCancel();
  });
  DimsatResult r = Dimsat(*ds_, root_, options);
  canceller.join();
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(r.stats.Any());
}

TEST_F(AdversarialTest, ReasonerDeadlineDegradesToUnknown) {
  Reasoner reasoner(*ds_);
  Budget budget = Budget::WithDeadlineMs(50);
  // Frozen-dimension existence is quick here; force the hard direction
  // (an implication that must close the whole search space).
  DimensionConstraint alpha = ParseC(ds_->hierarchy(), "Base.L1C0");
  ReasonerAnswer answer = reasoner.QueryImplies(alpha, &budget);
  if (answer.truth == Truth::kUnknown) {
    EXPECT_EQ(answer.reason.code(), StatusCode::kDeadlineExceeded);
    EXPECT_GT(answer.work.expand_calls, 0u);
    EXPECT_EQ(reasoner.stats().unknown, 1u);
  } else {
    // Machine fast enough to finish under the deadline: the answer must
    // then be definitive with no error.
    EXPECT_OK(answer.reason);
  }
}

TEST(ResourceExhaustionTest, ExpandCapEmbedsPartialStats) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatOptions options;
  options.enumerate_all = true;
  options.max_expand_calls = 2;
  DimsatResult r = Dimsat(ds, store, options);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(r.stats.Any());
  EXPECT_GT(r.stats.expand_calls, 0u);
}

TEST(ResourceExhaustionTest, PathLimitFailsBeforeSearching) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatOptions options;
  options.path_limit = 0;
  DimsatResult r = Dimsat(ds, store, options);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  // Exhausted during constraint preparation: no search work yet. This
  // distinction is what stops the Reasoner ladder from retrying it.
  EXPECT_FALSE(r.stats.Any());
}

TEST(ResourceExhaustionTest, FrozenCapTruncatesEnumerationCleanly) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatOptions options;
  options.enumerate_all = true;
  options.max_frozen = 2;
  DimsatResult r = Dimsat(ds, store, options);
  EXPECT_OK(r.status);  // a truncated enumeration is not an error
  EXPECT_EQ(r.frozen.size(), 2u);
}

TEST(ResourceExhaustionTest, PreExpiredDeadlineTripsOnFirstCheck) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  Budget budget = ExpiredBudget();
  DimsatOptions options;
  options.budget = &budget;
  DimsatResult r = Dimsat(ds, store, options);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.stats.expand_calls, 0u);
}

TEST(ResourceExhaustionTest, PreCancelledTokenStopsEverything) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  CancellationSource source;
  source.RequestCancel();
  Budget budget;
  budget.SetCancellation(source.token());
  DimsatOptions options;
  options.budget = &budget;
  DimsatResult r = Dimsat(ds, store, options);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
}

TEST(ResourceExhaustionTest, NaiveSatHonorsTheBudget) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  NaiveSatOptions options;
  Budget budget = ExpiredBudget();
  options.budget = &budget;
  options.enumerate_all = true;
  ASSERT_OK_AND_ASSIGN(DimsatResult r, NaiveSat(ds, store, options));
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  // The up-front refusal (too many edges to ever enumerate) stays on
  // the Result error channel — no partial result exists — unlike the
  // in-loop budget stop above, which returns one.
  NaiveSatOptions refusal;
  refusal.max_edges = 0;
  Result<DimsatResult> refused = NaiveSat(ds, store, refusal);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceExhaustionTest, ImplicationEmbedsBudgetStatus) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  Budget budget = ExpiredBudget();
  DimsatOptions options;
  options.budget = &budget;
  DimensionConstraint alpha = ParseC(ds.hierarchy(), "Store.Country");
  ASSERT_OK_AND_ASSIGN(ImplicationResult r, Implies(ds, alpha, options));
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ResourceExhaustionTest, SummarizabilityReturnsPartialDetails) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  Budget budget = ExpiredBudget();
  DimsatOptions options;
  options.budget = &budget;
  ASSERT_OK_AND_ASSIGN(
      SummarizabilityResult r,
      IsSummarizable(ds, schema.FindCategory("Country"),
                     {schema.FindCategory("City")}, options));
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(r.summarizable);  // conservatively not proved
}

TEST(ReasonerLadderTest, GrowsBudgetUntilTheQueryFits) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  ReasonerOptions options;
  options.initial_expand_budget = 1;  // guaranteed too small
  options.expand_budget_growth = 4;
  options.max_attempts = 8;
  Reasoner reasoner(ds, options);
  ReasonerAnswer answer = reasoner.QuerySatisfiable(store);
  EXPECT_EQ(answer.truth, Truth::kYes);
  EXPECT_OK(answer.reason);
  EXPECT_GT(answer.attempts, 1);
  EXPECT_GT(reasoner.stats().retries, 0u);
  // The ladder work includes the abandoned rungs.
  EXPECT_GT(answer.work.expand_calls, 1u);
}

TEST(ReasonerLadderTest, OverallCapBoundsTheLadder) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  ReasonerOptions options;
  options.initial_expand_budget = 1;
  options.expand_budget_growth = 8;
  options.max_attempts = 10;
  options.dimsat.max_expand_calls = 2;  // overall cap below what's needed
  Reasoner reasoner(ds, options);
  ReasonerAnswer answer = reasoner.QuerySatisfiable(store);
  EXPECT_EQ(answer.truth, Truth::kUnknown);
  EXPECT_EQ(answer.reason.code(), StatusCode::kResourceExhausted);
  // Rung 2 already reaches the overall cap; the ladder must stop there
  // instead of burning all ten attempts on an unwinnable budget.
  EXPECT_LE(answer.attempts, 2);
  EXPECT_EQ(reasoner.stats().unknown, 1u);
}

TEST(ReasonerLadderTest, DeadlineFailureIsNotRetried) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  Budget budget = ExpiredBudget();
  Reasoner reasoner(ds);
  ReasonerAnswer answer = reasoner.QuerySatisfiable(store, &budget);
  EXPECT_EQ(answer.truth, Truth::kUnknown);
  EXPECT_EQ(answer.reason.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(answer.attempts, 1);  // retrying an expired clock is futile
}

TEST(ReasonerLadderTest, DefinitiveAnswersAreCachedUnknownIsNot) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  Reasoner reasoner(ds);

  // Unknown (expired budget) must not be cached...
  Budget expired = ExpiredBudget();
  ReasonerAnswer unknown = reasoner.QuerySatisfiable(store, &expired);
  EXPECT_EQ(unknown.truth, Truth::kUnknown);
  // ...so the same query without the budget gets a real answer.
  ReasonerAnswer fresh = reasoner.QuerySatisfiable(store);
  EXPECT_EQ(fresh.truth, Truth::kYes);
  EXPECT_FALSE(fresh.from_cache);
  // A definitive answer is served from cache, even under a budget that
  // would fail any new search.
  Budget expired_again = ExpiredBudget();
  ReasonerAnswer cached = reasoner.QuerySatisfiable(store, &expired_again);
  EXPECT_EQ(cached.truth, Truth::kYes);
  EXPECT_TRUE(cached.from_cache);
  EXPECT_EQ(reasoner.stats().hits, 1u);
}

TEST(ReasonerLadderTest, LegacyFacadeSurfacesUnknownAsStatus) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  ReasonerOptions options;
  options.initial_expand_budget = 1;
  options.max_attempts = 1;
  options.dimsat.max_expand_calls = 1;
  Reasoner reasoner(ds, options);
  Result<bool> r = reasoner.IsSatisfiable(store);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// --- Fault-injection degradation drills. Each path is forced
// deterministically from a fixed seed; none of them can fire in
// production because the injector ships disarmed. ---

TEST(FaultDegradationTest, ForcedBudgetExhaustionInDimsat) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  ScopedFaultInjection guard(/*seed=*/101);
  FaultInjector::Global().SetFault("dimsat.expand",
                                   StatusCode::kDeadlineExceeded, 1.0,
                                   "injected deadline");
  DimsatResult r = Dimsat(ds, store, {});
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.status.message(), "injected deadline");
  EXPECT_GE(FaultInjector::Global().failures("dimsat.expand"), 1u);

  // The Reasoner sees the forced exhaustion and degrades to kUnknown.
  Reasoner reasoner(ds);
  ReasonerAnswer answer = reasoner.QuerySatisfiable(store);
  EXPECT_EQ(answer.truth, Truth::kUnknown);
  EXPECT_EQ(answer.reason.code(), StatusCode::kDeadlineExceeded);
}

TEST(FaultDegradationTest, ForcedInternalErrorStaysHard) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  ScopedFaultInjection guard(/*seed=*/102);
  FaultInjector::Global().SetFault("dimsat.expand", StatusCode::kInternal,
                                   1.0, "injected bug");
  // Internal errors are not budget degradations: consumers must see
  // them on the error channel, not as a quiet "false".
  Result<bool> r = IsCategorySatisfiable(ds, store);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(FaultDegradationTest, ForcedReasonerFaultYieldsUnknown) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  ScopedFaultInjection guard(/*seed=*/103);
  FaultInjector::Global().SetFault("reasoner.query", StatusCode::kInternal,
                                   1.0, "injected reasoner fault");
  Reasoner reasoner(ds);
  ReasonerAnswer answer = reasoner.QuerySatisfiable(store);
  EXPECT_EQ(answer.truth, Truth::kUnknown);
  EXPECT_EQ(answer.reason.code(), StatusCode::kInternal);
  EXPECT_EQ(answer.work.expand_calls, 0u);  // failed before any search
}

TEST(FaultDegradationTest, ForcedParseFailures) {
  ScopedFaultInjection guard(/*seed=*/104);
  FaultInjector::Global().SetFault("schema_io.parse",
                                   StatusCode::kParseError, 1.0,
                                   "injected schema corruption");
  FaultInjector::Global().SetFault("instance_io.parse",
                                   StatusCode::kParseError, 1.0,
                                   "injected instance corruption");
  Result<DimensionSchema> ds = ParseSchemaText("category A\nedge A All\n");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kParseError);
  EXPECT_EQ(ds.status().message(), "injected schema corruption");

  ASSERT_OK_AND_ASSIGN(DimensionSchema good, LocationSchema());
  Result<DimensionInstance> d = ParseInstanceText(good.hierarchy_ptr(), "");
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().message(), "injected instance corruption");
}

TEST(FaultDegradationTest, ProbabilisticFaultsAreSeedReproducible) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  auto run = [&]() {
    ScopedFaultInjection guard(/*seed=*/105);
    FaultInjector::Global().SetFault(
        "dimsat.expand", StatusCode::kDeadlineExceeded, 0.05);
    std::vector<StatusCode> codes;
    for (int i = 0; i < 20; ++i) {
      DimsatOptions options;
      options.enumerate_all = true;
      codes.push_back(Dimsat(ds, store, options).status.code());
    }
    return codes;
  };
  std::vector<StatusCode> first = run();
  EXPECT_EQ(first, run());
  // The 5% fault actually interleaves failures with successes.
  EXPECT_NE(std::count(first.begin(), first.end(), StatusCode::kOk), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), StatusCode::kOk), 20);
}

// --- Conservative degradation in the OLAP consumers. ---

TEST(ConsumerDegradationTest, NavigatorSkipsUnprovenRewrites) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());

  Budget budget = ExpiredBudget();
  NavigatorDiagnostics diagnostics;
  NavigatorOptions options;
  options.mode = NavigatorMode::kSchemaLevel;
  options.dimsat.budget = &budget;
  options.diagnostics = &diagnostics;
  ASSERT_OK_AND_ASSIGN(
      auto rewrite,
      FindRewriteSet(ds, d, {schema.FindCategory("City")},
                     schema.FindCategory("Country"), options));
  EXPECT_FALSE(rewrite.has_value());  // nothing provable in time
  EXPECT_TRUE(diagnostics.degraded());
  EXPECT_GT(diagnostics.unknown_rewrite_sets, 0u);
  EXPECT_EQ(diagnostics.last_budget_status.code(),
            StatusCode::kDeadlineExceeded);
}

TEST(ConsumerDegradationTest, ViewSelectionReportsDegradation) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());

  Budget budget = ExpiredBudget();
  ViewSelectionOptions options;
  options.dimsat.budget = &budget;
  ASSERT_OK_AND_ASSIGN(
      ViewSelectionResult r,
      SelectViews(ds, d, {schema.FindCategory("Country")}, options));
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.budget_status.code(), StatusCode::kDeadlineExceeded);
  // Whatever it reports, a degraded "not found" must not be read as a
  // proof of nonexistence — that is exactly what the flag is for.
}

}  // namespace
}  // namespace olapdc
