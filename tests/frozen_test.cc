// Unit tests for the FrozenDimension value type (string/DOT rendering,
// materialization details, equality) complementing the behavioural
// coverage in dimsat_test.cc.

#include <gtest/gtest.h>

#include <string>

#include "constraint/evaluator.h"
#include "core/dimsat.h"
#include "core/frozen.h"
#include "core/location_example.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::MakeSchema;
using testing_util::ParseC;

FrozenDimension SampleFrozen(const DimensionSchema& ds) {
  DimsatResult r = Dimsat(ds, ds.hierarchy().FindCategory("Store"));
  OLAPDC_CHECK(r.status.ok() && !r.frozen.empty());
  return r.frozen.front();
}

TEST(FrozenTest, ToStringListsEdgesAndBindings) {
  auto ds = LocationSchema();
  ASSERT_TRUE(ds.ok());
  FrozenDimension f = SampleFrozen(*ds);
  std::string s = f.ToString(ds->hierarchy());
  EXPECT_NE(s.find("Store->City"), std::string::npos) << s;
  EXPECT_NE(s.find("Country="), std::string::npos) << s;
  EXPECT_NE(s.find("Country->All"), std::string::npos) << s;
}

TEST(FrozenTest, MaterializationNamesNkDistinctly) {
  auto ds = LocationSchema();
  ASSERT_TRUE(ds.ok());
  FrozenDimension f = SampleFrozen(*ds);
  ASSERT_OK_AND_ASSIGN(DimensionInstance inst, f.ToInstance(*ds));
  // One member per category of g; keys are the category names.
  EXPECT_EQ(inst.num_members(), f.g.categories().count());
  ASSERT_OK_AND_ASSIGN(MemberId store, inst.MemberIdOf("Store"));
  // Store has no constant: its Name carries the nk prefix, which never
  // collides with a Sigma constant.
  EXPECT_EQ(inst.member(store).name, "~Store");
  ASSERT_OK_AND_ASSIGN(MemberId country, inst.MemberIdOf("Country"));
  EXPECT_TRUE(inst.member(country).name == "Canada" ||
              inst.member(country).name == "Mexico" ||
              inst.member(country).name == "USA");
  // The All member is the conventional "all".
  EXPECT_EQ(inst.member(inst.all_member()).key, "All");
  EXPECT_EQ(inst.member(inst.all_member()).name, "all");
}

TEST(FrozenTest, CustomNkPrefix) {
  auto ds = LocationSchema();
  ASSERT_TRUE(ds.ok());
  FrozenDimension f = SampleFrozen(*ds);
  ASSERT_OK_AND_ASSIGN(DimensionInstance inst, f.ToInstance(*ds, "nk:"));
  ASSERT_OK_AND_ASSIGN(MemberId store, inst.MemberIdOf("Store"));
  EXPECT_EQ(inst.member(store).name, "nk:Store");
}

TEST(FrozenTest, FrozenEquals) {
  auto ds = LocationSchema();
  ASSERT_TRUE(ds.ok());
  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult r =
      Dimsat(*ds, ds->hierarchy().FindCategory("Store"), options);
  ASSERT_OK(r.status);
  ASSERT_GE(r.frozen.size(), 2u);
  EXPECT_TRUE(FrozenEquals(r.frozen[0], r.frozen[0]));
  EXPECT_FALSE(FrozenEquals(r.frozen[0], r.frozen[1]));
}

TEST(FrozenTest, MinimalModelIsMinimal) {
  // A frozen dimension has exactly one member per populated category —
  // the "minimal homogeneous instance" of the paper's Definition 5.
  auto ds = LocationSchema();
  ASSERT_TRUE(ds.ok());
  FrozenDimension f = SampleFrozen(*ds);
  ASSERT_OK_AND_ASSIGN(DimensionInstance inst, f.ToInstance(*ds));
  for (CategoryId c = 0; c < ds->hierarchy().num_categories(); ++c) {
    EXPECT_LE(inst.MembersOf(c).size(), 1u);
  }
  // And every member is reachable from the root member (Def 5(c)).
  ASSERT_OK_AND_ASSIGN(MemberId root, inst.MemberIdOf("Store"));
  for (MemberId m = 0; m < inst.num_members(); ++m) {
    EXPECT_TRUE(m == root || inst.RollsUpTo(root, m))
        << inst.member(m).key;
  }
}

}  // namespace
}  // namespace olapdc
