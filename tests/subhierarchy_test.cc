// Tests for the Subhierarchy structure: EXPAND bookkeeping (Top, In*),
// FromEdges validation, cycle and shortcut detection — including the
// "shortcut at distance" case the paper's incremental test misses
// (DESIGN.md deviations).

#include <gtest/gtest.h>

#include "core/location_example.h"
#include "core/subhierarchy.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::MakeHierarchy;

TEST(SubhierarchyTest, InitialState) {
  Subhierarchy g(5, 0);
  EXPECT_EQ(g.root(), 0);
  EXPECT_TRUE(g.Contains(0));
  EXPECT_FALSE(g.Contains(1));
  EXPECT_EQ(g.top().ToVector(), std::vector<int>({0}));
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(SubhierarchyTest, ExpandMaintainsTopAndBelow) {
  // Category universe {0..4}; grow 0 -> {1,2}, 1 -> {3}, 2 -> {3},
  // 3 -> {4}.
  Subhierarchy g(5, 0);
  DynamicBitset r12(5);
  r12.set(1);
  r12.set(2);
  g.Expand(0, r12);
  EXPECT_EQ(g.top().ToVector(), std::vector<int>({1, 2}));
  EXPECT_EQ(g.Below(1).ToVector(), std::vector<int>({0}));

  DynamicBitset r3(5);
  r3.set(3);
  g.Expand(1, r3);
  EXPECT_EQ(g.Below(3).ToVector(), std::vector<int>({0, 1}));

  g.Expand(2, r3);  // diamond: 3 gains a second parent
  EXPECT_EQ(g.Below(3).ToVector(), std::vector<int>({0, 1, 2}));
  EXPECT_EQ(g.top().ToVector(), std::vector<int>({3}));

  DynamicBitset r4(5);
  r4.set(4);
  g.Expand(3, r4);
  // In* must have propagated through the already-expanded node 3.
  EXPECT_EQ(g.Below(4).ToVector(), std::vector<int>({0, 1, 2, 3}));
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_FALSE(g.HasCycleIn());
  EXPECT_FALSE(g.HasShortcut());
}

TEST(SubhierarchyTest, BelowPropagatesThroughExpandedNodes) {
  // The DESIGN.md deviation-3 scenario: an already-expanded category
  // gains a new incoming edge; In* of everything above must update.
  Subhierarchy g(6, 0);
  auto set = [](int n, std::initializer_list<int> xs) {
    DynamicBitset b(n);
    for (int x : xs) b.set(x);
    return b;
  };
  g.Expand(0, set(6, {1, 2}));
  g.Expand(1, set(6, {3}));
  g.Expand(3, set(6, {5}));
  // Now 2 (still top) points at the already-expanded 3.
  g.Expand(2, set(6, {3}));
  EXPECT_TRUE(g.Below(3).test(2));
  EXPECT_TRUE(g.Below(5).test(2)) << "In* must propagate past node 3";
}

TEST(SubhierarchyTest, PathAndReach) {
  Subhierarchy g(4, 0);
  DynamicBitset r1(4), r2(4), r3(4);
  r1.set(1);
  r2.set(2);
  r3.set(3);
  g.Expand(0, r1);
  g.Expand(1, r2);
  g.Expand(2, r3);
  EXPECT_TRUE(g.IsPath({0, 1, 2, 3}));
  EXPECT_TRUE(g.IsPath({1, 2}));
  EXPECT_FALSE(g.IsPath({0, 2}));
  EXPECT_FALSE(g.IsPath({}));
  auto reach = g.ComputeReach();
  EXPECT_TRUE(reach[0].test(3));
  EXPECT_TRUE(reach[2].test(2));  // reflexive
  EXPECT_FALSE(reach[3].test(0));
}

TEST(SubhierarchyTest, CycleDetection) {
  // Force a cycle via FromEdges (EXPAND with pruning would refuse).
  auto g = Subhierarchy::FromEdges(4, 0, 3,
                                   {{0, 1}, {1, 2}, {2, 1}, {1, 3}, {2, 3}});
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->HasCycleIn());
}

TEST(SubhierarchyTest, ShortcutDetection) {
  auto g = Subhierarchy::FromEdges(4, 0, 3,
                                   {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->HasShortcut());  // 0->2 shadowed by 0->1->2
  auto clean = Subhierarchy::FromEdges(4, 0, 3,
                                       {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(clean.has_value());
  EXPECT_FALSE(clean->HasShortcut());
}

TEST(SubhierarchyTest, DistanceShortcutBuiltViaExpand) {
  // The counterexample showing EXPAND's Ss test is incomplete:
  // categories r=0, b=1, t=2, z=3, c'=4, c''=5, All=6.
  // Edges grown: r->{b,z}, b->{c'',t}, z->{c'}, c'->{c''}, c''->{All},
  // then t->{c'} completes the shortcut (b,c'') via b->t->c'->c''.
  Subhierarchy g(7, 0);
  auto set = [](std::initializer_list<int> xs) {
    DynamicBitset b(7);
    for (int x : xs) b.set(x);
    return b;
  };
  g.Expand(0, set({1, 3}));
  g.Expand(1, set({5, 2}));
  g.Expand(3, set({4}));
  g.Expand(4, set({5}));
  g.Expand(5, set({6}));
  // The paper's incremental test: In(c') ∩ In*(t) = {3} ∩ {0,1} = ∅,
  // so EXPAND would allow t -> c'. The structural check must still
  // catch the resulting shortcut.
  EXPECT_TRUE(g.In(4).ToVector() == std::vector<int>({3}));
  EXPECT_TRUE((g.In(4) & g.Below(2)).none())
      << "paper's Ss test sees nothing wrong";
  g.Expand(2, set({4}));
  EXPECT_TRUE(g.HasShortcut()) << "shortcut (1,5) via 1->2->4->5";
  EXPECT_FALSE(g.HasCycleIn());
}

TEST(SubhierarchyFromEdgesTest, ValidationRules) {
  // Not reachable from root.
  EXPECT_FALSE(
      Subhierarchy::FromEdges(4, 0, 3, {{0, 3}, {1, 3}}).has_value());
  // Dead-end category (1 has no out-edge and is not All).
  EXPECT_FALSE(Subhierarchy::FromEdges(4, 0, 3, {{0, 1}, {0, 3}}).has_value());
  // All with an out-edge.
  EXPECT_FALSE(Subhierarchy::FromEdges(4, 0, 3, {{0, 3}, {3, 1}, {1, 3}})
                   .has_value());
  // Self-loop.
  EXPECT_FALSE(Subhierarchy::FromEdges(4, 0, 3, {{0, 0}, {0, 3}}).has_value());
  // Root == All singleton.
  EXPECT_TRUE(Subhierarchy::FromEdges(4, 3, 3, {}).has_value());
  // Minimal valid chain.
  auto g = Subhierarchy::FromEdges(4, 0, 3, {{0, 3}});
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_EQ(g->Below(3).ToVector(), std::vector<int>({0}));
}

TEST(SubhierarchyTest, ToDigraphAndEdges) {
  auto g = Subhierarchy::FromEdges(4, 0, 3, {{0, 1}, {1, 3}, {0, 3}});
  ASSERT_TRUE(g.has_value());
  Digraph d = g->ToDigraph();
  EXPECT_EQ(d.num_edges(), 3);
  EXPECT_EQ(g->Edges().size(), 3u);
}

}  // namespace
}  // namespace olapdc
