// Checkpoint/resume property tests: an interrupted-then-resumed DIMSAT
// search must be indistinguishable from an uninterrupted one — same
// verdict, same frozen-dimension *set*, and *exactly* the same combined
// statistics, because the interrupted and resumed runs partition the
// search tree (no node is counted twice, none is skipped). The property
// is exercised across interrupt causes (expand cap, wall-clock
// deadline, memory budget), chain lengths (resume of a resume), and a
// serialize/deserialize round-trip of the frontier.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/memory_budget.h"
#include "core/checkpoint.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "core/reasoner.h"
#include "tests/test_util.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

std::vector<std::string> Canonical(const std::vector<FrozenDimension>& fs,
                                   const HierarchySchema& schema) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const FrozenDimension& f : fs) out.push_back(f.ToString(schema));
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectStatsEqual(const DimsatStats& a, const DimsatStats& b) {
  EXPECT_EQ(a.expand_calls, b.expand_calls);
  EXPECT_EQ(a.check_calls, b.check_calls);
  EXPECT_EQ(a.structural_rejections, b.structural_rejections);
  EXPECT_EQ(a.assignments_tried, b.assignments_tried);
  EXPECT_EQ(a.into_prunes, b.into_prunes);
  EXPECT_EQ(a.shortcut_prunes, b.shortcut_prunes);
  EXPECT_EQ(a.cycle_prunes, b.cycle_prunes);
  EXPECT_EQ(a.dead_ends, b.dead_ends);
  EXPECT_EQ(a.frozen_found, b.frozen_found);
}

/// Runs DIMSAT under `options` but with every run in the chain capped /
/// budgeted, resuming until the search completes. Returns the combined
/// result (accumulated stats, concatenated frozen) and the number of
/// resume links in `*chains`.
DimsatResult RunInterrupted(const DimensionSchema& ds, CategoryId root,
                            DimsatOptions options, int* chains) {
  DimsatCheckpoint cp;
  options.checkpoint = &cp;
  DimsatResult combined = Dimsat(ds, root, options);
  // Interrupt causes driven by a per-run Budget (deadline / memory)
  // must not recur on the resumed runs, or the chain may never make
  // progress; the expand cap renews per run and is fine.
  options.budget = nullptr;
  while (!cp.empty()) {
    ++*chains;
    DimsatCheckpoint from = std::move(cp);
    cp.frames.clear();
    DimsatResult next = ResumeDimsat(ds, root, options, std::move(from));
    AccumulateStats(&combined.stats, next.stats);
    for (FrozenDimension& f : next.frozen) {
      combined.frozen.push_back(std::move(f));
    }
    combined.satisfiable = combined.satisfiable || next.satisfiable;
    combined.status = next.status;
  }
  return combined;
}

DimensionSchema RandomSchema(int seed) {
  SchemaGenOptions schema_options;
  schema_options.num_levels = 3;
  schema_options.categories_per_level = 2;
  schema_options.extra_edge_prob = 0.3;
  schema_options.seed = static_cast<uint64_t>(seed) * 911 + 3;
  auto hierarchy = GenerateLayeredHierarchy(schema_options);
  OLAPDC_CHECK(hierarchy.ok()) << hierarchy.status().ToString();
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 1;
  constraint_options.num_equality_constraints = 1;
  constraint_options.seed = seed;
  auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
  OLAPDC_CHECK(ds.ok()) << ds.status().ToString();
  return *std::move(ds);
}

class ResumeEquivalenceTest : public ::testing::TestWithParam<int> {};

// The core property, driven by the expand-call cap (fully
// deterministic): chain of capped runs == one uncapped run, exactly.
TEST_P(ResumeEquivalenceTest, CapInterruptedChainMatchesUninterrupted) {
  const int seed = GetParam();
  DimensionSchema ds = RandomSchema(seed);
  CategoryId base = ds.hierarchy().FindCategory("Base");

  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult uninterrupted = Dimsat(ds, base, options);
  ASSERT_OK(uninterrupted.status);

  // A tiny odd cap lands interrupts at awkward places (mid-mask-loop,
  // inside deep recursion) across the seeds.
  options.max_expand_calls = 7;
  int chains = 0;
  DimsatResult combined = RunInterrupted(ds, base, options, &chains);

  ASSERT_TRUE(combined.status.ok())
      << "seed " << seed << ": " << combined.status.ToString();
  EXPECT_EQ(combined.satisfiable, uninterrupted.satisfiable) << "seed "
                                                             << seed;
  EXPECT_EQ(Canonical(combined.frozen, ds.hierarchy()),
            Canonical(uninterrupted.frozen, ds.hierarchy()))
      << "seed " << seed;
  ExpectStatsEqual(combined.stats, uninterrupted.stats);
  if (uninterrupted.stats.expand_calls > options.max_expand_calls) {
    EXPECT_GT(chains, 0) << "seed " << seed
                         << ": the cap never actually interrupted";
  }
}

// Same property in decision mode: the chain stops at the first witness
// and that witness is genuine.
TEST_P(ResumeEquivalenceTest, DecisionModeAgrees) {
  const int seed = GetParam();
  DimensionSchema ds = RandomSchema(seed);
  CategoryId base = ds.hierarchy().FindCategory("Base");

  DimsatResult uninterrupted = Dimsat(ds, base, {});
  ASSERT_OK(uninterrupted.status);

  DimsatOptions options;
  options.max_expand_calls = 5;
  int chains = 0;
  DimsatResult combined = RunInterrupted(ds, base, options, &chains);
  ASSERT_OK(combined.status);
  EXPECT_EQ(combined.satisfiable, uninterrupted.satisfiable) << "seed "
                                                             << seed;
  if (combined.satisfiable) {
    ASSERT_FALSE(combined.frozen.empty());
    ASSERT_OK(combined.frozen.front().ToInstance(ds).status());
  }
}

// Serialize → deserialize the frontier mid-chain; resuming from the
// round-tripped checkpoint must behave identically.
TEST_P(ResumeEquivalenceTest, SerializedFrontierResumesIdentically) {
  const int seed = GetParam();
  DimensionSchema ds = RandomSchema(seed);
  CategoryId base = ds.hierarchy().FindCategory("Base");

  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult uninterrupted = Dimsat(ds, base, options);
  ASSERT_OK(uninterrupted.status);

  DimsatCheckpoint cp;
  options.checkpoint = &cp;
  options.max_expand_calls = 9;
  DimsatResult first = Dimsat(ds, base, options);
  if (cp.empty()) {
    ASSERT_OK(first.status);  // finished under the cap; nothing to test
    return;
  }
  ASSERT_EQ(first.status.code(), StatusCode::kResourceExhausted);

  ASSERT_OK_AND_ASSIGN(DimsatCheckpoint restored,
                       DimsatCheckpoint::Deserialize(cp.Serialize()));
  EXPECT_EQ(restored.frames.size(), cp.frames.size());

  options.max_expand_calls = UINT64_MAX;
  options.checkpoint = nullptr;
  DimsatResult rest = ResumeDimsat(ds, base, options, std::move(restored));
  ASSERT_OK(rest.status);
  AccumulateStats(&first.stats, rest.stats);
  for (FrozenDimension& f : rest.frozen) first.frozen.push_back(std::move(f));
  EXPECT_EQ(Canonical(first.frozen, ds.hierarchy()),
            Canonical(uninterrupted.frozen, ds.hierarchy()))
      << "seed " << seed;
  ExpectStatsEqual(first.stats, uninterrupted.stats);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResumeEquivalenceTest,
                         ::testing::Range(0, 24));

// Deadline interrupts stop at a timing-dependent point, but wherever
// that is, the partition property still makes the combined run exact.
TEST(CheckpointTest, DeadlineInterruptedRunResumesExactly) {
  DimensionSchema ds = RandomSchema(7);
  CategoryId base = ds.hierarchy().FindCategory("Base");

  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult uninterrupted = Dimsat(ds, base, options);
  ASSERT_OK(uninterrupted.status);

  // Already-expired deadline: deterministically trips on the first
  // probe (BudgetChecker always probes call #1), so the whole tree
  // lands in the checkpoint.
  Budget budget = Budget::WithDeadlineMs(0);
  options.budget = &budget;
  options.budget_check_stride = 1;
  int chains = 0;
  DimsatResult combined = RunInterrupted(ds, base, options, &chains);
  EXPECT_GT(chains, 0);
  ASSERT_OK(combined.status);
  EXPECT_EQ(Canonical(combined.frozen, ds.hierarchy()),
            Canonical(uninterrupted.frozen, ds.hierarchy()));
  ExpectStatsEqual(combined.stats, uninterrupted.stats);
}

// Memory-budget interrupts leave the frontier behind like any other
// budget error; resuming without the cap finishes the search exactly.
TEST(CheckpointTest, MemoryInterruptedRunResumesExactly) {
  DimensionSchema ds = RandomSchema(11);
  CategoryId base = ds.hierarchy().FindCategory("Base");

  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult uninterrupted = Dimsat(ds, base, options);
  ASSERT_OK(uninterrupted.status);

  // A cap small enough that even the base search-state reservation
  // fails: the run stops before expanding anything and checkpoints the
  // root frame.
  MemoryBudget mem(64);
  Budget budget = Budget::Unbounded();
  budget.SetMemory(&mem);
  options.budget = &budget;
  int chains = 0;
  DimsatResult combined = RunInterrupted(ds, base, options, &chains);
  EXPECT_GT(chains, 0);
  ASSERT_OK(combined.status);
  EXPECT_EQ(Canonical(combined.frozen, ds.hierarchy()),
            Canonical(uninterrupted.frozen, ds.hierarchy()));
  ExpectStatsEqual(combined.stats, uninterrupted.stats);
  EXPECT_TRUE(mem.exhausted());
}

TEST(CheckpointTest, EmptyCheckpointReturnsImmediately) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");
  DimsatResult r = ResumeDimsat(ds, store, {}, DimsatCheckpoint{});
  ASSERT_OK(r.status);
  EXPECT_FALSE(r.satisfiable);
  EXPECT_EQ(r.stats.expand_calls, 0u);
}

TEST(CheckpointTest, MismatchedCheckpointIsRejected) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");

  DimsatCheckpoint cp;
  DimsatOptions options;
  options.checkpoint = &cp;
  options.max_expand_calls = 1;
  (void)Dimsat(ds, store, options);
  ASSERT_FALSE(cp.empty());

  DimsatCheckpoint wrong_root = cp;
  wrong_root.root = cp.root + 1;
  EXPECT_EQ(ResumeDimsat(ds, store, {}, std::move(wrong_root)).status.code(),
            StatusCode::kInvalidArgument);

  DimsatCheckpoint wrong_size = cp;
  wrong_size.num_categories = cp.num_categories + 1;
  EXPECT_EQ(ResumeDimsat(ds, store, {}, std::move(wrong_size)).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, DeserializeRejectsGarbage) {
  EXPECT_EQ(DimsatCheckpoint::Deserialize("").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(DimsatCheckpoint::Deserialize("not a checkpoint").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(DimsatCheckpoint::Deserialize("dimsat-checkpoint v99\n")
                .status()
                .code(),
            StatusCode::kParseError);
  // Valid header, frame that is not root-reachable.
  EXPECT_EQ(DimsatCheckpoint::Deserialize(
                "dimsat-checkpoint v1\n"
                "root 0 categories 3 frames 1\n"
                "frame 0 0 1 1 2\n")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// The Reasoner's iterative-deepening ladder carries the frontier across
// rungs: with a tiny first rung the query still answers correctly, and
// the resumed rungs are visible in the stats.
TEST(CheckpointTest, ReasonerLadderResumesAcrossRungs) {
  DimensionSchema ds = RandomSchema(3);
  CategoryId base = ds.hierarchy().FindCategory("Base");
  DimsatResult truth = Dimsat(ds, base, {});
  ASSERT_OK(truth.status);

  ReasonerOptions options;
  options.initial_expand_budget = 2;
  options.expand_budget_growth = 2;
  options.max_attempts = 40;
  Reasoner resuming(ds, options);
  ReasonerAnswer answer = resuming.QuerySatisfiable(base);
  ASSERT_TRUE(answer.definitive()) << answer.reason.ToString();
  EXPECT_EQ(answer.yes(), truth.satisfiable);

  options.resume_from_checkpoint = false;
  Reasoner restarting(ds, options);
  ReasonerAnswer baseline = restarting.QuerySatisfiable(base);
  ASSERT_TRUE(baseline.definitive()) << baseline.reason.ToString();
  EXPECT_EQ(baseline.yes(), answer.yes());
  EXPECT_EQ(restarting.stats().checkpoint_resumes, 0u);

  if (answer.attempts > 1) {
    EXPECT_GT(resuming.stats().checkpoint_resumes, 0u);
    // Continuing beats restarting: the resuming ladder never re-expands
    // a node, so its total work is bounded by the restarting ladder's.
    EXPECT_LE(answer.work.expand_calls, baseline.work.expand_calls);
  }
}

}  // namespace
}  // namespace olapdc
