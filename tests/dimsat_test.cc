// Tests for the DIMSAT algorithm: Figure 4 (frozen dimensions of
// locationSch), Example 11 (unsatisfiable category), pruning ablations,
// budgets and the execution trace (Figure 7).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "constraint/evaluator.h"
#include "constraint/parser.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::MakeSchema;
using testing_util::ParseC;

class DimsatLocationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(ds_, LocationSchema());
    const HierarchySchema& schema = ds_->hierarchy();
    store_ = schema.FindCategory("Store");
    country_ = schema.FindCategory("Country");
    city_ = schema.FindCategory("City");
    sale_region_ = schema.FindCategory("SaleRegion");
  }

  std::optional<DimensionSchema> ds_;
  CategoryId store_, country_, city_, sale_region_;
};

TEST_F(DimsatLocationTest, StoreIsSatisfiable) {
  DimsatResult r = Dimsat(*ds_, store_);
  ASSERT_OK(r.status);
  EXPECT_TRUE(r.satisfiable);
  ASSERT_EQ(r.frozen.size(), 1u);  // first witness only
  EXPECT_GT(r.stats.expand_calls, 0u);
}

TEST_F(DimsatLocationTest, Figure4FrozenDimensions) {
  DimsatResult r = EnumerateFrozenDimensions(*ds_, store_);
  ASSERT_OK(r.status);
  ASSERT_EQ(r.frozen.size(), 4u) << "Figure 4 shows four structures";

  // Classify by the Country constant.
  std::multiset<std::string> countries;
  int with_washington = 0;
  for (const FrozenDimension& f : r.frozen) {
    ASSERT_TRUE(f.names[country_].has_value());
    countries.insert(*f.names[country_]);
    if (f.names[city_].has_value()) {
      EXPECT_EQ(*f.names[city_], "Washington");
      ++with_washington;
      // The Washington structure uses the City -> Country shortcut
      // edge and must not contain State or Province.
      EXPECT_TRUE(f.g.HasEdge(city_, country_));
    }
  }
  EXPECT_EQ(countries.count("Canada"), 1u);
  EXPECT_EQ(countries.count("Mexico"), 1u);
  EXPECT_EQ(countries.count("USA"), 2u);  // plain USA + Washington
  EXPECT_EQ(with_washington, 1);

  // Every frozen dimension materializes as a valid instance over ds.
  for (const FrozenDimension& f : r.frozen) {
    ASSERT_OK_AND_ASSIGN(DimensionInstance inst, f.ToInstance(*ds_));
    EXPECT_OK(inst.Validate());
    EXPECT_TRUE(SatisfiesAll(inst, ds_->constraints()))
        << f.ToString(ds_->hierarchy());
  }
}

TEST_F(DimsatLocationTest, Example11SaleRegionBecomesUnsatisfiable) {
  // Adding ¬SaleRegion_Country contradicts condition C7: SaleRegion's
  // only way up is through Country.
  DimensionSchema extended = ds_->WithExtraConstraint(
      ParseC(ds_->hierarchy(), "!SaleRegion/Country"));
  DimsatResult before = Dimsat(*ds_, sale_region_);
  EXPECT_TRUE(before.satisfiable);
  DimsatResult after = Dimsat(extended, sale_region_);
  ASSERT_OK(after.status);
  EXPECT_FALSE(after.satisfiable);
  // Other categories stay satisfiable (the constraint only bites
  // above SaleRegion)... Store requires Store.SaleRegion by (b), which
  // now cannot reach Country — everything must route around it, but
  // (b) forces SaleRegion into every store structure, so Store is
  // unsatisfiable too.
  EXPECT_FALSE(Dimsat(extended, store_).satisfiable);
  EXPECT_TRUE(Dimsat(extended, country_).satisfiable);
}

TEST_F(DimsatLocationTest, AllCategoryAlwaysSatisfiable) {
  // Proposition 1's core: the one-member instance over All.
  DimsatResult r = Dimsat(*ds_, ds_->hierarchy().all());
  EXPECT_TRUE(r.satisfiable);
}

TEST_F(DimsatLocationTest, EveryLocationCategoryIsSatisfiable) {
  for (CategoryId c = 0; c < ds_->hierarchy().num_categories(); ++c) {
    EXPECT_TRUE(Dimsat(*ds_, c).satisfiable)
        << ds_->hierarchy().CategoryName(c);
  }
}

TEST_F(DimsatLocationTest, PruningAblationsAgree) {
  for (bool shortcuts : {false, true}) {
    for (bool cycles : {false, true}) {
      for (bool into : {false, true}) {
        DimsatOptions options;
        options.prune_shortcuts = shortcuts;
        options.prune_cycles = cycles;
        options.prune_into = into;
        options.enumerate_all = true;
        DimsatResult r = Dimsat(*ds_, store_, options);
        ASSERT_OK(r.status);
        EXPECT_EQ(r.frozen.size(), 4u)
            << "shortcuts=" << shortcuts << " cycles=" << cycles
            << " into=" << into;
      }
    }
  }
}

TEST_F(DimsatLocationTest, PruningReducesWork) {
  DimsatOptions pruned;
  pruned.enumerate_all = true;
  DimsatOptions unpruned = pruned;
  unpruned.prune_shortcuts = false;
  unpruned.prune_cycles = false;
  unpruned.prune_into = false;
  DimsatResult with_pruning = Dimsat(*ds_, store_, pruned);
  DimsatResult without_pruning = Dimsat(*ds_, store_, unpruned);
  EXPECT_LT(with_pruning.stats.check_calls,
            without_pruning.stats.check_calls);
  // The incremental Ss test is not complete (DESIGN.md deviations):
  // a few structural rejections remain even with pruning on, but far
  // fewer than without it.
  EXPECT_GT(without_pruning.stats.structural_rejections,
            with_pruning.stats.structural_rejections);
}

TEST_F(DimsatLocationTest, TraceRecordsExpansionAndChecks) {
  DimsatOptions options;
  options.collect_trace = true;
  DimsatResult r = Dimsat(*ds_, store_, options);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.front().kind, DimsatTraceEvent::Kind::kExpand);
  bool has_success = false;
  for (const auto& event : r.trace) {
    has_success |= (event.kind == DimsatTraceEvent::Kind::kCheckSuccess);
    // Events render with category names.
    std::string s = event.ToString(ds_->hierarchy());
    EXPECT_NE(s.find("g={"), std::string::npos);
  }
  EXPECT_TRUE(has_success);
}

TEST_F(DimsatLocationTest, ExpandBudgetExhaustion) {
  DimsatOptions options;
  options.max_expand_calls = 2;
  options.enumerate_all = true;
  DimsatResult r = Dimsat(*ds_, store_, options);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
}

TEST_F(DimsatLocationTest, MaxFrozenCap) {
  DimsatOptions options;
  options.enumerate_all = true;
  options.max_frozen = 2;
  DimsatResult r = Dimsat(*ds_, store_, options);
  ASSERT_OK(r.status);
  EXPECT_EQ(r.frozen.size(), 2u);
}

TEST(DimsatTest, HierarchyWithoutConstraintsIsAlwaysSatisfiable) {
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"B", "C"}, {"C", "All"}, {"A", "C"}}, {});
  for (CategoryId c = 0; c < ds.hierarchy().num_categories(); ++c) {
    EXPECT_TRUE(Dimsat(ds, c).satisfiable);
  }
}

TEST(DimsatTest, ContradictoryIntoConstraints) {
  // A must go into both B and C, but B -> C makes {A->B, A->C, B->C} a
  // shortcut and A -> C alone misses the into constraint A/B... every
  // structure containing A is contradictory.
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"A", "C"}, {"B", "C"}, {"C", "All"}},
      {"A/B", "A/C"});
  EXPECT_FALSE(Dimsat(ds, ds.hierarchy().FindCategory("A")).satisfiable);
  // Without pruning the same answer comes out of CHECK.
  DimsatOptions unpruned;
  unpruned.prune_into = false;
  unpruned.prune_shortcuts = false;
  EXPECT_FALSE(
      Dimsat(ds, ds.hierarchy().FindCategory("A"), unpruned).satisfiable);
}

TEST(DimsatTest, CyclicSchemaExploredSafely) {
  // Example 4's cyclic schema: DIMSAT must terminate and find the
  // acyclic structures inside the cyclic hierarchy.
  DimensionSchema ds = MakeSchema({{"Store", "SaleDistrict"},
                                   {"SaleDistrict", "City"},
                                   {"City", "SaleDistrict"},
                                   {"City", "All"},
                                   {"SaleDistrict", "All"}},
                                  {});
  DimsatResult r =
      EnumerateFrozenDimensions(ds, ds.hierarchy().FindCategory("Store"));
  ASSERT_OK(r.status);
  EXPECT_TRUE(r.satisfiable);
  for (const FrozenDimension& f : r.frozen) {
    EXPECT_FALSE(f.g.HasCycleIn());
  }
  // From root Store the SaleDistrict -> City orientation appears...
  CategoryId sd = ds.hierarchy().FindCategory("SaleDistrict");
  CategoryId city = ds.hierarchy().FindCategory("City");
  bool district_city = false;
  for (const FrozenDimension& f : r.frozen) {
    district_city |= f.g.HasEdge(sd, city);
  }
  EXPECT_TRUE(district_city);
  // ... and from root City the reverse orientation appears: the cycle
  // lets *different* members use opposite directions (Example 4).
  DimsatResult from_city = EnumerateFrozenDimensions(ds, city);
  ASSERT_OK(from_city.status);
  bool city_district = false;
  for (const FrozenDimension& f : from_city.frozen) {
    city_district |= f.g.HasEdge(city, sd);
  }
  EXPECT_TRUE(city_district);
}

TEST(DimsatTest, EqualityConstraintsDriveStructure) {
  // (A.C = 'x' <-> A/B): enumerating with the equality forced both
  // ways yields structures with and without the B detour.
  DimensionSchema ds = MakeSchema(
      {{"A", "B"}, {"A", "C"}, {"B", "C"}, {"C", "All"}},
      {"A.C = 'x' <-> A/B"});
  DimsatResult r =
      EnumerateFrozenDimensions(ds, ds.hierarchy().FindCategory("A"));
  ASSERT_OK(r.status);
  CategoryId a = ds.hierarchy().FindCategory("A");
  CategoryId b = ds.hierarchy().FindCategory("B");
  CategoryId c = ds.hierarchy().FindCategory("C");
  int via_b = 0, direct = 0;
  for (const FrozenDimension& f : r.frozen) {
    if (f.g.HasEdge(a, b)) {
      ++via_b;
      EXPECT_EQ(f.names[c], "x");
    } else {
      ++direct;
      EXPECT_NE(f.names[c], "x");
    }
  }
  EXPECT_EQ(via_b, 1);
  EXPECT_EQ(direct, 1);
}

}  // namespace
}  // namespace olapdc
