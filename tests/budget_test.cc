// Tests for Budget, BudgetChecker, cancellation tokens and the
// deterministic FaultInjector.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/fault_injector.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

TEST(BudgetTest, DefaultIsUnbounded) {
  Budget b;
  EXPECT_TRUE(b.unbounded());
  EXPECT_FALSE(b.has_deadline());
  EXPECT_OK(b.Check());
  EXPECT_EQ(b.RemainingMs(), std::numeric_limits<double>::infinity());
}

TEST(BudgetTest, FutureDeadlinePasses) {
  Budget b = Budget::WithDeadline(std::chrono::hours(1));
  EXPECT_TRUE(b.has_deadline());
  EXPECT_FALSE(b.unbounded());
  EXPECT_OK(b.Check());
  EXPECT_GT(b.RemainingMs(), 0.0);
}

TEST(BudgetTest, ExpiredDeadlineFails) {
  Budget b = Budget::WithDeadline(std::chrono::milliseconds(-1));
  Status s = b.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(b.RemainingMs(), 0.0);
}

TEST(BudgetTest, CancellationTrips) {
  CancellationSource source;
  Budget b;
  b.SetCancellation(source.token());
  EXPECT_FALSE(b.unbounded());
  EXPECT_OK(b.Check());
  source.RequestCancel();
  EXPECT_EQ(b.Check().code(), StatusCode::kCancelled);
}

TEST(BudgetTest, CancellationWinsOverDeadline) {
  CancellationSource source;
  source.RequestCancel();
  Budget b = Budget::WithDeadline(std::chrono::milliseconds(-1));
  b.SetCancellation(source.token());
  EXPECT_EQ(b.Check().code(), StatusCode::kCancelled);
}

TEST(BudgetTest, TokensShareTheFlag) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = a;  // copies observe the same flag
  EXPECT_TRUE(a.cancellable());
  EXPECT_FALSE(a.cancelled());
  source.RequestCancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_TRUE(source.cancel_requested());
}

TEST(BudgetTest, NullTokenNeverCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
}

TEST(BudgetTest, CancelFromAnotherThreadIsObserved) {
  CancellationSource source;
  Budget b;
  b.SetCancellation(source.token());
  std::thread canceller([&source] { source.RequestCancel(); });
  canceller.join();
  EXPECT_EQ(b.Check().code(), StatusCode::kCancelled);
}

TEST(BudgetCheckerTest, NullBudgetIsFree) {
  BudgetChecker checker(nullptr);
  for (int i = 0; i < 1000; ++i) EXPECT_OK(checker.Check());
  EXPECT_EQ(checker.probes(), 0);
}

TEST(BudgetCheckerTest, UnboundedBudgetNeverProbes) {
  Budget b;
  BudgetChecker checker(&b);
  for (int i = 0; i < 1000; ++i) EXPECT_OK(checker.Check());
  EXPECT_EQ(checker.probes(), 0);
}

TEST(BudgetCheckerTest, ProbesAmortizedByStride) {
  Budget b = Budget::WithDeadline(std::chrono::hours(1));
  BudgetChecker checker(&b, /*stride=*/10);
  for (int i = 0; i < 100; ++i) EXPECT_OK(checker.Check());
  EXPECT_EQ(checker.probes(), 10);  // calls 0, 10, 20, ...
}

TEST(BudgetCheckerTest, FirstCallProbesImmediately) {
  // A pre-expired deadline must trip on the very first check, not after
  // `stride` iterations of wasted work.
  Budget b = Budget::WithDeadline(std::chrono::milliseconds(-1));
  BudgetChecker checker(&b, /*stride=*/1000000);
  EXPECT_EQ(checker.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(BudgetCheckerTest, TrippedErrorSticksWithoutReprobing) {
  CancellationSource source;
  source.RequestCancel();
  Budget b;
  b.SetCancellation(source.token());
  BudgetChecker checker(&b, /*stride=*/1);
  EXPECT_EQ(checker.Check().code(), StatusCode::kCancelled);
  uint64_t probes_after_trip = checker.probes();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(checker.Check().code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(checker.probes(), probes_after_trip);
}

TEST(BudgetCheckerTest, ZeroStrideProbesEveryCall) {
  Budget b = Budget::WithDeadline(std::chrono::hours(1));
  BudgetChecker checker(&b, /*stride=*/0);
  for (int i = 0; i < 5; ++i) EXPECT_OK(checker.Check());
  EXPECT_EQ(checker.probes(), 5);
}

TEST(FaultInjectorTest, DisarmedProbeIsOkAndUncounted) {
  FaultInjector& injector = FaultInjector::Global();
  ASSERT_FALSE(injector.armed());
  EXPECT_OK(injector.MaybeFail("test.site"));
  EXPECT_EQ(injector.probes("test.site"), 0);
}

TEST(FaultInjectorTest, AlwaysFailSiteFailsEveryProbe) {
  ScopedFaultInjection guard(/*seed=*/1);
  FaultInjector& injector = FaultInjector::Global();
  injector.SetFault("test.always", StatusCode::kInternal, 1.0, "boom");
  for (int i = 0; i < 5; ++i) {
    Status s = injector.MaybeFail("test.always");
    EXPECT_EQ(s.code(), StatusCode::kInternal);
    EXPECT_EQ(s.message(), "boom");
  }
  EXPECT_EQ(injector.probes("test.always"), 5);
  EXPECT_EQ(injector.failures("test.always"), 5);
}

TEST(FaultInjectorTest, UnconfiguredSiteIsOkWhileArmed) {
  ScopedFaultInjection guard(/*seed=*/1);
  EXPECT_OK(FaultInjector::Global().MaybeFail("test.unconfigured"));
}

std::vector<bool> DrawSequence(uint64_t seed, const std::string& site,
                               int n, double probability) {
  ScopedFaultInjection guard(seed);
  FaultInjector& injector = FaultInjector::Global();
  injector.SetFault(site, StatusCode::kResourceExhausted, probability);
  std::vector<bool> failures;
  for (int i = 0; i < n; ++i) {
    failures.push_back(!injector.MaybeFail(site).ok());
  }
  return failures;
}

TEST(FaultInjectorTest, SameSeedSameSequence) {
  std::vector<bool> a = DrawSequence(42, "test.repro", 200, 0.3);
  std::vector<bool> b = DrawSequence(42, "test.repro", 200, 0.3);
  EXPECT_EQ(a, b);
  // And a fractional probability actually mixes outcomes.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 200);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  std::vector<bool> a = DrawSequence(1, "test.repro", 200, 0.3);
  std::vector<bool> b = DrawSequence(2, "test.repro", 200, 0.3);
  EXPECT_NE(a, b);
}

TEST(FaultInjectorTest, SiteStreamsAreInterleavingIndependent) {
  // The fault sequence at site A must not depend on how many probes hit
  // site B in between — each site draws from its own seeded stream.
  std::vector<bool> alone;
  {
    ScopedFaultInjection guard(7);
    FaultInjector& injector = FaultInjector::Global();
    injector.SetFault("test.a", StatusCode::kInternal, 0.5);
    for (int i = 0; i < 100; ++i) {
      alone.push_back(!injector.MaybeFail("test.a").ok());
    }
  }
  std::vector<bool> interleaved;
  {
    ScopedFaultInjection guard(7);
    FaultInjector& injector = FaultInjector::Global();
    injector.SetFault("test.a", StatusCode::kInternal, 0.5);
    injector.SetFault("test.b", StatusCode::kInternal, 0.5);
    for (int i = 0; i < 100; ++i) {
      injector.MaybeFail("test.b");
      interleaved.push_back(!injector.MaybeFail("test.a").ok());
      injector.MaybeFail("test.b");
    }
  }
  EXPECT_EQ(alone, interleaved);
}

TEST(FaultInjectorTest, DisarmClearsConfigurationAndCounters) {
  {
    ScopedFaultInjection guard(3);
    FaultInjector::Global().SetFault("test.cleared", StatusCode::kInternal,
                                     1.0);
    EXPECT_FALSE(FaultInjector::Global().MaybeFail("test.cleared").ok());
  }
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_OK(FaultInjector::Global().MaybeFail("test.cleared"));
  EXPECT_EQ(FaultInjector::Global().probes("test.cleared"), 0);
  EXPECT_EQ(FaultInjector::Global().failures("test.cleared"), 0);
}

}  // namespace
}  // namespace olapdc
