// Tests for the cross-request cache substrate (ROADMAP item 2):
// common/cache_shard.h (Fingerprinter + ShardedCache), the shared
// implication-closure AnswerCache, the SchemaRegistry epoch model that
// keys every layer, and the ServiceCaches envelope (layer isolation,
// per-epoch no-good store aging, persistence container).

#include <memory>
#include <string>
#include <vector>

#include "common/cache_shard.h"
#include "core/answer_cache.h"
#include "core/location_example.h"
#include "core/nogood.h"
#include "core/subhierarchy.h"
#include "gtest/gtest.h"
#include "io/schema_io.h"
#include "service/schema_registry.h"
#include "service/service_caches.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

// ---------------------------------------------------------------------------
// Fingerprinter

TEST(FingerprinterTest, DistinctInputsProduceDistinctFingerprints) {
  const Fingerprint128 a = FingerprintBytes("schema-a");
  const Fingerprint128 b = FingerprintBytes("schema-b");
  EXPECT_NE(a, b);
  EXPECT_NE(a, Fingerprint128{});
  // Deterministic: the same bytes always fingerprint identically.
  EXPECT_EQ(a, FingerprintBytes("schema-a"));
}

TEST(FingerprinterTest, MixOrderAndWidthMatter) {
  // "ab" then "c" must equal "abc" (stream semantics) ...
  EXPECT_EQ(Fingerprinter().Mix("ab").Mix("c").Final(),
            FingerprintBytes("abc"));
  // ... while mixing the same bits as an integer is a different stream
  // position and must not collide with the text form.
  EXPECT_NE(Fingerprinter().Mix(uint64_t{0x616263}).Final(),
            FingerprintBytes("abc"));
}

TEST(FingerprinterTest, ToHexIsStableAndInvertiblyOrdered) {
  const Fingerprint128 fp = FingerprintBytes("epoch");
  const std::string hex = fp.ToHex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex, fp.ToHex());
  EXPECT_NE(hex, FingerprintBytes("hcope").ToHex());
}

// ---------------------------------------------------------------------------
// ShardedCache

using StringCache = ShardedCache<std::string, std::string>;

StringCache::Options SingleShard(uint64_t max_bytes) {
  StringCache::Options options;
  options.name = "";  // keep test runs out of the metric families
  options.num_shards = 1;
  options.max_bytes = max_bytes;
  options.entry_overhead_bytes = 0;  // byte math exact in tests
  return options;
}

TEST(ShardedCacheTest, MissThenHitThenClear) {
  StringCache cache(SingleShard(1 << 20));
  std::string out;
  EXPECT_FALSE(cache.Lookup("k", &out));
  cache.Insert("k", "v", 1);
  ASSERT_TRUE(cache.Lookup("k", &out));
  EXPECT_EQ(out, "v");
  cache.Clear();
  EXPECT_FALSE(cache.Lookup("k", &out));
  const CacheStatsSnapshot stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ShardedCacheTest, ByteCapEvictsLeastRecentlyUsedFirst) {
  // Capacity for exactly three 10-byte entries.
  StringCache cache(SingleShard(30));
  cache.Insert("a", "1", 10);
  cache.Insert("b", "2", 10);
  cache.Insert("c", "3", 10);
  // Touch "a" so "b" becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup("a", nullptr));
  cache.Insert("d", "4", 10);
  EXPECT_TRUE(cache.Lookup("a", nullptr));
  EXPECT_FALSE(cache.Lookup("b", nullptr));
  EXPECT_TRUE(cache.Lookup("c", nullptr));
  EXPECT_TRUE(cache.Lookup("d", nullptr));
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(ShardedCacheTest, EntryLargerThanTheSliceIsNotAdmitted) {
  StringCache cache(SingleShard(30));
  cache.Insert("huge", "x", 64);
  EXPECT_FALSE(cache.Lookup("huge", nullptr));
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ShardedCacheTest, RefreshingAKeyRechargesItsBytes) {
  StringCache cache(SingleShard(100));
  cache.Insert("k", "small", 10);
  cache.Insert("k", "bigger", 40);
  const CacheStatsSnapshot stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 40u);
  std::string out;
  ASSERT_TRUE(cache.Lookup("k", &out));
  EXPECT_EQ(out, "bigger");
}

TEST(ShardedCacheTest, ZeroMaxBytesMeansUncapped) {
  StringCache cache(SingleShard(0));
  for (int i = 0; i < 1000; ++i) {
    cache.Insert("k" + std::to_string(i), "v", 1 << 16);
  }
  EXPECT_EQ(cache.Stats().entries, 1000u);
  EXPECT_EQ(cache.Stats().evictions, 0u);
}

TEST(ShardedCacheTest, TrackOnlyBudgetObservesResidency) {
  // A limit-0 budget never rejects; the cache charges and releases
  // through it so residency is visible without enforcement.
  MemoryBudget budget(0);
  StringCache::Options options = SingleShard(1 << 20);
  options.memory = &budget;
  StringCache cache(options);
  cache.Insert("k", "v", 100);
  EXPECT_EQ(budget.reserved(), 100u);
  cache.Clear();
  EXPECT_EQ(budget.reserved(), 0u);
}

// ---------------------------------------------------------------------------
// AnswerCache

TEST(AnswerCacheTest, VerdictRoundTripBothWays) {
  AnswerCache cache;
  bool yes = false;
  EXPECT_FALSE(cache.Lookup("e00/s/3", &yes));
  cache.Insert("e00/s/3", true);
  cache.Insert("e00/i/3:Store/City", false);
  ASSERT_TRUE(cache.Lookup("e00/s/3", &yes));
  EXPECT_TRUE(yes);
  ASSERT_TRUE(cache.Lookup("e00/i/3:Store/City", &yes));
  EXPECT_FALSE(yes);
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// SchemaRegistry epochs

std::string LocationText() {
  Result<DimensionSchema> loc = LocationSchema();
  EXPECT_TRUE(loc.ok());
  return SerializeSchema(*loc);
}

TEST(SchemaRegistryEpochTest, EpochIsContentAddressed) {
  service::SchemaRegistry registry;
  ASSERT_TRUE(registry.Register("s", LocationText()).ok());
  const service::SchemaRegistry::Snapshot first = registry.FindEntry("s");
  ASSERT_NE(first.schema, nullptr);
  EXPECT_NE(first.epoch, Fingerprint128{});

  // Re-registering byte-identical content keeps the epoch (caches stay
  // warm) and is not an invalidation.
  ASSERT_TRUE(registry.Register("s", LocationText()).ok());
  const service::SchemaRegistry::Snapshot same = registry.FindEntry("s");
  EXPECT_EQ(same.epoch, first.epoch);
  EXPECT_EQ(registry.invalidations(), 0u);

  // Different content bumps the epoch and counts the invalidation.
  SchemaGenOptions gen;
  gen.seed = 7;
  auto hierarchy = GenerateLayeredHierarchy(gen);
  ASSERT_TRUE(hierarchy.ok());
  auto generated = GenerateConstrainedSchema(*hierarchy, {});
  ASSERT_TRUE(generated.ok());
  registry.RegisterParsed("s", std::move(*generated));
  const service::SchemaRegistry::Snapshot replaced = registry.FindEntry("s");
  EXPECT_NE(replaced.epoch, first.epoch);
  EXPECT_EQ(registry.invalidations(), 1u);

  // A name never registered has a null schema and the zero epoch.
  const service::SchemaRegistry::Snapshot missing = registry.FindEntry("no");
  EXPECT_EQ(missing.schema, nullptr);
  EXPECT_EQ(missing.epoch, Fingerprint128{});
}

// ---------------------------------------------------------------------------
// ServiceCaches

TEST(ServiceCachesTest, ResponseLayerIsIsolatedFromTheOthers) {
  service::ServiceCaches caches;
  caches.InsertResponse("check/e1/s/3", "{\"x\": 1}");
  caches.closure().Insert("e1/s/3", true);
  std::string body;
  ASSERT_TRUE(caches.LookupResponse("check/e1/s/3", &body));
  EXPECT_EQ(body, "{\"x\": 1}");

  caches.ClearResponses();
  EXPECT_FALSE(caches.LookupResponse("check/e1/s/3", &body));
  bool yes = false;
  EXPECT_TRUE(caches.closure().Lookup("e1/s/3", &yes));
}

TEST(ServiceCachesTest, NoGoodStoresAreSharedPerEpochAndAgeOut) {
  service::ServiceCaches::Options options;
  options.max_epoch_stores = 2;
  service::ServiceCaches caches(options);
  const Fingerprint128 e1 = FingerprintBytes("epoch-1");
  const Fingerprint128 e2 = FingerprintBytes("epoch-2");
  const Fingerprint128 e3 = FingerprintBytes("epoch-3");

  std::shared_ptr<NoGoodStore> s1 = caches.NoGoodsFor(e1);
  const Fingerprint128 sig = FingerprintBytes("some-subtree");
  s1->Record(sig);
  // Same epoch -> the same store, with the learned entry.
  EXPECT_TRUE(caches.NoGoodsFor(e1)->Probe(sig));

  // Two more epochs push e1 past max_epoch_stores; asking again gets a
  // fresh, empty store (the old learning aged out with its epoch).
  caches.NoGoodsFor(e2);
  caches.NoGoodsFor(e3);
  EXPECT_FALSE(caches.NoGoodsFor(e1)->Probe(sig));
  // The aged-out handle stays safely usable by whoever still holds it.
  EXPECT_TRUE(s1->Probe(sig));
}

TEST(ServiceCachesTest, NoGoodPersistenceRoundTripsPerEpoch) {
  service::ServiceCaches caches;
  const Fingerprint128 e1 = FingerprintBytes("epoch-1");
  const Fingerprint128 e2 = FingerprintBytes("epoch-2");
  const Fingerprint128 sig1 = FingerprintBytes("subtree-1");
  const Fingerprint128 sig2 = FingerprintBytes("subtree-2");
  caches.NoGoodsFor(e1)->Record(sig1);
  caches.NoGoodsFor(e2)->Record(sig2);

  const std::string blob = caches.SerializeNoGoods();
  service::ServiceCaches restored;
  ASSERT_TRUE(restored.LoadNoGoods(blob).ok());
  EXPECT_TRUE(restored.NoGoodsFor(e1)->Probe(sig1));
  EXPECT_FALSE(restored.NoGoodsFor(e1)->Probe(sig2));
  EXPECT_TRUE(restored.NoGoodsFor(e2)->Probe(sig2));

  EXPECT_FALSE(restored.LoadNoGoods("not a store container").ok());
}

TEST(ServiceCachesTest, TinyBudgetEvictsButKeepsAdmitting) {
  service::ServiceCaches::Options options;
  options.memory_budget_bytes = 8 << 10;
  options.num_shards = 1;
  service::ServiceCaches caches(options);
  const std::string body(256, 'x');
  for (int i = 0; i < 200; ++i) {
    caches.InsertResponse("check/e1/s/" + std::to_string(i), body);
  }
  EXPECT_GT(caches.ResponseStats().evictions, 0u);
  // The cache still admits after sustained pressure: the most recent
  // insert is resident.
  std::string out;
  EXPECT_TRUE(caches.LookupResponse("check/e1/s/199", &out));
}

}  // namespace
}  // namespace olapdc
