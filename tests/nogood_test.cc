// Tests for core/nogood.h — the DIMSAT learned-pruning store (ROADMAP
// item 2, layer b). Three layers of assurance:
//
//   1. store semantics: record/probe, signature discrimination over
//      structure / option bits / theory salt, persistence round-trip;
//   2. engine equivalence: a search with a store attached (cold, warm,
//      or mid-fill) must return exactly the frozen-dimension set and
//      satisfiability verdict of a storeless search — over the
//      location example and a 24-seed generated corpus;
//   3. chaos: faults injected mid-fill must never poison the store —
//      the guards at the recording sites only admit subtrees whose
//      exploration completed cleanly.

#include <algorithm>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "core/nogood.h"
#include "core/subhierarchy.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

// Canonical serialization of a frozen-dimension set: sorted rendered
// strings, so two enumerations compare as sets regardless of discovery
// order (the store changes visit order, never the answer).
std::vector<std::string> Canonical(const std::vector<FrozenDimension>& fs,
                                   const HierarchySchema& schema) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const FrozenDimension& f : fs) out.push_back(f.ToString(schema));
  std::sort(out.begin(), out.end());
  return out;
}

/// The generated corpus shape used throughout: small enough that full
/// enumeration is fast, constrained enough that barren subtrees exist.
Result<DimensionSchema> CorpusSchema(uint64_t seed) {
  SchemaGenOptions gen;
  gen.num_levels = 4;
  gen.categories_per_level = 3;
  gen.extra_edge_prob = 0.3;
  gen.max_level_jump = 2;
  gen.seed = seed;
  auto hierarchy = GenerateLayeredHierarchy(gen);
  if (!hierarchy.ok()) return hierarchy.status();
  ConstraintGenOptions cgen;
  cgen.into_fraction = 0.5;
  cgen.num_choice_constraints = 3;
  cgen.num_equality_constraints = 2;
  cgen.seed = seed;
  return GenerateConstrainedSchema(*hierarchy, cgen);
}

// ---------------------------------------------------------------------------
// Store semantics

TEST(NoGoodStoreTest, RecordProbeAndClear) {
  NoGoodStore store;
  const Fingerprint128 sig = FingerprintBytes("subtree");
  EXPECT_FALSE(store.Probe(sig));
  store.Record(sig);
  EXPECT_TRUE(store.Probe(sig));
  EXPECT_EQ(store.size(), 1u);
  store.Clear();
  EXPECT_FALSE(store.Probe(sig));
  EXPECT_EQ(store.size(), 0u);
}

TEST(NoGoodStoreTest, SignatureDiscriminatesRootOptionsAndSalt) {
  const Subhierarchy at_zero(8, /*root=*/0);
  const Subhierarchy at_one(8, /*root=*/1);
  const Fingerprint128 base = NoGoodStore::Signature(at_zero, 0);
  // Same inputs, same signature.
  EXPECT_EQ(base, NoGoodStore::Signature(at_zero, 0));
  // A different root is a different subtree.
  EXPECT_NE(base, NoGoodStore::Signature(at_one, 0));
  // Different semantic option bits must not alias (a subtree barren
  // under Ss+Sc pruning may not be barren without them).
  EXPECT_NE(base, NoGoodStore::Signature(at_zero, 7));
  // Different theory salts must not alias (Σ vs Σ ∪ {¬α}).
  EXPECT_NE(base, NoGoodStore::Signature(at_zero, 0, /*theory_salt=*/1));
}

TEST(NoGoodStoreTest, SerializeLoadRoundTrip) {
  NoGoodStore store;
  std::vector<Fingerprint128> sigs;
  for (int i = 0; i < 5; ++i) {
    sigs.push_back(FingerprintBytes("subtree-" + std::to_string(i)));
    store.Record(sigs.back());
  }
  const std::string text = store.Serialize();

  NoGoodStore restored;
  size_t consumed = 0;
  ASSERT_TRUE(restored.Load(text, &consumed).ok());
  EXPECT_EQ(consumed, text.size());
  EXPECT_EQ(restored.size(), store.size());
  for (const Fingerprint128& sig : sigs) EXPECT_TRUE(restored.Probe(sig));

  EXPECT_FALSE(restored.Load("dimsat-nogoods v2\n").ok());
  EXPECT_FALSE(restored.Load("garbage").ok());
}

// ---------------------------------------------------------------------------
// Engine equivalence

TEST(NoGoodDimsatTest, WarmEnumerationPrunesAndMatchesColdExactly) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, CorpusSchema(4));
  NoGoodStore store;
  uint64_t cold_expands = 0, warm_expands = 0, prunes = 0;
  for (CategoryId c = 0; c < ds.hierarchy().num_categories(); ++c) {
    if (c == ds.hierarchy().all()) continue;
    DimsatOptions plain;
    plain.enumerate_all = true;
    const DimsatResult cold = RunDimsat(ds, c, plain);
    ASSERT_TRUE(cold.status.ok());
    cold_expands += cold.stats.expand_calls;

    DimsatOptions learned = plain;
    learned.nogoods = &store;
    const DimsatResult fill = RunDimsat(ds, c, learned);
    const DimsatResult warm = RunDimsat(ds, c, learned);
    warm_expands += warm.stats.expand_calls;
    prunes += warm.stats.nogood_prunes;

    // The store may reorder or skip exploration, never change answers.
    EXPECT_EQ(Canonical(fill.frozen, ds.hierarchy()),
              Canonical(cold.frozen, ds.hierarchy()))
        << "fill run diverged at category " << c;
    EXPECT_EQ(Canonical(warm.frozen, ds.hierarchy()),
              Canonical(cold.frozen, ds.hierarchy()))
        << "warm run diverged at category " << c;
  }
  // The whole point: learned pruning actually fires and saves work.
  EXPECT_GT(store.size(), 0u);
  EXPECT_GT(prunes, 0u);
  EXPECT_LT(warm_expands, cold_expands);
}

TEST(NoGoodDimsatTest, CachedVsColdSetEqualityOver24Seeds) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    ASSERT_OK_AND_ASSIGN(DimensionSchema ds, CorpusSchema(seed));
    NoGoodStore store;  // shared across every category of this schema
    for (CategoryId c = 0; c < ds.hierarchy().num_categories(); ++c) {
      if (c == ds.hierarchy().all()) continue;
      DimsatOptions plain;
      plain.enumerate_all = true;
      const DimsatResult cold = RunDimsat(ds, c, plain);
      ASSERT_TRUE(cold.status.ok()) << "seed " << seed;

      DimsatOptions learned = plain;
      learned.nogoods = &store;
      const DimsatResult cached = RunDimsat(ds, c, learned);
      ASSERT_TRUE(cached.status.ok()) << "seed " << seed;
      EXPECT_EQ(Canonical(cached.frozen, ds.hierarchy()),
                Canonical(cold.frozen, ds.hierarchy()))
          << "seed " << seed << " category " << c;

      // Witness mode (the /v1/check default) must agree on the verdict
      // even though the store was learned under enumeration.
      DimsatOptions witness;
      witness.nogoods = &store;
      const DimsatResult quick = RunDimsat(ds, c, witness);
      ASSERT_TRUE(quick.status.ok()) << "seed " << seed;
      EXPECT_EQ(quick.satisfiable, cold.satisfiable)
          << "seed " << seed << " category " << c;
    }
  }
}

TEST(NoGoodDimsatTest, TheorySaltKeepsForeignLemmasInvisible) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, CorpusSchema(4));
  NoGoodStore store;
  uint64_t salted_prunes = 0, resalted_prunes = 0;
  for (CategoryId c = 0; c < ds.hierarchy().num_categories(); ++c) {
    if (c == ds.hierarchy().all()) continue;
    DimsatOptions learned;
    learned.enumerate_all = true;
    learned.nogoods = &store;
    learned.nogood_salt = 1;
    RunDimsat(ds, c, learned);  // fill under theory salt 1

    // Probing under a different salt sees nothing — lemmas learned
    // against one effective theory never leak into another.
    DimsatOptions other = learned;
    other.nogood_salt = 2;
    salted_prunes += RunDimsat(ds, c, other).stats.nogood_prunes;
    resalted_prunes += RunDimsat(ds, c, learned).stats.nogood_prunes;
  }
  EXPECT_EQ(salted_prunes, 0u);
  EXPECT_GT(resalted_prunes, 0u);
}

// ---------------------------------------------------------------------------
// Chaos: mid-fill faults never poison the store

TEST(NoGoodDimsatTest, FaultsMidFillNeverCorruptLaterAnswers) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, CorpusSchema(4));
  // Ground truth, storeless and fault-free.
  std::vector<std::vector<std::string>> truth;
  for (CategoryId c = 0; c < ds.hierarchy().num_categories(); ++c) {
    if (c == ds.hierarchy().all()) continue;
    DimsatOptions plain;
    plain.enumerate_all = true;
    truth.push_back(Canonical(RunDimsat(ds, c, plain).frozen,
                              ds.hierarchy()));
  }

  NoGoodStore store;
  {
    // Fill passes under a 2% deadline-fault rate: many searches die
    // mid-subtree. The recording guards (OK status only, subtree
    // completed inline) must keep every partial exploration out.
    ScopedFaultInjection guard(/*seed=*/2024);
    FaultInjector::Global().SetFault("dimsat.expand",
                                     StatusCode::kDeadlineExceeded, 0.02,
                                     "injected mid-fill fault");
    for (int round = 0; round < 3; ++round) {
      for (CategoryId c = 0; c < ds.hierarchy().num_categories(); ++c) {
        if (c == ds.hierarchy().all()) continue;
        DimsatOptions learned;
        learned.enumerate_all = true;
        learned.nogoods = &store;
        RunDimsat(ds, c, learned);  // outcome irrelevant; store is not
      }
    }
    EXPECT_GE(FaultInjector::Global().failures("dimsat.expand"), 1u);
  }

  // Fault-free warm runs against the chaos-filled store: answers must
  // equal ground truth exactly.
  size_t i = 0;
  for (CategoryId c = 0; c < ds.hierarchy().num_categories(); ++c) {
    if (c == ds.hierarchy().all()) continue;
    DimsatOptions learned;
    learned.enumerate_all = true;
    learned.nogoods = &store;
    const DimsatResult warm = RunDimsat(ds, c, learned);
    ASSERT_TRUE(warm.status.ok());
    EXPECT_EQ(Canonical(warm.frozen, ds.hierarchy()), truth[i])
        << "category " << c << " diverged after chaos fill";
    ++i;
  }
}

}  // namespace
}  // namespace olapdc
