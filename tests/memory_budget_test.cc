// MemoryBudget: the accountant's unit semantics (lock-free reserve /
// release, sticky exhaustion, track-only mode, RAII reservations, the
// mem.reserve chaos site) and the adversarial end-to-end property the
// design exists for — a DIMSAT enumeration under a byte cap degrades
// with kResourceExhausted and the partial stats of the work it did,
// instead of aborting the process or returning a wrong verdict.

#include <gtest/gtest.h>

#include <optional>

#include "common/budget.h"
#include "common/fault_injector.h"
#include "common/memory_budget.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

TEST(MemoryBudgetTest, ReserveWithinLimitSucceedsAndAccounts) {
  MemoryBudget budget(1000);
  ASSERT_OK(budget.Reserve(400, "test"));
  ASSERT_OK(budget.Reserve(600, "test"));
  EXPECT_EQ(budget.reserved(), 1000u);
  EXPECT_EQ(budget.peak(), 1000u);
  EXPECT_FALSE(budget.exhausted());
  budget.Release(1000);
  EXPECT_EQ(budget.reserved(), 0u);
  EXPECT_EQ(budget.peak(), 1000u);  // peak is monotone
}

TEST(MemoryBudgetTest, ExceedingTheLimitTripsAndSticks) {
  MemoryBudget budget(1000);
  ASSERT_OK(budget.Reserve(900, "test"));
  Status overflow = budget.Reserve(200, "dimsat.frozen");
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  // The failed reservation holds nothing.
  EXPECT_EQ(budget.reserved(), 900u);
  EXPECT_TRUE(budget.exhausted());
  // Sticky: even a tiny reservation fails now — memory pressure does
  // not un-happen between probes of one request.
  EXPECT_EQ(budget.Reserve(1, "test").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.ExhaustedStatus().code(),
            StatusCode::kResourceExhausted);
}

TEST(MemoryBudgetTest, TrackOnlyModeNeverTrips) {
  MemoryBudget budget(0);
  ASSERT_OK(budget.Reserve(1ull << 40, "test"));
  ASSERT_OK(budget.Reserve(1ull << 40, "test"));
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.peak(), 1ull << 41);
}

TEST(MemoryBudgetTest, BudgetCheckSurfacesExhaustion) {
  MemoryBudget memory(100);
  Budget budget;
  budget.SetMemory(&memory);
  ASSERT_OK(budget.Check());
  EXPECT_EQ(memory.Reserve(200, "test").code(),
            StatusCode::kResourceExhausted);
  // Every checker over the shared Budget now trips on its next probe.
  EXPECT_EQ(budget.Check().code(), StatusCode::kResourceExhausted);
}

TEST(MemoryBudgetTest, ReservationReleasesEverythingOnScopeExit) {
  MemoryBudget budget(1000);
  {
    MemoryReservation holder(&budget);
    ASSERT_OK(holder.Reserve(300, "test"));
    ASSERT_OK(holder.Reserve(200, "test"));
    EXPECT_EQ(holder.held(), 500u);
    EXPECT_EQ(budget.reserved(), 500u);
  }
  EXPECT_EQ(budget.reserved(), 0u);
}

TEST(MemoryBudgetTest, NullBudgetReservationAlwaysSucceeds) {
  MemoryReservation holder(nullptr);
  ASSERT_OK(holder.Reserve(1ull << 60, "test"));
  EXPECT_EQ(holder.held(), 0u);
}

TEST(MemoryBudgetTest, InjectedReserveFaultIsStickyLikeARealOne) {
  ScopedFaultInjection injection(7);
  FaultInjector::Global().SetFault("mem.reserve",
                                   StatusCode::kResourceExhausted, 1.0);
  MemoryBudget budget(1ull << 30);
  EXPECT_EQ(budget.Reserve(8, "test").code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.reserved(), 0u);
}

// The adversarial end-to-end property: Figure 4's enumeration under a
// byte cap stops with kResourceExhausted, reports the partial work it
// did (budget-errors-are-data), and every frozen dimension it *did*
// collect is still a genuine one from the uncapped enumeration.
TEST(MemoryBudgetTest, DimsatEnumerationDegradesUnderByteCap) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  CategoryId store = ds.hierarchy().FindCategory("Store");

  DimsatOptions options;
  options.enumerate_all = true;
  DimsatResult uncapped = Dimsat(ds, store, options);
  ASSERT_OK(uncapped.status);
  ASSERT_EQ(uncapped.frozen.size(), 4u);

  // Large enough to get past the root's own charge, small enough that
  // the full enumeration cannot fit.
  MemoryBudget memory(2048);
  Budget budget;
  budget.SetMemory(&memory);
  options.budget = &budget;
  options.budget_check_stride = 1;
  DimsatResult capped = Dimsat(ds, store, options);
  EXPECT_EQ(capped.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(capped.stats.Any());  // partial stats, not a blank abort
  EXPECT_LT(capped.frozen.size(), uncapped.frozen.size());
  // Accounting drained on the error path: the run's RAII holders
  // returned every byte.
  EXPECT_EQ(memory.reserved(), 0u);

  for (const FrozenDimension& f : capped.frozen) {
    bool found = false;
    for (const FrozenDimension& g : uncapped.frozen) {
      if (f.ToString(ds.hierarchy()) == g.ToString(ds.hierarchy())) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "capped run invented a frozen dimension";
  }
}

}  // namespace
}  // namespace olapdc
