// Tests for the multidimensional datacube: views, rollups, and the
// axis-wise product rule for rollup safety (Theorem 1 lifted to cubes).

#include <gtest/gtest.h>

#include <vector>

#include "core/location_example.h"
#include "olap/datacube.h"
#include "tests/test_util.h"
#include "workload/instance_generator.h"
#include "workload/realistic.h"

namespace olapdc {
namespace {

/// A location x time cube with one fact per (store, day) pair.
struct CubeFixture {
  DimensionSchema location_schema;
  DimensionSchema time_schema;
  Datacube cube;
  int location_axis = 0;
  int time_axis = 1;
};

CubeFixture MakeCube() {
  auto location_schema = LocationSchema();
  OLAPDC_CHECK(location_schema.ok());
  auto time_schema = TimeSchema();
  OLAPDC_CHECK(time_schema.ok());
  auto location = LocationInstance();
  OLAPDC_CHECK(location.ok());
  InstanceGenOptions gen;
  gen.branching = 2;
  auto time = GenerateInstanceFromFrozen(*time_schema, gen);
  OLAPDC_CHECK(time.ok()) << time.status().ToString();

  auto cube = Datacube::Create({*location, *time});
  OLAPDC_CHECK(cube.ok());

  // Facts: every store on every day, deterministic measures.
  const DimensionInstance& loc = cube->axis(0);
  const DimensionInstance& tim = cube->axis(1);
  CategoryId store = loc.hierarchy().FindCategory("Store");
  CategoryId day = tim.hierarchy().FindCategory("Day");
  double measure = 1;
  for (MemberId s : loc.MembersOf(store)) {
    for (MemberId d : tim.MembersOf(day)) {
      OLAPDC_CHECK(cube->AddFact({s, d}, measure).ok());
      measure += 1;
    }
  }
  return CubeFixture{std::move(*location_schema), std::move(*time_schema),
                     std::move(*cube)};
}

TEST(DatacubeTest, CreateAndAddFactValidation) {
  auto location = LocationInstance();
  ASSERT_TRUE(location.ok());
  EXPECT_FALSE(Datacube::Create({}).ok());
  ASSERT_OK_AND_ASSIGN(Datacube cube, Datacube::Create({*location}));
  // Wrong arity.
  EXPECT_FALSE(cube.AddFact({1, 2}, 1.0).ok());
  // Non-bottom member.
  MemberId toronto = *location->MemberIdOf("Toronto");
  EXPECT_FALSE(cube.AddFact({toronto}, 1.0).ok());
  // Unknown id.
  EXPECT_FALSE(cube.AddFact({99999}, 1.0).ok());
  // Valid.
  MemberId store = *location->MemberIdOf("st-tor-1");
  EXPECT_OK(cube.AddFact({store}, 1.0));
  EXPECT_EQ(cube.num_facts(), 1u);
}

TEST(DatacubeTest, ViewTotalsAreConsistentAcrossGranularities) {
  CubeFixture f = MakeCube();
  const HierarchySchema& loc = f.cube.axis(0).hierarchy();
  const HierarchySchema& tim = f.cube.axis(1).hierarchy();

  ASSERT_OK_AND_ASSIGN(
      MultiCubeView by_country_year,
      f.cube.ComputeView(
          {loc.FindCategory("Country"), tim.FindCategory("Year")},
          AggFn::kSum));
  ASSERT_OK_AND_ASSIGN(
      MultiCubeView by_all_all,
      f.cube.ComputeView({loc.all(), tim.all()}, AggFn::kSum));
  ASSERT_EQ(by_all_all.size(), 1u);
  double total = by_all_all.begin()->second;
  double sum = 0;
  for (const auto& [cell, value] : by_country_year) sum += value;
  EXPECT_DOUBLE_EQ(sum, total)
      << "every fact reaches Country and Year exactly once";
}

TEST(DatacubeTest, SafeRollupIsExact) {
  CubeFixture f = MakeCube();
  const HierarchySchema& loc = f.cube.axis(0).hierarchy();
  const HierarchySchema& tim = f.cube.axis(1).hierarchy();
  std::vector<CategoryId> fine = {loc.FindCategory("City"),
                                  tim.FindCategory("Month")};
  std::vector<CategoryId> coarse = {loc.FindCategory("Country"),
                                    tim.FindCategory("Year")};
  std::vector<DimensionSchema> schemas = {f.location_schema, f.time_schema};

  ASSERT_OK_AND_ASSIGN(bool safe,
                       f.cube.IsRollupSafe(schemas, fine, coarse));
  EXPECT_TRUE(safe);

  for (AggFn af : {AggFn::kSum, AggFn::kCount, AggFn::kMin, AggFn::kMax}) {
    ASSERT_OK_AND_ASSIGN(MultiCubeView fine_view,
                         f.cube.ComputeView(fine, af));
    ASSERT_OK_AND_ASSIGN(MultiCubeView direct,
                         f.cube.ComputeView(coarse, af));
    ASSERT_OK_AND_ASSIGN(MultiCubeView rolled,
                         f.cube.RollUpView(fine_view, fine, coarse, af));
    EXPECT_EQ(direct, rolled) << AggFnName(af);
  }
}

TEST(DatacubeTest, UnsafeAxisBreaksTheProduct) {
  CubeFixture f = MakeCube();
  const HierarchySchema& loc = f.cube.axis(0).hierarchy();
  const HierarchySchema& tim = f.cube.axis(1).hierarchy();
  std::vector<DimensionSchema> schemas = {f.location_schema, f.time_schema};

  // Location axis fine = State: Country is NOT summarizable from State
  // (Washington), even though the time axis Month -> Year is safe.
  std::vector<CategoryId> fine = {loc.FindCategory("State"),
                                  tim.FindCategory("Month")};
  std::vector<CategoryId> coarse = {loc.FindCategory("Country"),
                                    tim.FindCategory("Year")};
  ASSERT_OK_AND_ASSIGN(bool safe,
                       f.cube.IsRollupSafe(schemas, fine, coarse));
  EXPECT_FALSE(safe);

  ASSERT_OK_AND_ASSIGN(MultiCubeView fine_view,
                       f.cube.ComputeView(fine, AggFn::kSum));
  ASSERT_OK_AND_ASSIGN(MultiCubeView direct,
                       f.cube.ComputeView(coarse, AggFn::kSum));
  ASSERT_OK_AND_ASSIGN(
      MultiCubeView rolled,
      f.cube.RollUpView(fine_view, fine, coarse, AggFn::kSum));
  EXPECT_NE(direct, rolled) << "Washington facts are lost on the way";

  // Week on the time axis is equally fatal.
  std::vector<CategoryId> weekly = {loc.FindCategory("City"),
                                    tim.FindCategory("Week")};
  ASSERT_OK_AND_ASSIGN(bool weekly_safe,
                       f.cube.IsRollupSafe(schemas, weekly, coarse));
  EXPECT_FALSE(weekly_safe);
}

TEST(DatacubeTest, ArityChecks) {
  CubeFixture f = MakeCube();
  EXPECT_FALSE(f.cube.ComputeView({0}, AggFn::kSum).ok());
  MultiCubeView bogus;
  bogus[{1}] = 1.0;  // wrong arity cell
  EXPECT_FALSE(
      f.cube.RollUpView(bogus, {0, 0}, {0, 0}, AggFn::kSum).ok());
}

}  // namespace
}  // namespace olapdc
