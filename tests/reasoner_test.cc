// Tests for the memoizing Reasoner facade.

#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "core/location_example.h"
#include "core/reasoner.h"
#include "tests/test_util.h"

namespace olapdc {
namespace {

using testing_util::ParseC;

TEST(ReasonerTest, AnswersMatchDirectCalls) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  Reasoner reasoner(ds);

  DimensionConstraint alpha =
      ParseC(schema, "Store.Country -> Store.City.Country");
  ASSERT_OK_AND_ASSIGN(bool implied, reasoner.Implies(alpha));
  EXPECT_TRUE(implied);
  ASSERT_OK_AND_ASSIGN(bool sat,
                       reasoner.IsSatisfiable(schema.FindCategory("Store")));
  EXPECT_TRUE(sat);
  ASSERT_OK_AND_ASSIGN(
      bool summ,
      reasoner.IsSummarizable(schema.FindCategory("Country"),
                              {schema.FindCategory("State"),
                               schema.FindCategory("Province")}));
  EXPECT_FALSE(summ);
}

TEST(ReasonerTest, CacheHitsOnRepeatsAndEquivalentKeys) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  Reasoner reasoner(ds);

  DimensionConstraint alpha = ParseC(schema, "Store.SaleRegion");
  ASSERT_OK(reasoner.Implies(alpha).status());
  EXPECT_EQ(reasoner.stats().hits, 0u);
  ASSERT_OK(reasoner.Implies(alpha).status());
  EXPECT_EQ(reasoner.stats().hits, 1u);

  // Summarizability keys are order- and duplicate-insensitive.
  CategoryId state = schema.FindCategory("State");
  CategoryId province = schema.FindCategory("Province");
  CategoryId country = schema.FindCategory("Country");
  ASSERT_OK(reasoner.IsSummarizable(country, {state, province}).status());
  uint64_t hits = reasoner.stats().hits;
  ASSERT_OK(
      reasoner.IsSummarizable(country, {province, state, state}).status());
  EXPECT_EQ(reasoner.stats().hits, hits + 1);
}

TEST(ReasonerTest, MatrixWorkloadMostlyHitsAfterWarmup) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  const HierarchySchema& schema = ds.hierarchy();
  Reasoner reasoner(ds);
  auto sweep = [&] {
    for (CategoryId t = 0; t < schema.num_categories(); ++t) {
      if (t == schema.all()) continue;
      for (CategoryId s = 0; s < schema.num_categories(); ++s) {
        if (s == schema.all()) continue;
        ASSERT_OK(reasoner.IsSummarizable(t, {s}).status());
      }
    }
  };
  sweep();
  const uint64_t first_pass = reasoner.stats().queries;
  sweep();
  EXPECT_EQ(reasoner.stats().queries, 2 * first_pass);
  EXPECT_GE(reasoner.stats().hits, first_pass);
}

}  // namespace
}  // namespace olapdc
