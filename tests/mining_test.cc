// Tests for constraint mining (learning dimension constraints from an
// instance) and its interplay with the reasoner.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "constraint/evaluator.h"
#include "constraint/printer.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "core/mining.h"
#include "core/summarizability.h"
#include "tests/test_util.h"
#include "workload/instance_generator.h"

namespace olapdc {
namespace {

TEST(MiningTest, MinedConstraintsHoldOnTheirInstance) {
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());
  ASSERT_OK_AND_ASSIGN(std::vector<DimensionConstraint> mined,
                       MineConstraints(d));
  ASSERT_FALSE(mined.empty());
  for (const DimensionConstraint& c : mined) {
    EXPECT_TRUE(Satisfies(d, c))
        << ConstraintToString(d.hierarchy(), c);
  }
}

TEST(MiningTest, SplitsReflectObservedStructures) {
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());
  const HierarchySchema& schema = d.hierarchy();
  ASSERT_OK_AND_ASSIGN(std::vector<DimensionConstraint> mined,
                       MineConstraints(d));
  // The mined schema admits exactly the structures the instance
  // exhibits: stores of location come in the {City} and {City,
  // SaleRegion} parent-set flavors, cities in {Province}, {State},
  // {Country}.
  DimensionSchema mined_schema(d.schema(), mined);
  DimsatResult frozen = EnumerateFrozenDimensions(
      mined_schema, schema.FindCategory("Store"));
  ASSERT_OK(frozen.status);
  EXPECT_GE(frozen.frozen.size(), 3u);
  // Every frozen structure's store has a City parent (all observed
  // stores do).
  for (const FrozenDimension& f : frozen.frozen) {
    EXPECT_TRUE(f.g.HasEdge(schema.FindCategory("Store"),
                            schema.FindCategory("City")));
  }
}

TEST(MiningTest, EqualityConditionsRecovered) {
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());
  const HierarchySchema& schema = d.hierarchy();
  ASSERT_OK_AND_ASSIGN(std::vector<DimensionConstraint> mined,
                       MineConstraints(d));
  // Among the mined conditionals: cities under Canada use the
  // {Province} alternative — the spirit of Example 6.
  bool found_canada_rule = false;
  for (const DimensionConstraint& c : mined) {
    std::string text = ConstraintToString(schema, c);
    if (text.find("'Canada'") != std::string::npos &&
        c.root == schema.FindCategory("City") &&
        text.find("City/Province") != std::string::npos) {
      found_canada_rule = true;
    }
  }
  EXPECT_TRUE(found_canada_rule);
}

TEST(MiningTest, MiningDisabledConditions) {
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());
  MiningOptions options;
  options.mine_equality_conditions = false;
  ASSERT_OK_AND_ASSIGN(std::vector<DimensionConstraint> mined,
                       MineConstraints(d, options));
  for (const DimensionConstraint& c : mined) {
    EXPECT_EQ(c.label, "split");
  }
}

TEST(MiningTest, HomogeneousInstanceMinesIntoConstraints) {
  HierarchySchemaPtr schema = testing_util::MakeHierarchy(
      {{"A", "B"}, {"B", "All"}});
  DimensionInstanceBuilder builder(schema);
  builder.AddMember("b1", "B")
      .AddMemberUnder("a1", "A", "b1")
      .AddMemberUnder("a2", "A", "b1");
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, builder.Build());
  ASSERT_OK_AND_ASSIGN(std::vector<DimensionConstraint> mined,
                       MineConstraints(d));
  // One split per populated category (A and B), each a single
  // alternative == a conjunction of into-atoms.
  ASSERT_EQ(mined.size(), 2u);
  CategoryId child, parent;
  EXPECT_TRUE(IsIntoConstraint(mined[0], &child, &parent));
}

TEST(MiningTest, RoundTripThroughGenerator) {
  // Mine a generated instance of locationSch; the generated instance
  // must satisfy its own mined constraints, and summarizability
  // verdicts under the mined schema must be sound for this instance.
  ASSERT_OK_AND_ASSIGN(DimensionSchema original, LocationSchema());
  InstanceGenOptions gen;
  gen.branching = 2;
  ASSERT_OK_AND_ASSIGN(DimensionInstance d,
                       GenerateInstanceFromFrozen(original, gen));
  ASSERT_OK_AND_ASSIGN(DimensionSchema mined, MineSchema(d));
  EXPECT_TRUE(SatisfiesAll(d, mined.constraints()));

  const HierarchySchema& schema = original.hierarchy();
  CategoryId country = schema.FindCategory("Country");
  CategoryId city = schema.FindCategory("City");
  ASSERT_OK_AND_ASSIGN(SummarizabilityResult mined_verdict,
                       IsSummarizable(mined, country, {city}));
  if (mined_verdict.summarizable) {
    ASSERT_OK_AND_ASSIGN(bool instance_level,
                         IsSummarizableInInstance(d, country, {city}));
    EXPECT_TRUE(instance_level)
        << "schema-level yes must hold on the mined-from instance";
  }
}

}  // namespace
}  // namespace olapdc
