// Tests for the text serialization of schemas and instances.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "constraint/evaluator.h"
#include "constraint/printer.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "io/instance_io.h"
#include "io/schema_io.h"
#include "tests/test_util.h"

// for MakeHierarchy/ParseC in the label test


namespace olapdc {
namespace {

TEST(SchemaIoTest, ParseBasicSchema) {
  const char* text = R"(
# a comment
category Store
edge Store City
edge City All

constraint (a) Store/City
constraint Store.City
)";
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, ParseSchemaText(text));
  EXPECT_EQ(ds.hierarchy().num_categories(), 3);
  ASSERT_EQ(ds.constraints().size(), 2u);
  EXPECT_EQ(ds.constraints()[0].label, "(a)");
  EXPECT_EQ(ds.constraints()[1].label, "");
}

TEST(SchemaIoTest, RoundTripLocationSchema) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema original, LocationSchema());
  std::string text = SerializeSchema(original);
  ASSERT_OK_AND_ASSIGN(DimensionSchema reparsed, ParseSchemaText(text));
  EXPECT_TRUE(original.hierarchy().graph() == reparsed.hierarchy().graph());
  ASSERT_EQ(original.constraints().size(), reparsed.constraints().size());
  for (size_t i = 0; i < original.constraints().size(); ++i) {
    EXPECT_EQ(original.constraints()[i].label,
              reparsed.constraints()[i].label);
    // Category ids coincide because serialization preserves insertion
    // order, so structural equality applies directly.
    EXPECT_TRUE(ExprEquals(original.constraints()[i].expr,
                           reparsed.constraints()[i].expr))
        << original.constraints()[i].label;
  }
  // Same reasoning results.
  DimsatResult a = EnumerateFrozenDimensions(
      original, original.hierarchy().FindCategory("Store"));
  DimsatResult b = EnumerateFrozenDimensions(
      reparsed, reparsed.hierarchy().FindCategory("Store"));
  EXPECT_EQ(a.frozen.size(), b.frozen.size());
}

TEST(SchemaIoTest, ConstraintStartingWithParenIsNotALabel) {
  const char* text =
      "edge A B\nedge A C\nedge B All\nedge C All\n"
      "constraint (A/B | A/C) & A.B\n";
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, ParseSchemaText(text));
  ASSERT_EQ(ds.constraints().size(), 1u);
  EXPECT_EQ(ds.constraints()[0].label, "");
  EXPECT_EQ(ds.constraints()[0].expr->kind, ExprKind::kAnd);
}

TEST(SchemaIoTest, Errors) {
  EXPECT_FALSE(ParseSchemaText("bogus line\n").ok());
  EXPECT_FALSE(ParseSchemaText("edge A\n").ok());         // one endpoint
  EXPECT_FALSE(ParseSchemaText("edge A B C\n").ok());     // three
  EXPECT_FALSE(ParseSchemaText("category\n").ok());       // unnamed
  EXPECT_FALSE(
      ParseSchemaText("edge A All\nconstraint A/Nowhere\n").ok());
  EXPECT_FALSE(ParseSchemaText("edge A All\nconstraint\n").ok());
  // Orphan category violates Definition 1.
  EXPECT_FALSE(ParseSchemaText("category Orphan\nedge A All\n").ok());
  EXPECT_FALSE(LoadSchemaFile("/nonexistent/path.olapdc").ok());
}

TEST(SchemaIoTest, FileRoundTrip) {
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  const std::string path = ::testing::TempDir() + "/schema_io_test.olapdc";
  ASSERT_OK(SaveSchemaFile(ds, path));
  ASSERT_OK_AND_ASSIGN(DimensionSchema loaded, LoadSchemaFile(path));
  EXPECT_EQ(loaded.constraints().size(), ds.constraints().size());
  std::remove(path.c_str());
}

TEST(SchemaIoTest, UnparenthesizedLabelsRoundTrip) {
  // Mining produces bare labels like "split"; serialization must keep
  // them distinguishable from the expression.
  auto hierarchy = testing_util::MakeHierarchy({{"A", "B"}, {"B", "All"}});
  DimensionSchema ds(
      hierarchy, {testing_util::ParseC(*hierarchy, "A/B", "split")});
  std::string text = SerializeSchema(ds);
  EXPECT_NE(text.find("constraint (split) A/B"), std::string::npos) << text;
  ASSERT_OK_AND_ASSIGN(DimensionSchema reparsed, ParseSchemaText(text));
  ASSERT_EQ(reparsed.constraints().size(), 1u);
  EXPECT_EQ(reparsed.constraints()[0].label, "(split)");
  EXPECT_EQ(reparsed.constraints()[0].expr->kind, ExprKind::kPathAtom);
}

TEST(InstanceIoTest, ParseBasicInstance) {
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr schema, LocationHierarchy());
  const char* text = R"(
# Canada only
member Canada Country
member SR-Canada SaleRegion 'Sale Region East'
member Ontario Province
member Toronto City
member s1 Store
edge SR-Canada Canada
edge Ontario SR-Canada
edge Toronto Ontario
edge s1 Toronto
)";
  ASSERT_OK_AND_ASSIGN(DimensionInstance d,
                       ParseInstanceText(schema, text));
  EXPECT_EQ(d.num_members(), 6);  // + all
  ASSERT_OK_AND_ASSIGN(MemberId sr, d.MemberIdOf("SR-Canada"));
  EXPECT_EQ(d.member(sr).name, "Sale Region East");
  EXPECT_OK(d.Validate());
}

TEST(InstanceIoTest, RoundTripLocationInstance) {
  ASSERT_OK_AND_ASSIGN(DimensionInstance original, LocationInstance());
  std::string text = SerializeInstance(original);
  ASSERT_OK_AND_ASSIGN(
      DimensionInstance reparsed,
      ParseInstanceText(original.schema(), text));
  EXPECT_EQ(reparsed.num_members(), original.num_members());
  EXPECT_EQ(reparsed.child_parent().num_edges(),
            original.child_parent().num_edges());
  ASSERT_OK_AND_ASSIGN(DimensionSchema ds, LocationSchema());
  EXPECT_TRUE(SatisfiesAll(reparsed, ds.constraints()));
}

TEST(InstanceIoTest, Errors) {
  ASSERT_OK_AND_ASSIGN(HierarchySchemaPtr schema, LocationHierarchy());
  EXPECT_FALSE(ParseInstanceText(schema, "member x\n").ok());
  EXPECT_FALSE(ParseInstanceText(schema, "edge a\n").ok());
  EXPECT_FALSE(ParseInstanceText(schema, "member x 'unterminated\n").ok());
  EXPECT_FALSE(ParseInstanceText(schema, "frobnicate x y\n").ok());
  EXPECT_FALSE(ParseInstanceText(schema, "member x Galaxy\n").ok());
  EXPECT_FALSE(LoadInstanceFile(schema, "/nonexistent").ok());
}

TEST(InstanceIoTest, FileRoundTrip) {
  ASSERT_OK_AND_ASSIGN(DimensionInstance d, LocationInstance());
  const std::string path = ::testing::TempDir() + "/instance_io_test.txt";
  ASSERT_OK(SaveInstanceFile(d, path));
  ASSERT_OK_AND_ASSIGN(DimensionInstance loaded,
                       LoadInstanceFile(d.schema(), path));
  EXPECT_EQ(loaded.num_members(), d.num_members());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace olapdc
