// Differential testing: DIMSAT against the brute-force Theorem 3
// oracle, on the paper's schema and on random generated workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/dimsat.h"
#include "core/location_example.h"
#include "core/naive_sat.h"
#include "tests/test_util.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

/// Canonical text form of a frozen-dimension set for comparison.
std::vector<std::string> Canonical(const std::vector<FrozenDimension>& fs,
                                   const HierarchySchema& schema) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const FrozenDimension& f : fs) out.push_back(f.ToString(schema));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(NaiveVsDimsatTest, LocationSchemaAgreesExactly) {
  auto ds_result = LocationSchema();
  ASSERT_TRUE(ds_result.ok());
  const DimensionSchema& ds = *ds_result;
  for (CategoryId c = 0; c < ds.hierarchy().num_categories(); ++c) {
    DimsatOptions options;
    options.enumerate_all = true;
    DimsatResult dimsat = Dimsat(ds, c, options);
    ASSERT_OK(dimsat.status);
    NaiveSatOptions naive_options;
    naive_options.enumerate_all = true;
    ASSERT_OK_AND_ASSIGN(DimsatResult naive, NaiveSat(ds, c, naive_options));
    EXPECT_EQ(dimsat.satisfiable, naive.satisfiable)
        << ds.hierarchy().CategoryName(c);
    EXPECT_EQ(Canonical(dimsat.frozen, ds.hierarchy()),
              Canonical(naive.frozen, ds.hierarchy()))
        << ds.hierarchy().CategoryName(c);
  }
}

TEST(NaiveVsDimsatTest, NaiveRefusesOversizedInputs) {
  auto ds_result = LocationSchema();
  ASSERT_TRUE(ds_result.ok());
  NaiveSatOptions options;
  options.max_edges = 3;
  CategoryId store = ds_result->hierarchy().FindCategory("Store");
  EXPECT_EQ(NaiveSat(*ds_result, store, options).status().code(),
            StatusCode::kResourceExhausted);
}

// Property sweep: random layered schemas with random constraints; both
// procedures must produce identical frozen-dimension sets from the
// bottom category.
class RandomDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDifferentialTest, FrozenSetsAgree) {
  const int seed = GetParam();
  SchemaGenOptions schema_options;
  schema_options.num_levels = 2 + (seed % 2);
  schema_options.categories_per_level = 2;
  schema_options.extra_edge_prob = 0.35;
  schema_options.seed = static_cast<uint64_t>(seed) * 7919 + 1;
  auto hierarchy = GenerateLayeredHierarchy(schema_options);
  ASSERT_TRUE(hierarchy.ok());

  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.3 + 0.1 * (seed % 5);
  constraint_options.num_choice_constraints = seed % 3;
  constraint_options.num_equality_constraints = seed % 3;
  constraint_options.seed = static_cast<uint64_t>(seed) * 104729 + 3;
  auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
  ASSERT_TRUE(ds.ok());

  CategoryId base = ds->hierarchy().FindCategory("Base");
  ASSERT_NE(base, kNoCategory);

  DimsatOptions dimsat_options;
  dimsat_options.enumerate_all = true;
  DimsatResult dimsat = Dimsat(*ds, base, dimsat_options);
  ASSERT_OK(dimsat.status);

  NaiveSatOptions naive_options;
  naive_options.enumerate_all = true;
  naive_options.max_edges = 22;
  auto naive = NaiveSat(*ds, base, naive_options);
  if (!naive.ok()) GTEST_SKIP() << "edge count beyond brute-force budget";

  EXPECT_EQ(dimsat.satisfiable, naive->satisfiable) << "seed " << seed;
  EXPECT_EQ(Canonical(dimsat.frozen, ds->hierarchy()),
            Canonical(naive->frozen, ds->hierarchy()))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferentialTest,
                         ::testing::Range(0, 30));

// The ablations must also agree with the oracle (soundness does not
// depend on pruning).
class AblationDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(AblationDifferentialTest, UnprunedSearchAgrees) {
  const int seed = GetParam();
  SchemaGenOptions schema_options;
  schema_options.num_levels = 2;
  schema_options.categories_per_level = 2;
  schema_options.extra_edge_prob = 0.4;
  schema_options.seed = static_cast<uint64_t>(seed) * 31 + 17;
  auto hierarchy = GenerateLayeredHierarchy(schema_options);
  ASSERT_TRUE(hierarchy.ok());
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.6;
  constraint_options.num_choice_constraints = 1;
  constraint_options.seed = seed;
  auto ds = GenerateConstrainedSchema(*hierarchy, constraint_options);
  ASSERT_TRUE(ds.ok());
  CategoryId base = ds->hierarchy().FindCategory("Base");

  DimsatOptions pruned;
  pruned.enumerate_all = true;
  DimsatOptions unpruned = pruned;
  unpruned.prune_shortcuts = false;
  unpruned.prune_cycles = false;
  unpruned.prune_into = false;

  DimsatResult a = Dimsat(*ds, base, pruned);
  DimsatResult b = Dimsat(*ds, base, unpruned);
  ASSERT_OK(a.status);
  ASSERT_OK(b.status);
  EXPECT_EQ(Canonical(a.frozen, ds->hierarchy()),
            Canonical(b.frozen, ds->hierarchy()))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AblationDifferentialTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace olapdc
