#include "obs/prometheus.h"

#include <cstdint>
#include <cstdio>

namespace olapdc {
namespace obs {

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':' || (c >= '0' && c <= '9');
    if (c >= '0' && c <= '9' && i == 0) out += '_';
    out += valid ? c : '_';
  }
  return out;
}

std::string PrometheusLabelEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PrometheusValue(double value) {
  if (!(value == value)) return "NaN";
  if (value > 1.7e308) return "+Inf";
  if (value < -1.7e308) return "-Inf";
  // Integral values (bucket bounds, integral sums) stay plain decimals
  // instead of %g's exponent form ("10", not "1e+01").
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value >= -1e15 && value <= 1e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) return shorter;
  }
  return buf;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Internal buckets are per-bucket counts; Prometheus buckets are
    // cumulative and must end with le="+Inf" equal to _count.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kLatencyBucketBoundsUs.size(); ++i) {
      cumulative += histogram.buckets[i];
      out += prom + "_bucket{le=\"" + PrometheusValue(kLatencyBucketBoundsUs[i]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    cumulative += histogram.buckets[kNumLatencyBuckets - 1];
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += prom + "_sum " + PrometheusValue(histogram.sum_us) + "\n";
    out += prom + "_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace olapdc
