#include "obs/http_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace olapdc {
namespace obs {

namespace {

constexpr int kPollSliceMs = 100;

bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (IEquals(key, name)) return &value;
  }
  return nullptr;
}

void HttpRequestParser::Fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(message);
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view bytes) {
  if (state_ == State::kError) return state_;
  buffer_.append(bytes.data(), bytes.size());
  if (state_ == State::kHeaders) {
    // Find the header terminator; accept bare-LF framing like the
    // rest of the codebase's text formats.
    size_t terminator = buffer_.find("\r\n\r\n");
    size_t body_start = terminator + 4;
    const size_t lf = buffer_.find("\n\n");
    if (lf != std::string::npos &&
        (terminator == std::string::npos || lf < terminator)) {
      terminator = lf;
      body_start = lf + 2;
    }
    if (terminator == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        Fail(431, "request headers exceed " +
                      std::to_string(limits_.max_header_bytes) + " bytes");
      }
      return state_;
    }
    if (body_start > limits_.max_header_bytes) {
      Fail(431, "request headers exceed " +
                    std::to_string(limits_.max_header_bytes) + " bytes");
      return state_;
    }
    ParseHeaderSection(terminator, body_start);
  }
  if (state_ == State::kBody) MaybeFinishBody();
  return state_;
}

void HttpRequestParser::ParseHeaderSection(size_t terminator,
                                           size_t body_start) {
  std::string_view head(buffer_.data(), terminator);

  // Request line.
  size_t line_end = head.find('\n');
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || line.find(' ', sp2 + 1) != std::string_view::npos) {
    Fail(400, "malformed request line");
    return;
  }
  request_.method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (target.empty() || target.front() != '/') {
    Fail(400, "malformed request target");
    return;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    Fail(400, "unsupported HTTP version");
    return;
  }
  request_.version = std::string(version);
  const size_t query = target.find('?');
  if (query == std::string_view::npos) {
    request_.path = std::string(target);
  } else {
    request_.path = std::string(target.substr(0, query));
    request_.query = std::string(target.substr(query + 1));
  }

  // Header lines.
  bool saw_content_length = false;
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 1;
  while (pos < head.size()) {
    size_t end = head.find('\n', pos);
    if (end == std::string_view::npos) end = head.size();
    std::string_view header_line = head.substr(pos, end - pos);
    pos = end + 1;
    if (!header_line.empty() && header_line.back() == '\r') {
      header_line.remove_suffix(1);
    }
    if (header_line.empty()) continue;
    const size_t colon = header_line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      Fail(400, "malformed header line");
      return;
    }
    std::string_view name = Trim(header_line.substr(0, colon));
    std::string_view value = Trim(header_line.substr(colon + 1));
    if (name.empty() || name.find(' ') != std::string_view::npos) {
      Fail(400, "malformed header name");
      return;
    }
    request_.headers.emplace_back(std::string(name), std::string(value));
    if (IEquals(name, "Content-Length")) {
      if (saw_content_length) {
        Fail(400, "duplicate Content-Length");
        return;
      }
      saw_content_length = true;
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string_view::npos) {
        Fail(400, "malformed Content-Length");
        return;
      }
      errno = 0;
      const unsigned long long parsed =
          std::strtoull(std::string(value).c_str(), nullptr, 10);
      if (errno == ERANGE || parsed > limits_.max_body_bytes) {
        Fail(413, "request body exceeds " +
                      std::to_string(limits_.max_body_bytes) + " bytes");
        return;
      }
      content_length_ = static_cast<size_t>(parsed);
    } else if (IEquals(name, "Transfer-Encoding")) {
      Fail(400, "transfer encodings not supported");
      return;
    }
  }

  request_.keep_alive = request_.version == "HTTP/1.1";
  if (const std::string* connection = request_.FindHeader("Connection")) {
    if (IEquals(*connection, "close")) request_.keep_alive = false;
    if (IEquals(*connection, "keep-alive")) request_.keep_alive = true;
  }

  buffer_.erase(0, body_start);
  state_ = State::kBody;
}

void HttpRequestParser::MaybeFinishBody() {
  if (buffer_.size() < content_length_) return;
  request_.body = buffer_.substr(0, content_length_);
  buffer_.erase(0, content_length_);
  state_ = State::kComplete;
}

HttpRequest HttpRequestParser::TakeRequest() {
  HttpRequest taken = std::move(request_);
  request_ = HttpRequest{};
  content_length_ = 0;
  state_ = State::kHeaders;
  // Re-run on retained bytes: a pipelined request may already be
  // complete in the buffer.
  if (!buffer_.empty()) {
    std::string retained;
    retained.swap(buffer_);
    Feed(retained);
  }
  return taken;
}

bool HttpServer::Start(const Options& options) {
  if (running()) {
    last_error_ = "server already running";
    return false;
  }
  options_ = options;
  if (options_.max_connections < 1) options_.max_connections = 1;
  if (options_.max_pending < 1) options_.max_pending = 1;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    last_error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) < 0) {
    last_error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options_.port;
  }
  // Register the http family so /metrics lists it from the first
  // scrape.
  Count("olapdc.http.requests", 0);
  Count("olapdc.http.bad_requests", 0);
  Count("olapdc.http.timeouts", 0);
  Count("olapdc.http.busy_rejects", 0);
  stop_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  busy_.store(0, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.max_connections));
  for (int i = 0; i < options_.max_connections; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return true;
}

void HttpServer::Stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void HttpServer::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

bool HttpServer::WaitDrained(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return drained_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              [this] {
                                return pending_.empty() &&
                                       busy_.load(std::memory_order_acquire) ==
                                           0;
                              });
}

void HttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop/drain
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    if (pending_.size() >= static_cast<size_t>(options_.max_pending)) {
      lock.unlock();
      Count("olapdc.http.busy_rejects");
      SendSimple(fd, 503, "busy\n");
      ::close(fd);
      continue;
    }
    pending_.push_back(fd);
    queue_cv_.notify_one();
  }
  // Drain or stop: refuse new connects at the kernel level.
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      fd = pending_.front();
      pending_.pop_front();
      busy_.fetch_add(1, std::memory_order_acq_rel);
    }
    ServeConnection(fd);
    ::close(fd);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_.fetch_sub(1, std::memory_order_acq_rel);
      if (pending_.empty() && busy_.load(std::memory_order_acquire) == 0) {
        drained_cv_.notify_all();
      }
    }
  }
}

void HttpServer::ServeConnection(int fd) {
  HttpRequestParser parser(
      HttpRequestParser::Limits{options_.max_header_bytes,
                                options_.max_body_bytes});
  char buf[4096];
  int served = 0;
  while (!stop_.load(std::memory_order_acquire) &&
         served < options_.max_requests_per_connection) {
    // Receive one full request within the read deadline. Poll slices
    // keep Stop() and drain prompt; the total deadline (not a
    // per-read idle timer) is what defeats a dribbling client.
    const int64_t deadline = NowMs() + options_.read_timeout_ms;
    bool timed_out = false;
    bool peer_closed = false;
    while (parser.state() == HttpRequestParser::State::kHeaders ||
           parser.state() == HttpRequestParser::State::kBody) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (draining_.load(std::memory_order_acquire) && !parser.mid_request()) {
        // Drain closes idle keep-alive connections (and queued
        // connections that never sent a byte) without waiting out the
        // read deadline.
        return;
      }
      const int64_t remaining = deadline - NowMs();
      if (remaining <= 0) {
        timed_out = true;
        break;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int ready = ::poll(
          &pfd, 1,
          remaining < kPollSliceMs ? static_cast<int>(remaining)
                                   : kPollSliceMs);
      if (ready <= 0) continue;
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        peer_closed = true;
        break;
      }
      parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }

    if (parser.state() == HttpRequestParser::State::kError) {
      Count("olapdc.http.bad_requests");
      SendSimple(fd, parser.error_status(), parser.error() + "\n");
      return;
    }
    if (timed_out) {
      // A connection that times out mid-request (slow loris) or
      // before its first request (connect-and-hold) is a hostile
      // reject; an idle wait on a reused keep-alive connection is a
      // routine expiry.
      if (parser.mid_request() || served == 0) {
        Count("olapdc.http.timeouts");
        Count("olapdc.http.bad_requests");
        SendSimple(fd, 408, "request timeout\n");
      }
      return;
    }
    if (peer_closed) {
      if (parser.mid_request()) {
        // Truncated request (e.g. a POST body shorter than its
        // Content-Length). The peer may have only half-closed, so
        // still try to answer.
        Count("olapdc.http.bad_requests");
        SendSimple(fd, 400, "truncated request\n");
      }
      return;
    }

    HttpRequest request = parser.TakeRequest();
    Count("olapdc.http.requests");
    HttpResponse response;
    if (options_.handler) {
      response = options_.handler(request);
    } else {
      response = HttpResponse{404, "text/plain; charset=utf-8", "not found\n",
                              {}};
    }
    ++served;
    const bool keep_alive = request.keep_alive &&
                            !draining_.load(std::memory_order_acquire) &&
                            !stop_.load(std::memory_order_acquire) &&
                            served < options_.max_requests_per_connection;

    std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                      HttpStatusText(response.status) + "\r\n";
    out += "Content-Type: " + response.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
    for (const auto& [name, value] : response.headers) {
      out += name + ": " + value + "\r\n";
    }
    out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                      : "Connection: close\r\n\r\n";
    out += response.body;
    if (!SendAll(fd, out)) return;
    if (!keep_alive) return;
  }
}

bool HttpServer::SendAll(int fd, std::string_view bytes) {
  const int64_t deadline = NowMs() + options_.write_timeout_ms;
  size_t sent = 0;
  while (sent < bytes.size()) {
    if (stop_.load(std::memory_order_acquire)) return false;
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) {
      Count("olapdc.http.timeouts");
      return false;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int ready = ::poll(
        &pfd, 1,
        remaining < kPollSliceMs ? static_cast<int>(remaining) : kPollSliceMs);
    if (ready <= 0) continue;
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void HttpServer::SendSimple(
    int fd, int status, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>* extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpStatusText(status) + "\r\n";
  out += "Content-Type: text/plain; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (extra_headers != nullptr) {
    for (const auto& [name, value] : *extra_headers) {
      out += name + ": " + value + "\r\n";
    }
  }
  out += "Connection: close\r\n\r\n";
  out += body;
  SendAll(fd, out);
}

}  // namespace obs
}  // namespace olapdc
