// TelemetryServer: the live exposition plane — serves the process
// observability state while a request is running, instead of only at
// exit:
//
//   /metrics  Prometheus text exposition of MetricsRegistry::Snapshot()
//   /varz     the same snapshot as the --metrics-json JSON schema
//   /healthz  200 "ok" / 503 "degraded" from the injected health probe
//   /tracez   recent completed spans (TraceSink ring) as JSON
//
// Scope: an operator/scrape endpoint, deliberately minimal — GET only,
// a tiny worker pool (a Prometheus scrape every 15s is the design
// load), bound to the loopback interface. The transport is the shared
// HttpServer, so even this scrape-only plane gets the hostile-peer
// bounds for free: a client that connects and sends nothing (or
// dribbles a byte at a time) is cut off by the read deadline, oversized
// or malformed requests are rejected 4xx, and every rejection counts
// olapdc.http.bad_requests.
//
// Layering: `src/obs` sits below `src/common`, so the server reports
// errors as bool + last_error() rather than Status, and the health
// state (AdmissionGate shedding, MemoryBudget quiescence — which live
// above) is injected as a callback built by the CLI/tests.
//
// Self-observation: every request counts olapdc.http.requests and
// scrapes record olapdc.http.scrape_latency_us.

#ifndef OLAPDC_OBS_TELEMETRY_SERVER_H_
#define OLAPDC_OBS_TELEMETRY_SERVER_H_

#include <functional>
#include <string>

#include "obs/http_server.h"

namespace olapdc {
namespace obs {

/// What /healthz reports. `ok == false` renders as 503 so a load
/// balancer or orchestrator stops routing to a shedding/exhausted
/// process; `detail` lines are appended to the body either way.
struct HealthReport {
  bool ok = true;
  std::string detail;
};

class TelemetryServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port
    /// (read it back with port() — tests and --serve-port=0 use this).
    int port = 0;
    /// Health probe for /healthz; null means unconditionally healthy.
    std::function<HealthReport()> health;
  };

  /// One pre-rendered HTTP response (Handle() is the transport-free
  /// core, exercised directly by unit tests).
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  TelemetryServer() = default;
  ~TelemetryServer() { Stop(); }
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds, listens, and starts the serving threads. Returns false
  /// with last_error() set when the socket setup fails (port in use,
  /// ...).
  bool Start(const Options& options);

  /// Stops the serving threads and closes the socket. Idempotent.
  void Stop();

  bool running() const { return server_.running(); }

  /// The bound port (the actual one when Options::port was 0), or 0
  /// when not running.
  int port() const { return server_.port(); }

  const std::string& last_error() const { return last_error_; }

  /// Routes one request path to its response (no socket involved).
  Response Handle(const std::string& path) const;

 private:
  Options options_;
  HttpServer server_;
  std::string last_error_;
};

}  // namespace obs
}  // namespace olapdc

#endif  // OLAPDC_OBS_TELEMETRY_SERVER_H_
