#include "obs/span.h"

#include <thread>

#include "obs/json.h"

namespace olapdc {
namespace obs {

namespace {

thread_local int tls_span_depth = 0;

/// Small stable per-thread id for span attribution (std::thread::id is
/// opaque and verbose in JSON).
int ThreadOrdinal() {
  static std::atomic<int> next{0};
  thread_local int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

bool TraceSink::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    enabled_.store(false, std::memory_order_relaxed);
    return false;
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void TraceSink::Close() {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

double TraceSink::NowUs() const {
  if (!enabled()) return 0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSink::EmitLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;  // closed between the check and the emit
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
}

ObsSpan::ObsSpan(std::string_view name)
    : active_(TraceSink::Global().enabled()) {
  if (!active_) return;
  name_ = std::string(name);
  depth_ = tls_span_depth++;
  start_us_ = TraceSink::Global().NowUs();
}

ObsSpan::~ObsSpan() {
  if (!active_) return;
  --tls_span_depth;
  TraceSink& sink = TraceSink::Global();
  const double end_us = sink.NowUs();
  std::string line = "{\"name\": " + JsonString(name_) +
                     ", \"thread\": " + std::to_string(ThreadOrdinal()) +
                     ", \"depth\": " + std::to_string(depth_) +
                     ", \"start_us\": " + JsonNumber(start_us_) +
                     ", \"dur_us\": " + JsonNumber(end_us - start_us_);
  if (!stats_.empty()) {
    line += ", \"stats\": {";
    bool first = true;
    for (const auto& [key, value] : stats_) {
      if (!first) line += ", ";
      first = false;
      line += JsonString(key) + ": " + value;
    }
    line += "}";
  }
  line += "}";
  sink.EmitLine(line);
}

void ObsSpan::AddStat(std::string_view key, uint64_t value) {
  if (active_) stats_.emplace_back(std::string(key), std::to_string(value));
}

void ObsSpan::AddStat(std::string_view key, int64_t value) {
  if (active_) stats_.emplace_back(std::string(key), std::to_string(value));
}

void ObsSpan::AddStat(std::string_view key, double value) {
  if (active_) stats_.emplace_back(std::string(key), JsonNumber(value));
}

void ObsSpan::AddStat(std::string_view key, std::string_view value) {
  if (active_) stats_.emplace_back(std::string(key), JsonString(value));
}

void ObsSpan::AddStat(std::string_view key, bool value) {
  if (active_) {
    stats_.emplace_back(std::string(key), value ? "true" : "false");
  }
}

}  // namespace obs
}  // namespace olapdc
