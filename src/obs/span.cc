#include "obs/span.h"

#include <thread>

#include "obs/json.h"

namespace olapdc {
namespace obs {

namespace {

/// The thread's current span-parentage context. Spans install/restore
/// it RAII-style; the execution layer overwrites it for the duration of
/// a task with the context captured at spawn (ScopedTraceContext), so
/// parentage follows the logical strand of work, not the OS thread.
thread_local TraceContext tls_context;

/// Small stable per-thread id for span attribution (std::thread::id is
/// opaque and verbose in JSON).
int ThreadOrdinal() {
  static std::atomic<int> next{0};
  thread_local int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceContext CurrentTraceContext() { return tls_context; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : saved_(tls_context) {
  tls_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { tls_context = saved_; }

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

bool TraceSink::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    enabled_.store(ring_capacity_ > 0, std::memory_order_relaxed);
    return false;
  }
  if (!have_epoch_) {
    epoch_ = std::chrono::steady_clock::now();
    have_epoch_ = true;
  }
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void TraceSink::EnableRing(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = capacity;
  while (ring_.size() > ring_capacity_) ring_.pop_front();
  if (capacity > 0 && !have_epoch_) {
    epoch_ = std::chrono::steady_clock::now();
    have_epoch_ = true;
  }
  enabled_.store(file_ != nullptr || ring_capacity_ > 0,
                 std::memory_order_relaxed);
}

std::vector<std::string> TraceSink::RecentLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(ring_.begin(), ring_.end());
}

void TraceSink::Close() {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  ring_capacity_ = 0;
  ring_.clear();
  have_epoch_ = false;
}

double TraceSink::NowUs() const {
  if (!enabled()) return 0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSink::EmitLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fputs(line.c_str(), file_);
    std::fputc('\n', file_);
  }
  if (ring_capacity_ > 0) {
    ring_.push_back(line);
    while (ring_.size() > ring_capacity_) ring_.pop_front();
  }
}

ObsSpan::ObsSpan(std::string_view name)
    : active_(TraceSink::Global().enabled()) {
  if (!active_) return;
  name_ = std::string(name);
  saved_context_ = tls_context;
  parent_ = saved_context_.span_id;
  depth_ = saved_context_.depth;
  id_ = NextSpanId();
  tls_context = TraceContext{id_, depth_ + 1};
  start_us_ = TraceSink::Global().NowUs();
}

ObsSpan::~ObsSpan() {
  if (!active_) return;
  tls_context = saved_context_;
  TraceSink& sink = TraceSink::Global();
  const double end_us = sink.NowUs();
  std::string line = "{\"name\": " + JsonString(name_) +
                     ", \"id\": " + std::to_string(id_) +
                     ", \"parent\": " + std::to_string(parent_) +
                     ", \"thread\": " + std::to_string(ThreadOrdinal()) +
                     ", \"depth\": " + std::to_string(depth_) +
                     ", \"start_us\": " + JsonNumber(start_us_) +
                     ", \"dur_us\": " + JsonNumber(end_us - start_us_);
  if (!stats_.empty()) {
    line += ", \"stats\": {";
    bool first = true;
    for (const auto& [key, value] : stats_) {
      if (!first) line += ", ";
      first = false;
      line += JsonString(key) + ": " + value;
    }
    line += "}";
  }
  line += "}";
  sink.EmitLine(line);
}

void ObsSpan::AddStat(std::string_view key, uint64_t value) {
  if (active_) stats_.emplace_back(std::string(key), std::to_string(value));
}

void ObsSpan::AddStat(std::string_view key, int64_t value) {
  if (active_) stats_.emplace_back(std::string(key), std::to_string(value));
}

void ObsSpan::AddStat(std::string_view key, double value) {
  if (active_) stats_.emplace_back(std::string(key), JsonNumber(value));
}

void ObsSpan::AddStat(std::string_view key, std::string_view value) {
  if (active_) stats_.emplace_back(std::string(key), JsonString(value));
}

void ObsSpan::AddStat(std::string_view key, bool value) {
  if (active_) {
    stats_.emplace_back(std::string(key), value ? "true" : "false");
  }
}

}  // namespace obs
}  // namespace olapdc
