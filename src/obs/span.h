// ObsSpan: structured trace spans for the search procedures.
//
// A span brackets one logical operation (a DIMSAT run, a Reasoner
// query, a parse) and records its wall-clock extent, its nesting depth
// within the thread (a Reasoner query *contains* the DIMSAT runs of its
// ladder rungs), and a small set of key/value stats attached by the
// operation (expand calls, cache hit, root category, ...). Completed
// spans are appended to the global TraceSink as one JSON object per
// line (JSONL) — the `--trace=<path>` CLI output — so search behavior
// can be replayed and diffed offline without a tracing dependency.
//
// Cost model: when the sink is closed (the default) constructing a span
// is one relaxed atomic load and a branch; no clock is sampled and
// AddStat() is a no-op. Spans are stack-only RAII values; nesting depth
// is tracked per thread.

#ifndef OLAPDC_OBS_SPAN_H_
#define OLAPDC_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace olapdc {
namespace obs {

/// The process-wide JSONL span writer. Thread-safe: spans from
/// concurrent threads interleave at line granularity.
class TraceSink {
 public:
  static TraceSink& Global();

  /// Starts writing spans to `path` (truncates). Returns false when the
  /// file cannot be opened. Timestamps are relative to this call.
  bool Open(const std::string& path);

  /// Flushes and stops. Idempotent.
  void Close();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since Open() (0 when closed).
  double NowUs() const;

  /// Appends one pre-rendered JSONL line (no trailing newline).
  void EmitLine(const std::string& line);

 private:
  TraceSink() = default;

  std::atomic<bool> enabled_{false};
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
};

class ObsSpan {
 public:
  /// Opens a span named `name` (use the metric naming scheme, e.g.
  /// "dimsat.run"). Inactive — free of clock samples — when the global
  /// sink is closed.
  explicit ObsSpan(std::string_view name);

  /// Closing emits the span to the sink.
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Attaches a key/value stat rendered into the span's "stats" object.
  void AddStat(std::string_view key, uint64_t value);
  void AddStat(std::string_view key, int64_t value);
  void AddStat(std::string_view key, int value) {
    AddStat(key, static_cast<int64_t>(value));
  }
  void AddStat(std::string_view key, double value);
  void AddStat(std::string_view key, std::string_view value);
  /// Without this overload a string literal would bind to `bool` via
  /// the pointer conversion instead of to string_view.
  void AddStat(std::string_view key, const char* value) {
    AddStat(key, std::string_view(value));
  }
  void AddStat(std::string_view key, bool value);

  bool active() const { return active_; }
  /// Nesting depth within this thread (0 = outermost), fixed at open.
  int depth() const { return depth_; }

 private:
  bool active_;
  int depth_ = 0;
  double start_us_ = 0;
  std::string name_;
  /// Values pre-rendered as JSON (numbers bare, strings quoted).
  std::vector<std::pair<std::string, std::string>> stats_;
};

}  // namespace obs
}  // namespace olapdc

#endif  // OLAPDC_OBS_SPAN_H_
