// ObsSpan: structured trace spans for the search procedures.
//
// A span brackets one logical operation (a DIMSAT run, a Reasoner
// query, a parse) and records its wall-clock extent, its process-unique
// id, its parent span, its nesting depth (a Reasoner query *contains*
// the DIMSAT runs of its ladder rungs), and a small set of key/value
// stats attached by the operation (expand calls, cache hit, root
// category, ...). Completed spans are appended to the global TraceSink
// as one JSON object per line (JSONL) — the `--trace=<path>` CLI output
// — so search behavior can be replayed and diffed offline without a
// tracing dependency. `tools/trace2perfetto` converts the stream to
// Chrome trace_event JSON loadable in Perfetto.
//
// Parentage is carried by an explicit TraceContext, not by the thread:
// the current context (innermost open span id + child depth) lives in a
// thread-local slot that a span installs on open and restores on close,
// and that the execution layer captures at task-spawn and reinstalls on
// the executing worker (TaskGroup::Spawn / WorkStealingPool::Execute).
// A naive per-thread nesting stack lies as soon as the work-stealing
// pool migrates a task: the child span would open at depth 0 on the
// thief with no parent. With explicit propagation, span parentage is
// identical whether or not the task was stolen — pinned by the
// forced-steal regression tests in tests/exec_test.cc.
//
// Cost model: when the sink is closed (the default) constructing a span
// is one relaxed atomic load and a branch; no clock is sampled and
// AddStat() is a no-op. Spans are stack-only RAII values.

#ifndef OLAPDC_OBS_SPAN_H_
#define OLAPDC_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace olapdc {
namespace obs {

/// The span-parentage context of one logical strand of work: the id of
/// the innermost open span (0 = none) and the nesting depth a child
/// span opened under it would have. Trivially copyable so task spawns
/// can capture it by value.
struct TraceContext {
  uint64_t span_id = 0;
  int depth = 0;
};

/// The calling thread's current context (what a span opened right now
/// would use as its parent). Cheap: two thread-local word loads.
TraceContext CurrentTraceContext();

/// Installs `context` as the calling thread's current context for the
/// scope's lifetime and restores the previous one on destruction. The
/// execution layer wraps every task invocation in one of these so span
/// parentage survives work-stealing migration; restores of a non-empty
/// context are counted under olapdc.exec.ctx_restores by the caller.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// The process-wide JSONL span writer. Thread-safe: spans from
/// concurrent threads interleave at line granularity. Two independent
/// outputs share one stream: a file opened with Open() (the `--trace`
/// CLI flag) and a bounded in-memory ring of recent lines
/// (EnableRing()) that the telemetry server's /tracez endpoint lists.
/// Spans are recorded whenever either output is active.
class TraceSink {
 public:
  static TraceSink& Global();

  /// Starts writing spans to `path` (truncates). Returns false when the
  /// file cannot be opened. Timestamps are relative to the first
  /// enabling call (Open or EnableRing).
  bool Open(const std::string& path);

  /// Keeps the most recent `capacity` span lines in memory for the
  /// /tracez endpoint. capacity == 0 turns the ring off.
  void EnableRing(size_t capacity);

  /// The most recent span lines, oldest first.
  std::vector<std::string> RecentLines() const;

  /// Flushes and stops both outputs; the ring contents are discarded.
  /// Idempotent.
  void Close();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the sink was first enabled (0 when closed).
  double NowUs() const;

  /// Appends one pre-rendered JSONL line (no trailing newline).
  void EmitLine(const std::string& line);

 private:
  TraceSink() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  size_t ring_capacity_ = 0;
  std::deque<std::string> ring_;
  bool have_epoch_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

class ObsSpan {
 public:
  /// Opens a span named `name` (use the metric naming scheme, e.g.
  /// "dimsat.run"). Inactive — free of clock samples — when the global
  /// sink is closed. An active span parents to the thread's current
  /// TraceContext and installs itself as the context for its scope.
  explicit ObsSpan(std::string_view name);

  /// Closing emits the span to the sink and restores the parent
  /// context.
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Attaches a key/value stat rendered into the span's "stats" object.
  void AddStat(std::string_view key, uint64_t value);
  void AddStat(std::string_view key, int64_t value);
  void AddStat(std::string_view key, int value) {
    AddStat(key, static_cast<int64_t>(value));
  }
  void AddStat(std::string_view key, double value);
  void AddStat(std::string_view key, std::string_view value);
  /// Without this overload a string literal would bind to `bool` via
  /// the pointer conversion instead of to string_view.
  void AddStat(std::string_view key, const char* value) {
    AddStat(key, std::string_view(value));
  }
  void AddStat(std::string_view key, bool value);

  bool active() const { return active_; }
  /// Process-unique span id (0 when inactive).
  uint64_t id() const { return id_; }
  /// Id of the enclosing span in this strand of work (0 = root).
  uint64_t parent() const { return parent_; }
  /// Nesting depth within the strand (0 = outermost), fixed at open.
  /// Follows the TraceContext, so it is steal-safe.
  int depth() const { return depth_; }

 private:
  bool active_;
  int depth_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  double start_us_ = 0;
  TraceContext saved_context_;
  std::string name_;
  /// Values pre-rendered as JSON (numbers bare, strings quoted).
  std::vector<std::pair<std::string, std::string>> stats_;
};

}  // namespace obs
}  // namespace olapdc

#endif  // OLAPDC_OBS_SPAN_H_
