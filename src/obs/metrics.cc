#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace olapdc {
namespace obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  // The thread_local shared_ptr keeps the shard alive past Reset();
  // the registry's copy keeps the data visible after the thread exits.
  thread_local std::shared_ptr<Shard> local;
  if (local == nullptr) {
    local = std::make_shared<Shard>();
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(local);
  }
  return *local;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::shared_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->counters.clear();
    shard->histograms.clear();
  }
  gauges_.clear();
}

void MetricsRegistry::AddCounter(std::string_view name, uint64_t delta) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.counters[std::string(name)] += delta;
}

void MetricsRegistry::SetGauge(std::string_view name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[std::string(name)] = value;
}

void MetricsRegistry::RecordLatencyUs(std::string_view name, double us) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  Histogram& h = shard.histograms[std::string(name)];
  ++h.count;
  h.sum_us += us;
  size_t bucket = 0;
  while (bucket < kLatencyBucketBoundsUs.size() &&
         us > kLatencyBucketBoundsUs[bucket]) {
    ++bucket;
  }
  ++h.buckets[bucket];
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.gauges = gauges_;
  for (const std::shared_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [name, value] : shard->counters) {
      snapshot.counters[name] += value;
    }
    for (const auto& [name, h] : shard->histograms) {
      HistogramSnapshot& merged = snapshot.histograms[name];
      merged.count += h.count;
      merged.sum_us += h.sum_us;
      for (size_t i = 0; i < kNumLatencyBuckets; ++i) {
        merged.buckets[i] += h.buckets[i];
      }
    }
  }
  return snapshot;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(name) + ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(name) + ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(name) + ": {\"count\": " +
           std::to_string(h.count) + ", \"sum_us\": " + JsonNumber(h.sum_us) +
           ", \"buckets\": [";
    for (size_t i = 0; i < kNumLatencyBuckets; ++i) {
      if (i > 0) out += ", ";
      out += "{\"le_us\": ";
      out += i < kLatencyBucketBoundsUs.size()
                 ? JsonNumber(kLatencyBucketBoundsUs[i])
                 : "\"inf\"";
      out += ", \"count\": " + std::to_string(h.buckets[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace olapdc
