// SearchTreeRecorder: the DIMSAT explain/profile event stream.
//
// Under `--explain` the search records every EXPAND decision — node
// entry/exit, each successor edge a prune rule (into / Ss shortcut /
// Sc cycle) blocked, dead ends, CHECK verdicts, and budget stops —
// with its recursion depth, the candidate edge, and the budget state
// (expand calls so far). Two renderers turn the drained stream into a
// human-readable explain report (every prune-rule firing named with
// its depth — the Figure 7 walkthrough, live) and Chrome trace_event
// JSON loadable in Perfetto (EXPAND nesting as B/E duration events,
// prunes as instants).
//
// Recording follows the MetricsRegistry pattern: a relaxed atomic
// enabled gate (one load + branch when off — the search additionally
// caches the pointer per run, so the disabled path is free), and
// bounded per-thread ring shards so parallel workers never contend.
// When a shard's ring is full the *oldest* events are dropped and
// counted; Drain() merges all shards in the global decision order (a
// process-wide sequence number) and publishes olapdc.explain.events /
// olapdc.explain.dropped.
//
// `src/obs` sits below `src/core`, so events carry raw category ids
// and the renderers take a name-resolver callback supplied by the
// caller (the CLI passes HierarchySchema::CategoryName).

#ifndef OLAPDC_OBS_SEARCH_TREE_H_
#define OLAPDC_OBS_SEARCH_TREE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace olapdc {
namespace obs {

/// One recorded search-tree decision.
struct ExplainEvent {
  enum class Kind : uint8_t {
    kExpandBegin,    // EXPAND picked `category` at `depth`
    kExpandEnd,      // that node finished (all successor subsets done)
    kPruneInto,      // into rule: edge_from -> edge_to blocked => branch cut
    kPruneShortcut,  // Ss: edge_from -> edge_to would complete a shortcut
    kPruneCycle,     // Sc: edge_from -> edge_to would close a cycle
    kDeadEnd,        // no structurally allowed successor remained
    kCheckOk,        // CHECK found `aux` frozen dimensions
    kCheckFail,      // CHECK rejected the completed subhierarchy
    kBudgetStop,     // the budget probe stopped the search at this node
  };

  Kind kind;
  int depth = 0;
  /// The expanded category (kExpandBegin/End, kPruneInto, kDeadEnd) or
  /// -1 when the node had no pending category (CHECK events).
  int category = -1;
  /// The candidate edge a prune rule blocked; -1/-1 otherwise.
  int edge_from = -1;
  int edge_to = -1;
  /// Budget state: expand calls so far at the event — except kCheckOk,
  /// where it is the number of frozen dimensions found.
  uint64_t aux = 0;
  /// Microseconds since the recorder was enabled.
  double ts_us = 0;
  /// Recording thread ordinal (Perfetto track id).
  int thread = 0;
  /// Process-wide decision order (Drain() sorts by it).
  uint64_t seq = 0;
};

const char* ExplainKindName(ExplainEvent::Kind kind);

class SearchTreeRecorder {
 public:
  static SearchTreeRecorder& Global();

  /// Starts recording with a bounded ring of `per_thread_capacity`
  /// events per recording thread (oldest dropped + counted when full).
  /// Resets previously recorded events and the dropped counter.
  void Enable(size_t per_thread_capacity = 1 << 16);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one event (stamps ts_us/thread/seq). Callers cache
  /// enabled() per run; calling while disabled is a silent no-op.
  void Record(ExplainEvent event);

  /// Merges every shard's events in decision (seq) order, clears the
  /// shards, and publishes olapdc.explain.events / .dropped into the
  /// metrics registry. The recorder stays enabled.
  std::vector<ExplainEvent> Drain();

  /// Events dropped to ring bounds since Enable().
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    std::mutex mu;
    size_t capacity = 0;
    std::deque<ExplainEvent> ring;
  };

  SearchTreeRecorder() = default;
  Shard& LocalShard();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> dropped_{0};
  /// steady_clock rep of Enable() time, atomic so the Record hot path
  /// stamps timestamps without touching the registry mutex.
  std::atomic<int64_t> epoch_ns_{0};
  mutable std::mutex mu_;  // guards shards_ (the vector) and capacity_
  std::vector<std::shared_ptr<Shard>> shards_;
  size_t capacity_ = 0;
};

/// Renders the drained stream as the human-readable explain report:
/// one line per decision, indented by depth, every prune-rule firing
/// named. `category_name` maps a category id to its display name
/// (ids render as "#<id>" when null).
std::string RenderExplainReport(
    const std::vector<ExplainEvent>& events,
    const std::function<std::string(int)>& category_name);

/// Renders the drained stream as Chrome trace_event JSON
/// ({"traceEvents": [...]}): EXPAND nodes as B/E duration events per
/// recording thread, prunes/checks/stops as instants. Load the output
/// in Perfetto (ui.perfetto.dev) for a flame graph of the search.
std::string RenderChromeTrace(
    const std::vector<ExplainEvent>& events,
    const std::function<std::string(int)>& category_name);

}  // namespace obs
}  // namespace olapdc

#endif  // OLAPDC_OBS_SEARCH_TREE_H_
