#include "obs/telemetry_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/span.h"

namespace olapdc {
namespace obs {

namespace {

constexpr int kPollTimeoutMs = 100;
/// Request cap: a GET line plus headers; anything larger is a client
/// error for this endpoint.
constexpr size_t kMaxRequestBytes = 16 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

}  // namespace

bool TelemetryServer::Start(const Options& options) {
  if (running()) {
    last_error_ = "server already running";
    return false;
  }
  options_ = options;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    last_error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) < 0) {
    last_error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options.port;
  }
  // Register the inventory so /metrics lists the http family from the
  // first scrape, not the second.
  Count("olapdc.http.requests", 0);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void TelemetryServer::Stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void TelemetryServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void TelemetryServer::HandleConnection(int fd) {
  const auto start = std::chrono::steady_clock::now();
  // Read until the header terminator (GET requests have no body).
  std::string request;
  char buf[4096];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  Response response;
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = Response{400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, sp1) != "GET") {
    response =
        Response{405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    response = Handle(path);
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }

  Count("olapdc.http.requests");
  LatencyUs("olapdc.http.scrape_latency_us",
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count());
}

TelemetryServer::Response TelemetryServer::Handle(
    const std::string& path) const {
  if (path == "/metrics") {
    return Response{
        200, "text/plain; version=0.0.4; charset=utf-8",
        RenderPrometheusText(MetricsRegistry::Global().Snapshot())};
  }
  if (path == "/varz") {
    return Response{200, "application/json",
                    MetricsRegistry::Global().ToJson() + "\n"};
  }
  if (path == "/healthz") {
    HealthReport report;
    if (options_.health) report = options_.health();
    std::string body = report.ok ? "ok\n" : "degraded\n";
    if (!report.detail.empty()) body += report.detail;
    return Response{report.ok ? 200 : 503, "text/plain; charset=utf-8",
                    std::move(body)};
  }
  if (path == "/tracez") {
    std::string body = "{\"spans\": [";
    bool first = true;
    for (const std::string& line : TraceSink::Global().RecentLines()) {
      if (!first) body += ",\n";
      first = false;
      body += line;
    }
    body += "]}\n";
    return Response{200, "application/json", std::move(body)};
  }
  if (path == "/" || path.empty()) {
    return Response{200, "text/plain; charset=utf-8",
                    "olapdc telemetry: /metrics /varz /healthz /tracez\n"};
  }
  return Response{404, "text/plain; charset=utf-8", "not found\n"};
}

}  // namespace obs
}  // namespace olapdc
