#include "obs/telemetry_server.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/span.h"

namespace olapdc {
namespace obs {

namespace {

/// Scrape-plane bounds, deliberately tighter than the request plane:
/// a scrape is one small GET, so anyone sending kilobytes of body or
/// taking seconds to finish a request line is not a scraper.
constexpr int kScrapeWorkers = 2;
constexpr size_t kMaxRequestBytes = 16 * 1024;
constexpr size_t kMaxBodyBytes = 4 * 1024;
constexpr int kReadTimeoutMs = 2000;
constexpr int kWriteTimeoutMs = 5000;

}  // namespace

bool TelemetryServer::Start(const Options& options) {
  if (server_.running()) {
    last_error_ = "server already running";
    return false;
  }
  options_ = options;
  HttpServer::Options server_options;
  server_options.port = options.port;
  server_options.max_connections = kScrapeWorkers;
  server_options.max_header_bytes = kMaxRequestBytes;
  server_options.max_body_bytes = kMaxBodyBytes;
  server_options.read_timeout_ms = kReadTimeoutMs;
  server_options.write_timeout_ms = kWriteTimeoutMs;
  server_options.handler = [this](const HttpRequest& request) {
    const auto start = std::chrono::steady_clock::now();
    HttpResponse out;
    if (request.method != "GET") {
      out = HttpResponse{405, "text/plain; charset=utf-8",
                         "method not allowed\n", {}};
    } else {
      Response response = Handle(request.path);
      out = HttpResponse{response.status, std::move(response.content_type),
                         std::move(response.body), {}};
    }
    LatencyUs("olapdc.http.scrape_latency_us",
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count());
    return out;
  };
  if (!server_.Start(server_options)) {
    last_error_ = server_.last_error();
    return false;
  }
  return true;
}

void TelemetryServer::Stop() { server_.Stop(); }

TelemetryServer::Response TelemetryServer::Handle(
    const std::string& path) const {
  if (path == "/metrics") {
    return Response{
        200, "text/plain; version=0.0.4; charset=utf-8",
        RenderPrometheusText(MetricsRegistry::Global().Snapshot())};
  }
  if (path == "/varz") {
    return Response{200, "application/json",
                    MetricsRegistry::Global().ToJson() + "\n"};
  }
  if (path == "/healthz") {
    HealthReport report;
    if (options_.health) report = options_.health();
    std::string body = report.ok ? "ok\n" : "degraded\n";
    if (!report.detail.empty()) body += report.detail;
    return Response{report.ok ? 200 : 503, "text/plain; charset=utf-8",
                    std::move(body)};
  }
  if (path == "/tracez") {
    std::string body = "{\"spans\": [";
    bool first = true;
    for (const std::string& line : TraceSink::Global().RecentLines()) {
      if (!first) body += ",\n";
      first = false;
      body += line;
    }
    body += "]}\n";
    return Response{200, "application/json", std::move(body)};
  }
  if (path == "/" || path.empty()) {
    return Response{200, "text/plain; charset=utf-8",
                    "olapdc telemetry: /metrics /varz /healthz /tracez\n"};
  }
  return Response{404, "text/plain; charset=utf-8", "not found\n"};
}

}  // namespace obs
}  // namespace olapdc
