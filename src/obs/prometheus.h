// Prometheus text-exposition rendering of a MetricsSnapshot.
//
// The telemetry server's /metrics endpoint serves this format
// (https://prometheus.io/docs/instrumenting/exposition_formats/,
// version 0.0.4) so any stock Prometheus scraper can pull the live
// registry without an SDK. The mapping from the internal inventory is
// 1:1 and lossless in the name: every character outside
// [a-zA-Z0-9_:] becomes '_', so `olapdc.dimsat.expand_calls` exposes
// as `olapdc_dimsat_expand_calls`. Latency histograms (internal names
// ending `_us`) render as Prometheus histograms with *cumulative*
// `_bucket{le="..."}` series ending at `le="+Inf"`, plus `_sum` and
// `_count`; the unit stays microseconds, as the `_us` suffix says.
//
// Unlike JSON (see JsonNumber), Prometheus text can represent
// non-finite values — they render as NaN / +Inf / -Inf rather than
// being masked.

#ifndef OLAPDC_OBS_PROMETHEUS_H_
#define OLAPDC_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace olapdc {
namespace obs {

/// Maps an internal metric name to a valid Prometheus metric name:
/// every character outside [a-zA-Z0-9_:] becomes '_', and a leading
/// digit is prefixed with '_'.
std::string PrometheusName(std::string_view name);

/// Escapes a label value for inclusion inside `label="..."`:
/// backslash, double-quote, and newline get backslash-escaped.
std::string PrometheusLabelEscape(std::string_view value);

/// Renders a value the way Prometheus text exposition expects:
/// shortest round-tripping decimal for finite doubles, `NaN`, `+Inf`,
/// or `-Inf` otherwise.
std::string PrometheusValue(double value);

/// Renders the full snapshot as Prometheus text exposition format
/// (one `# TYPE` line per metric family; counters, gauges, then
/// histograms; deterministic order because the snapshot maps are
/// ordered). The result ends with a newline.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace olapdc

#endif  // OLAPDC_OBS_PROMETHEUS_H_
