// HttpServer: the shared HTTP/1.1 transport under both planes — the
// scrape-only TelemetryServer and the request plane (src/service).
// Still dependency-free (POSIX sockets + poll), still loopback-only,
// but generalized from "one GET at a time" to what a resident daemon
// needs:
//
//   - method routing and POST bodies (Content-Length framed);
//   - concurrent connections via a fixed worker pool; when every
//     worker is busy and the hand-off queue is full, the connection is
//     rejected with 503 instead of queuing to death;
//   - hostile-peer bounds on every read: a total-bytes header cap
//     (431), a body cap (413), and a per-request deadline enforced by
//     poll slices (408) so a slow-loris or silent client cannot wedge
//     a serving thread;
//   - keep-alive with pipelining (bounded requests per connection);
//   - graceful drain: BeginDrain() stops accepting and closes each
//     keep-alive connection after its current request; WaitDrained()
//     blocks until the workers go idle.
//
// Layering: `src/obs` sits below `src/common`, so errors are reported
// as bool + last_error() rather than Status, and anything above the
// transport (admission, budgets, JSON) lives in the injected handler.
//
// Self-observation: olapdc.http.requests, olapdc.http.bad_requests,
// olapdc.http.timeouts, olapdc.http.busy_rejects.

#ifndef OLAPDC_OBS_HTTP_SERVER_H_
#define OLAPDC_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace olapdc {
namespace obs {

/// One parsed request as the handler sees it.
struct HttpRequest {
  std::string method;
  /// Path with the query string already split off ("/v1/check").
  std::string path;
  /// Query string without the '?' (empty when absent).
  std::string query;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// What the framing implies (HTTP/1.1 default, Connection header
  /// honored); the server may still close earlier (drain, caps).
  bool keep_alive = false;

  /// Case-insensitive header lookup; null when absent.
  const std::string* FindHeader(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. Retry-After); Content-Type/Length
  /// and Connection are emitted by the server.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Standard reason phrase for the handful of statuses we emit.
const char* HttpStatusText(int status);

/// Incremental HTTP/1.1 request parser, transport-free so the hostile
/// framing edges (truncation, pipelining, cap overflows) are unit
/// testable without sockets. Feed() consumes bytes as they arrive;
/// after a complete request is taken, leftover bytes of the next
/// pipelined request are retained.
class HttpRequestParser {
 public:
  struct Limits {
    /// Cap on the request line + headers, terminator included.
    size_t max_header_bytes = 16 * 1024;
    /// Cap on the declared Content-Length.
    size_t max_body_bytes = 1 << 20;
  };

  enum class State { kHeaders, kBody, kComplete, kError };

  HttpRequestParser() = default;
  explicit HttpRequestParser(const Limits& limits) : limits_(limits) {}

  /// Appends bytes and advances the state machine.
  State Feed(std::string_view bytes);

  State state() const { return state_; }

  /// Precondition: state() == kComplete. Returns the parsed request
  /// and resets to kHeaders for the next pipelined request; bytes
  /// already received past this request are re-fed automatically.
  HttpRequest TakeRequest();

  /// Precondition: state() == kError. The 4xx to answer with
  /// (400 malformed, 413 body too large, 431 headers too large) and a
  /// one-line reason.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// True when bytes were fed since construction / the last take (a
  /// timeout with nothing buffered is an idle keep-alive close, not a
  /// client error).
  bool mid_request() const {
    return !buffer_.empty() || state_ == State::kBody;
  }

 private:
  void Fail(int status, std::string message);
  void ParseHeaderSection(size_t terminator, size_t body_start);
  void MaybeFinishBody();

  Limits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;
  HttpRequest request_;
  size_t content_length_ = 0;
  int error_status_ = 0;
  std::string error_;
};

class HttpServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port.
    int port = 0;
    /// Worker pool size == concurrently served connections.
    int max_connections = 4;
    /// Accepted-but-unclaimed connections beyond this are answered
    /// 503 and closed (counted olapdc.http.busy_rejects).
    int max_pending = 16;
    size_t max_header_bytes = 16 * 1024;
    size_t max_body_bytes = 1 << 20;
    /// Total wall-clock allowance to receive one full request /
    /// write one full response; enforced in poll slices so Stop()
    /// stays prompt.
    int read_timeout_ms = 5000;
    int write_timeout_ms = 5000;
    /// Keep-alive bound: the connection is closed after this many
    /// requests even if the client asks to keep it open.
    int max_requests_per_connection = 100;
    /// Request handler, called from worker threads (must be
    /// thread-safe). Null answers 404 everywhere.
    std::function<HttpResponse(const HttpRequest&)> handler;
  };

  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept + worker threads. Returns
  /// false with last_error() set when socket setup fails.
  bool Start(const Options& options);

  /// Stops accepting, abandons queued connections, joins all threads.
  /// Idempotent.
  void Stop();

  /// Graceful-drain entry: close the listening socket (new connects
  /// are refused) and finish at most the current request on each live
  /// connection. Does not block.
  void BeginDrain();

  /// Blocks until every worker is idle and the queue is empty, or the
  /// timeout elapses. Returns true when drained.
  bool WaitDrained(int timeout_ms);

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// The bound port (the actual one when Options::port was 0), or 0
  /// when not running.
  int port() const { return port_; }

  const std::string& last_error() const { return last_error_; }

  /// Requests currently being served (for health probes).
  int busy_connections() const {
    return busy_.load(std::memory_order_acquire);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  bool SendAll(int fd, std::string_view bytes);
  void SendSimple(int fd, int status, const std::string& body,
                  const std::vector<std::pair<std::string, std::string>>*
                      extra_headers = nullptr);

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string last_error_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> busy_{0};

  std::mutex mutex_;
  std::condition_variable queue_cv_;    // workers wait for fds
  std::condition_variable drained_cv_;  // WaitDrained waits for idle
  std::deque<int> pending_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace obs
}  // namespace olapdc

#endif  // OLAPDC_OBS_HTTP_SERVER_H_
