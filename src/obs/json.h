// Minimal JSON rendering helpers shared by the observability layer
// (metrics snapshots, trace spans) and the bench reporters. This is a
// *writer* only — olapdc never parses JSON — and deliberately tiny so
// `src/obs` stays dependency-free (it sits below `src/common` in the
// layering: common's Budget/FaultInjector count into the registry).

#ifndef OLAPDC_OBS_JSON_H_
#define OLAPDC_OBS_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace olapdc {
namespace obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// added). Control characters become \u00XX.
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `"escaped"` — a complete JSON string literal.
inline std::string JsonString(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

/// Renders a double with enough precision to round-trip, using "%g" so
/// integral values stay readable ("12" not "12.000000"). NaN/inf are
/// not representable in JSON; rendering them as a fake finite value
/// would mask a poisoned histogram, so they render as `null` and count
/// under olapdc.obs.json_nonfinite.
inline std::string JsonNumber(double value) {
  if (!(value == value) || value > 1.7e308 || value < -1.7e308) {
    Count("olapdc.obs.json_nonfinite");
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest %g that still reads back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) return shorter;
  }
  return buf;
}

}  // namespace obs
}  // namespace olapdc

#endif  // OLAPDC_OBS_JSON_H_
