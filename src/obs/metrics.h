// MetricsRegistry: the process-wide observability substrate — named
// counters, gauges, and fixed-bucket latency histograms.
//
// DIMSAT's worst case is exponential (Proposition 4), so "where did the
// search effort go" is a first-class production question: node
// expansions, per-rule pruning hits, cache hits, budget expiries and
// injected faults are all counted here under the `olapdc.<subsystem>.
// <name>` naming scheme (inventory: docs/observability.md).
//
// Design constraints, in order:
//  1. Near-zero cost when disabled (the default). Every recording
//     entry point first tests one relaxed atomic bool and returns; the
//     hot decision procedures additionally batch their per-run
//     statistics into a single flush instead of counting per node.
//  2. Thread-safe without cross-thread contention when enabled.
//     Counters and histograms live in per-thread shards (registered
//     once per thread under the registry mutex; incremented under the
//     shard's own uncontended mutex, which also keeps TSan happy).
//     Snapshot() merges all shards. Gauges are last-write-wins and
//     rare, so they live registry-global.
//  3. No dependencies: `src/obs` sits *below* `src/common`, so the
//     Budget checker and the FaultInjector can count into it.
//
// The registry is process-global (like the FaultInjector) so
// instrumentation sites buried deep in the call graph need no handle
// threading. Tests that enable it must Reset()+Disable() when done.

#ifndef OLAPDC_OBS_METRICS_H_
#define OLAPDC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace olapdc {
namespace obs {

/// Upper bounds (microseconds, inclusive) of the fixed latency-histogram
/// buckets; one implicit overflow bucket follows. Spanning 1us..10s in
/// a 1-2-5 ladder covers everything from a single CHECK call to a
/// deadline-bounded full enumeration.
inline constexpr std::array<double, 15> kLatencyBucketBoundsUs = {
    1,    2,    5,     10,    20,     50,     100,   200,
    500,  1000, 2000,  5000,  10000,  100000, 1000000};
inline constexpr size_t kNumLatencyBuckets = kLatencyBucketBoundsUs.size() + 1;

/// Aggregated view of one histogram: per-bucket counts plus count/sum
/// (so mean latency is recoverable without the raw samples).
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum_us = 0;
  std::array<uint64_t, kNumLatencyBuckets> buckets{};
};

/// A point-in-time merge of every shard, with deterministically ordered
/// (std::map) names so JSON output is diffable.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  uint64_t counter(std::string_view name) const {
    auto it = counters.find(std::string(name));
    return it == counters.end() ? 0 : it->second;
  }

  /// Renders the snapshot as the docs/observability.md JSON schema.
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Clears every counter, gauge, and histogram (shard registrations
  /// survive). Does not change enabled().
  void Reset();

  /// Adds `delta` to the named counter. A delta of 0 still creates the
  /// counter, so inventories stay complete even for events that never
  /// fired. No-op when disabled.
  void AddCounter(std::string_view name, uint64_t delta = 1);

  /// Sets the named gauge (last write wins across threads).
  void SetGauge(std::string_view name, int64_t value);

  /// Records one latency sample into the named histogram.
  void RecordLatencyUs(std::string_view name, double us);

  MetricsSnapshot Snapshot() const;

  /// Snapshot().ToJson() — the --metrics-json payload.
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  struct Histogram {
    uint64_t count = 0;
    double sum_us = 0;
    std::array<uint64_t, kNumLatencyBuckets> buckets{};
  };
  /// One thread's slice of the registry. The owning thread locks `mu`
  /// for every write; Snapshot() locks it briefly for the merge. The
  /// mutex is uncontended in steady state (one writer), so the cost is
  /// an atomic exchange, not a syscall.
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, uint64_t> counters;
    std::unordered_map<std::string, Histogram> histograms;
  };

  MetricsRegistry() = default;
  Shard& LocalShard();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards shards_ (the vector) and gauges_
  std::vector<std::shared_ptr<Shard>> shards_;
  std::map<std::string, int64_t> gauges_;
};

// Free-function recording façade: the instrumentation sites call these;
// each is one relaxed load + branch when metrics are off.

inline void Count(std::string_view name, uint64_t delta = 1) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) registry.AddCounter(name, delta);
}

inline void Gauge(std::string_view name, int64_t value) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) registry.SetGauge(name, value);
}

inline void LatencyUs(std::string_view name, double us) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) registry.RecordLatencyUs(name, us);
}

inline bool MetricsEnabled() { return MetricsRegistry::Global().enabled(); }

}  // namespace obs
}  // namespace olapdc

#endif  // OLAPDC_OBS_METRICS_H_
