#include "obs/search_tree.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/metrics.h"

namespace olapdc {
namespace obs {

namespace {

int RecorderThreadOrdinal() {
  static std::atomic<int> next{0};
  thread_local int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::string NameOf(const std::function<std::string(int)>& category_name,
                   int id) {
  if (id < 0) return "?";
  if (category_name) return category_name(id);
  return "#" + std::to_string(id);
}

}  // namespace

const char* ExplainKindName(ExplainEvent::Kind kind) {
  switch (kind) {
    case ExplainEvent::Kind::kExpandBegin: return "EXPAND";
    case ExplainEvent::Kind::kExpandEnd: return "EXPAND-END";
    case ExplainEvent::Kind::kPruneInto: return "PRUNE[into]";
    case ExplainEvent::Kind::kPruneShortcut: return "PRUNE[Ss]";
    case ExplainEvent::Kind::kPruneCycle: return "PRUNE[Sc]";
    case ExplainEvent::Kind::kDeadEnd: return "DEADEND";
    case ExplainEvent::Kind::kCheckOk: return "CHECK(ok)";
    case ExplainEvent::Kind::kCheckFail: return "CHECK(fail)";
    case ExplainEvent::Kind::kBudgetStop: return "BUDGET-STOP";
  }
  return "?";
}

SearchTreeRecorder& SearchTreeRecorder::Global() {
  static SearchTreeRecorder* recorder = new SearchTreeRecorder();
  return *recorder;
}

void SearchTreeRecorder::Enable(size_t per_thread_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = per_thread_capacity == 0 ? 1 : per_thread_capacity;
  for (const std::shared_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->capacity = capacity_;
    shard->ring.clear();
  }
  next_seq_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count(),
                  std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void SearchTreeRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

SearchTreeRecorder::Shard& SearchTreeRecorder::LocalShard() {
  thread_local std::shared_ptr<Shard> shard = [this] {
    auto created = std::make_shared<Shard>();
    std::lock_guard<std::mutex> lock(mu_);
    created->capacity = capacity_;
    shards_.push_back(created);
    return created;
  }();
  return *shard;
}

void SearchTreeRecorder::Record(ExplainEvent event) {
  if (!enabled()) return;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  event.thread = RecorderThreadOrdinal();
  const int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  event.ts_us =
      static_cast<double>(now_ns - epoch_ns_.load(std::memory_order_relaxed)) /
      1000.0;
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.capacity == 0) shard.capacity = 1;
  while (shard.ring.size() >= shard.capacity) {
    shard.ring.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.ring.push_back(event);
}

std::vector<ExplainEvent> SearchTreeRecorder::Drain() {
  std::vector<ExplainEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::shared_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      events.insert(events.end(), shard->ring.begin(), shard->ring.end());
      shard->ring.clear();
    }
  }
  std::sort(events.begin(), events.end(),
            [](const ExplainEvent& a, const ExplainEvent& b) {
              return a.seq < b.seq;
            });
  Count("olapdc.explain.events", events.size());
  Count("olapdc.explain.dropped", dropped_.load(std::memory_order_relaxed));
  return events;
}

std::string RenderExplainReport(
    const std::vector<ExplainEvent>& events,
    const std::function<std::string(int)>& category_name) {
  std::string out;
  for (const ExplainEvent& e : events) {
    out.append(static_cast<size_t>(e.depth) * 2, ' ');
    out += ExplainKindName(e.kind);
    switch (e.kind) {
      case ExplainEvent::Kind::kExpandBegin:
      case ExplainEvent::Kind::kExpandEnd:
        out += " " + NameOf(category_name, e.category) + " depth=" +
               std::to_string(e.depth);
        if (e.kind == ExplainEvent::Kind::kExpandBegin) {
          out += " expand_calls=" + std::to_string(e.aux);
        }
        break;
      case ExplainEvent::Kind::kPruneInto:
      case ExplainEvent::Kind::kPruneShortcut:
      case ExplainEvent::Kind::kPruneCycle:
        out += " edge " + NameOf(category_name, e.edge_from) + "->" +
               NameOf(category_name, e.edge_to) + " depth=" +
               std::to_string(e.depth);
        break;
      case ExplainEvent::Kind::kDeadEnd:
        out += " at " + NameOf(category_name, e.category) + " depth=" +
               std::to_string(e.depth);
        break;
      case ExplainEvent::Kind::kCheckOk:
        out += " frozen=" + std::to_string(e.aux) + " depth=" +
               std::to_string(e.depth);
        break;
      case ExplainEvent::Kind::kCheckFail:
        out += " depth=" + std::to_string(e.depth);
        break;
      case ExplainEvent::Kind::kBudgetStop:
        out += " depth=" + std::to_string(e.depth) + " expand_calls=" +
               std::to_string(e.aux);
        break;
    }
    out += "\n";
  }
  return out;
}

namespace {

/// One Chrome trace_event object. Durations use B/E pairs so the
/// EXPAND nesting renders as a flame graph; point decisions are "i"
/// instants with thread scope.
std::string TraceEventJson(const char* phase, const std::string& name,
                           double ts_us, int thread,
                           const std::string& extra_args) {
  std::string out = "{\"name\": " + JsonString(name) +
                    ", \"ph\": \"" + phase + "\", \"ts\": " +
                    JsonNumber(ts_us) + ", \"pid\": 1, \"tid\": " +
                    std::to_string(thread);
  if (phase[0] == 'i') out += ", \"s\": \"t\"";
  out += ", \"args\": {" + extra_args + "}}";
  return out;
}

}  // namespace

std::string RenderChromeTrace(
    const std::vector<ExplainEvent>& events,
    const std::function<std::string(int)>& category_name) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const ExplainEvent& e : events) {
    std::string args = "\"depth\": " + std::to_string(e.depth) +
                       ", \"seq\": " + std::to_string(e.seq);
    const char* phase = "i";
    std::string name;
    switch (e.kind) {
      case ExplainEvent::Kind::kExpandBegin:
        phase = "B";
        name = "EXPAND " + NameOf(category_name, e.category);
        args += ", \"expand_calls\": " + std::to_string(e.aux);
        break;
      case ExplainEvent::Kind::kExpandEnd:
        phase = "E";
        name = "EXPAND " + NameOf(category_name, e.category);
        break;
      case ExplainEvent::Kind::kPruneInto:
      case ExplainEvent::Kind::kPruneShortcut:
      case ExplainEvent::Kind::kPruneCycle:
        name = std::string(ExplainKindName(e.kind)) + " " +
               NameOf(category_name, e.edge_from) + "->" +
               NameOf(category_name, e.edge_to);
        break;
      case ExplainEvent::Kind::kCheckOk:
        name = "CHECK(ok)";
        args += ", \"frozen\": " + std::to_string(e.aux);
        break;
      case ExplainEvent::Kind::kCheckFail:
        name = "CHECK(fail)";
        break;
      case ExplainEvent::Kind::kDeadEnd:
        name = "DEADEND " + NameOf(category_name, e.category);
        break;
      case ExplainEvent::Kind::kBudgetStop:
        name = "BUDGET-STOP";
        args += ", \"expand_calls\": " + std::to_string(e.aux);
        break;
    }
    if (!first) out += ", ";
    first = false;
    out += TraceEventJson(phase, name, e.ts_us, e.thread, args);
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace olapdc
