#include "olap/view_selection.h"

#include <algorithm>

namespace olapdc {

Result<ViewSelectionResult> SelectViews(
    const DimensionSchema& ds, const DimensionInstance& d,
    const std::vector<CategoryId>& queries,
    const ViewSelectionOptions& options) {
  const HierarchySchema& schema = ds.hierarchy();

  std::vector<CategoryId> candidates = options.candidates;
  if (candidates.empty()) {
    DynamicBitset excluded(schema.num_categories());
    excluded.set(schema.all());
    for (CategoryId b : schema.bottom_categories()) excluded.set(b);
    for (CategoryId c = 0; c < schema.num_categories(); ++c) {
      if (!excluded.test(c)) candidates.push_back(c);
    }
  }
  const int n = static_cast<int>(candidates.size());
  OLAPDC_CHECK(n < 20) << "too many candidate categories to enumerate";

  NavigatorDiagnostics diagnostics;
  NavigatorOptions nav_options;
  nav_options.mode = NavigatorMode::kSchemaLevel;
  nav_options.max_rewrite_set = options.max_rewrite_set;
  nav_options.dimsat = options.dimsat;
  nav_options.diagnostics = &diagnostics;

  ViewSelectionResult best;
  const int max_views = std::min(options.max_views, n);
  // Candidate sets are exponential and each cover test runs DIMSAT
  // proofs: once the request budget trips, stop enumerating and return
  // the (possibly absent) result as degraded rather than grinding
  // through the rest of the lattice shedding every probe.
  BudgetChecker budget_checker(options.dimsat.budget, 1,
                               "view_selection.search");
  bool budget_tripped = false;
  for (int size = 0; size <= max_views && !best.found && !budget_tripped;
       ++size) {
    for (uint32_t mask = 0; mask < (uint32_t{1} << n); ++mask) {
      if (__builtin_popcount(mask) != size) continue;
      Status budget = budget_checker.Check();
      if (!budget.ok()) {
        ++diagnostics.unknown_rewrite_sets;
        diagnostics.last_budget_status = std::move(budget);
        budget_tripped = true;
        break;
      }
      std::vector<CategoryId> selected;
      for (int i = 0; i < n; ++i) {
        if (mask & (uint32_t{1} << i)) selected.push_back(candidates[i]);
      }
      std::vector<std::vector<CategoryId>> rewrite_sets;
      bool covers = true;
      for (CategoryId q : queries) {
        OLAPDC_ASSIGN_OR_RETURN(
            std::optional<std::vector<CategoryId>> rewrite,
            FindRewriteSet(ds, d, selected, q, nav_options));
        if (!rewrite.has_value()) {
          covers = false;
          break;
        }
        rewrite_sets.push_back(std::move(*rewrite));
      }
      if (covers) {
        best.found = true;
        best.selected = std::move(selected);
        best.rewrite_sets = std::move(rewrite_sets);
        break;
      }
    }
  }
  best.degraded = diagnostics.degraded();
  best.budget_status = diagnostics.last_budget_status;
  return best;
}

}  // namespace olapdc
