#include "olap/aggregate.h"

#include <algorithm>

namespace olapdc {

std::string_view AggFnName(AggFn af) {
  switch (af) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

void AggState::AccumulateRaw(AggFn af, double measure) {
  const double contribution = (af == AggFn::kCount) ? 1.0 : measure;
  if (!initialized) {
    value = contribution;
    initialized = true;
    return;
  }
  switch (af) {
    case AggFn::kSum:
    case AggFn::kCount:
      value += contribution;
      break;
    case AggFn::kMin:
      value = std::min(value, contribution);
      break;
    case AggFn::kMax:
      value = std::max(value, contribution);
      break;
  }
}

}  // namespace olapdc
