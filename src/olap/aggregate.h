// Distributive aggregate functions (paper Section 1.2, footnote 1):
// SUM, COUNT, MIN, MAX, each with the combining function af^c used to
// merge partial aggregates (COUNT^c = SUM; the others are their own
// combiners).

#ifndef OLAPDC_OLAP_AGGREGATE_H_
#define OLAPDC_OLAP_AGGREGATE_H_

#include <string_view>

namespace olapdc {

enum class AggFn { kSum, kCount, kMin, kMax };

/// The combiner af^c applied when merging partial aggregates.
constexpr AggFn Combiner(AggFn af) {
  return af == AggFn::kCount ? AggFn::kSum : af;
}

std::string_view AggFnName(AggFn af);

/// Incremental aggregation state for one group.
struct AggState {
  double value = 0.0;
  bool initialized = false;

  /// Folds a raw measure with aggregate `af` (COUNT ignores the value).
  void AccumulateRaw(AggFn af, double measure);

  /// Folds a partial aggregate with the combiner of `af`.
  void AccumulatePartial(AggFn af, double partial) {
    AccumulateRaw(Combiner(af), partial);
  }
};

}  // namespace olapdc

#endif  // OLAPDC_OLAP_AGGREGATE_H_
