#include "olap/navigator.h"

#include <algorithm>
#include <utility>

#include "core/summarizability.h"

namespace olapdc {

namespace {

Result<bool> IsUsable(const DimensionSchema& ds, const DimensionInstance& d,
                      CategoryId target, const std::vector<CategoryId>& s,
                      const NavigatorOptions& options) {
  if (options.mode == NavigatorMode::kSchemaLevel) {
    OLAPDC_ASSIGN_OR_RETURN(SummarizabilityResult result,
                            IsSummarizable(ds, target, s, options.dimsat));
    if (!result.status.ok()) {
      // Budget exhausted mid-proof: skip this candidate (conservative —
      // an unproved rewrite is never used) and record the degradation.
      if (options.diagnostics != nullptr) {
        ++options.diagnostics->unknown_rewrite_sets;
        options.diagnostics->last_budget_status = result.status;
      }
      return false;
    }
    return result.summarizable;
  }
  return IsSummarizableInInstance(d, target, s);
}

}  // namespace

Result<std::optional<std::vector<CategoryId>>> FindRewriteSet(
    const DimensionSchema& ds, const DimensionInstance& d,
    const std::vector<CategoryId>& materialized, CategoryId target,
    const NavigatorOptions& options) {
  // A materialized view of the target itself answers the query
  // directly.
  for (CategoryId c : materialized) {
    if (c == target) {
      return std::optional<std::vector<CategoryId>>(
          std::vector<CategoryId>{c});
    }
  }

  // Enumerate subsets by increasing size: smaller rewrite sets mean
  // fewer joins.
  const int n = static_cast<int>(materialized.size());
  OLAPDC_CHECK(n < 20) << "too many materialized views to enumerate";
  const int max_size = std::min(options.max_rewrite_set, n);
  // Each candidate probe is a full summarizability proof, so the
  // enumeration itself re-probes the budget per mask (stride 1):
  // once the request's budget trips, the remaining candidates would
  // each launch a DIMSAT run doomed to the same expiry.
  BudgetChecker budget_checker(options.dimsat.budget, 1, "navigator.search");
  for (int size = 1; size <= max_size; ++size) {
    for (uint32_t mask = 0; mask < (uint32_t{1} << n); ++mask) {
      if (__builtin_popcount(mask) != size) continue;
      Status budget = budget_checker.Check();
      if (!budget.ok()) {
        // Degraded, not failed: "no rewrite provable in time" — callers
        // fall back to base facts, diagnostics tell the difference.
        if (options.diagnostics != nullptr) {
          ++options.diagnostics->unknown_rewrite_sets;
          options.diagnostics->last_budget_status = std::move(budget);
        }
        return std::optional<std::vector<CategoryId>>(std::nullopt);
      }
      std::vector<CategoryId> s;
      for (int i = 0; i < n; ++i) {
        if (mask & (uint32_t{1} << i)) s.push_back(materialized[i]);
      }
      OLAPDC_ASSIGN_OR_RETURN(bool usable,
                              IsUsable(ds, d, target, s, options));
      if (usable) return std::optional<std::vector<CategoryId>>(s);
    }
  }
  return std::optional<std::vector<CategoryId>>(std::nullopt);
}

Result<NavigatorAnswer> AnswerFromViews(
    const DimensionSchema& ds, const DimensionInstance& d,
    const std::map<CategoryId, CubeViewResult>& materialized,
    CategoryId target, AggFn af, const NavigatorOptions& options) {
  std::vector<CategoryId> categories;
  categories.reserve(materialized.size());
  for (const auto& [c, view] : materialized) categories.push_back(c);

  OLAPDC_ASSIGN_OR_RETURN(
      std::optional<std::vector<CategoryId>> rewrite_set,
      FindRewriteSet(ds, d, categories, target, options));

  NavigatorAnswer answer;
  if (!rewrite_set.has_value()) return answer;
  answer.answered = true;
  answer.used = *rewrite_set;

  std::vector<MaterializedView> sources;
  sources.reserve(answer.used.size());
  for (CategoryId c : answer.used) {
    sources.push_back(MaterializedView{c, &materialized.at(c)});
  }
  answer.view = RewriteFromViews(d, sources, target, af);
  return answer;
}

}  // namespace olapdc
