#include "olap/fact_table.h"

namespace olapdc {

Status FactTable::ValidateAgainst(const DimensionInstance& d) const {
  const HierarchySchema& schema = d.hierarchy();
  DynamicBitset bottoms(schema.num_categories());
  for (CategoryId c : schema.bottom_categories()) bottoms.set(c);
  for (const FactRow& row : rows_) {
    if (row.base_member < 0 || row.base_member >= d.num_members()) {
      return Status::InvalidArgument("fact references unknown member id " +
                                     std::to_string(row.base_member));
    }
    if (!bottoms.test(d.member(row.base_member).category)) {
      return Status::InvalidArgument(
          "fact member '" + d.member(row.base_member).key +
          "' is not in a bottom category");
    }
  }
  return Status::OK();
}

}  // namespace olapdc
