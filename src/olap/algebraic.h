// Algebraic aggregates. The paper restricts cube views to
// *distributive* aggregate functions (footnote 1): AVG is not
// distributive — an average of averages is wrong — but it is
// *algebraic*: it decomposes into the distributive pair (SUM, COUNT).
// This module extends aggregate navigation to AVG by rewriting both
// components through the same summarizable source set and dividing at
// the end, so every safety argument of Theorem 1 carries over
// unchanged.

#ifndef OLAPDC_OLAP_ALGEBRAIC_H_
#define OLAPDC_OLAP_ALGEBRAIC_H_

#include <map>

#include "common/result.h"
#include "olap/navigator.h"

namespace olapdc {

/// AVG(measure) grouped by category `c`, computed directly from facts.
CubeViewResult ComputeAverageView(const DimensionInstance& d,
                                  const FactTable& facts, CategoryId c);

/// Combines aligned SUM and COUNT views into an AVG view (groups with a
/// zero or missing count are dropped).
CubeViewResult AverageFromSumCount(const CubeViewResult& sum_view,
                                   const CubeViewResult& count_view);

/// Answers AVG at `target` from materialized SUM and COUNT views
/// (keyed by category; both maps must cover the rewrite set found by
/// the navigator). `answered` is false when no summarizable source set
/// exists among the categories materialized in *both* maps.
Result<NavigatorAnswer> AnswerAverageFromViews(
    const DimensionSchema& ds, const DimensionInstance& d,
    const std::map<CategoryId, CubeViewResult>& sum_views,
    const std::map<CategoryId, CubeViewResult>& count_views,
    CategoryId target, const NavigatorOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_OLAP_ALGEBRAIC_H_
