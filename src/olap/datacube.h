// Multidimensional data cubes. The paper develops its theory for
// single-dimension cube views ("a sale ... can be viewed as a point in
// a space whose dimensions are items, stores, and time"), which is
// without loss of generality: a multidimensional cube view factors into
// one rollup join per dimension. This module supplies that lifting:
//
//   - a Datacube holds one DimensionInstance per axis and fact rows
//     addressed by one base member per axis;
//   - a cube view groups by one category per axis;
//   - a coarser view is derivable from a finer *single* materialized
//     view iff, on every axis, the target category is summarizable from
//     the source category (the per-dimension product rule — Theorem 1
//     applied axis-wise; the tests exercise both the rule and its
//     failure when any single axis is unsafe).

#ifndef OLAPDC_OLAP_DATACUBE_H_
#define OLAPDC_OLAP_DATACUBE_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "core/schema.h"
#include "dim/dimension_instance.h"
#include "olap/aggregate.h"

namespace olapdc {

/// A cube cell address: one member per axis.
using CellKey = std::vector<MemberId>;

/// A computed multidimensional cube view: cell -> aggregate.
using MultiCubeView = std::map<CellKey, double>;

/// A fact cube over several dimension instances.
class Datacube {
 public:
  /// Takes ownership of the axes. At least one axis is required.
  static Result<Datacube> Create(std::vector<DimensionInstance> axes);

  int num_axes() const { return static_cast<int>(axes_.size()); }
  const DimensionInstance& axis(int i) const {
    OLAPDC_DCHECK(0 <= i && i < num_axes());
    return axes_[i];
  }
  size_t num_facts() const { return rows_.size(); }

  /// Appends a fact; every coordinate must be a member of a bottom
  /// category of its axis.
  Status AddFact(CellKey base, double measure);

  /// Aggregates to the granularity `group_by` (one category per axis).
  /// Facts not rolling up on some axis are dropped, as in the
  /// single-dimension CubeView.
  Result<MultiCubeView> ComputeView(const std::vector<CategoryId>& group_by,
                                    AggFn af) const;

  /// Rolls a finer materialized view up to `target` granularity
  /// (Definition 6 lifted axis-wise). Correct for every fact cube iff
  /// on each axis target[i] is summarizable from {source[i]} — use
  /// IsRollupSafe to decide.
  Result<MultiCubeView> RollUpView(const MultiCubeView& view,
                                   const std::vector<CategoryId>& source,
                                   const std::vector<CategoryId>& target,
                                   AggFn af) const;

  /// The product rule: every axis' target summarizable from its source
  /// under the axis' schema (schema-level, so valid for all instances
  /// over the schemas).
  Result<bool> IsRollupSafe(const std::vector<DimensionSchema>& schemas,
                            const std::vector<CategoryId>& source,
                            const std::vector<CategoryId>& target) const;

 private:
  struct Row {
    CellKey base;
    double measure;
  };

  explicit Datacube(std::vector<DimensionInstance> axes);

  Status CheckArity(size_t n, const char* what) const;

  std::vector<DimensionInstance> axes_;
  std::vector<DynamicBitset> bottom_sets_;  // per axis: bottom categories
  std::vector<Row> rows_;
};

}  // namespace olapdc

#endif  // OLAPDC_OLAP_DATACUBE_H_
