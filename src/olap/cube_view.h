// Single-category cube views (paper Section 3.3):
//   CubeView(d, F, c, af(m)) = Pi_{c, af(m)} (F ⋈ Gamma_{cb}^{c} d)
// and the Definition 6 rewriting that reconstructs a cube view at c
// from precomputed cube views at categories S = {c1..cn}:
//   Pi_{c, af^c(m)} ( ⊎_i ( pi_{c,m} Gamma_{ci}^{c} d ⋈ CubeView(..ci..) ) )
// The rewriting is correct for every fact table and every distributive
// aggregate iff c is summarizable from S (Theorem 1) — the property
// tests exercise exactly this equivalence.

#ifndef OLAPDC_OLAP_CUBE_VIEW_H_
#define OLAPDC_OLAP_CUBE_VIEW_H_

#include <map>
#include <utility>
#include <vector>

#include "olap/aggregate.h"
#include "olap/fact_table.h"

namespace olapdc {

/// A computed cube view: group member -> aggregated measure, ordered by
/// member id (deterministic for comparison).
using CubeViewResult = std::map<MemberId, double>;

/// Aggregates `facts` to the granularity of category `c`. Facts whose
/// base member does not roll up to `c` are dropped (no group).
CubeViewResult ComputeCubeView(const DimensionInstance& d,
                               const FactTable& facts, CategoryId c,
                               AggFn af);

/// A precomputed cube view at a source category.
struct MaterializedView {
  CategoryId category = kNoCategory;
  const CubeViewResult* view = nullptr;
};

/// The Definition 6 rewriting: recombines the views in `sources`
/// (cube views of the same fact table at categories c1..cn) into a
/// cube view at `c`, joining each through Gamma_{ci}^{c} and merging
/// with the combiner af^c.
CubeViewResult RewriteFromViews(const DimensionInstance& d,
                                const std::vector<MaterializedView>& sources,
                                CategoryId c, AggFn af);

/// Exact equality of two cube views up to `epsilon` per group.
bool CubeViewsEqual(const CubeViewResult& a, const CubeViewResult& b,
                    double epsilon = 1e-9);

}  // namespace olapdc

#endif  // OLAPDC_OLAP_CUBE_VIEW_H_
