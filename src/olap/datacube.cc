#include "olap/datacube.h"

#include <string>
#include <utility>

#include "core/summarizability.h"

namespace olapdc {

Datacube::Datacube(std::vector<DimensionInstance> axes)
    : axes_(std::move(axes)) {
  bottom_sets_.reserve(axes_.size());
  for (const DimensionInstance& axis : axes_) {
    DynamicBitset bottoms(axis.hierarchy().num_categories());
    for (CategoryId b : axis.hierarchy().bottom_categories()) {
      bottoms.set(b);
    }
    bottom_sets_.push_back(std::move(bottoms));
  }
}

Result<Datacube> Datacube::Create(std::vector<DimensionInstance> axes) {
  if (axes.empty()) {
    return Status::InvalidArgument("a datacube needs at least one axis");
  }
  return Datacube(std::move(axes));
}

Status Datacube::CheckArity(size_t n, const char* what) const {
  if (n != axes_.size()) {
    return Status::InvalidArgument(
        std::string(what) + " must have one entry per axis (" +
        std::to_string(axes_.size()) + "), got " + std::to_string(n));
  }
  return Status::OK();
}

Status Datacube::AddFact(CellKey base, double measure) {
  OLAPDC_RETURN_NOT_OK(CheckArity(base.size(), "fact coordinates"));
  for (int i = 0; i < num_axes(); ++i) {
    MemberId m = base[i];
    if (m < 0 || m >= axes_[i].num_members()) {
      return Status::InvalidArgument("axis " + std::to_string(i) +
                                     ": unknown member id");
    }
    if (!bottom_sets_[i].test(axes_[i].member(m).category)) {
      return Status::InvalidArgument(
          "axis " + std::to_string(i) + ": member '" +
          axes_[i].member(m).key + "' is not in a bottom category");
    }
  }
  rows_.push_back(Row{std::move(base), measure});
  return Status::OK();
}

Result<MultiCubeView> Datacube::ComputeView(
    const std::vector<CategoryId>& group_by, AggFn af) const {
  OLAPDC_RETURN_NOT_OK(CheckArity(group_by.size(), "group-by"));
  std::map<CellKey, AggState> groups;
  CellKey cell(axes_.size());
  for (const Row& row : rows_) {
    bool in_domain = true;
    for (int i = 0; i < num_axes(); ++i) {
      cell[i] = axes_[i].RollUpMember(row.base[i], group_by[i]);
      in_domain &= (cell[i] != kNoMember);
    }
    if (!in_domain) continue;
    groups[cell].AccumulateRaw(af, row.measure);
  }
  MultiCubeView out;
  for (const auto& [key, state] : groups) out[key] = state.value;
  return out;
}

Result<MultiCubeView> Datacube::RollUpView(
    const MultiCubeView& view, const std::vector<CategoryId>& source,
    const std::vector<CategoryId>& target, AggFn af) const {
  OLAPDC_RETURN_NOT_OK(CheckArity(source.size(), "source granularity"));
  OLAPDC_RETURN_NOT_OK(CheckArity(target.size(), "target granularity"));
  (void)source;  // documented context; the members carry the mapping
  std::map<CellKey, AggState> groups;
  CellKey cell(axes_.size());
  for (const auto& [key, partial] : view) {
    if (static_cast<int>(key.size()) != num_axes()) {
      return Status::InvalidArgument("view cell arity mismatch");
    }
    bool in_domain = true;
    for (int i = 0; i < num_axes(); ++i) {
      cell[i] = axes_[i].RollUpMember(key[i], target[i]);
      in_domain &= (cell[i] != kNoMember);
    }
    if (!in_domain) continue;
    groups[cell].AccumulatePartial(af, partial);
  }
  MultiCubeView out;
  for (const auto& [key, state] : groups) out[key] = state.value;
  return out;
}

Result<bool> Datacube::IsRollupSafe(
    const std::vector<DimensionSchema>& schemas,
    const std::vector<CategoryId>& source,
    const std::vector<CategoryId>& target) const {
  OLAPDC_RETURN_NOT_OK(CheckArity(schemas.size(), "schemas"));
  OLAPDC_RETURN_NOT_OK(CheckArity(source.size(), "source granularity"));
  OLAPDC_RETURN_NOT_OK(CheckArity(target.size(), "target granularity"));
  for (int i = 0; i < num_axes(); ++i) {
    OLAPDC_ASSIGN_OR_RETURN(
        SummarizabilityResult r,
        IsSummarizable(schemas[i], target[i], {source[i]}));
    OLAPDC_RETURN_NOT_OK(r.status);
    if (!r.summarizable) return false;
  }
  return true;
}

}  // namespace olapdc
