// View-selection advisor (paper Section 6: dimension constraints
// "may play an important role in the problem of selecting views to
// materialize ... by supplying meta-data to support the test of whether
// a selected set of views is sufficient to compute all the required
// queries").
//
// Given a set of query categories, find a small set of categories to
// materialize such that every query is summarizable (schema-level, so
// the choice is valid for every instance) from some subset of the
// materialized set. Exact search over candidate sets by increasing
// size, with memoized implication calls.

#ifndef OLAPDC_OLAP_VIEW_SELECTION_H_
#define OLAPDC_OLAP_VIEW_SELECTION_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "core/dimsat.h"
#include "core/schema.h"
#include "olap/navigator.h"

namespace olapdc {

struct ViewSelectionOptions {
  /// Categories eligible for materialization; empty = every category
  /// except All and the bottom categories (those are the base data).
  std::vector<CategoryId> candidates;
  /// Largest materialized set considered.
  int max_views = 4;
  /// Largest rewrite set per query.
  int max_rewrite_set = 3;
  DimsatOptions dimsat;
};

struct ViewSelectionResult {
  /// False when no candidate subset of size <= max_views covers all
  /// queries.
  bool found = false;
  std::vector<CategoryId> selected;
  /// Per query, the rewrite set assigned from `selected`.
  std::vector<std::vector<CategoryId>> rewrite_sets;
  /// True when at least one summarizability probe exhausted its budget
  /// and a candidate was conservatively skipped: a `found` selection is
  /// still valid (every kept rewrite is proved), but it may not be
  /// minimum, and `found == false` no longer proves nonexistence.
  bool degraded = false;
  /// The last budget status behind `degraded` (OK when not degraded).
  Status budget_status;
};

/// Finds a minimum-cardinality materialization set covering `queries`.
Result<ViewSelectionResult> SelectViews(const DimensionSchema& ds,
                                        const DimensionInstance& d,
                                        const std::vector<CategoryId>& queries,
                                        const ViewSelectionOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_OLAP_VIEW_SELECTION_H_
