#include "olap/algebraic.h"

#include <utility>
#include <vector>

namespace olapdc {

CubeViewResult ComputeAverageView(const DimensionInstance& d,
                                  const FactTable& facts, CategoryId c) {
  return AverageFromSumCount(ComputeCubeView(d, facts, c, AggFn::kSum),
                             ComputeCubeView(d, facts, c, AggFn::kCount));
}

CubeViewResult AverageFromSumCount(const CubeViewResult& sum_view,
                                   const CubeViewResult& count_view) {
  CubeViewResult out;
  for (const auto& [member, sum] : sum_view) {
    auto it = count_view.find(member);
    if (it == count_view.end() || it->second == 0.0) continue;
    out[member] = sum / it->second;
  }
  return out;
}

Result<NavigatorAnswer> AnswerAverageFromViews(
    const DimensionSchema& ds, const DimensionInstance& d,
    const std::map<CategoryId, CubeViewResult>& sum_views,
    const std::map<CategoryId, CubeViewResult>& count_views,
    CategoryId target, const NavigatorOptions& options) {
  // Only categories materialized with both components can serve.
  std::vector<CategoryId> candidates;
  for (const auto& [c, view] : sum_views) {
    if (count_views.count(c) > 0) candidates.push_back(c);
  }

  NavigatorAnswer answer;
  OLAPDC_ASSIGN_OR_RETURN(
      std::optional<std::vector<CategoryId>> rewrite_set,
      FindRewriteSet(ds, d, candidates, target, options));
  if (!rewrite_set.has_value()) return answer;
  answer.answered = true;
  answer.used = *rewrite_set;

  std::vector<MaterializedView> sum_sources, count_sources;
  for (CategoryId c : answer.used) {
    sum_sources.push_back(MaterializedView{c, &sum_views.at(c)});
    count_sources.push_back(MaterializedView{c, &count_views.at(c)});
  }
  CubeViewResult sum =
      RewriteFromViews(d, sum_sources, target, AggFn::kSum);
  CubeViewResult count =
      RewriteFromViews(d, count_sources, target, AggFn::kCount);
  answer.view = AverageFromSumCount(sum, count);
  return answer;
}

}  // namespace olapdc
