// The aggregate navigator (paper Section 1.2 / Kimball [9]): given a
// set of materialized cube views and a query category, find a set S of
// materialized categories from which the query is summarizable, and
// answer the query with the Definition 6 rewriting instead of scanning
// base facts. Summarizability is established either at the schema
// level (safe for every instance over the schema; uses DIMSAT) or at
// the instance level (valid for the current instance only; model
// checking — cheaper and admits more rewrites).

#ifndef OLAPDC_OLAP_NAVIGATOR_H_
#define OLAPDC_OLAP_NAVIGATOR_H_

#include <map>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/dimsat.h"
#include "core/schema.h"
#include "olap/cube_view.h"

namespace olapdc {

enum class NavigatorMode {
  /// Prove summarizability from the dimension schema (Theorem 1 +
  /// DIMSAT implication): the rewrite set works for every instance.
  kSchemaLevel,
  /// Check summarizability on the given instance only (Theorem 1 by
  /// model checking).
  kInstanceLevel,
};

/// Degradation accounting for budget-bounded navigation: when a
/// schema-level summarizability probe exhausts its budget (deadline,
/// cancellation, expand cap), the candidate rewrite set is
/// conservatively skipped — sound, because only *proved* rewrites are
/// ever used — and the skip is recorded here so callers can tell "no
/// rewrite exists" from "no rewrite was provable in time".
struct NavigatorDiagnostics {
  /// Candidate rewrite sets skipped because their probe ran out of
  /// budget.
  uint64_t unknown_rewrite_sets = 0;
  /// The last budget status that caused a skip (OK when none).
  Status last_budget_status;

  bool degraded() const { return unknown_rewrite_sets > 0; }
};

struct NavigatorOptions {
  NavigatorMode mode = NavigatorMode::kSchemaLevel;
  /// Largest rewrite set tried (subsets of the materialized categories
  /// are enumerated by increasing size).
  int max_rewrite_set = 3;
  DimsatOptions dimsat;
  /// Optional degradation sink; not owned, may be null.
  NavigatorDiagnostics* diagnostics = nullptr;
};

struct NavigatorAnswer {
  /// False when no summarizable subset of the materialized categories
  /// exists; `view` is then empty.
  bool answered = false;
  /// The rewrite set S used.
  std::vector<CategoryId> used;
  CubeViewResult view;
};

/// Finds a rewrite set for `target` among `materialized` categories, or
/// nullopt. Does not touch any data — pure reasoning.
Result<std::optional<std::vector<CategoryId>>> FindRewriteSet(
    const DimensionSchema& ds, const DimensionInstance& d,
    const std::vector<CategoryId>& materialized, CategoryId target,
    const NavigatorOptions& options = {});

/// Answers CubeView(d, facts, target, af) from `materialized` views
/// when a rewrite set exists (the views must all derive from the same
/// fact table).
Result<NavigatorAnswer> AnswerFromViews(
    const DimensionSchema& ds, const DimensionInstance& d,
    const std::map<CategoryId, CubeViewResult>& materialized,
    CategoryId target, AggFn af, const NavigatorOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_OLAP_NAVIGATOR_H_
