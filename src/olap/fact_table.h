// Fact tables: the raw data cube views aggregate. A fact row carries a
// base member (a member of one of the instance's bottom categories) and
// a numeric measure.

#ifndef OLAPDC_OLAP_FACT_TABLE_H_
#define OLAPDC_OLAP_FACT_TABLE_H_

#include <vector>

#include "common/result.h"
#include "dim/dimension_instance.h"

namespace olapdc {

struct FactRow {
  MemberId base_member = kNoMember;
  double measure = 0.0;
};

/// A fact table over one dimension instance. (The paper's cube views
/// are single-dimension; a multidimensional cube factors into one
/// rollup join per dimension, so one dimension suffices to exercise
/// the theory.)
class FactTable {
 public:
  FactTable() = default;
  explicit FactTable(std::vector<FactRow> rows) : rows_(std::move(rows)) {}

  void Add(MemberId base_member, double measure) {
    rows_.push_back(FactRow{base_member, measure});
  }

  const std::vector<FactRow>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Verifies every base member belongs to a bottom category of `d`.
  Status ValidateAgainst(const DimensionInstance& d) const;

 private:
  std::vector<FactRow> rows_;
};

}  // namespace olapdc

#endif  // OLAPDC_OLAP_FACT_TABLE_H_
