#include "olap/cube_view.h"

#include <cmath>

namespace olapdc {

CubeViewResult ComputeCubeView(const DimensionInstance& d,
                               const FactTable& facts, CategoryId c,
                               AggFn af) {
  std::map<MemberId, AggState> groups;
  for (const FactRow& row : facts.rows()) {
    MemberId group = d.RollUpMember(row.base_member, c);
    if (group == kNoMember) continue;
    groups[group].AccumulateRaw(af, row.measure);
  }
  CubeViewResult out;
  for (const auto& [member, state] : groups) out[member] = state.value;
  return out;
}

CubeViewResult RewriteFromViews(const DimensionInstance& d,
                                const std::vector<MaterializedView>& sources,
                                CategoryId c, AggFn af) {
  std::map<MemberId, AggState> groups;
  for (const MaterializedView& source : sources) {
    OLAPDC_CHECK(source.view != nullptr);
    for (const auto& [member, partial] : *source.view) {
      // Gamma_{ci}^{c}: drop rows whose member does not roll up to c.
      MemberId group = d.RollUpMember(member, c);
      if (group == kNoMember) continue;
      groups[group].AccumulatePartial(af, partial);
    }
  }
  CubeViewResult out;
  for (const auto& [member, state] : groups) out[member] = state.value;
  return out;
}

bool CubeViewsEqual(const CubeViewResult& a, const CubeViewResult& b,
                    double epsilon) {
  if (a.size() != b.size()) return false;
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    if (std::fabs(ita->second - itb->second) > epsilon) return false;
  }
  return true;
}

}  // namespace olapdc
