#include "common/memory_budget.h"

#include "common/fault_injector.h"
#include "obs/metrics.h"

namespace olapdc {

namespace {
const bool kSiteRegistered = RegisterFaultSite("mem.reserve");
}  // namespace

Status MemoryBudget::Reserve(uint64_t bytes, std::string_view site) {
  (void)kSiteRegistered;
  Status injected = FaultInjector::Global().MaybeFail("mem.reserve");
  if (!injected.ok()) {
    // An injected allocation failure is sticky like a real one: memory
    // pressure does not un-happen between probes of one request.
    exhausted_.store(true, std::memory_order_relaxed);
    return injected;
  }
  if (exhausted_.load(std::memory_order_relaxed)) return ExhaustedStatus();
  const uint64_t now =
      reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && now > limit_) {
    reserved_.fetch_sub(bytes, std::memory_order_relaxed);
    exhausted_.store(true, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) {
      obs::Count("olapdc.mem.exhausted");
      PublishGauges();
    }
    return Status::ResourceExhausted(
        "memory budget exhausted at " + std::string(site) + ": reserving " +
        std::to_string(bytes) + " bytes would exceed the " +
        std::to_string(limit_) + "-byte limit (" + std::to_string(now - bytes) +
        " reserved)");
  }
  // Monotone peak; races only lose a slightly stale maximum.
  uint64_t seen = peak_.load(std::memory_order_relaxed);
  while (now > seen &&
         !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
  if (obs::MetricsEnabled()) obs::Count("olapdc.mem.reserved_bytes", bytes);
  return Status::OK();
}

void MemoryBudget::Release(uint64_t bytes) {
  reserved_.fetch_sub(bytes, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) obs::Count("olapdc.mem.released_bytes", bytes);
}

Status MemoryBudget::ExhaustedStatus() const {
  return Status::ResourceExhausted(
      "memory budget exhausted (" + std::to_string(limit_) + "-byte limit, " +
      std::to_string(peak()) + " bytes at peak)");
}

void MemoryBudget::PublishGauges() const {
  if (!obs::MetricsEnabled()) return;
  obs::Gauge("olapdc.mem.reserved_bytes_now",
             static_cast<int64_t>(reserved()));
  obs::Gauge("olapdc.mem.peak_bytes", static_cast<int64_t>(peak()));
  // Zero-delta: a cap that never tripped exports `exhausted: 0`, not a
  // missing key (the complete-inventory rule, docs/observability.md).
  obs::Count("olapdc.mem.exhausted", 0);
}

}  // namespace olapdc
