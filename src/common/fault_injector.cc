#include "common/fault_injector.h"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

#include "obs/metrics.h"

namespace olapdc {

namespace {

/// Function-local so registration from namespace-scope initializers in
/// other translation units is safe regardless of construction order.
std::set<std::string>& SiteRegistry() {
  static std::set<std::string>* registry = new std::set<std::string>();
  return *registry;
}

std::mutex& SiteRegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

}  // namespace

bool RegisterFaultSite(std::string_view site) {
  std::lock_guard<std::mutex> lock(SiteRegistryMutex());
  SiteRegistry().emplace(site);
  return true;
}

std::vector<std::string> RegisteredFaultSites() {
  std::lock_guard<std::mutex> lock(SiteRegistryMutex());
  return std::vector<std::string>(SiteRegistry().begin(),
                                  SiteRegistry().end());
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  sites_.clear();
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  sites_.clear();
}

void FaultInjector::SetFault(const std::string& site, StatusCode code,
                             double probability, std::string message) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  s.code = code;
  s.probability = probability;
  s.message = message.empty()
                  ? "injected fault at site '" + site + "'"
                  : std::move(message);
  // Per-site stream: deterministic under (seed, site) alone, so adding
  // or reordering probes at *other* sites cannot shift this one.
  s.rng.seed(seed_ ^ std::hash<std::string>{}(site));
  s.probes = 0;
  s.failures = 0;
}

Status FaultInjector::MaybeFail(std::string_view site) {
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return Status::OK();
  Site& s = it->second;
  ++s.probes;
  if (s.probability <= 0.0) return Status::OK();
  if (s.probability < 1.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(s.rng) >= s.probability) return Status::OK();
  }
  ++s.failures;
  obs::Count("olapdc.fault.injected." + std::string(site));
  return Status(s.code, s.message);
}

uint64_t FaultInjector::probes(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.probes;
}

uint64_t FaultInjector::failures(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.failures;
}

}  // namespace olapdc
