#include "common/budget.h"

#include <limits>

#include "common/memory_budget.h"

namespace olapdc {

double Budget::RemainingMs() const {
  if (!deadline_.has_value()) {
    return std::numeric_limits<double>::infinity();
  }
  return std::chrono::duration<double, std::milli>(*deadline_ - Clock::now())
      .count();
}

Status Budget::Check() const {
  if (cancel_.cancelled()) {
    return Status::Cancelled("operation cancelled by caller");
  }
  if (memory_ != nullptr && memory_->exhausted()) {
    return memory_->ExhaustedStatus();
  }
  if (deadline_.has_value() && Clock::now() >= *deadline_) {
    return Status::DeadlineExceeded("wall-clock deadline exceeded");
  }
  return Status::OK();
}

}  // namespace olapdc
