// OLAPDC_CHECK: internal invariant checking. A failed check indicates a
// bug inside olapdc (not bad user input, which is reported via Status)
// and aborts the process with a source location and message.

#ifndef OLAPDC_COMMON_CHECK_H_
#define OLAPDC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace olapdc {
namespace internal_check {

/// Accumulates the streamed message of a failed check and aborts on
/// destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "OLAPDC_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed message when the check passes; compiles away.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_check
}  // namespace olapdc

#define OLAPDC_CHECK(condition)                                      \
  (condition) ? (void)0                                              \
              : (void)(::olapdc::internal_check::CheckFailureStream( \
                     #condition, __FILE__, __LINE__))

// OLAPDC_CHECK with a streamed message:
//   OLAPDC_CHECK(x > 0) << "x was " << x;
// is not expressible with the ternary form above, so OLAPDC_CHECK is
// redefined as a statement-shaped macro instead.
#undef OLAPDC_CHECK
#define OLAPDC_CHECK(condition)         \
  switch (0)                            \
  case 0:                               \
  default:                              \
    if (condition) {                    \
    } else /* NOLINT */                 \
      ::olapdc::internal_check::CheckFailureStream(#condition, __FILE__, \
                                                   __LINE__)

#ifdef NDEBUG
#define OLAPDC_DCHECK(condition)        \
  switch (0)                            \
  case 0:                               \
  default:                              \
    if (true) {                         \
    } else /* NOLINT */                 \
      ::olapdc::internal_check::NullStream()
#else
#define OLAPDC_DCHECK(condition) OLAPDC_CHECK(condition)
#endif

#endif  // OLAPDC_COMMON_CHECK_H_
