// DynamicBitset: a fixed-capacity, heap-compact bitset sized at run
// time, with small-buffer optimization. Category sets inside the DIMSAT
// search (subhierarchy node sets, In*/ancestor sets, frontier sets) are
// DynamicBitsets; schemas are at most a few hundred categories, so the
// words live in an inline array (kInlineWords * 64 bits) and copying or
// constructing a set on the EXPAND hot path touches no allocator at
// all. Larger universes transparently spill to a heap vector — nothing
// caps the schema size, only the fast path assumes it is small.
//
// The word loops live in bitset_kernels: every bulk operation has a
// scalar reference implementation and a 4-words-per-iteration wide
// implementation (AVX2 via the `target` function attribute, so no
// global -mavx2 is required; plain unrolled otherwise). Dispatch is
// one cached CPU check plus a process-global toggle — the toggle
// exists so the ablation micro-bench (bench/dimsat_ablation.cc) can
// time both paths in one process. It is deliberately *not* a
// per-search DimsatOptions flag: kernels are process-global shared
// code, and flipping them per request would race in the
// multi-threaded service.

#ifndef OLAPDC_COMMON_BITSET_H_
#define OLAPDC_COMMON_BITSET_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define OLAPDC_BITSET_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace olapdc {
namespace bitset_kernels {

/// Process-global kernel toggle (default: wide kernels on wherever the
/// CPU supports them). Relaxed atomics: flipping mid-flight never
/// changes results, only which loop computes them.
inline std::atomic<bool>& WideFlag() {
  static std::atomic<bool> flag{true};
  return flag;
}
inline void SetWideKernelsEnabled(bool enabled) {
  WideFlag().store(enabled, std::memory_order_relaxed);
}
inline bool WideKernelsEnabled() {
  return WideFlag().load(std::memory_order_relaxed);
}

inline bool CpuHasAvx2() {
#ifdef OLAPDC_BITSET_X86_DISPATCH
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  return has_avx2;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------
// Scalar reference kernels (the pre-vectorization word loops, kept as
// the correctness baseline for the property tests and the ablation
// micro-bench).

inline void OrScalar(uint64_t* w, const uint64_t* v, int n) {
  for (int i = 0; i < n; ++i) w[i] |= v[i];
}
inline void AndScalar(uint64_t* w, const uint64_t* v, int n) {
  for (int i = 0; i < n; ++i) w[i] &= v[i];
}
inline void AndNotScalar(uint64_t* w, const uint64_t* v, int n) {
  for (int i = 0; i < n; ++i) w[i] &= ~v[i];
}
inline bool AnyScalar(const uint64_t* w, int n) {
  for (int i = 0; i < n; ++i)
    if (w[i]) return true;
  return false;
}
inline bool IntersectsScalar(const uint64_t* w, const uint64_t* v, int n) {
  for (int i = 0; i < n; ++i)
    if (w[i] & v[i]) return true;
  return false;
}
/// True iff (w & ~v) has any set bit — the fused form of the subset
/// test and the DIMSAT into-prune ("is any forced target blocked?").
inline bool AndNotAnyScalar(const uint64_t* w, const uint64_t* v, int n) {
  for (int i = 0; i < n; ++i)
    if (w[i] & ~v[i]) return true;
  return false;
}
inline bool EqualScalar(const uint64_t* w, const uint64_t* v, int n) {
  for (int i = 0; i < n; ++i)
    if (w[i] != v[i]) return false;
  return true;
}
inline int CountScalar(const uint64_t* w, int n) {
  int count = 0;
  for (int i = 0; i < n; ++i) count += __builtin_popcountll(w[i]);
  return count;
}

// ---------------------------------------------------------------------
// Wide kernels: 8 words (two 256-bit blocks) per main-loop iteration
// with a 4-word cleanup block. On x86-64 they carry the AVX2 `target`
// attribute so GCC emits ymm code for just these functions without a
// global -mavx2 (dispatch checks the CPU at run time); elsewhere they
// are plain 4-way unrolled loops the auto-vectorizer can chew on.

#ifdef OLAPDC_BITSET_X86_DISPATCH
#define OLAPDC_BITSET_WIDE_TARGET __attribute__((target("avx2")))
#else
#define OLAPDC_BITSET_WIDE_TARGET
#endif

OLAPDC_BITSET_WIDE_TARGET inline void OrWide(uint64_t* w, const uint64_t* v,
                                             int n) {
  int i = 0;
#ifdef OLAPDC_BITSET_X86_DISPATCH
  // Two 256-bit blocks per iteration: halves the loop overhead and
  // lets the independent load/op/store chains overlap in the pipeline.
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i),
                        _mm256_or_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i + 4),
                        _mm256_or_si256(a1, b1));
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i),
                        _mm256_or_si256(a, b));
  }
#else
  for (; i + 4 <= n; i += 4) {
    w[i] |= v[i];
    w[i + 1] |= v[i + 1];
    w[i + 2] |= v[i + 2];
    w[i + 3] |= v[i + 3];
  }
#endif
  for (; i < n; ++i) w[i] |= v[i];
}

OLAPDC_BITSET_WIDE_TARGET inline void AndWide(uint64_t* w, const uint64_t* v,
                                              int n) {
  int i = 0;
#ifdef OLAPDC_BITSET_X86_DISPATCH
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i),
                        _mm256_and_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i + 4),
                        _mm256_and_si256(a1, b1));
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i),
                        _mm256_and_si256(a, b));
  }
#else
  for (; i + 4 <= n; i += 4) {
    w[i] &= v[i];
    w[i + 1] &= v[i + 1];
    w[i + 2] &= v[i + 2];
    w[i + 3] &= v[i + 3];
  }
#endif
  for (; i < n; ++i) w[i] &= v[i];
}

OLAPDC_BITSET_WIDE_TARGET inline void AndNotWide(uint64_t* w,
                                                 const uint64_t* v, int n) {
  int i = 0;
#ifdef OLAPDC_BITSET_X86_DISPATCH
  // andnot computes (~b) & a.
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i),
                        _mm256_andnot_si256(b0, a0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i + 4),
                        _mm256_andnot_si256(b1, a1));
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i),
                        _mm256_andnot_si256(b, a));
  }
#else
  for (; i + 4 <= n; i += 4) {
    w[i] &= ~v[i];
    w[i + 1] &= ~v[i + 1];
    w[i + 2] &= ~v[i + 2];
    w[i + 3] &= ~v[i + 3];
  }
#endif
  for (; i < n; ++i) w[i] &= ~v[i];
}

OLAPDC_BITSET_WIDE_TARGET inline bool AnyWide(const uint64_t* w, int n) {
  int i = 0;
#ifdef OLAPDC_BITSET_X86_DISPATCH
  // Pairs of blocks fold into one OR before the test: one branch per
  // 512 bits instead of per 256, which matters on the full-scan
  // (all-zero) path where every branch is taken.
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i t = _mm256_or_si256(a0, a1);
    if (!_mm256_testz_si256(t, t)) return true;
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (!_mm256_testz_si256(a, a)) return true;
  }
#else
  for (; i + 4 <= n; i += 4) {
    if (w[i] | w[i + 1] | w[i + 2] | w[i + 3]) return true;
  }
#endif
  for (; i < n; ++i)
    if (w[i]) return true;
  return false;
}

OLAPDC_BITSET_WIDE_TARGET inline bool IntersectsWide(const uint64_t* w,
                                                     const uint64_t* v,
                                                     int n) {
  int i = 0;
#ifdef OLAPDC_BITSET_X86_DISPATCH
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i + 4));
    __m256i t = _mm256_or_si256(_mm256_and_si256(a0, b0),
                                _mm256_and_si256(a1, b1));
    if (!_mm256_testz_si256(t, t)) return true;
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    if (!_mm256_testz_si256(a, b)) return true;
  }
#else
  for (; i + 4 <= n; i += 4) {
    if ((w[i] & v[i]) | (w[i + 1] & v[i + 1]) | (w[i + 2] & v[i + 2]) |
        (w[i + 3] & v[i + 3])) {
      return true;
    }
  }
#endif
  for (; i < n; ++i)
    if (w[i] & v[i]) return true;
  return false;
}

OLAPDC_BITSET_WIDE_TARGET inline bool AndNotAnyWide(const uint64_t* w,
                                                    const uint64_t* v,
                                                    int n) {
  int i = 0;
#ifdef OLAPDC_BITSET_X86_DISPATCH
  // andnot computes (~v) & w — exactly the violating bits. Pairs fold
  // into one OR so the subset-holds path takes one branch per 512
  // bits.
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i + 4));
    __m256i t = _mm256_or_si256(_mm256_andnot_si256(b0, a0),
                                _mm256_andnot_si256(b1, a1));
    if (!_mm256_testz_si256(t, t)) return true;
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    // testc is 1 iff (~a & b) == 0; we want (w & ~v) != 0, i.e.
    // testc(v, w) == 0.
    if (!_mm256_testc_si256(b, a)) return true;
  }
#else
  for (; i + 4 <= n; i += 4) {
    if ((w[i] & ~v[i]) | (w[i + 1] & ~v[i + 1]) | (w[i + 2] & ~v[i + 2]) |
        (w[i + 3] & ~v[i + 3])) {
      return true;
    }
  }
#endif
  for (; i < n; ++i)
    if (w[i] & ~v[i]) return true;
  return false;
}

OLAPDC_BITSET_WIDE_TARGET inline bool EqualWide(const uint64_t* w,
                                                const uint64_t* v, int n) {
  int i = 0;
#ifdef OLAPDC_BITSET_X86_DISPATCH
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i + 4));
    __m256i x = _mm256_or_si256(_mm256_xor_si256(a0, b0),
                                _mm256_xor_si256(a1, b1));
    if (!_mm256_testz_si256(x, x)) return false;
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i x = _mm256_xor_si256(a, b);
    if (!_mm256_testz_si256(x, x)) return false;
  }
#else
  for (; i + 4 <= n; i += 4) {
    if ((w[i] ^ v[i]) | (w[i + 1] ^ v[i + 1]) | (w[i + 2] ^ v[i + 2]) |
        (w[i + 3] ^ v[i + 3])) {
      return false;
    }
  }
#endif
  for (; i < n; ++i)
    if (w[i] != v[i]) return false;
  return true;
}

/// popcount has no AVX2 single instruction; the win here is plain
/// 4-way unrolling (independent popcntq chains).
inline int CountWide(const uint64_t* w, int n) {
  int i = 0;
  int c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += __builtin_popcountll(w[i]);
    c1 += __builtin_popcountll(w[i + 1]);
    c2 += __builtin_popcountll(w[i + 2]);
    c3 += __builtin_popcountll(w[i + 3]);
  }
  int count = c0 + c1 + c2 + c3;
  for (; i < n; ++i) count += __builtin_popcountll(w[i]);
  return count;
}

#undef OLAPDC_BITSET_WIDE_TARGET

/// One cached branch: wide kernels require both CPU support and the
/// process toggle. Word counts below 4 take the scalar path outright —
/// the wide preamble would fall through to the tail loop anyway.
inline bool UseWide(int n) {
  return n >= 4 && CpuHasAvx2() && WideKernelsEnabled();
}

inline void Or(uint64_t* w, const uint64_t* v, int n) {
  if (UseWide(n)) {
    OrWide(w, v, n);
  } else {
    OrScalar(w, v, n);
  }
}
inline void And(uint64_t* w, const uint64_t* v, int n) {
  if (UseWide(n)) {
    AndWide(w, v, n);
  } else {
    AndScalar(w, v, n);
  }
}
inline void AndNot(uint64_t* w, const uint64_t* v, int n) {
  if (UseWide(n)) {
    AndNotWide(w, v, n);
  } else {
    AndNotScalar(w, v, n);
  }
}
inline bool Any(const uint64_t* w, int n) {
  if (UseWide(n)) return AnyWide(w, n);
  return AnyScalar(w, n);
}
inline bool Intersects(const uint64_t* w, const uint64_t* v, int n) {
  if (UseWide(n)) return IntersectsWide(w, v, n);
  return IntersectsScalar(w, v, n);
}
inline bool AndNotAny(const uint64_t* w, const uint64_t* v, int n) {
  if (UseWide(n)) return AndNotAnyWide(w, v, n);
  return AndNotAnyScalar(w, v, n);
}
inline bool Equal(const uint64_t* w, const uint64_t* v, int n) {
  if (UseWide(n)) return EqualWide(w, v, n);
  return EqualScalar(w, v, n);
}
inline int Count(const uint64_t* w, int n) {
  if (UseWide(n)) return CountWide(w, n);
  return CountScalar(w, n);
}

}  // namespace bitset_kernels

/// A set of small non-negative integers (node ids) backed by 64-bit
/// words. Size is fixed at construction; all binary operations require
/// operands of equal size. Universes up to kInlineWords * 64 elements
/// are stored inline (no heap allocation, copies are plain memcpy).
class DynamicBitset {
 public:
  /// Inline capacity in words: 512 elements cover every schema the
  /// paper's workloads (and our generators) produce with room to
  /// spare, and 8 words is an exact multiple of the 4-word kernel
  /// stride, so inline sets never pay the remainder loop.
  static constexpr int kInlineWords = 8;
  static constexpr int kInlineBits = kInlineWords * 64;

  DynamicBitset() = default;

  /// Creates an empty set over the universe {0, ..., size-1}.
  explicit DynamicBitset(int size)
      : size_(size), num_words_((size + 63) / 64) {
    OLAPDC_CHECK(size >= 0);
    if (num_words_ > kInlineWords) heap_.assign(num_words_, 0);
  }

  DynamicBitset(const DynamicBitset&) = default;
  DynamicBitset& operator=(const DynamicBitset&) = default;
  DynamicBitset(DynamicBitset&&) = default;
  DynamicBitset& operator=(DynamicBitset&&) = default;

  int size() const { return size_; }

  bool test(int i) const {
    OLAPDC_DCHECK(0 <= i && i < size_);
    return (data()[i >> 6] >> (i & 63)) & 1;
  }

  void set(int i) {
    OLAPDC_DCHECK(0 <= i && i < size_);
    data()[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void reset(int i) {
    OLAPDC_DCHECK(0 <= i && i < size_);
    data()[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void clear() {
    uint64_t* w = data();
    for (int i = 0; i < num_words_; ++i) w[i] = 0;
  }

  bool any() const { return bitset_kernels::Any(data(), num_words_); }

  bool none() const { return !any(); }

  int count() const { return bitset_kernels::Count(data(), num_words_); }

  /// In-place union.
  DynamicBitset& operator|=(const DynamicBitset& o) {
    OLAPDC_DCHECK(size_ == o.size_);
    bitset_kernels::Or(data(), o.data(), num_words_);
    return *this;
  }

  /// In-place intersection.
  DynamicBitset& operator&=(const DynamicBitset& o) {
    OLAPDC_DCHECK(size_ == o.size_);
    bitset_kernels::And(data(), o.data(), num_words_);
    return *this;
  }

  /// In-place difference (this \ o).
  DynamicBitset& operator-=(const DynamicBitset& o) {
    OLAPDC_DCHECK(size_ == o.size_);
    bitset_kernels::AndNot(data(), o.data(), num_words_);
    return *this;
  }

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator-(DynamicBitset a, const DynamicBitset& b) {
    a -= b;
    return a;
  }

  bool operator==(const DynamicBitset& o) const {
    if (size_ != o.size_) return false;
    return bitset_kernels::Equal(data(), o.data(), num_words_);
  }
  bool operator!=(const DynamicBitset& o) const { return !(*this == o); }

  /// True if this and o share at least one element.
  bool Intersects(const DynamicBitset& o) const {
    OLAPDC_DCHECK(size_ == o.size_);
    return bitset_kernels::Intersects(data(), o.data(), num_words_);
  }

  /// True if some element of this is missing from o — the fused
  /// and-not-any the DIMSAT into-prune asks ("is any forced target
  /// outside the allowed set?") without materializing (this \ o).
  bool AndNotAny(const DynamicBitset& o) const {
    OLAPDC_DCHECK(size_ == o.size_);
    return bitset_kernels::AndNotAny(data(), o.data(), num_words_);
  }

  /// True if every element of this is in o.
  bool IsSubsetOf(const DynamicBitset& o) const { return !AndNotAny(o); }

  /// The smallest element, or -1 if empty.
  int First() const {
    const uint64_t* w = data();
    for (int i = 0; i < num_words_; ++i)
      if (w[i]) return i * 64 + __builtin_ctzll(w[i]);
    return -1;
  }

  /// The smallest element strictly greater than i, or -1 if none.
  int Next(int i) const {
    ++i;
    if (i >= size_) return -1;
    const uint64_t* words = data();
    int wi = i >> 6;
    uint64_t w = words[wi] & (~uint64_t{0} << (i & 63));
    while (true) {
      if (w) return wi * 64 + __builtin_ctzll(w);
      if (++wi >= num_words_) return -1;
      w = words[wi];
    }
  }

  /// Calls fn(i) for every element i in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int i = First(); i >= 0; i = Next(i)) fn(i);
  }

  /// The elements as a sorted vector (for error messages and tests).
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(count());
    ForEach([&](int i) { out.push_back(i); });
    return out;
  }

  /// Hash over contents (for use as an unordered_map key).
  size_t Hash() const {
    const uint64_t* w = data();
    size_t h = static_cast<size_t>(size_);
    for (int i = 0; i < num_words_; ++i)
      h = h * 1099511628211ULL + static_cast<size_t>(w[i]);
    return h;
  }

 private:
  const uint64_t* data() const {
    return num_words_ <= kInlineWords ? inline_.data() : heap_.data();
  }
  uint64_t* data() {
    return num_words_ <= kInlineWords ? inline_.data() : heap_.data();
  }

  // The inline buffer leads the object at 32-byte alignment so the
  // 256-bit kernel loads on SBO sets are never cache-line-split; the
  // object stays 96 bytes (96 % 32 == 0, so vector elements keep the
  // alignment too).
  alignas(32) std::array<uint64_t, kInlineWords> inline_{};
  int size_ = 0;
  int num_words_ = 0;
  std::vector<uint64_t> heap_;
};

}  // namespace olapdc

#endif  // OLAPDC_COMMON_BITSET_H_
