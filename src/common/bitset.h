// DynamicBitset: a fixed-capacity, heap-compact bitset sized at run
// time, with small-buffer optimization. Category sets inside the DIMSAT
// search (subhierarchy node sets, In*/ancestor sets, frontier sets) are
// DynamicBitsets; schemas are at most a few hundred categories, so the
// words live in an inline array (kInlineWords * 64 bits) and copying or
// constructing a set on the EXPAND hot path touches no allocator at
// all. Larger universes transparently spill to a heap vector — nothing
// caps the schema size, only the fast path assumes it is small.

#ifndef OLAPDC_COMMON_BITSET_H_
#define OLAPDC_COMMON_BITSET_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace olapdc {

/// A set of small non-negative integers (node ids) backed by 64-bit
/// words. Size is fixed at construction; all binary operations require
/// operands of equal size. Universes up to kInlineWords * 64 elements
/// are stored inline (no heap allocation, copies are plain memcpy).
class DynamicBitset {
 public:
  /// Inline capacity in words: 384 elements cover every schema the
  /// paper's workloads (and our generators) produce with room to spare.
  static constexpr int kInlineWords = 6;
  static constexpr int kInlineBits = kInlineWords * 64;

  DynamicBitset() = default;

  /// Creates an empty set over the universe {0, ..., size-1}.
  explicit DynamicBitset(int size)
      : size_(size), num_words_((size + 63) / 64) {
    OLAPDC_CHECK(size >= 0);
    if (num_words_ > kInlineWords) heap_.assign(num_words_, 0);
  }

  DynamicBitset(const DynamicBitset&) = default;
  DynamicBitset& operator=(const DynamicBitset&) = default;
  DynamicBitset(DynamicBitset&&) = default;
  DynamicBitset& operator=(DynamicBitset&&) = default;

  int size() const { return size_; }

  bool test(int i) const {
    OLAPDC_DCHECK(0 <= i && i < size_);
    return (data()[i >> 6] >> (i & 63)) & 1;
  }

  void set(int i) {
    OLAPDC_DCHECK(0 <= i && i < size_);
    data()[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void reset(int i) {
    OLAPDC_DCHECK(0 <= i && i < size_);
    data()[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void clear() {
    uint64_t* w = data();
    for (int i = 0; i < num_words_; ++i) w[i] = 0;
  }

  bool any() const {
    const uint64_t* w = data();
    for (int i = 0; i < num_words_; ++i)
      if (w[i]) return true;
    return false;
  }

  bool none() const { return !any(); }

  int count() const {
    const uint64_t* w = data();
    int n = 0;
    for (int i = 0; i < num_words_; ++i) n += __builtin_popcountll(w[i]);
    return n;
  }

  /// In-place union.
  DynamicBitset& operator|=(const DynamicBitset& o) {
    OLAPDC_DCHECK(size_ == o.size_);
    uint64_t* w = data();
    const uint64_t* v = o.data();
    for (int i = 0; i < num_words_; ++i) w[i] |= v[i];
    return *this;
  }

  /// In-place intersection.
  DynamicBitset& operator&=(const DynamicBitset& o) {
    OLAPDC_DCHECK(size_ == o.size_);
    uint64_t* w = data();
    const uint64_t* v = o.data();
    for (int i = 0; i < num_words_; ++i) w[i] &= v[i];
    return *this;
  }

  /// In-place difference (this \ o).
  DynamicBitset& operator-=(const DynamicBitset& o) {
    OLAPDC_DCHECK(size_ == o.size_);
    uint64_t* w = data();
    const uint64_t* v = o.data();
    for (int i = 0; i < num_words_; ++i) w[i] &= ~v[i];
    return *this;
  }

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator-(DynamicBitset a, const DynamicBitset& b) {
    a -= b;
    return a;
  }

  bool operator==(const DynamicBitset& o) const {
    if (size_ != o.size_) return false;
    const uint64_t* w = data();
    const uint64_t* v = o.data();
    for (int i = 0; i < num_words_; ++i)
      if (w[i] != v[i]) return false;
    return true;
  }
  bool operator!=(const DynamicBitset& o) const { return !(*this == o); }

  /// True if this and o share at least one element.
  bool Intersects(const DynamicBitset& o) const {
    OLAPDC_DCHECK(size_ == o.size_);
    const uint64_t* w = data();
    const uint64_t* v = o.data();
    for (int i = 0; i < num_words_; ++i)
      if (w[i] & v[i]) return true;
    return false;
  }

  /// True if every element of this is in o.
  bool IsSubsetOf(const DynamicBitset& o) const {
    OLAPDC_DCHECK(size_ == o.size_);
    const uint64_t* w = data();
    const uint64_t* v = o.data();
    for (int i = 0; i < num_words_; ++i)
      if (w[i] & ~v[i]) return false;
    return true;
  }

  /// The smallest element, or -1 if empty.
  int First() const {
    const uint64_t* w = data();
    for (int i = 0; i < num_words_; ++i)
      if (w[i]) return i * 64 + __builtin_ctzll(w[i]);
    return -1;
  }

  /// The smallest element strictly greater than i, or -1 if none.
  int Next(int i) const {
    ++i;
    if (i >= size_) return -1;
    const uint64_t* words = data();
    int wi = i >> 6;
    uint64_t w = words[wi] & (~uint64_t{0} << (i & 63));
    while (true) {
      if (w) return wi * 64 + __builtin_ctzll(w);
      if (++wi >= num_words_) return -1;
      w = words[wi];
    }
  }

  /// Calls fn(i) for every element i in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int i = First(); i >= 0; i = Next(i)) fn(i);
  }

  /// The elements as a sorted vector (for error messages and tests).
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(count());
    ForEach([&](int i) { out.push_back(i); });
    return out;
  }

  /// Hash over contents (for use as an unordered_map key).
  size_t Hash() const {
    const uint64_t* w = data();
    size_t h = static_cast<size_t>(size_);
    for (int i = 0; i < num_words_; ++i)
      h = h * 1099511628211ULL + static_cast<size_t>(w[i]);
    return h;
  }

 private:
  const uint64_t* data() const {
    return num_words_ <= kInlineWords ? inline_.data() : heap_.data();
  }
  uint64_t* data() {
    return num_words_ <= kInlineWords ? inline_.data() : heap_.data();
  }

  int size_ = 0;
  int num_words_ = 0;
  std::array<uint64_t, kInlineWords> inline_{};
  std::vector<uint64_t> heap_;
};

}  // namespace olapdc

#endif  // OLAPDC_COMMON_BITSET_H_
