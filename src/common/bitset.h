// DynamicBitset: a fixed-capacity, heap-compact bitset sized at run
// time. Category sets inside the DIMSAT search (subhierarchy node sets,
// In*/ancestor sets, frontier sets) are DynamicBitsets: copying a whole
// subhierarchy on recursion is then a handful of memcpys, which is what
// makes copy-on-recurse backtracking cheap.

#ifndef OLAPDC_COMMON_BITSET_H_
#define OLAPDC_COMMON_BITSET_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace olapdc {

/// A set of small non-negative integers (node ids) backed by 64-bit
/// words. Size is fixed at construction; all binary operations require
/// operands of equal size.
class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}

  /// Creates an empty set over the universe {0, ..., size-1}.
  explicit DynamicBitset(int size)
      : size_(size), words_((size + 63) / 64, 0) {
    OLAPDC_CHECK(size >= 0);
  }

  DynamicBitset(const DynamicBitset&) = default;
  DynamicBitset& operator=(const DynamicBitset&) = default;
  DynamicBitset(DynamicBitset&&) = default;
  DynamicBitset& operator=(DynamicBitset&&) = default;

  int size() const { return size_; }

  bool test(int i) const {
    OLAPDC_DCHECK(0 <= i && i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(int i) {
    OLAPDC_DCHECK(0 <= i && i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void reset(int i) {
    OLAPDC_DCHECK(0 <= i && i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  bool none() const { return !any(); }

  int count() const {
    int n = 0;
    for (auto w : words_) n += __builtin_popcountll(w);
    return n;
  }

  /// In-place union.
  DynamicBitset& operator|=(const DynamicBitset& o) {
    OLAPDC_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  /// In-place intersection.
  DynamicBitset& operator&=(const DynamicBitset& o) {
    OLAPDC_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  /// In-place difference (this \ o).
  DynamicBitset& operator-=(const DynamicBitset& o) {
    OLAPDC_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator-(DynamicBitset a, const DynamicBitset& b) {
    a -= b;
    return a;
  }

  bool operator==(const DynamicBitset& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }
  bool operator!=(const DynamicBitset& o) const { return !(*this == o); }

  /// True if this and o share at least one element.
  bool Intersects(const DynamicBitset& o) const {
    OLAPDC_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  /// True if every element of this is in o.
  bool IsSubsetOf(const DynamicBitset& o) const {
    OLAPDC_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~o.words_[i]) return false;
    return true;
  }

  /// The smallest element, or -1 if empty.
  int First() const {
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i]) return static_cast<int>(i * 64 + __builtin_ctzll(words_[i]));
    return -1;
  }

  /// The smallest element strictly greater than i, or -1 if none.
  int Next(int i) const {
    ++i;
    if (i >= size_) return -1;
    size_t wi = i >> 6;
    uint64_t w = words_[wi] & (~uint64_t{0} << (i & 63));
    while (true) {
      if (w) return static_cast<int>(wi * 64 + __builtin_ctzll(w));
      if (++wi >= words_.size()) return -1;
      w = words_[wi];
    }
  }

  /// Calls fn(i) for every element i in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int i = First(); i >= 0; i = Next(i)) fn(i);
  }

  /// The elements as a sorted vector (for error messages and tests).
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(count());
    ForEach([&](int i) { out.push_back(i); });
    return out;
  }

  /// Hash over contents (for use as an unordered_map key).
  size_t Hash() const {
    size_t h = static_cast<size_t>(size_);
    for (auto w : words_) h = h * 1099511628211ULL + static_cast<size_t>(w);
    return h;
  }

 private:
  int size_;
  std::vector<uint64_t> words_;
};

}  // namespace olapdc

#endif  // OLAPDC_COMMON_BITSET_H_
