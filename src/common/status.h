// Status: lightweight error signaling for the olapdc library.
//
// The library does not throw exceptions across its public API (following
// the Arrow/RocksDB convention for database libraries). Fallible
// operations return a Status, or a Result<T> (see result.h) when they
// also produce a value.

#ifndef OLAPDC_COMMON_STATUS_H_
#define OLAPDC_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace olapdc {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument is malformed (unknown category name,
  /// non-simple path, empty set, ...).
  kInvalidArgument = 1,
  /// A dimension instance violates one of the conditions C1-C7, or a
  /// schema violates the hierarchy-schema conditions of Definition 1.
  kInvalidModel = 2,
  /// A syntax error while parsing a dimension constraint.
  kParseError = 3,
  /// A configured resource limit was exceeded (e.g. the simple-path
  /// enumeration cap, or the DIMSAT expansion budget).
  kResourceExhausted = 4,
  /// An entity looked up by name/id does not exist.
  kNotFound = 5,
  /// An internal invariant failed; indicates a bug in olapdc itself.
  kInternal = 6,
  /// A wall-clock deadline passed before the operation finished; any
  /// partial statistics accompanying the status are a lower bound on
  /// the work the full run would have needed.
  kDeadlineExceeded = 7,
  /// The caller cooperatively cancelled the operation before it
  /// finished.
  kCancelled = 8,
  /// The service is overloaded and shed the request before doing any
  /// work (admission control). Unlike the budget errors, no partial
  /// result exists; the message carries a retry-after-ms hint and the
  /// request is safe to retry verbatim after backing off.
  kUnavailable = 9,
};

/// Returns a short human-readable name for `code` ("OK", "Invalid
/// argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// The outcome of a fallible operation: either OK, or an error code plus
/// a human-readable message. Cheap to return in the success case (a
/// single null pointer).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status InvalidModel(std::string msg) {
    return Status(StatusCode::kInvalidModel, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null iff OK. shared_ptr keeps Status copyable and cheap to pass.
  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// True for the status codes that mean "the search stopped early under a
/// resource budget" rather than "the inputs or the library are broken":
/// kResourceExhausted, kDeadlineExceeded and kCancelled. Results carrying
/// such a status are *partial* — accumulated statistics are still valid,
/// and retrying with a larger budget may produce a definitive answer.
inline bool IsBudgetError(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled;
}
inline bool IsBudgetError(const Status& status) {
  return IsBudgetError(status.code());
}

/// True for statuses a client may sensibly retry after backing off: the
/// budget errors (a larger budget may succeed) plus kUnavailable (the
/// overload that shed the request is transient by definition).
/// kCancelled is formally a budget error but retrying a request the
/// caller abandoned is rarely wanted — callers that cancel know they
/// did.
inline bool IsRetryableError(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kUnavailable;
}
inline bool IsRetryableError(const Status& status) {
  return IsRetryableError(status.code());
}

}  // namespace olapdc

/// Propagates a non-OK Status from an expression to the caller.
#define OLAPDC_RETURN_NOT_OK(expr)                   \
  do {                                               \
    ::olapdc::Status _olapdc_status = (expr);        \
    if (!_olapdc_status.ok()) return _olapdc_status; \
  } while (false)

#endif  // OLAPDC_COMMON_STATUS_H_
