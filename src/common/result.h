// Result<T>: value-or-Status, the return type of fallible operations
// that produce a value (Arrow's arrow::Result idiom).

#ifndef OLAPDC_COMMON_RESULT_H_
#define OLAPDC_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace olapdc {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// Typical use:
///
///   Result<HierarchySchema> r = builder.Build();
///   if (!r.ok()) return r.status();
///   HierarchySchema schema = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : rep_(std::in_place_index<0>, std::move(value)) {}

  /// Constructs from a non-OK status (implicit, so
  /// `return Status::InvalidArgument(...);` works).
  Result(Status status) : rep_(std::in_place_index<1>, std::move(status)) {
    OLAPDC_CHECK(!std::get<1>(rep_).ok())
        << "Result constructed from an OK Status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return rep_.index() == 0; }

  /// The error; Status::OK() if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(rep_);
  }

  /// The held value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    OLAPDC_CHECK(ok()) << "Result holds error: " << status().ToString();
    return std::get<0>(rep_);
  }
  T& ValueOrDie() & {
    OLAPDC_CHECK(ok()) << "Result holds error: " << status().ToString();
    return std::get<0>(rep_);
  }
  T ValueOrDie() && {
    OLAPDC_CHECK(ok()) << "Result holds error: " << status().ToString();
    return std::move(std::get<0>(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace olapdc

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error to the caller. `lhs` may include a declaration:
///   OLAPDC_ASSIGN_OR_RETURN(auto schema, builder.Build());
#define OLAPDC_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  OLAPDC_ASSIGN_OR_RETURN_IMPL(                                  \
      OLAPDC_CONCAT_NAME(_olapdc_result, __COUNTER__), lhs, rexpr)

#define OLAPDC_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).ValueOrDie()

#define OLAPDC_CONCAT_NAME(x, y) OLAPDC_CONCAT_NAME_IMPL(x, y)
#define OLAPDC_CONCAT_NAME_IMPL(x, y) x##y

#endif  // OLAPDC_COMMON_RESULT_H_
