// Small string helpers shared across olapdc modules.

#ifndef OLAPDC_COMMON_STRING_UTIL_H_
#define OLAPDC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace olapdc {

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Joins fn(x) over `items` with `sep`; fn must return something
/// appendable to a std::string.
template <typename Container, typename Fn>
std::string JoinMapped(const Container& items, std::string_view sep, Fn&& fn) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    out += fn(item);
  }
  return out;
}

}  // namespace olapdc

#endif  // OLAPDC_COMMON_STRING_UTIL_H_
