// ShardedCache: the common substrate of the service-level caches
// (ROADMAP item 2). Three layers sit on it — the canonicalized
// constraint/response cache, the DIMSAT no-good store, and the shared
// implication-closure cache — all keyed by a (schema, Σ) epoch so a
// theory edit invalidates logically and atomically: the epoch is part
// of every key, so entries of a dead epoch can never hit again and age
// out through the LRU like any other cold entry.
//
// Concurrency is sharded: the key hash picks one of a power-of-two
// number of shards, each an independently locked LRU map, so readers
// on different keys do not serialize. Entries are byte-charged against
// a per-shard slice of the configured capacity and the least recently
// used entries are evicted *before* an insert would exceed it — the
// cache can therefore never be the component that runs the process out
// of memory. The same charges flow through an optional MemoryBudget
// (Reserve/Release) so cache residency shows up on the olapdc.mem
// accounting; the budget is used for *observability*, not enforcement,
// because MemoryBudget exhaustion is deliberately sticky (memory
// pressure does not un-happen within a request) while a cache must
// keep admitting entries after evicting under pressure.
//
// Every operation counts into the olapdc.cache.* metric family, both
// the aggregate (olapdc.cache.hits) and a per-layer breakdown
// (olapdc.cache.<name>.hits) — docs/caching.md has the inventory.

#ifndef OLAPDC_COMMON_CACHE_SHARD_H_
#define OLAPDC_COMMON_CACHE_SHARD_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/memory_budget.h"
#include "obs/metrics.h"

namespace olapdc {

/// A 128-bit content fingerprint: two independent 64-bit FNV-1a style
/// streams over the same bytes. Used for schema epochs, normalized
/// constraint identities, and no-good subhierarchy signatures — places
/// where a collision would silently alias two different theories, so
/// 64 bits (birthday-bounded at ~2^32 entries) is not enough margin.
struct Fingerprint128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Fingerprint128& o) const {
    return hi == o.hi && lo == o.lo;
  }
  bool operator!=(const Fingerprint128& o) const { return !(*this == o); }
  bool operator<(const Fingerprint128& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// Compact stable rendering for cache keys, /varz, and serialized
  /// no-good stores.
  std::string ToHex() const {
    static const char* kDigits = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 32; ++i) {
      const uint64_t word = i < 16 ? hi : lo;
      out[static_cast<size_t>(i)] =
          kDigits[(word >> (60 - 4 * (i & 15))) & 0xF];
    }
    return out;
  }
};

struct Fingerprint128Hash {
  size_t operator()(const Fingerprint128& f) const {
    return static_cast<size_t>(f.lo ^ (f.hi * 0x9E3779B97F4A7C15ull));
  }
};

/// Incremental 128-bit hasher: mix in bytes and integers, then take the
/// fingerprint. Both streams see every input, with different offset
/// bases and a different post-mix, so they fail independently.
class Fingerprinter {
 public:
  Fingerprinter() = default;

  Fingerprinter& Mix(std::string_view bytes) {
    for (const char c : bytes) MixByte(static_cast<unsigned char>(c));
    return *this;
  }

  Fingerprinter& Mix(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<unsigned char>(value >> (8 * i)));
    }
    return *this;
  }

  Fingerprint128 Final() const {
    // Finalization (splitmix64) so short inputs still diffuse into all
    // 128 bits.
    return Fingerprint128{Scramble(a_ + 0x9E3779B97F4A7C15ull),
                          Scramble(b_ ^ 0x94D049BB133111EBull)};
  }

 private:
  void MixByte(unsigned char c) {
    a_ = (a_ ^ c) * 0x100000001B3ull;         // FNV-1a prime
    b_ = (b_ ^ c) * 0x00000100000001B3ull + 0x2545F4914F6CDD1Dull;
  }

  static uint64_t Scramble(uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  uint64_t a_ = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  uint64_t b_ = 0x84222325CBF29CE4ull;
};

inline Fingerprint128 FingerprintBytes(std::string_view bytes) {
  return Fingerprinter().Mix(bytes).Final();
}

/// Point-in-time counters of one cache (atomically sampled; the fields
/// are mutually consistent only when the cache is quiescent — the same
/// contract as DimService's outcome accounting).
struct CacheStatsSnapshot {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

/// A sharded, byte-capped LRU map. Thread-safe. Key and Value must be
/// copyable (values are copied out under the shard lock so a concurrent
/// eviction can never invalidate a returned value).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  struct Options {
    /// Metric label: operations count into olapdc.cache.<name>.* and
    /// the olapdc.cache.* aggregate. Empty disables the per-layer
    /// breakdown (the aggregate still counts).
    std::string name;
    /// Rounded up to a power of two.
    size_t num_shards = 8;
    /// Byte capacity across all shards (each shard enforces its slice);
    /// 0 means uncapped.
    uint64_t max_bytes = 8ull << 20;
    /// Fixed per-entry overhead added to the caller's value_bytes
    /// (list node, map node, key storage).
    uint64_t entry_overhead_bytes = 96;
    /// Observability charge target; not owned, may be null. Eviction is
    /// enforced by max_bytes, never by this budget (see file comment).
    MemoryBudget* memory = nullptr;
  };

  explicit ShardedCache(Options options) : options_(std::move(options)) {
    size_t shards = 1;
    while (shards < options_.num_shards) shards <<= 1;
    shard_mask_ = shards - 1;
    shards_ = std::vector<Shard>(shards);
    shard_max_bytes_ = options_.max_bytes == 0
                           ? 0
                           : std::max<uint64_t>(options_.max_bytes / shards, 1);
    if (!options_.name.empty()) {
      hit_metric_ = "olapdc.cache." + options_.name + ".hits";
      miss_metric_ = "olapdc.cache." + options_.name + ".misses";
      eviction_metric_ = "olapdc.cache." + options_.name + ".evictions";
    }
  }

  ~ShardedCache() { Clear(); }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// True (and copies the value into *out, which may be null) iff `key`
  /// is resident; a hit refreshes the entry's LRU position.
  bool Lookup(const Key& key, Value* out) {
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        if (out != nullptr) *out = it->second->value;
        hits_.fetch_add(1, std::memory_order_relaxed);
        CountOp(hit_metric_, "olapdc.cache.hits");
        return true;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    CountOp(miss_metric_, "olapdc.cache.misses");
    return false;
  }

  /// Probe without copy (set-style callers: the no-good store).
  bool Contains(const Key& key) { return Lookup(key, nullptr); }

  /// Inserts (or refreshes) key -> value, charging entry_overhead +
  /// value_bytes. LRU entries are evicted first whenever the shard's
  /// byte slice would overflow; a value larger than the whole slice is
  /// not admitted at all (callers shouldn't cache what they couldn't
  /// retain).
  void Insert(const Key& key, Value value, uint64_t value_bytes) {
    const uint64_t bytes = value_bytes + options_.entry_overhead_bytes;
    if (shard_max_bytes_ != 0 && bytes > shard_max_bytes_) return;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Refresh in place; re-charge the delta.
      ChargeBytes(shard, bytes);
      ReleaseBytes(shard, it->second->bytes);
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      EvictOverflow(shard);
      return;
    }
    ChargeBytes(shard, bytes);
    shard.lru.push_front(Entry{key, std::move(value), bytes});
    shard.map.emplace(key, shard.lru.begin());
    insertions_.fetch_add(1, std::memory_order_relaxed);
    EvictOverflow(shard);
  }

  /// Drops every entry. (Epoch-keyed callers rarely need this — dead
  /// epochs age out — but tests and explicit flush endpoints do.)
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      ReleaseBytes(shard, shard.bytes);
      shard.map.clear();
      shard.lru.clear();
    }
  }

  CacheStatsSnapshot Stats() const {
    CacheStatsSnapshot s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      s.entries += shard.map.size();
      s.bytes += shard.bytes;
    }
    return s;
  }

  uint64_t size() const { return Stats().entries; }
  uint64_t max_bytes() const { return options_.max_bytes; }
  const std::string& name() const { return options_.name; }

  /// Calls fn(key, value) for every resident entry, shard by shard
  /// (serialization of the no-good store). Entries inserted or evicted
  /// concurrently may or may not be visited.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const Entry& entry : shard.lru) fn(entry.key, entry.value);
    }
  }

 private:
  struct Entry {
    Key key;
    Value value;
    uint64_t bytes;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map;
    uint64_t bytes = 0;  // guarded by mu
  };

  Shard& ShardFor(const Key& key) {
    return shards_[Hash{}(key) & shard_mask_];
  }

  void ChargeBytes(Shard& shard, uint64_t bytes) {
    shard.bytes += bytes;
    if (options_.memory != nullptr) {
      // Observability only: a track-only charge that can't fail when
      // the budget's limit is 0, and whose failure (shared capped
      // budget) we deliberately ignore — max_bytes is the enforcer.
      (void)options_.memory->Reserve(bytes, "cache.insert");
    }
  }

  void ReleaseBytes(Shard& shard, uint64_t bytes) {
    shard.bytes -= bytes;
    if (options_.memory != nullptr) options_.memory->Release(bytes);
  }

  /// Evicts least-recently-used entries until the shard fits its slice.
  /// Called with shard.mu held.
  void EvictOverflow(Shard& shard) {
    if (shard_max_bytes_ == 0) return;
    while (shard.bytes > shard_max_bytes_ && !shard.lru.empty()) {
      Entry& victim = shard.lru.back();
      ReleaseBytes(shard, victim.bytes);
      shard.map.erase(victim.key);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      CountOp(eviction_metric_, "olapdc.cache.evictions");
    }
  }

  void CountOp(const std::string& layer_metric, const char* aggregate) {
    if (!obs::MetricsEnabled()) return;
    obs::Count(aggregate);
    if (!layer_metric.empty()) obs::Count(layer_metric);
  }

  Options options_;
  size_t shard_mask_ = 0;
  uint64_t shard_max_bytes_ = 0;
  std::vector<Shard> shards_;
  std::string hit_metric_;
  std::string miss_metric_;
  std::string eviction_metric_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace olapdc

#endif  // OLAPDC_COMMON_CACHE_SHARD_H_
