#include "common/status.h"

namespace olapdc {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kInvalidModel:
      return "Invalid model";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace olapdc
