// FaultInjector: deterministic fault injection at named sites, for
// exercising degradation paths in tests.
//
// Production code sprinkles MaybeFail("module.site") probes at the
// places where a real deployment can fail (budget exhaustion in DIMSAT,
// parse failures at the I/O boundary, internal errors inside the
// reasoner). Disarmed — the default — a probe costs one relaxed atomic
// load and returns OK. Tests arm the global injector with a seed and
// configure, per site, a StatusCode and a probability; each site draws
// from its own RNG stream seeded from (seed, site name), so the fault
// sequence at one site is reproducible regardless of what other sites
// do or how calls interleave across sites.
//
// The injector is process-global (like LevelDB/TiKV failpoints) so test
// code can reach sites buried arbitrarily deep in the call graph
// without threading a handle through every API. Tests using it must
// Disarm() when done (see ScopedFaultInjection).

#ifndef OLAPDC_COMMON_FAULT_INJECTOR_H_
#define OLAPDC_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace olapdc {

/// Adds `site` to the process-wide fault-site inventory (idempotent).
/// Every module that probes MaybeFail("x.y") registers "x.y" from a
/// namespace-scope initializer, so sweep harnesses (tools/chaos_campaign)
/// can enumerate the full injectable surface without hand-maintaining a
/// list that drifts from the code. Returns true so it can initialize a
/// constant.
bool RegisterFaultSite(std::string_view site);

/// The inventory, sorted. Only sites whose translation unit is linked
/// into the binary appear — which is exactly the set whose probes can
/// fire there.
std::vector<std::string> RegisteredFaultSites();

class FaultInjector {
 public:
  /// The process-wide injector.
  static FaultInjector& Global();

  /// Enables injection and resets every configured site, deterministic
  /// under `seed`.
  void Arm(uint64_t seed);

  /// Disables injection and clears all sites and counters.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Configures `site` to fail with `code` with the given probability
  /// per probe (1.0 = every probe). Requires the injector to be armed.
  void SetFault(const std::string& site, StatusCode code, double probability,
                std::string message = "");

  /// Probes `site`: OK when disarmed or the site is unconfigured;
  /// otherwise fails with the configured status according to the site's
  /// deterministic stream.
  Status MaybeFail(std::string_view site);

  /// Probe / injected-failure counters for `site` (0 when unknown).
  uint64_t probes(std::string_view site) const;
  uint64_t failures(std::string_view site) const;

 private:
  FaultInjector() = default;

  struct Site {
    StatusCode code = StatusCode::kInternal;
    double probability = 0.0;
    std::string message;
    std::mt19937_64 rng;
    uint64_t probes = 0;
    uint64_t failures = 0;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  uint64_t seed_ = 0;
  std::unordered_map<std::string, Site> sites_;
};

/// RAII guard: arms the global injector for the scope, disarms on exit.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(uint64_t seed) {
    FaultInjector::Global().Arm(seed);
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace olapdc

#endif  // OLAPDC_COMMON_FAULT_INJECTOR_H_
