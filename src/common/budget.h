// Budget: cooperative resource governance for the decision procedures.
//
// Category satisfiability is NP-complete (Theorem 4), so a production
// deployment must assume some queries will not finish. A Budget bundles
// the two externally imposed limits — a wall-clock deadline and a
// cooperative cancellation token — behind one Check() call that the hot
// loops (DIMSAT's EXPAND, NaiveSat's subset enumeration) probe
// periodically. The per-run counters (max_expand_calls, path_limit,
// max_frozen) stay in the procedure options; a Budget is about limits
// shared across an entire request, possibly spanning many DIMSAT runs
// (e.g. one Reasoner query = several iterative-deepening rungs under a
// single deadline).
//
// A Budget is passed by const pointer and is safe to share across
// threads: Check() only reads the deadline and the cancellation flag.
// The amortization state lives in a per-search BudgetChecker so
// parallel DIMSAT workers never contend.

#ifndef OLAPDC_COMMON_BUDGET_H_
#define OLAPDC_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "obs/metrics.h"

namespace olapdc {

class MemoryBudget;

/// Read side of a cancellation flag. Default-constructed tokens are
/// "null": never cancelled, and cost one pointer test to probe.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True when this token is wired to a CancellationSource (regardless
  /// of whether cancellation was requested yet).
  bool cancellable() const { return flag_ != nullptr; }

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: the owner keeps the source and hands tokens to the
/// operations it may later want to abandon. Copies share the flag.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  /// Requests cancellation; idempotent, safe from any thread.
  void RequestCancel() { flag_->store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A wall-clock deadline, a cancellation token, and (optionally) a
/// memory budget — the full resource envelope of one request behind a
/// single Check(). Default-constructed Budgets are unbounded (Check()
/// always returns OK).
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  Budget() = default;

  static Budget Unbounded() { return Budget(); }

  /// A budget expiring `timeout` from now.
  static Budget WithDeadline(Clock::duration timeout) {
    Budget b;
    b.deadline_ = Clock::now() + timeout;
    return b;
  }
  static Budget WithDeadlineMs(int64_t ms) {
    return WithDeadline(std::chrono::milliseconds(ms));
  }

  Budget& SetDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    return *this;
  }
  Budget& SetCancellation(CancellationToken token) {
    cancel_ = std::move(token);
    return *this;
  }
  /// Attaches a memory budget; not owned, must outlive the Budget, may
  /// be null. Once `memory->exhausted()` trips (any worker's failed
  /// Reserve), Check() returns its kResourceExhausted status — the trip
  /// propagates through the same amortized probes as a deadline, so
  /// partial-result degradation needs no extra plumbing.
  Budget& SetMemory(MemoryBudget* memory) {
    memory_ = memory;
    return *this;
  }

  bool has_deadline() const { return deadline_.has_value(); }
  MemoryBudget* memory() const { return memory_; }
  bool unbounded() const {
    return !deadline_.has_value() && !cancel_.cancellable() &&
           memory_ == nullptr;
  }

  /// Milliseconds until the deadline (negative once past); +infinity
  /// when no deadline is set.
  double RemainingMs() const;

  /// Full probe: samples the cancellation flag, then the memory
  /// exhausted flag, then the clock. Returns OK, kCancelled,
  /// kResourceExhausted (memory), or kDeadlineExceeded. Cancellation
  /// wins when several apply (the caller asked first).
  Status Check() const;

 private:
  std::optional<Clock::time_point> deadline_;
  CancellationToken cancel_;
  MemoryBudget* memory_ = nullptr;
};

/// Amortizes Budget::Check() for hot loops: only every `stride`-th call
/// performs the full probe (clock read + flag load); the rest pay one
/// pointer test and one increment. The first call always probes, so a
/// pre-expired deadline or pre-cancelled token trips immediately. Once
/// tripped, the error sticks and is returned without re-probing.
///
/// Not thread-safe — give each worker its own checker over the shared
/// Budget.
class BudgetChecker {
 public:
  static constexpr uint32_t kDefaultStride = 256;

  /// `budget` may be null (every Check() returns OK) and must outlive
  /// the checker. A zero `stride` is treated as 1 (probe every call).
  /// A non-empty `site` names the probing loop for observability: when
  /// the budget trips, `olapdc.budget.expired.<site>` (plus a
  /// deadline/cancelled classification counter) is incremented in the
  /// metrics registry — per-site expiry accounting costs nothing on the
  /// non-tripping path.
  explicit BudgetChecker(const Budget* budget,
                         uint32_t stride = kDefaultStride,
                         std::string_view site = {})
      : budget_(budget != nullptr && !budget->unbounded() ? budget : nullptr),
        stride_(stride == 0 ? 1 : stride),
        site_(site) {}

  Status Check() {
    if (budget_ == nullptr || tripped_) return status_;
    if (calls_++ % stride_ != 0) return Status::OK();
    status_ = budget_->Check();
    tripped_ = !status_.ok();
    ++probes_;
    if (tripped_) CountExpiry();
    return status_;
  }

  /// Number of full probes performed (clock samples); for tests.
  uint64_t probes() const { return probes_; }

 private:
  void CountExpiry() const {
    if (!obs::MetricsEnabled()) return;
    switch (status_.code()) {
      case StatusCode::kCancelled:
        obs::Count("olapdc.budget.cancelled");
        break;
      case StatusCode::kResourceExhausted:
        obs::Count("olapdc.budget.memory_exhausted");
        break;
      default:
        obs::Count("olapdc.budget.deadline_exceeded");
        break;
    }
    if (!site_.empty()) obs::Count("olapdc.budget.expired." + site_);
  }

  const Budget* budget_;
  uint32_t stride_;
  std::string site_;
  uint64_t calls_ = 0;
  uint64_t probes_ = 0;
  bool tripped_ = false;
  Status status_;
};

}  // namespace olapdc

#endif  // OLAPDC_COMMON_BUDGET_H_
