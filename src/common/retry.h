// RetryPolicy: exponential backoff with deterministic jitter for the
// transient failure classes (IsRetryableError: budget expiries and
// kUnavailable overload sheds). Checkpoint/resume (core/checkpoint.h)
// turns "deadline exceeded" from start-over into continue-where-you-
// stopped, which makes retrying cheap enough to be the default — the
// Reasoner ladder backs off between rungs with this policy so a shed or
// exhausted rung does not hammer the pool it just overloaded.
//
// Jitter is deterministic under (seed, salt, attempt): two retries of
// the same request desynchronize (different salts) while any single
// schedule is reproducible in tests — the same discipline as the
// FaultInjector's per-site streams.

#ifndef OLAPDC_COMMON_RETRY_H_
#define OLAPDC_COMMON_RETRY_H_

#include <cstdint>

#include "common/budget.h"
#include "common/status.h"

namespace olapdc {

struct RetryPolicy {
  /// Retries after the first attempt; 0 disables retrying.
  int max_retries = 4;
  /// Backoff before retry 1; doubles (see multiplier) per retry. 0
  /// disables sleeping (retry immediately — unit-test friendly).
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  /// Backoff is scaled by a factor drawn uniformly from
  /// [1 - jitter_fraction, 1 + jitter_fraction].
  double jitter_fraction = 0.25;
  /// Seed of the deterministic jitter stream.
  uint64_t seed = 0x9E3779B97F4A7C15ULL;

  /// True when `status` is worth retrying and `attempt` (0-based count
  /// of retries already performed) is below max_retries.
  bool ShouldRetry(const Status& status, int attempt) const {
    return attempt < max_retries && IsRetryableError(status);
  }

  /// Jittered backoff before retry number `attempt` (0-based);
  /// deterministic under (seed, salt, attempt). `salt` distinguishes
  /// concurrent retry schedules (e.g. a hash of the request key).
  double BackoffMs(int attempt, uint64_t salt = 0) const;

  /// Sleeps BackoffMs(attempt, salt), clamped so the sleep never
  /// outlives `budget`'s deadline (no point waiting past the point
  /// where the retry could not run); null budget = full backoff.
  /// Returns the milliseconds actually slept.
  double SleepBackoff(int attempt, const Budget* budget = nullptr,
                      uint64_t salt = 0) const;
};

}  // namespace olapdc

#endif  // OLAPDC_COMMON_RETRY_H_
