// MemoryBudget: the third resource axis next to wall-clock deadlines
// and cancellation. DIMSAT's working set (frozen dimensions collected
// in enumerate-all mode, undo-log frames, parallel task seeds, trace
// events) grows with the search, and on an adversarial schema it grows
// exponentially — a production request must run under a byte cap and
// degrade with kResourceExhausted + partial stats instead of taking the
// process down with it.
//
// Accounting is estimate-based, not allocator interception: the
// structures that dominate a request's footprint reserve an
// approximation of their heap bytes before materializing and release
// them when the request-scoped owner dies (see MemoryReservation). The
// cap is therefore a governor, not an exact rlimit — it bounds the
// request within a small constant factor of the configured limit,
// which is what overload protection needs.
//
// A MemoryBudget is shared read-mostly across the parallel workers of
// one request: Reserve/Release are lock-free atomics, and the
// exhausted flag is sticky so every worker's next Budget::Check() trips
// once any one of them hits the cap (budget-errors-are-data, like a
// deadline).

#ifndef OLAPDC_COMMON_MEMORY_BUDGET_H_
#define OLAPDC_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace olapdc {

class MemoryBudget {
 public:
  /// A budget of `limit_bytes`; 0 means "track but never trip"
  /// (pure accounting).
  explicit MemoryBudget(uint64_t limit_bytes) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes` against the cap. On success the caller owns the
  /// reservation and must Release() it. Failure trips the sticky
  /// exhausted flag, counts olapdc.mem.exhausted, and returns
  /// kResourceExhausted naming `site`; nothing is reserved. The
  /// fault-injection site "mem.reserve" is probed first, so chaos runs
  /// can exhaust memory at any probability without real allocations.
  Status Reserve(uint64_t bytes, std::string_view site);

  void Release(uint64_t bytes);

  uint64_t limit() const { return limit_; }
  uint64_t reserved() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Sticky: true once any Reserve() failed. Budget::Check() surfaces
  /// this to every amortized checker over the shared Budget.
  bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  /// The status Budget::Check() reports once exhausted() is set.
  Status ExhaustedStatus() const;

  /// Writes the current/peak gauges into the metrics registry
  /// (olapdc.mem.reserved_bytes / olapdc.mem.peak_bytes); no-op when
  /// metrics are disabled. Called at request boundaries, not per
  /// reservation.
  void PublishGauges() const;

 private:
  const uint64_t limit_;
  std::atomic<uint64_t> reserved_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<bool> exhausted_{false};
};

/// Request-scoped ownership of reservations against one MemoryBudget:
/// the destructor returns every byte this holder reserved, so transient
/// search state (a DIMSAT run's frozen list, a parser's line buffer)
/// cannot leak accounting on any exit path. Null budget = every Reserve
/// succeeds and holds nothing. Not thread-safe; one holder per worker.
class MemoryReservation {
 public:
  explicit MemoryReservation(MemoryBudget* budget) : budget_(budget) {}
  ~MemoryReservation() { ReleaseAll(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  Status Reserve(uint64_t bytes, std::string_view site) {
    if (budget_ == nullptr) return Status::OK();
    OLAPDC_RETURN_NOT_OK(budget_->Reserve(bytes, site));
    held_ += bytes;
    return Status::OK();
  }

  void ReleaseAll() {
    if (budget_ != nullptr && held_ > 0) budget_->Release(held_);
    held_ = 0;
  }

  uint64_t held() const { return held_; }
  MemoryBudget* budget() const { return budget_; }

 private:
  MemoryBudget* budget_;
  uint64_t held_ = 0;
};

}  // namespace olapdc

#endif  // OLAPDC_COMMON_MEMORY_BUDGET_H_
