#include "common/string_util.h"

namespace olapdc {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  return JoinMapped(parts, sep, [](const std::string& s) { return s; });
}

}  // namespace olapdc
