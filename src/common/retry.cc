#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace olapdc {

namespace {

/// xorshift64* (same generator family as the work-stealing pool's
/// victim selection): enough for jitter, no <random> state to carry.
uint64_t Mix(uint64_t x) {
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  return x * 0x2545F4914F6CDD1DULL;
}

}  // namespace

double RetryPolicy::BackoffMs(int attempt, uint64_t salt) const {
  if (initial_backoff_ms <= 0.0) return 0.0;
  double backoff = initial_backoff_ms;
  for (int i = 0; i < attempt; ++i) backoff *= backoff_multiplier;
  const double jitter = std::clamp(jitter_fraction, 0.0, 1.0);
  if (jitter > 0.0) {
    const uint64_t draw =
        Mix(seed ^ Mix(salt + 1) ^ (static_cast<uint64_t>(attempt) + 1));
    // Uniform in [1 - jitter, 1 + jitter].
    const double unit = static_cast<double>(draw >> 11) / (1ULL << 53);
    backoff *= 1.0 - jitter + 2.0 * jitter * unit;
  }
  return backoff;
}

double RetryPolicy::SleepBackoff(int attempt, const Budget* budget,
                                 uint64_t salt) const {
  double ms = BackoffMs(attempt, salt);
  if (budget != nullptr) {
    // Leave a margin of the remaining deadline for the retry itself.
    const double remaining = budget->RemainingMs();
    ms = std::min(ms, remaining / 2);
  }
  if (ms <= 0.0) return 0.0;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  return ms;
}

}  // namespace olapdc
