#include "exec/work_stealing_pool.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <string>

#include "common/fault_injector.h"
#include "obs/metrics.h"

namespace olapdc::exec {

namespace {

/// Inventory registration so the chaos campaign finds these sites via
/// RegisteredFaultSites(). Probed on cold paths only (steal sweeps and
/// fruitless helping rounds), never per task.
[[maybe_unused]] const bool kStealSite = RegisterFaultSite("exec.steal");
[[maybe_unused]] const bool kGroupWaitSite =
    RegisterFaultSite("exec.group_wait");

/// Worker identity of the current thread: which pool it belongs to (so
/// SubmitTask can tell "one of mine" from an external thread) and its
/// index there.
thread_local WorkStealingPool* tls_pool = nullptr;
thread_local int tls_worker_id = -1;
/// Set around each task invocation: did a worker other than the
/// submitter execute it?
thread_local bool tls_task_stolen = false;

/// xorshift64* — cheap per-worker victim selection.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

}  // namespace

// ---------------------------------------------------------------------------
// TaskGroup

TaskGroup::TaskGroup(WorkStealingPool* pool) : pool_(pool) {
  OLAPDC_CHECK(pool != nullptr);
}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Spawn(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  auto* task = new WorkStealingPool::Task{
      std::move(fn), this,
      tls_pool == pool_ ? tls_worker_id : -1,
      obs::CurrentTraceContext()};
  pool_->SubmitTask(task);
}

void TaskGroup::OnTaskDone() {
  // The decrement happens under mu_ so that any waiter that observes
  // pending_ == 0 can acquire mu_ once and thereby prove this critical
  // section — the last thing a finisher does that touches the group —
  // has completed before the group is destroyed.
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    cv_.notify_all();
  }
}

void TaskGroup::Wait() {
  if (tls_pool == pool_ && tls_worker_id >= 0) {
    // On a pool worker: help instead of blocking, otherwise a task
    // waiting on a nested group would deadlock the worker it occupies.
    // After a run of fruitless steal attempts, park briefly on the
    // group's condvar instead of burning the core while the group's
    // remaining tasks run elsewhere with nothing stealable.
    constexpr int kSpinRounds = 64;
    int idle_rounds = 0;
    while (pending_.load(std::memory_order_acquire) > 0) {
      // Chaos site: a failed helping round degrades to the yield/park
      // path below — the group still drains via the other workers.
      if (FaultInjector::Global().MaybeFail("exec.group_wait").ok() &&
          pool_->RunOneTask()) {
        idle_rounds = 0;
        continue;
      }
      if (++idle_rounds < kSpinRounds) {
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
      idle_rounds = 0;
    }
    // pending_ hit zero via a bare load: take mu_ once so the last
    // finisher has provably left OnTaskDone (it decrements under mu_)
    // before the caller may destroy this group.
    std::lock_guard<std::mutex> lock(mu_);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock,
           [&] { return pending_.load(std::memory_order_acquire) == 0; });
}

// ---------------------------------------------------------------------------
// WorkStealingPool

WorkStealingPool::WorkStealingPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->rng_state = 0x9E3779B97F4A7C15ULL * (i + 1) + 1;
  }
  // Threads start only after every Worker slot exists: workers index
  // into workers_ freely.
  for (int i = 0; i < num_threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_.store(true, std::memory_order_seq_cst);
    idle_cv_.notify_all();
  }
  for (auto& w : workers_) w->thread.join();
  // Free tasks nobody ran (misuse — groups should have been waited —
  // but do not leak).
  for (auto& w : workers_) {
    while (Task* t = w->deque.Pop()) delete t;
  }
  for (Task* t : injector_) delete t;
}

int WorkStealingPool::CurrentWorkerId() { return tls_worker_id; }

bool WorkStealingPool::CurrentTaskStolen() { return tls_task_stolen; }

WorkStealingPool::StatsSnapshot WorkStealingPool::Stats() const {
  StatsSnapshot s;
  for (const auto& w : workers_) {
    s.tasks_executed += w->tasks_executed.load(std::memory_order_relaxed);
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.steal_failures += w->steal_failures.load(std::memory_order_relaxed);
  }
  return s;
}

void WorkStealingPool::PublishMetricNames() const {
  if (!obs::MetricsEnabled()) return;
  obs::Count("olapdc.exec.tasks_executed", 0);
  obs::Count("olapdc.exec.steals", 0);
  obs::Count("olapdc.exec.steal_failures", 0);
  obs::Count("olapdc.exec.ctx_restores", 0);
  obs::Gauge("olapdc.exec.pool_size", num_threads());
}

void WorkStealingPool::SubmitTask(Task* task) {
  if (tls_pool == this && tls_worker_id >= 0) {
    workers_[tls_worker_id]->deque.Push(task);
  } else {
    std::lock_guard<std::mutex> lock(inject_mu_);
    injector_.push_back(task);
  }
  work_hint_.fetch_add(1, std::memory_order_seq_cst);
  NotifyOne();
}

void WorkStealingPool::NotifyOne() {
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle_cv_.notify_one();
  }
}

WorkStealingPool::Task* WorkStealingPool::PopInjector() {
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (injector_.empty()) return nullptr;
  Task* t = injector_.front();
  injector_.pop_front();
  return t;
}

WorkStealingPool::Task* WorkStealingPool::StealFrom(int self) {
  const int n = num_threads();
  if (n <= 1) return nullptr;
  // Chaos site: a failed steal sweep is indistinguishable from an
  // all-victims-empty round; the task stays queued for someone else.
  if (!FaultInjector::Global().MaybeFail("exec.steal").ok()) return nullptr;
  Worker& me = *workers_[self];
  // Two randomized sweeps over the victims before giving up.
  uint64_t failures = 0;
  for (int round = 0; round < 2 * n; ++round) {
    int victim =
        static_cast<int>(NextRandom(&me.rng_state) % static_cast<uint64_t>(n));
    if (victim == self) continue;
    if (Task* t = workers_[victim]->deque.Steal()) {
      me.steals.fetch_add(1, std::memory_order_relaxed);
      obs::Count("olapdc.exec.steals");
      if (failures) {
        me.steal_failures.fetch_add(failures, std::memory_order_relaxed);
        obs::Count("olapdc.exec.steal_failures", failures);
      }
      return t;
    }
    ++failures;
  }
  if (failures) {
    me.steal_failures.fetch_add(failures, std::memory_order_relaxed);
    obs::Count("olapdc.exec.steal_failures", failures);
  }
  return nullptr;
}

WorkStealingPool::Task* WorkStealingPool::FindTask(int self) {
  if (Task* t = workers_[self]->deque.Pop()) return t;
  if (Task* t = StealFrom(self)) return t;
  return PopInjector();
}

bool WorkStealingPool::RunOneTask() {
  Task* t = nullptr;
  if (tls_pool == this && tls_worker_id >= 0) {
    t = FindTask(tls_worker_id);
  } else {
    t = PopInjector();
  }
  if (t == nullptr) return false;
  work_hint_.fetch_sub(1, std::memory_order_seq_cst);
  Execute(t, tls_pool == this ? tls_worker_id : -1);
  return true;
}

void WorkStealingPool::Execute(Task* task, int self) {
  const bool was_stolen = tls_task_stolen;
  tls_task_stolen = task->submitter != self;
  {
    // Reinstall the spawner's trace context so spans opened by the
    // task parent correctly whether or not the task migrated.
    obs::ScopedTraceContext context(task->context);
    if (task->context.span_id != 0) obs::Count("olapdc.exec.ctx_restores");
    task->fn();
  }
  tls_task_stolen = was_stolen;
  TaskGroup* group = task->group;
  delete task;
  if (self >= 0) {
    workers_[self]->tasks_executed.fetch_add(1, std::memory_order_relaxed);
  }
  obs::Count("olapdc.exec.tasks_executed");
  // Completion is signalled after the task is destroyed, so a waiter
  // returning from Wait() can safely tear everything down.
  group->OnTaskDone();
}

void WorkStealingPool::WorkerLoop(int id) {
  tls_pool = this;
  tls_worker_id = id;
  while (!stop_.load(std::memory_order_seq_cst)) {
    if (Task* t = FindTask(id)) {
      work_hint_.fetch_sub(1, std::memory_order_seq_cst);
      Execute(t, id);
      continue;
    }
    // Park. The sleepers increment happens before the hint re-check;
    // SubmitTask increments the hint before reading sleepers — under
    // seq_cst one of the two sides always sees the other, so no wakeup
    // is lost. The timed wait is belt-and-braces, not load-bearing.
    std::unique_lock<std::mutex> lock(idle_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (work_hint_.load(std::memory_order_seq_cst) == 0 &&
        !stop_.load(std::memory_order_seq_cst)) {
      idle_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  tls_pool = nullptr;
  tls_worker_id = -1;
}

// ---------------------------------------------------------------------------
// Process-wide pool

namespace {
std::atomic<int> process_pool_threads{0};
}  // namespace

int EnvThreadCount() {
  const char* env = std::getenv("OLAPDC_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  errno = 0;
  long value = std::strtol(env, &end, 10);
  // Out-of-range values (errno == ERANGE clamps to LONG_MAX/LONG_MIN)
  // must be rejected before the int cast truncates them.
  if (end == nullptr || *end != '\0' || errno == ERANGE || value <= 0 ||
      value > kMaxThreads) {
    return 0;
  }
  return static_cast<int>(value);
}

int DefaultThreadCount() {
  if (int env = EnvThreadCount(); env > 0) return env;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void SetProcessPoolThreads(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  if (num_threads > kMaxThreads) num_threads = kMaxThreads;
  process_pool_threads.store(num_threads, std::memory_order_relaxed);
}

WorkStealingPool& ProcessPool() {
  // Intentionally leaked: workers park when idle and joining at static
  // destruction time would race other exit-time teardown.
  static WorkStealingPool* pool = [] {
    int n = process_pool_threads.load(std::memory_order_relaxed);
    if (n <= 0) n = DefaultThreadCount();
    return new WorkStealingPool(n);
  }();
  return *pool;
}

}  // namespace olapdc::exec
