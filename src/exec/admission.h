// AdmissionGate: overload shedding in front of the work-stealing pool.
//
// A saturated pool does not fail — it queues, and queued work holds
// memory and pushes every in-flight request past its deadline. The gate
// bounds concurrent admitted requests at a high-water mark; beyond it,
// new requests are *shed immediately* with kUnavailable and a
// retry-after-ms hint instead of degrading everyone. kUnavailable is
// deliberately distinct from the budget errors: a shed request has done
// no work, carries no partial result, and is safe to retry verbatim
// after backing off (RetryPolicy parses the hint).
//
// The retry-after hint adapts to the observed drain rate: the gate
// keeps an EWMA of the interval between Release() calls, so the hint
// approximates "when the next slot frees up" instead of a constant
// that is wrong in both directions (too eager under heavy requests,
// too lazy under light ones). Options::retry_after_ms is the floor and
// the fallback before any release has been observed. The hint has one
// source of truth — RetryAfterMsHint() — embedded in the kUnavailable
// message for CLI/RetryPolicy consumers and parsed back out by the
// HTTP layer for the Retry-After header.
//
// Drain: BeginDrain() flips the gate into shedding everything (new
// work is refused during shutdown) while in-flight requests keep their
// slots; WaitIdle() blocks until they Release() or the deadline
// passes. The gate stays a counter, not a queue: admission control
// that *waits* is just a second queue with extra steps.

#ifndef OLAPDC_EXEC_ADMISSION_H_
#define OLAPDC_EXEC_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace olapdc::exec {

class AdmissionGate {
 public:
  struct Options {
    /// Concurrent admitted requests beyond which new ones are shed.
    int64_t high_water = 64;
    /// Floor (and pre-observation fallback) for the adaptive backoff
    /// hint embedded in the kUnavailable message as
    /// "retry-after-ms=<n>" (RetryAfterMsFromStatus parses it back).
    int64_t retry_after_ms = 50;
  };

  explicit AdmissionGate(const Options& options) : options_(options) {}
  AdmissionGate() : AdmissionGate(Options{}) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Admits the request (counting it in-flight until Release()) or
  /// sheds it with kUnavailable. Lock-free; safe from any thread.
  /// While draining, everything is shed.
  Status TryAdmit();

  /// Returns one admitted request's slot. Must pair 1:1 with a
  /// successful TryAdmit().
  void Release();

  /// Current backoff suggestion in ms: the EWMA interval between
  /// recent Release() calls (≈ time until a slot frees), floored at
  /// Options::retry_after_ms and capped at one minute.
  int64_t RetryAfterMsHint() const;

  /// Stop admitting anything; in-flight requests keep their slots.
  /// Idempotent, lock-free.
  void BeginDrain();

  /// Blocks until in_flight() reaches zero or `timeout_ms` elapses.
  /// Returns true when idle. Polling (1ms) — only used at shutdown.
  bool WaitIdle(int64_t timeout_ms) const;

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  const Options& options() const { return options_; }

  /// RAII admission: releases on destruction iff TryAdmit succeeded.
  class Ticket {
   public:
    explicit Ticket(AdmissionGate* gate)
        : gate_(gate), status_(gate == nullptr ? Status::OK()
                                               : gate->TryAdmit()) {}
    ~Ticket() {
      if (gate_ != nullptr && status_.ok()) gate_->Release();
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    const Status& status() const { return status_; }
    bool admitted() const { return status_.ok(); }

   private:
    AdmissionGate* gate_;
    Status status_;
  };

 private:
  Status Shed(const std::string& why);

  const Options options_;
  std::atomic<int64_t> in_flight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<bool> draining_{false};
  /// Monotonic ns of the last Release(); 0 before the first.
  std::atomic<int64_t> last_release_ns_{0};
  /// EWMA of release inter-arrival in us; 0 before two releases.
  std::atomic<int64_t> ewma_release_interval_us_{0};
};

/// Parses the "retry-after-ms=<n>" hint out of a kUnavailable status
/// message; 0 when absent or not kUnavailable.
int64_t RetryAfterMsFromStatus(const Status& status);

}  // namespace olapdc::exec

#endif  // OLAPDC_EXEC_ADMISSION_H_
