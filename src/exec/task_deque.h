// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005, in the
// C11-style formulation of Lê et al., PPoPP 2013). Each pool worker
// owns one deque of raw task pointers: the owner pushes and pops at the
// bottom (LIFO, so the search descends depth-first and stays cache
// warm), thieves steal from the top (FIFO, so they take the largest
// remaining subtrees).
//
// Memory-order notes. The published algorithm uses standalone
// atomic_thread_fence, which ThreadSanitizer does not model; this
// implementation instead puts the ordering on the atomic accesses
// themselves (seq_cst on the top/bottom races, release on publication),
// which TSan reasons about exactly. Slot accesses are relaxed atomics:
// a thief may read a slot concurrently with the owner recycling it, but
// the value is only used after the top CAS confirms ownership. Every
// store to bottom_ is at least release so that a thief reading any
// bottom value observes the task contents published before it (C++20
// release sequences do not extend over same-thread relaxed stores).

#ifndef OLAPDC_EXEC_TASK_DEQUE_H_
#define OLAPDC_EXEC_TASK_DEQUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"

namespace olapdc::exec {

/// Single-owner, multi-thief deque of T*. Push/Pop may be called only
/// by the owning thread; Steal by any thread. Does not own the pointed
/// tasks; the caller frees whatever it pops or steals.
template <typename T>
class TaskDeque {
 public:
  explicit TaskDeque(int64_t initial_capacity = 64) {
    OLAPDC_CHECK(initial_capacity > 0 &&
                 (initial_capacity & (initial_capacity - 1)) == 0)
        << "capacity must be a power of two";
    auto initial = std::make_unique<Array>(initial_capacity);
    array_.store(initial.get(), std::memory_order_relaxed);
    arrays_.push_back(std::move(initial));
  }

  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;

  /// Owner only.
  void Push(T* item) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= a->capacity) a = Grow(a, b, t);
    a->Put(b, item);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Returns nullptr when the deque is empty (or a thief
  /// won the race for the last element).
  T* Pop() {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    // Claim the bottom slot before examining top; the seq_cst store /
    // load pair is what makes the owner and a thief agree on who takes
    // the last element.
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Deque was already empty; undo the claim.
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return nullptr;
    }
    T* item = a->Get(b);
    if (t == b) {
      // Last element: race the thieves via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief got it
      }
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return item;
  }

  /// Any thread. Returns nullptr when empty or when another thread won
  /// the race (callers treat both as "try elsewhere").
  T* Steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Array* a = array_.load(std::memory_order_acquire);
    T* item = a->Get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Approximate (racy) size; only a scheduling hint.
  int64_t SizeHint() const {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  struct Array {
    explicit Array(int64_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<T*>[]>(cap)) {}
    T* Get(int64_t i) const {
      return slots[i & mask].load(std::memory_order_relaxed);
    }
    void Put(int64_t i, T* v) {
      slots[i & mask].store(v, std::memory_order_relaxed);
    }
    const int64_t capacity;
    const int64_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  /// Owner only. Doubles the array; the old one stays alive (in
  /// arrays_) because a thief may still hold a stale pointer to it —
  /// its [t, b) entries remain valid until the deque dies.
  Array* Grow(Array* old, int64_t b, int64_t t) {
    auto bigger = std::make_unique<Array>(old->capacity * 2);
    for (int64_t i = t; i < b; ++i) bigger->Put(i, old->Get(i));
    Array* raw = bigger.get();
    array_.store(raw, std::memory_order_release);
    arrays_.push_back(std::move(bigger));
    return raw;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Array*> array_{nullptr};
  /// All arrays ever allocated, newest last; mutated by the owner only.
  std::vector<std::unique_ptr<Array>> arrays_;
};

}  // namespace olapdc::exec

#endif  // OLAPDC_EXEC_TASK_DEQUE_H_
