#include "exec/admission.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace olapdc::exec {

namespace {

constexpr int64_t kMaxRetryAfterMs = 60 * 1000;

int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status AdmissionGate::Shed(const std::string& why) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    obs::Count("olapdc.exec.shed");
    obs::Gauge("olapdc.exec.in_flight", in_flight());
  }
  return Status::Unavailable(why + "; retry-after-ms=" +
                             std::to_string(RetryAfterMsHint()));
}

Status AdmissionGate::TryAdmit() {
  if (draining_.load(std::memory_order_acquire)) {
    return Shed("admission gate draining");
  }
  const int64_t now = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (now >= options_.high_water) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return Shed("admission gate at high-water (" + std::to_string(now) + "/" +
                std::to_string(options_.high_water) + " in flight)");
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    obs::Count("olapdc.exec.admitted");
    obs::Gauge("olapdc.exec.in_flight", now + 1);
  }
  return Status::OK();
}

void AdmissionGate::Release() {
  // Fold this release into the drain-rate estimate. The races here
  // (two releases swapping last_release_ns_ out of order) only skew
  // the EWMA by one sample — acceptable for a backoff hint.
  const int64_t now_ns = MonotonicNs();
  const int64_t prev_ns =
      last_release_ns_.exchange(now_ns, std::memory_order_relaxed);
  if (prev_ns > 0 && now_ns > prev_ns) {
    const int64_t interval_us = (now_ns - prev_ns) / 1000;
    const int64_t prev_ewma =
        ewma_release_interval_us_.load(std::memory_order_relaxed);
    const int64_t next_ewma =
        prev_ewma == 0 ? interval_us : (3 * prev_ewma + interval_us) / 4;
    ewma_release_interval_us_.store(next_ewma, std::memory_order_relaxed);
  }
  const int64_t now = in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (obs::MetricsEnabled()) {
    obs::Gauge("olapdc.exec.in_flight", now);
  }
}

int64_t AdmissionGate::RetryAfterMsHint() const {
  const int64_t ewma_us =
      ewma_release_interval_us_.load(std::memory_order_relaxed);
  // Round up so a sub-millisecond drain rate still suggests backing
  // off at all.
  int64_t hint_ms = (ewma_us + 999) / 1000;
  if (hint_ms < options_.retry_after_ms) hint_ms = options_.retry_after_ms;
  if (hint_ms > kMaxRetryAfterMs) hint_ms = kMaxRetryAfterMs;
  return hint_ms;
}

void AdmissionGate::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  if (obs::MetricsEnabled()) {
    obs::Gauge("olapdc.exec.draining", 1);
  }
}

bool AdmissionGate::WaitIdle(int64_t timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (in_flight_.load(std::memory_order_acquire) > 0) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

int64_t RetryAfterMsFromStatus(const Status& status) {
  if (status.code() != StatusCode::kUnavailable) return 0;
  static constexpr char kKey[] = "retry-after-ms=";
  const std::string& msg = status.message();
  const size_t pos = msg.find(kKey);
  if (pos == std::string::npos) return 0;
  const int64_t ms = std::atoll(msg.c_str() + pos + sizeof(kKey) - 1);
  return ms > 0 ? ms : 0;
}

}  // namespace olapdc::exec
