#include "exec/admission.h"

#include <cstdlib>
#include <string>

#include "obs/metrics.h"

namespace olapdc::exec {

Status AdmissionGate::TryAdmit() {
  const int64_t now = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (now >= options_.high_water) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) {
      obs::Count("olapdc.exec.shed");
      obs::Gauge("olapdc.exec.in_flight", in_flight());
    }
    return Status::Unavailable(
        "admission gate at high-water (" + std::to_string(now) + "/" +
        std::to_string(options_.high_water) +
        " in flight); retry-after-ms=" +
        std::to_string(options_.retry_after_ms));
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    obs::Count("olapdc.exec.admitted");
    obs::Gauge("olapdc.exec.in_flight", now + 1);
  }
  return Status::OK();
}

void AdmissionGate::Release() {
  const int64_t now = in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (obs::MetricsEnabled()) {
    obs::Gauge("olapdc.exec.in_flight", now);
  }
}

int64_t RetryAfterMsFromStatus(const Status& status) {
  if (status.code() != StatusCode::kUnavailable) return 0;
  static constexpr char kKey[] = "retry-after-ms=";
  const std::string& msg = status.message();
  const size_t pos = msg.find(kKey);
  if (pos == std::string::npos) return 0;
  const int64_t ms = std::atoll(msg.c_str() + pos + sizeof(kKey) - 1);
  return ms > 0 ? ms : 0;
}

}  // namespace olapdc::exec
