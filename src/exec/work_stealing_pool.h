// Work-stealing thread pool: the execution layer under the parallel
// DIMSAT driver, the summarizability sweep, and the Reasoner ladder
// (DESIGN.md §8). Each worker owns a Chase–Lev deque (task_deque.h);
// external threads submit through a mutex-protected injector queue.
// Idle workers scan own-deque -> random victims -> injector, then park
// on a condition variable; a pending-work hint plus a sleepers counter
// close the missed-wakeup race.
//
// Pool activity is exported under olapdc.exec.* in the metrics
// registry (docs/observability.md) and mirrored in cheap per-pool
// atomic counters for tests and benches.

#ifndef OLAPDC_EXEC_WORK_STEALING_POOL_H_
#define OLAPDC_EXEC_WORK_STEALING_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/task_deque.h"
#include "obs/span.h"

namespace olapdc::exec {

class WorkStealingPool;

/// Groups a batch of tasks so a caller can wait for all of them.
/// Spawn() may be called from any thread, including from inside a task
/// of the group (nested spawns extend the group). Wait() called on a
/// pool worker thread *helps*: it executes queued tasks (its own deque,
/// stolen work, the injector) until the group drains, so nested
/// parallelism — a task that itself spawns a group and waits — cannot
/// deadlock even on a one-worker pool. Non-worker threads block on a
/// condition variable.
class TaskGroup {
 public:
  explicit TaskGroup(WorkStealingPool* pool);
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  /// Blocks until the group is drained (a TaskGroup must not die with
  /// tasks in flight).
  ~TaskGroup();

  void Spawn(std::function<void()> fn);
  void Wait();

 private:
  friend class WorkStealingPool;
  void OnTaskDone();

  WorkStealingPool* const pool_;
  std::atomic<int64_t> pending_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

class WorkStealingPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit WorkStealingPool(int num_threads);
  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;
  /// Joins the workers; outstanding tasks that no worker picked up are
  /// freed without running (callers must Wait() their groups first).
  ~WorkStealingPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The calling thread's worker index in *some* pool, or -1 when the
  /// caller is not a pool worker. Tasks can use it to detect whether
  /// they were stolen (compare against the submitter's id).
  static int CurrentWorkerId();
  /// True while the calling thread is executing a task that a worker
  /// other than the submitting worker picked up (i.e. the task was
  /// stolen or drained from the injector by a different thread).
  static bool CurrentTaskStolen();

  /// Lifetime totals, mirrored from the olapdc.exec.* metrics.
  struct StatsSnapshot {
    uint64_t tasks_executed = 0;
    uint64_t steals = 0;
    uint64_t steal_failures = 0;
  };
  StatsSnapshot Stats() const;

  /// Registers the olapdc.exec.* metric names (zero deltas) and the
  /// pool-size gauge with the global registry, so exported inventories
  /// are complete even before any steal happens. No-op when metrics are
  /// disabled.
  void PublishMetricNames() const;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
    int submitter;  // worker id of the spawning thread, -1 if external
    /// Span-parentage context captured at Spawn() and reinstalled
    /// around fn() on whichever worker executes it, so trace spans
    /// opened inside the task parent to the spawner's open span even
    /// after a steal (obs/span.h has the contract).
    obs::TraceContext context;
  };

  struct Worker {
    TaskDeque<Task> deque;
    std::atomic<uint64_t> tasks_executed{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> steal_failures{0};
    uint64_t rng_state = 0;
    std::thread thread;
  };

  /// Routes a task: a worker of this pool pushes to its own deque, any
  /// other thread goes through the injector. Wakes a parked worker.
  void SubmitTask(Task* task);
  void WorkerLoop(int id);
  /// Runs one queued task if any is findable from this thread (worker
  /// deque/steal, else injector). Returns false when nothing was found.
  bool RunOneTask();
  Task* FindTask(int self);
  Task* StealFrom(int self);
  Task* PopInjector();
  void Execute(Task* task, int self);
  void NotifyOne();

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex inject_mu_;
  std::deque<Task*> injector_;

  /// Count of queued-but-unclaimed tasks; a hint that lets producers
  /// skip the wakeup lock and parking workers re-check for work.
  std::atomic<int64_t> work_hint_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
};

/// Lazily constructed process-wide pool shared by every parallel
/// caller (CLI, Reasoner, summarizability). Sized by
/// SetProcessPoolThreads() if called before first use, else the
/// OLAPDC_THREADS environment variable, else hardware_concurrency.
/// Never destroyed (workers park when idle), so exit order is a
/// non-issue.
WorkStealingPool& ProcessPool();

/// Overrides the process pool size; must be called before the first
/// ProcessPool() use (later calls are ignored).
void SetProcessPoolThreads(int num_threads);

/// Upper bound accepted for any thread-count input (OLAPDC_THREADS,
/// CLI --threads, SetProcessPoolThreads): generous for real hardware,
/// small enough to reject overflowed/garbage parses before they
/// truncate into a nonsense pool size.
inline constexpr int kMaxThreads = 4096;

/// OLAPDC_THREADS if set to a positive integer (at most kMaxThreads),
/// else 0.
int EnvThreadCount();

/// The default parallelism: OLAPDC_THREADS if set, else
/// hardware_concurrency (at least 1).
int DefaultThreadCount();

}  // namespace olapdc::exec

#endif  // OLAPDC_EXEC_WORK_STEALING_POOL_H_
