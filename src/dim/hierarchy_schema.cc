#include "dim/hierarchy_schema.h"

#include <string>

#include "graph/algorithms.h"
#include "graph/dot.h"

namespace olapdc {

CategoryId HierarchySchema::FindCategory(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoCategory : it->second;
}

Result<CategoryId> HierarchySchema::CategoryIdOf(std::string_view name) const {
  CategoryId c = FindCategory(name);
  if (c == kNoCategory) {
    return Status::NotFound("unknown category '" + std::string(name) + "'");
  }
  return c;
}

std::vector<std::pair<CategoryId, CategoryId>> HierarchySchema::Shortcuts()
    const {
  return FindShortcuts(graph_);
}

std::string HierarchySchema::ToDot(const std::string& graph_name) const {
  DotOptions options;
  options.name = graph_name;
  return olapdc::ToDot(
      graph_, [this](int u) { return names_[u]; }, options);
}

HierarchySchemaBuilder::HierarchySchemaBuilder() {
  Intern(HierarchySchema::kAllName);
}

CategoryId HierarchySchemaBuilder::Intern(std::string_view name) {
  std::string key(name);
  auto it = by_name_.find(key);
  if (it != by_name_.end()) return it->second;
  CategoryId id = static_cast<CategoryId>(names_.size());
  names_.push_back(key);
  by_name_.emplace(std::move(key), id);
  return id;
}

HierarchySchemaBuilder& HierarchySchemaBuilder::AddCategory(
    std::string_view name) {
  Intern(name);
  return *this;
}

HierarchySchemaBuilder& HierarchySchemaBuilder::AddEdge(
    std::string_view child, std::string_view parent) {
  edges_.emplace_back(Intern(child), Intern(parent));
  return *this;
}

Result<HierarchySchema> HierarchySchemaBuilder::Build() const {
  HierarchySchema schema;
  schema.names_ = names_;
  schema.by_name_ = by_name_;
  schema.all_ = by_name_.at(std::string(HierarchySchema::kAllName));
  schema.graph_ = Digraph(static_cast<int>(names_.size()));

  for (const auto& [child, parent] : edges_) {
    if (child == parent) {
      return Status::InvalidModel("self-loop edge on category '" +
                                  names_[child] + "' (Definition 1(b))");
    }
    if (child == schema.all_) {
      return Status::InvalidModel(
          "the top category All cannot have outgoing edges");
    }
    schema.graph_.AddEdge(child, parent);
  }

  schema.up_sets_ = TransitiveClosure(schema.graph_);
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    if (!schema.up_sets_[c].test(schema.all_)) {
      return Status::InvalidModel("category '" + schema.names_[c] +
                                  "' does not reach All (Definition 1(a))");
    }
    if (schema.graph_.InDegree(c) == 0) schema.bottoms_.push_back(c);
  }
  return schema;
}

Result<HierarchySchemaPtr> HierarchySchemaBuilder::BuildShared() const {
  OLAPDC_ASSIGN_OR_RETURN(HierarchySchema schema, Build());
  return HierarchySchemaPtr(
      std::make_shared<const HierarchySchema>(std::move(schema)));
}

}  // namespace olapdc
