// Dimension instances (paper Definition 2): members per category, a
// child/parent relation, and a Name attribute, subject to conditions
// C1-C7 (Figure 2 of the paper):
//
//   C1 Connectivity      member edges only along schema edges
//   C2 Partitioning      each member reaches at most one member per
//                        category (rollups are functions; "strict")
//   C3 Disjointness      member sets pairwise disjoint
//   C4 Top category      MembSet_All = {all}
//   C5 Shortcuts         no member edge is paralleled by a longer chain
//   C6 Stratification    no member is a strict ancestor of a member of
//                        its own category (implies < is acyclic)
//   C7 Up connectivity   every member outside All has a parent
//
// Build instances with DimensionInstanceBuilder; Build() validates all
// seven conditions and precomputes per-category ancestor tables that
// make rollup queries O(1).

#ifndef OLAPDC_DIM_DIMENSION_INSTANCE_H_
#define OLAPDC_DIM_DIMENSION_INSTANCE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dim/hierarchy_schema.h"
#include "graph/digraph.h"

namespace olapdc {

/// Dense index of a member within its dimension instance.
using MemberId = int;

/// Sentinel for "no member".
inline constexpr MemberId kNoMember = -1;

/// A member of a dimension instance.
struct Member {
  /// Unique key within the instance (C3 disjointness is by construction:
  /// a key belongs to exactly one category).
  std::string key;
  /// The category holding this member.
  CategoryId category = kNoCategory;
  /// The value of the Name attribute (defaults to `key`).
  std::string name;
};

/// An immutable, validated dimension instance over a hierarchy schema.
class DimensionInstance {
 public:
  const HierarchySchemaPtr& schema() const { return schema_; }
  const HierarchySchema& hierarchy() const { return *schema_; }

  int num_members() const { return static_cast<int>(members_.size()); }

  const Member& member(MemberId m) const {
    OLAPDC_DCHECK(0 <= m && m < num_members());
    return members_[m];
  }

  /// The member with key `key`, or kNoMember.
  MemberId FindMember(std::string_view key) const;

  /// The member with key `key`, or NotFound.
  Result<MemberId> MemberIdOf(std::string_view key) const;

  /// The single member of the All category.
  MemberId all_member() const { return all_member_; }

  /// Members of category c, in insertion order.
  const std::vector<MemberId>& MembersOf(CategoryId c) const {
    OLAPDC_DCHECK(0 <= c && c < hierarchy().num_categories());
    return by_category_[c];
  }

  /// The member-level child/parent relation <.
  const Digraph& child_parent() const { return child_parent_; }

  /// The direct parents of m (members m' with m < m').
  const std::vector<MemberId>& Parents(MemberId m) const {
    return child_parent_.OutNeighbors(m);
  }

  /// The direct children of m.
  const std::vector<MemberId>& Children(MemberId m) const {
    return child_parent_.InNeighbors(m);
  }

  /// The unique member of category c that m rolls up to (m <= result),
  /// or kNoMember. Returns m itself when m already belongs to c.
  /// O(1) via the precomputed ancestor tables.
  MemberId RollUpMember(MemberId m, CategoryId c) const {
    OLAPDC_DCHECK(0 <= m && m < num_members());
    OLAPDC_DCHECK(0 <= c && c < hierarchy().num_categories());
    if (members_[m].category == c) return m;
    return ancestor_in_[c][m];
  }

  /// True iff m <= m' (m rolls up to member m').
  bool RollsUpTo(MemberId m, MemberId target) const {
    return RollUpMember(m, members_[target].category) == target;
  }

  /// True iff m rolls up to some member of category c (reflexively).
  bool RollsUpToCategory(MemberId m, CategoryId c) const {
    return RollUpMember(m, c) != kNoMember;
  }

  /// The rollup mapping Gamma_{c1}^{c2}: pairs (x1, x2) with
  /// x1 in c1, x2 in c2, x1 <= x2. Single-valued in x1 by C2.
  std::vector<std::pair<MemberId, MemberId>> RollupMapping(
      CategoryId c1, CategoryId c2) const;

  /// Re-runs the full C1-C7 validation (Build() already ran it unless
  /// the builder was told to skip). Pass enforce_shortcut_condition =
  /// false to relax C5, the validity notion of models (Pedersen &
  /// Jensen) that admit direct links shadowing longer chains — used by
  /// the transform baselines.
  Status Validate(bool enforce_shortcut_condition = true) const;

  /// Graphviz rendering of the child/parent relation with member names.
  std::string ToDot(const std::string& graph_name = "instance") const;

 private:
  friend class DimensionInstanceBuilder;
  DimensionInstance() = default;

  /// Recomputes ancestor_in_ from the child/parent graph; fails with
  /// InvalidModel if C2 or C6 is violated (which the table relies on).
  Status ComputeAncestorTables();

  HierarchySchemaPtr schema_;
  std::vector<Member> members_;
  std::unordered_map<std::string, MemberId> by_key_;
  std::vector<std::vector<MemberId>> by_category_;
  Digraph child_parent_;
  MemberId all_member_ = kNoMember;
  /// ancestor_in_[c][m] = the unique *strict* ancestor of m in category
  /// c, or kNoMember. (RollUpMember adds the reflexive case.)
  std::vector<std::vector<MemberId>> ancestor_in_;
  /// Members in an order where parents precede children.
  std::vector<MemberId> topo_down_;
};

/// Incrementally assembles a DimensionInstance.
class DimensionInstanceBuilder {
 public:
  explicit DimensionInstanceBuilder(HierarchySchemaPtr schema);

  /// Adds a member with the given unique key into the named category.
  /// The Name attribute defaults to `key`; pass `name` to override.
  /// Errors (duplicate key, unknown category) are reported at Build().
  DimensionInstanceBuilder& AddMember(std::string_view key,
                                      std::string_view category);
  DimensionInstanceBuilder& AddMember(std::string_view key,
                                      std::string_view category,
                                      std::string_view name);

  /// Records child < parent. Unknown keys are reported at Build().
  DimensionInstanceBuilder& AddChildParent(std::string_view child,
                                           std::string_view parent);

  /// Convenience: member `key` in `category` whose single parent is
  /// `parent` (which must already exist or be added later).
  DimensionInstanceBuilder& AddMemberUnder(std::string_view key,
                                           std::string_view category,
                                           std::string_view parent);

  /// If no member of the All category was added, Build() creates one
  /// with key "all" (C4). Enabled by default; disable to test C4
  /// violations.
  DimensionInstanceBuilder& set_auto_all(bool v) {
    auto_all_ = v;
    return *this;
  }

  /// Automatically links any member x of a category c with c NEARROW All
  /// that would otherwise violate C7 to the all member. Convenient when
  /// hand-writing small instances. Default on.
  DimensionInstanceBuilder& set_auto_link_to_all(bool v) {
    auto_link_to_all_ = v;
    return *this;
  }

  /// Skips the C1-C7 validation pass (for generators that produce
  /// instances correct by construction). Ancestor tables are still
  /// computed, so C2/C6 violations are caught regardless.
  DimensionInstanceBuilder& set_skip_validation(bool v) {
    skip_validation_ = v;
    return *this;
  }

  Result<DimensionInstance> Build() const;

 private:
  HierarchySchemaPtr schema_;
  std::vector<Member> pending_members_;
  std::vector<std::pair<std::string, std::string>> pending_edges_;
  std::vector<std::string> deferred_errors_;
  bool auto_all_ = true;
  bool auto_link_to_all_ = true;
  bool skip_validation_ = false;
};

}  // namespace olapdc

#endif  // OLAPDC_DIM_DIMENSION_INSTANCE_H_
