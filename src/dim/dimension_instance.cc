#include "dim/dimension_instance.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/string_util.h"
#include "graph/algorithms.h"
#include "graph/dot.h"

namespace olapdc {

namespace {

/// Computes, for every category c, the table of strict ancestors in c
/// per member, verifying C2 (partitioning) and C6 (stratification)
/// along the way. `topo_down` receives a parents-before-children order.
Status BuildAncestorTables(const HierarchySchema& schema,
                           const std::vector<Member>& members,
                           const Digraph& child_parent,
                           std::vector<std::vector<MemberId>>* ancestor_in,
                           std::vector<MemberId>* topo_down) {
  // Child/parent edges point child -> parent, so a topological order
  // lists children before parents; reversing yields parents first.
  Result<std::vector<int>> topo = TopologicalSort(child_parent);
  if (!topo.ok()) {
    return Status::InvalidModel(
        "C6 (stratification) violated: the child/parent relation is "
        "cyclic");
  }
  *topo_down = std::move(topo).ValueOrDie();
  std::reverse(topo_down->begin(), topo_down->end());

  const int num_categories = schema.num_categories();
  const int num_members = static_cast<int>(members.size());
  ancestor_in->assign(num_categories,
                      std::vector<MemberId>(num_members, kNoMember));

  for (CategoryId c = 0; c < num_categories; ++c) {
    std::vector<MemberId>& anc = (*ancestor_in)[c];
    for (MemberId x : *topo_down) {
      for (MemberId p : child_parent.OutNeighbors(x)) {
        MemberId candidate =
            (members[p].category == c) ? p : anc[p];
        if (candidate == kNoMember) continue;
        if (anc[x] != kNoMember && anc[x] != candidate) {
          return Status::InvalidModel(
              "C2 (partitioning) violated: member '" + members[x].key +
              "' rolls up to both '" + members[anc[x]].key + "' and '" +
              members[candidate].key + "' in category '" +
              schema.CategoryName(c) + "'");
        }
        anc[x] = candidate;
      }
      if (members[x].category == c && anc[x] != kNoMember) {
        return Status::InvalidModel(
            "C6 (stratification) violated: member '" + members[x].key +
            "' has strict ancestor '" + members[anc[x]].key +
            "' in its own category '" + schema.CategoryName(c) + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace

MemberId DimensionInstance::FindMember(std::string_view key) const {
  auto it = by_key_.find(std::string(key));
  return it == by_key_.end() ? kNoMember : it->second;
}

Result<MemberId> DimensionInstance::MemberIdOf(std::string_view key) const {
  MemberId m = FindMember(key);
  if (m == kNoMember) {
    return Status::NotFound("unknown member '" + std::string(key) + "'");
  }
  return m;
}

std::vector<std::pair<MemberId, MemberId>> DimensionInstance::RollupMapping(
    CategoryId c1, CategoryId c2) const {
  std::vector<std::pair<MemberId, MemberId>> pairs;
  for (MemberId m : MembersOf(c1)) {
    MemberId target = RollUpMember(m, c2);
    if (target != kNoMember) pairs.emplace_back(m, target);
  }
  return pairs;
}

Status DimensionInstance::ComputeAncestorTables() {
  return BuildAncestorTables(*schema_, members_, child_parent_, &ancestor_in_,
                             &topo_down_);
}

Status DimensionInstance::Validate(bool enforce_shortcut_condition) const {
  const HierarchySchema& schema = *schema_;

  // C1 (connectivity): member edges only along schema edges.
  for (const auto& [x, y] : child_parent_.Edges()) {
    if (!schema.HasEdge(members_[x].category, members_[y].category)) {
      return Status::InvalidModel(
          "C1 (connectivity) violated: edge '" + members_[x].key + "' < '" +
          members_[y].key + "' has no schema edge " +
          schema.CategoryName(members_[x].category) + " -> " +
          schema.CategoryName(members_[y].category));
    }
  }

  // C2 + C6 via ancestor-table recomputation.
  std::vector<std::vector<MemberId>> ancestor_in;
  std::vector<MemberId> topo_down;
  OLAPDC_RETURN_NOT_OK(BuildAncestorTables(schema, members_, child_parent_,
                                           &ancestor_in, &topo_down));

  // C3 (disjointness) holds by construction: each member belongs to
  // exactly one category.

  // C4 (top category): MembSet_All = {all}.
  if (by_category_[schema.all()].size() != 1) {
    return Status::InvalidModel(
        "C4 (top category) violated: the All category has " +
        std::to_string(by_category_[schema.all()].size()) +
        " members; expected exactly 1");
  }

  // C5 (no shortcuts): an edge x < y must not be paralleled by a chain
  // x < p <= ... <= y of length >= 2. With per-category ancestor
  // uniqueness this reduces to: some parent p != y of x rolls up to y.
  for (const auto& [x, y] :
       enforce_shortcut_condition
           ? child_parent_.Edges()
           : std::vector<std::pair<int, int>>{}) {
    const CategoryId cy = members_[y].category;
    for (MemberId p : child_parent_.OutNeighbors(x)) {
      if (p == y) continue;
      MemberId via =
          (members_[p].category == cy) ? p : ancestor_in[cy][p];
      if (via == y) {
        return Status::InvalidModel(
            "C5 (shortcuts) violated: edge '" + members_[x].key + "' < '" +
            members_[y].key + "' is paralleled by a longer chain through '" +
            members_[p].key + "'");
      }
    }
  }

  // C7 (up connectivity): every member outside All has a parent.
  for (MemberId m = 0; m < num_members(); ++m) {
    if (members_[m].category == schema.all()) continue;
    if (child_parent_.OutDegree(m) == 0) {
      return Status::InvalidModel(
          "C7 (up connectivity) violated: member '" + members_[m].key +
          "' of category '" + schema.CategoryName(members_[m].category) +
          "' has no parent");
    }
  }
  return Status::OK();
}

std::string DimensionInstance::ToDot(const std::string& graph_name) const {
  DotOptions options;
  options.name = graph_name;
  return olapdc::ToDot(
      child_parent_, [this](int m) { return members_[m].key; }, options);
}

DimensionInstanceBuilder::DimensionInstanceBuilder(HierarchySchemaPtr schema)
    : schema_(std::move(schema)) {
  OLAPDC_CHECK(schema_ != nullptr);
}

DimensionInstanceBuilder& DimensionInstanceBuilder::AddMember(
    std::string_view key, std::string_view category) {
  return AddMember(key, category, key);
}

DimensionInstanceBuilder& DimensionInstanceBuilder::AddMember(
    std::string_view key, std::string_view category, std::string_view name) {
  CategoryId c = schema_->FindCategory(category);
  if (c == kNoCategory) {
    deferred_errors_.push_back("unknown category '" + std::string(category) +
                               "' for member '" + std::string(key) + "'");
    return *this;
  }
  pending_members_.push_back(
      Member{std::string(key), c, std::string(name)});
  return *this;
}

DimensionInstanceBuilder& DimensionInstanceBuilder::AddChildParent(
    std::string_view child, std::string_view parent) {
  pending_edges_.emplace_back(std::string(child), std::string(parent));
  return *this;
}

DimensionInstanceBuilder& DimensionInstanceBuilder::AddMemberUnder(
    std::string_view key, std::string_view category, std::string_view parent) {
  AddMember(key, category);
  AddChildParent(key, parent);
  return *this;
}

Result<DimensionInstance> DimensionInstanceBuilder::Build() const {
  if (!deferred_errors_.empty()) {
    return Status::InvalidArgument(Join(deferred_errors_, "; "));
  }

  DimensionInstance inst;
  inst.schema_ = schema_;
  inst.members_ = pending_members_;

  const CategoryId all_cat = schema_->all();
  bool has_all_member = false;
  for (const Member& m : inst.members_) {
    if (m.category == all_cat) has_all_member = true;
  }
  if (!has_all_member && auto_all_) {
    inst.members_.push_back(Member{"all", all_cat, "all"});
  }

  inst.by_category_.assign(schema_->num_categories(), {});
  for (MemberId m = 0; m < inst.num_members(); ++m) {
    const Member& member = inst.members_[m];
    auto [it, inserted] = inst.by_key_.emplace(member.key, m);
    if (!inserted) {
      return Status::InvalidArgument("duplicate member key '" + member.key +
                                     "'");
    }
    inst.by_category_[member.category].push_back(m);
  }

  if (inst.by_category_[all_cat].size() != 1) {
    return Status::InvalidModel(
        "C4 (top category) violated: the All category has " +
        std::to_string(inst.by_category_[all_cat].size()) +
        " members; expected exactly 1");
  }
  inst.all_member_ = inst.by_category_[all_cat][0];

  inst.child_parent_ = Digraph(inst.num_members());
  for (const auto& [child_key, parent_key] : pending_edges_) {
    auto child_it = inst.by_key_.find(child_key);
    auto parent_it = inst.by_key_.find(parent_key);
    if (child_it == inst.by_key_.end()) {
      return Status::InvalidArgument("child/parent edge references unknown "
                                     "member '" + child_key + "'");
    }
    if (parent_it == inst.by_key_.end()) {
      return Status::InvalidArgument("child/parent edge references unknown "
                                     "member '" + parent_key + "'");
    }
    inst.child_parent_.AddEdge(child_it->second, parent_it->second);
  }

  if (auto_link_to_all_) {
    for (MemberId m = 0; m < inst.num_members(); ++m) {
      if (m == inst.all_member_) continue;
      if (inst.child_parent_.OutDegree(m) == 0 &&
          schema_->HasEdge(inst.members_[m].category, all_cat)) {
        inst.child_parent_.AddEdge(m, inst.all_member_);
      }
    }
  }

  OLAPDC_RETURN_NOT_OK(inst.ComputeAncestorTables());
  if (!skip_validation_) {
    OLAPDC_RETURN_NOT_OK(inst.Validate());
  }
  return inst;
}

}  // namespace olapdc
