// Hierarchy schemas (paper Definition 1): the category-level skeleton of
// a dimension. A hierarchy schema is a directed graph over categories
// with a distinguished top category `All`, where
//   (a) every category reaches All, and
//   (b) there are no self-loop edges.
// Cycles between distinct categories and shortcut edges are explicitly
// allowed (Examples 3 and 4 of the paper).

#ifndef OLAPDC_DIM_HIERARCHY_SCHEMA_H_
#define OLAPDC_DIM_HIERARCHY_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "common/status.h"
#include "graph/digraph.h"

namespace olapdc {

/// Dense index of a category within its hierarchy schema.
using CategoryId = int;

/// Sentinel for "no category".
inline constexpr CategoryId kNoCategory = -1;

/// An immutable, validated hierarchy schema. Build instances with
/// HierarchySchemaBuilder.
class HierarchySchema {
 public:
  /// The reserved name of the distinguished top category.
  static constexpr std::string_view kAllName = "All";

  int num_categories() const { return graph_.num_nodes(); }

  /// The id of the distinguished top category All.
  CategoryId all() const { return all_; }

  const std::string& CategoryName(CategoryId c) const {
    OLAPDC_DCHECK(0 <= c && c < num_categories());
    return names_[c];
  }

  /// The id of the category named `name`, or kNoCategory.
  CategoryId FindCategory(std::string_view name) const;

  /// The id of the category named `name`, or NotFound.
  Result<CategoryId> CategoryIdOf(std::string_view name) const;

  /// The child-to-parent category graph (the relation "nearly-above",
  /// written c1 NEARROW c2 in the paper).
  const Digraph& graph() const { return graph_; }

  bool HasEdge(CategoryId child, CategoryId parent) const {
    return graph_.HasEdge(child, parent);
  }

  /// Categories with no incoming edge (candidates to carry base facts).
  const std::vector<CategoryId>& bottom_categories() const {
    return bottoms_;
  }

  /// The up-set of c: all categories c' with c NEARROW* c' (reflexive-
  /// transitive closure), as a bitset over category ids.
  const DynamicBitset& UpSet(CategoryId c) const {
    OLAPDC_DCHECK(0 <= c && c < num_categories());
    return up_sets_[c];
  }

  /// True iff c2 is reachable from c1 (including c1 == c2).
  bool Reaches(CategoryId c1, CategoryId c2) const {
    return UpSet(c1).test(c2);
  }

  /// The shortcut edges of this schema (Section 2.1): edges (c, c') for
  /// which a path from c to c' through a third category also exists.
  std::vector<std::pair<CategoryId, CategoryId>> Shortcuts() const;

  /// Graphviz rendering with category names.
  std::string ToDot(const std::string& graph_name = "hierarchy") const;

 private:
  friend class HierarchySchemaBuilder;
  HierarchySchema() = default;

  std::vector<std::string> names_;
  std::unordered_map<std::string, CategoryId> by_name_;
  Digraph graph_;
  CategoryId all_ = kNoCategory;
  std::vector<CategoryId> bottoms_;
  std::vector<DynamicBitset> up_sets_;
};

/// Shared-ownership handle used wherever several objects (instances,
/// schemas-with-constraints, subhierarchies) refer to one hierarchy.
using HierarchySchemaPtr = std::shared_ptr<const HierarchySchema>;

/// Incrementally assembles a HierarchySchema. The top category All is
/// always present; categories referenced by AddEdge are created on
/// first use.
class HierarchySchemaBuilder {
 public:
  HierarchySchemaBuilder();

  /// Declares a category (idempotent). Returns *this for chaining.
  HierarchySchemaBuilder& AddCategory(std::string_view name);

  /// Adds the edge child NEARROW parent, creating either category if
  /// needed.
  HierarchySchemaBuilder& AddEdge(std::string_view child,
                                  std::string_view parent);

  /// Validates Definition 1 and produces the schema:
  ///  - no self-loop edges,
  ///  - every category reaches All,
  ///  - All has no outgoing edges.
  Result<HierarchySchema> Build() const;

  /// Build() wrapped in shared ownership.
  Result<HierarchySchemaPtr> BuildShared() const;

 private:
  CategoryId Intern(std::string_view name);

  std::vector<std::string> names_;
  std::unordered_map<std::string, CategoryId> by_name_;
  std::vector<std::pair<CategoryId, CategoryId>> edges_;
};

}  // namespace olapdc

#endif  // OLAPDC_DIM_HIERARCHY_SCHEMA_H_
