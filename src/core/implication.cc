#include "core/implication.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"

namespace olapdc {

Result<ImplicationResult> Implies(const DimensionSchema& ds,
                                  const DimensionConstraint& alpha,
                                  const DimsatOptions& options) {
  OLAPDC_CHECK(alpha.expr != nullptr);
  OLAPDC_CHECK(alpha.root != ds.hierarchy().all())
      << "constraints cannot be rooted at All";
  obs::ObsSpan span("implication.query");
  obs::Count("olapdc.implication.queries");

  DimensionConstraint negated{alpha.root, MakeNot(alpha.expr),
                              alpha.label.empty() ? "" : "!" + alpha.label};
  DimensionSchema extended = ds.WithExtraConstraint(std::move(negated));

  DimsatResult search = RunDimsat(extended, alpha.root, options);

  ImplicationResult result;
  result.stats = search.stats;
  if (!search.status.ok()) {
    // A satisfiable early stop is already definitive ("not implied"):
    // the witness found is a genuine counterexample no matter how much
    // of the search space went unexplored.
    if (!search.satisfiable || !IsBudgetError(search.status)) {
      if (!IsBudgetError(search.status)) return search.status;
      obs::Count("olapdc.implication.unknown");
      if (span.active()) span.AddStat("outcome", "unknown");
      result.status = search.status;
      return result;
    }
  }
  result.implied = !search.satisfiable;
  if (search.satisfiable) {
    result.counterexample = std::move(search.frozen.front());
    obs::Count("olapdc.implication.counterexamples");
  }
  obs::Count(result.implied ? "olapdc.implication.implied"
                            : "olapdc.implication.not_implied");
  if (span.active()) {
    span.AddStat("outcome", result.implied ? "implied" : "not_implied");
    span.AddStat("expand_calls", result.stats.expand_calls);
  }
  return result;
}

Result<bool> IsCategorySatisfiable(const DimensionSchema& ds,
                                   CategoryId category,
                                   const DimsatOptions& options) {
  DimsatResult search = RunDimsat(ds, category, options);
  // A witness makes "satisfiable" definitive even if a budget expired
  // while winding down; only a budget-truncated *negative* is unknown.
  if (search.satisfiable) return true;
  OLAPDC_RETURN_NOT_OK(search.status);
  return false;
}

}  // namespace olapdc
