#include "core/implication.h"

#include <utility>

namespace olapdc {

Result<ImplicationResult> Implies(const DimensionSchema& ds,
                                  const DimensionConstraint& alpha,
                                  const DimsatOptions& options) {
  OLAPDC_CHECK(alpha.expr != nullptr);
  OLAPDC_CHECK(alpha.root != ds.hierarchy().all())
      << "constraints cannot be rooted at All";

  DimensionConstraint negated{alpha.root, MakeNot(alpha.expr),
                              alpha.label.empty() ? "" : "!" + alpha.label};
  DimensionSchema extended = ds.WithExtraConstraint(std::move(negated));

  DimsatResult search = Dimsat(extended, alpha.root, options);
  OLAPDC_RETURN_NOT_OK(search.status);

  ImplicationResult result;
  result.implied = !search.satisfiable;
  result.stats = search.stats;
  if (search.satisfiable) {
    result.counterexample = std::move(search.frozen.front());
  }
  return result;
}

Result<bool> IsCategorySatisfiable(const DimensionSchema& ds,
                                   CategoryId category,
                                   const DimsatOptions& options) {
  DimsatResult search = Dimsat(ds, category, options);
  OLAPDC_RETURN_NOT_OK(search.status);
  return search.satisfiable;
}

}  // namespace olapdc
