// NaiveSat: the unoptimized decision procedure Theorem 3 suggests —
// enumerate every candidate subhierarchy (all subsets of the schema
// edges reachable from the root) and every candidate frozen dimension
// over it. Exponential in the edge count; usable only on small schemas.
// Serves as (1) the correctness oracle DIMSAT is differentially tested
// against and (2) the baseline in the dimsat_vs_naive benchmark (E10).

#ifndef OLAPDC_CORE_NAIVE_SAT_H_
#define OLAPDC_CORE_NAIVE_SAT_H_

#include <cstdint>

#include "common/budget.h"
#include "common/result.h"
#include "core/dimsat.h"
#include "core/schema.h"

namespace olapdc {

struct NaiveSatOptions {
  bool require_injective_names = false;
  bool enumerate_all = false;
  size_t max_frozen = 1 << 20;
  /// Refuses instances whose relevant edge count exceeds this (the
  /// enumeration is 2^edges).
  int max_edges = 26;
  size_t path_limit = 1 << 20;
  /// Wall-clock / cancellation budget; not owned, may be null. On
  /// expiration the enumeration stops with the budget status and
  /// partial stats in DimsatResult (mirroring Dimsat()).
  const Budget* budget = nullptr;
  /// Candidate subhierarchies between full budget probes.
  uint32_t budget_check_stride = 64;
};

/// Decides satisfiability of `root` in `ds` by exhaustive enumeration.
/// Shares DimsatResult so tests can compare outcomes & witnesses;
/// stats.check_calls counts candidate subhierarchies tested.
Result<DimsatResult> NaiveSat(const DimensionSchema& ds, CategoryId root,
                              const NaiveSatOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_CORE_NAIVE_SAT_H_
