// Frozen dimensions (paper Definition 5): minimal homogeneous
// dimension instances conveyed by a dimension schema — one member per
// category of a shortcut/cycle-free subhierarchy, with Name values
// drawn from Const_ds plus the reserved symbol nk. Frozen dimensions
// are the minimal models of category satisfiability (Theorem 3) and
// the objects enumerated for Figure 4.

#ifndef OLAPDC_CORE_FROZEN_H_
#define OLAPDC_CORE_FROZEN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/assignment.h"
#include "core/schema.h"
#include "core/subhierarchy.h"
#include "dim/dimension_instance.h"

namespace olapdc {

/// A frozen dimension of a schema with a given root: the induced
/// subhierarchy plus the satisfying c-assignment. names[c] == nullopt
/// encodes nk ("any constant not mentioned for c in Sigma").
struct FrozenDimension {
  Subhierarchy g;
  CAssignment names;

  /// One-line description, e.g.
  ///   "{Store->City, City->Province, ...} with Country=Canada".
  std::string ToString(const HierarchySchema& schema) const;

  /// Graphviz rendering: category nodes annotated with assigned names.
  std::string ToDot(const HierarchySchema& schema,
                    const std::string& graph_name = "frozen") const;

  /// Materializes the frozen dimension as a real DimensionInstance:
  /// member phi(c) per category keyed by the category's name, with the
  /// Name attribute set to the assigned constant, or to
  /// `nk_prefix + category name` for nk (guaranteed outside Const_ds
  /// because Sigma constants never start with the prefix... callers
  /// should keep the default "~"). The result satisfies C1-C7 and, by
  /// Proposition 2, every constraint of `ds` — both are re-checked by
  /// the validation inside DimensionInstanceBuilder and by tests.
  Result<DimensionInstance> ToInstance(const DimensionSchema& ds,
                                       const std::string& nk_prefix = "~") const;
};

/// Canonical ordering/equality helpers so frozen-dimension sets can be
/// compared in tests.
bool FrozenEquals(const FrozenDimension& a, const FrozenDimension& b);

/// Merges the per-component model `from` into the composite model
/// `into` (same category universe): subhierarchies union, and every
/// assigned name of `from` is copied over. Components of a decomposed
/// DIMSAT run assign disjoint category sets (apart from root/All,
/// where the assignments agree), which the debug build checks.
void MergeDisjointInto(const FrozenDimension& from, FrozenDimension* into);

}  // namespace olapdc

#endif  // OLAPDC_CORE_FROZEN_H_
