#include "core/naive_sat.h"

#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "constraint/normalize.h"
#include "core/check_subhierarchy.h"
#include "core/subhierarchy.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace olapdc {

namespace {

/// Batched per-run metrics flush (olapdc.naive_sat.*), mirroring
/// FlushDimsatMetrics: the 2^edges enumeration loop itself stays free
/// of registry traffic.
void FlushNaiveSatMetrics(const DimsatResult& result) {
  if (!obs::MetricsEnabled()) return;
  obs::Count("olapdc.naive_sat.runs");
  obs::Count("olapdc.naive_sat.candidates_checked", result.stats.check_calls);
  obs::Count("olapdc.naive_sat.assignments_tried",
             result.stats.assignments_tried);
  obs::Count("olapdc.naive_sat.structural_rejections",
             result.stats.structural_rejections);
  obs::Count("olapdc.naive_sat.frozen_found", result.stats.frozen_found);
  obs::Count("olapdc.naive_sat.budget_stops",
             IsBudgetError(result.status) ? 1 : 0);
}

}  // namespace

Result<DimsatResult> NaiveSat(const DimensionSchema& ds, CategoryId root,
                              const NaiveSatOptions& options) {
  const HierarchySchema& schema = ds.hierarchy();
  OLAPDC_CHECK(0 <= root && root < schema.num_categories());
  obs::ObsSpan span("naive_sat.run");

  // Only edges among categories reachable from the root can appear in a
  // subhierarchy rooted there.
  const DynamicBitset& up = schema.UpSet(root);
  std::vector<std::pair<CategoryId, CategoryId>> edges;
  for (const auto& [u, v] : schema.graph().Edges()) {
    if (up.test(u) && up.test(v)) edges.emplace_back(u, v);
  }
  if (static_cast<int>(edges.size()) > options.max_edges) {
    return Status::ResourceExhausted(
        "NaiveSat: " + std::to_string(edges.size()) +
        " candidate edges exceed max_edges");
  }

  // Expand shorthands once (same preparation as DIMSAT).
  std::vector<DimensionConstraint> relevant;
  for (const DimensionConstraint* c : ds.RelevantConstraints(root)) {
    OLAPDC_ASSIGN_OR_RETURN(
        ExprPtr expanded,
        ExpandShorthands(schema, c->expr, options.path_limit));
    relevant.push_back(
        DimensionConstraint{c->root, Simplify(expanded), c->label});
  }

  CheckOptions check_options;
  check_options.assignment.require_injective =
      options.require_injective_names;
  check_options.assignment.enumerate_all = options.enumerate_all;
  check_options.assignment.max_results = options.max_frozen;

  DimsatResult result;
  BudgetChecker budget_checker(options.budget, options.budget_check_stride,
                               "naive_sat.enumerate");
  // Memory governor: the collected frozen dimensions are the only
  // allocation here that grows with the answer, so they carry the
  // charge — same per-dimension estimate as DIMSAT's dimsat.frozen
  // site (a subhierarchy plus its name assignment).
  MemoryReservation mem(options.budget != nullptr ? options.budget->memory()
                                                  : nullptr);
  const uint64_t n = static_cast<uint64_t>(schema.num_categories());
  const uint64_t bitset_bytes = 16 + ((n + 63) / 64) * 8;
  const uint64_t frozen_bytes =
      3 * n * bitset_bytes + 3 * bitset_bytes + 128 + n * 24;
  const uint64_t subsets = uint64_t{1} << edges.size();
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    Status budget = budget_checker.Check();
    if (!budget.ok()) {
      // Partial answer: statistics (and any frozen dimensions found so
      // far) survive, matching Dimsat()'s degradation contract.
      result.status = std::move(budget);
      break;
    }
    std::vector<std::pair<CategoryId, CategoryId>> chosen;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (mask & (uint64_t{1} << i)) chosen.push_back(edges[i]);
    }
    std::optional<Subhierarchy> g = Subhierarchy::FromEdges(
        schema.num_categories(), root, schema.all(), chosen);
    if (!g.has_value()) continue;

    ++result.stats.check_calls;
    CheckOutcome outcome = CheckSubhierarchy(relevant, *g, check_options);
    result.stats.assignments_tried += outcome.assignments_tried;
    if (outcome.structurally_rejected) ++result.stats.structural_rejections;
    if (!outcome.frozen.empty()) {
      Status reserve = mem.Reserve(
          static_cast<uint64_t>(outcome.frozen.size()) * frozen_bytes,
          "naive_sat.frozen");
      if (!reserve.ok()) {
        result.status = std::move(reserve);
        break;
      }
    }
    for (FrozenDimension& f : outcome.frozen) {
      if (result.frozen.size() >= options.max_frozen) break;
      result.frozen.push_back(std::move(f));
    }
    if (!result.frozen.empty() && !options.enumerate_all) break;
    if (result.frozen.size() >= options.max_frozen) break;
  }
  result.satisfiable = !result.frozen.empty();
  result.stats.frozen_found = result.frozen.size();
  FlushNaiveSatMetrics(result);
  if (span.active()) {
    span.AddStat("root", schema.CategoryName(root));
    span.AddStat("candidates_checked", result.stats.check_calls);
    span.AddStat("satisfiable", result.satisfiable);
  }
  return result;
}

}  // namespace olapdc
