// DIMSAT checkpoint/resume: the persistence half of crash-proof
// request lifecycles. When a budget (deadline, cancellation, memory,
// expand cap) expires mid-search, the engine serializes its live
// frontier — the stack of partially processed EXPAND nodes — instead of
// discarding the work. ResumeDimsat() continues exactly where the
// interrupted run stopped: the interrupted and resumed runs partition
// the search tree, so their combined verdict, frozen set, and stats
// equal an uninterrupted run's (checkpoint_test.cc proves this
// property over many seeded workloads).
//
// A frame stores only (subhierarchy, next subset mask, depth). The
// derived per-node state — chosen top category, allowed/into sets, the
// free-successor array — is a pure function of the subhierarchy and the
// schema, so the resume recomputes it deterministically rather than
// trusting a serialized copy. Frames are ordered deepest-first: that is
// the order the unwinding interrupted run captures them in, and
// replaying them in that order reproduces the original depth-first
// traversal order.
//
// Checkpoints deliberately carry no statistics and no collected frozen
// dimensions: those already left with the interrupted run's
// DimsatResult (budget-errors-are-data), and a resumed run reports only
// the fresh work it performs — callers accumulate.

#ifndef OLAPDC_CORE_CHECKPOINT_H_
#define OLAPDC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/frozen.h"
#include "core/subhierarchy.h"

namespace olapdc {

class DimensionSchema;

/// One partially processed EXPAND node of the interrupted search.
struct DimsatCheckpointFrame {
  /// The subhierarchy as it was when this node's EXPAND ran.
  Subhierarchy g;
  /// First unprocessed subset of the node's free-successor choices
  /// (0 = the node was not processed at all and is redone in full).
  uint32_t next_mask = 0;
  /// Recursion depth of the node (drives split-depth decisions and
  /// undo-log accounting on resume).
  int depth = 0;
  /// Component this frame belongs to when the interrupted run was a
  /// decomposed search (DimsatOptions::decompose); -1 for monolithic
  /// frames. Component indices refer to the deterministic split the
  /// resume recomputes from (schema, root, options).
  int component = -1;
};

/// The complete model set of one already-solved component of an
/// interrupted decomposed run. The composition step needs every
/// per-component model, so solved components travel with the
/// checkpoint (unlike monolithic frozen dimensions, which leave with
/// the interrupted run's result and are never re-emitted). An entry
/// with zero models records "solved, UNSAT" — without it the resume
/// could not distinguish an unsatisfiable component from an
/// unstarted one.
struct DimsatSolvedComponent {
  int component = -1;
  std::vector<FrozenDimension> models;
};

struct DimsatCheckpoint {
  CategoryId root = 0;
  int num_categories = 0;
  /// Deepest-first: index 0 is the innermost interrupted node.
  /// For decomposed checkpoints, frames of the same component keep
  /// deepest-first order among themselves.
  std::vector<DimsatCheckpointFrame> frames;
  /// Decomposed checkpoints only: number of components of the split
  /// (0 = monolithic checkpoint), and the model sets of components
  /// the interrupted run finished.
  int num_components = 0;
  std::vector<DimsatSolvedComponent> solved;

  bool empty() const { return frames.empty() && solved.empty(); }

  /// Line-oriented text form, stable across runs. Monolithic
  /// checkpoints keep the v1 format bit-for-bit:
  ///   dimsat-checkpoint v1
  ///   root <r> categories <n> frames <k>
  ///   frame <next_mask> <depth> <edges> <u1> <v1> ... <ue> <ve>
  /// Decomposed checkpoints (num_components > 0) emit v2, which tags
  /// every frame with its component and appends the solved-component
  /// model sets (assignment names %-escaped):
  ///   dimsat-checkpoint v2
  ///   root <r> categories <n> frames <k> components <w> solved <s>
  ///   frame <component> <next_mask> <depth> <edges> <u> <v> ...
  ///   solved <component> <models>
  ///   model <edges> <u> <v> ... <assigned> <cat> <name> ...
  std::string Serialize() const;

  /// Inverse of Serialize(). Rejects malformed input, version
  /// mismatches, and frames whose edges do not form a root-reachable
  /// partial subhierarchy (kParseError / kInvalidArgument). Accepts
  /// both v1 and v2.
  static Result<DimsatCheckpoint> Deserialize(std::string_view text);
};

/// Resume hook for the request plane: deserializes `text` and
/// validates it against (ds, root) up front, so a service can reject a
/// stale or mismatched client checkpoint with kInvalidArgument before
/// committing a request slot to the run (ResumeDimsat would reject it
/// too, but only after the caller has built options and budgets).
Result<DimsatCheckpoint> ParseCheckpointFor(const DimensionSchema& ds,
                                            CategoryId root,
                                            std::string_view text);

}  // namespace olapdc

#endif  // OLAPDC_CORE_CHECKPOINT_H_
