#include "core/dimsat.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <utility>

#include "common/fault_injector.h"
#include "common/memory_budget.h"
#include "common/string_util.h"
#include "constraint/normalize.h"
#include "core/check_subhierarchy.h"
#include "core/decompose.h"
#include "core/nogood.h"
#include "exec/admission.h"
#include "exec/work_stealing_pool.h"
#include "obs/metrics.h"
#include "obs/search_tree.h"
#include "obs/span.h"

namespace olapdc {

namespace {
/// Inventory registration for the chaos campaign's site sweep.
[[maybe_unused]] const bool kExpandSite = RegisterFaultSite("dimsat.expand");
[[maybe_unused]] const bool kSubmitSite = RegisterFaultSite("exec.submit");
}  // namespace

void AccumulateStats(DimsatStats* total, const DimsatStats& delta) {
  total->expand_calls += delta.expand_calls;
  total->check_calls += delta.check_calls;
  total->structural_rejections += delta.structural_rejections;
  total->assignments_tried += delta.assignments_tried;
  total->into_prunes += delta.into_prunes;
  total->shortcut_prunes += delta.shortcut_prunes;
  total->cycle_prunes += delta.cycle_prunes;
  total->dead_ends += delta.dead_ends;
  total->nogood_prunes += delta.nogood_prunes;
  total->frozen_found += delta.frozen_found;
  total->parallel_tasks += delta.parallel_tasks;
  total->parallel_steals += delta.parallel_steals;
}

void FlushDimsatMetrics(const DimsatStats& stats, const Status& status,
                        double elapsed_us) {
  if (!obs::MetricsEnabled()) return;
  // Zero deltas still register the name, so the exported inventory is
  // complete even for rules that never fired on this workload.
  obs::Count("olapdc.dimsat.runs");
  obs::Count("olapdc.dimsat.nodes_expanded", stats.expand_calls);
  obs::Count("olapdc.dimsat.check_calls", stats.check_calls);
  obs::Count("olapdc.dimsat.structural_rejections",
             stats.structural_rejections);
  obs::Count("olapdc.dimsat.assignments_tried", stats.assignments_tried);
  obs::Count("olapdc.dimsat.prune.into", stats.into_prunes);
  obs::Count("olapdc.dimsat.prune.shortcut", stats.shortcut_prunes);
  obs::Count("olapdc.dimsat.prune.cycle", stats.cycle_prunes);
  obs::Count("olapdc.dimsat.dead_ends", stats.dead_ends);
  obs::Count("olapdc.dimsat.prune.nogood", stats.nogood_prunes);
  obs::Count("olapdc.dimsat.frozen_found", stats.frozen_found);
  obs::Count("olapdc.dimsat.parallel.tasks", stats.parallel_tasks);
  obs::Count("olapdc.dimsat.parallel.steals", stats.parallel_steals);
  obs::Count("olapdc.dimsat.budget_stops", IsBudgetError(status) ? 1 : 0);
  obs::LatencyUs("olapdc.dimsat.latency_us", elapsed_us);
}

std::string DimsatTraceEvent::ToString(const HierarchySchema& schema) const {
  std::string out;
  switch (kind) {
    case Kind::kExpand: out = "EXPAND "; break;
    case Kind::kCheckFail: out = "CHECK(fail) "; break;
    case Kind::kCheckSuccess: out = "CHECK(ok) "; break;
    case Kind::kPruned: out = "PRUNE "; break;
    case Kind::kDeadEnd: out = "DEADEND "; break;
  }
  out += "g={";
  out += JoinMapped(edges, ", ", [&](const std::pair<int, int>& e) {
    return schema.CategoryName(e.first) + "->" +
           schema.CategoryName(e.second);
  });
  out += "} top={";
  out += JoinMapped(top, ", ",
                    [&](CategoryId c) { return schema.CategoryName(c); });
  out += "}";
  return out;
}

namespace {

/// Sigma(ds, root) with composed/through shorthands expanded into plain
/// path atoms, so the circle operator and the into-detection see the
/// Definition 3 core language.
Result<std::vector<DimensionConstraint>> PrepareRelevantConstraints(
    const DimensionSchema& ds, CategoryId root, size_t path_limit) {
  std::vector<DimensionConstraint> prepared;
  for (const DimensionConstraint* c : ds.RelevantConstraints(root)) {
    OLAPDC_ASSIGN_OR_RETURN(
        ExprPtr expanded,
        ExpandShorthands(ds.hierarchy(), c->expr, path_limit));
    prepared.push_back(DimensionConstraint{c->root, Simplify(expanded),
                                           c->label});
  }
  return prepared;
}

/// Heap-byte estimate of one Subhierarchy over n categories (three
/// n-vectors of n-bit sets plus the top-level sets) — the unit of the
/// memory-budget accounting for search state, parallel task seeds, and
/// collected frozen dimensions. A governor estimate, not an rlimit
/// (see common/memory_budget.h).
uint64_t ApproxSubhierarchyBytes(int num_categories) {
  const uint64_t n = static_cast<uint64_t>(num_categories);
  const uint64_t bitset_bytes = 16 + ((n + 63) / 64) * 8;
  return 3 * n * bitset_bytes + 3 * bitset_bytes + 128;
}

/// Emits the EXPAND begin/end pair of one search-tree node into the
/// explain recorder (RAII so every exit path — prune, dead end,
/// budget stop mid-loop — closes the node). A null recorder (explain
/// off, or a checkpoint-replayed node whose entry accounting already
/// happened) records nothing.
class ExplainExpandScope {
 public:
  ExplainExpandScope(obs::SearchTreeRecorder* recorder, int depth,
                     int category, uint64_t expand_calls)
      : recorder_(recorder), depth_(depth), category_(category) {
    if (recorder_ == nullptr) return;
    obs::ExplainEvent event;
    event.kind = obs::ExplainEvent::Kind::kExpandBegin;
    event.depth = depth_;
    event.category = category_;
    event.aux = expand_calls;
    recorder_->Record(event);
  }
  ~ExplainExpandScope() {
    if (recorder_ == nullptr) return;
    obs::ExplainEvent event;
    event.kind = obs::ExplainEvent::Kind::kExpandEnd;
    event.depth = depth_;
    event.category = category_;
    recorder_->Record(event);
  }
  ExplainExpandScope(const ExplainExpandScope&) = delete;
  ExplainExpandScope& operator=(const ExplainExpandScope&) = delete;

 private:
  obs::SearchTreeRecorder* const recorder_;
  const int depth_;
  const int category_;
};

class DimsatSearch {
 public:
  /// `relevant` is borrowed: the caller keeps it alive for the lifetime
  /// of the search (parallel tasks share one prepared vector).
  DimsatSearch(const DimensionSchema& ds, CategoryId root,
               const DimsatOptions& options,
               const std::vector<DimensionConstraint>& relevant)
      : ds_(ds),
        schema_(ds.hierarchy()),
        root_(root),
        options_(options),
        relevant_(relevant),
        budget_checker_(options.budget, options.budget_check_stride,
                        "dimsat.expand"),
        checkpoint_(options.checkpoint),
        mem_(options.budget != nullptr ? options.budget->memory() : nullptr),
        g_(schema_.num_categories(), root) {
    check_options_.assignment.require_injective =
        options.require_injective_names;
    check_options_.assignment.enumerate_all = options.enumerate_all;
    check_options_.assignment.max_results = options.max_frozen;
    const uint64_t n = static_cast<uint64_t>(schema_.num_categories());
    const uint64_t bitset_bytes = 16 + ((n + 63) / 64) * 8;
    subhierarchy_bytes_ = ApproxSubhierarchyBytes(schema_.num_categories());
    // One undo frame journals the expanded category's Below snapshots —
    // a handful of bitsets in the common case.
    frame_bytes_ = 4 * bitset_bytes + 96;
    // A frozen dimension is a subhierarchy plus its name assignment.
    frozen_bytes_ = subhierarchy_bytes_ + n * 24;
    // The explain gate is cached once per search (like the metrics
    // enabled bit) so the disabled hot path pays one pointer test.
    if (obs::SearchTreeRecorder::Global().enabled()) {
      recorder_ = &obs::SearchTreeRecorder::Global();
    }
    // Learned pruning changes which nodes are visited, so it is
    // incompatible with the exact-trace contract of the Figure 7
    // harness: a trace-collecting run ignores the store.
    if (options.nogoods != nullptr && !options.collect_trace) {
      nogoods_ = options.nogoods;
      nogood_bits_ = (options.prune_shortcuts ? 1u : 0u) |
                     (options.prune_cycles ? 2u : 0u) |
                     (options.prune_into ? 4u : 0u) |
                     (options.require_injective_names ? 8u : 0u);
      nogood_salt_ = options.nogood_salt;
    }
  }

  DimsatResult Run() {
    return RunFrom(Subhierarchy(schema_.num_categories(), root_), 0);
  }

  /// Continues the search from a partially built subhierarchy at the
  /// given recursion depth (the parallel drivers seed tasks this way).
  DimsatResult RunFrom(Subhierarchy seed, int depth) {
    g_ = std::move(seed);
    Status base = mem_.Reserve(subhierarchy_bytes_, "dimsat.search");
    if (!base.ok()) {
      // Too exhausted even for the working set: the whole subtree is
      // captured unprocessed and nothing is counted.
      result_.status = std::move(base);
      MaybeCapture(depth, 0);
    } else {
      Expand(depth);
    }
    Finish();
    return std::move(result_);
  }

  /// Replays an interrupted run's frontier, deepest frame first (the
  /// original depth-first order). Reports only fresh work; if this run
  /// is interrupted too, the not-yet-replayed frames carry over into
  /// the new checkpoint after whatever Expand() itself captured —
  /// which preserves deepest-first order, since Expand's captures all
  /// lie inside the currently replayed (deepest remaining) frame.
  DimsatResult RunResume(DimsatCheckpoint&& from) {
    Status base = mem_.Reserve(subhierarchy_bytes_, "dimsat.search");
    if (!base.ok()) {
      result_.status = std::move(base);
      AppendRemaining(&from, 0);
      Finish();
      return std::move(result_);
    }
    for (size_t i = 0; i < from.frames.size(); ++i) {
      if (!ShouldContinue()) {
        if (IsBudgetError(result_.status)) AppendRemaining(&from, i);
        break;
      }
      DimsatCheckpointFrame& frame = from.frames[i];
      g_ = std::move(frame.g);
      Expand(frame.depth, frame.next_mask);
    }
    Finish();
    return std::move(result_);
  }

  /// Shared early-stop flag for parallel runs: once any worker decides
  /// the global answer, the others abandon their subtrees.
  void set_external_stop(std::atomic<bool>* stop) { external_stop_ = stop; }

  /// Work-stealing hook: while the recursion depth is below
  /// `split_depth`, child subhierarchies are handed to `spawner`
  /// (becoming stealable tasks) instead of being expanded in-place.
  void set_spawner(std::function<void(Subhierarchy&&, int)> spawner,
                   int split_depth) {
    spawner_ = std::move(spawner);
    split_depth_ = split_depth;
  }

  /// Restricts successor choices to a category universe — the
  /// component searches of a decomposed run (core/decompose.h) pass
  /// their component's categories plus root and All. Null (the
  /// default) leaves the search unrestricted. Not owned; must outlive
  /// the search.
  void set_universe(const DynamicBitset* universe) { universe_ = universe; }

  /// Most-constrained-first branching (options.branch_heuristic):
  /// EXPAND picks the pending category with the smallest rank instead
  /// of the smallest id. Not owned; must outlive the search.
  void set_branch_rank(const std::vector<int>* rank) { branch_rank_ = rank; }

  /// Tags every captured checkpoint frame with a component id
  /// (decomposed runs); -1 (the default) marks monolithic frames.
  void set_component(int component) { component_ = component; }

 private:
  void Trace(DimsatTraceEvent::Kind kind, const Subhierarchy& g) {
    if (!options_.collect_trace ||
        result_.trace.size() >= options_.max_trace) {
      return;
    }
    // Under a memory budget the trace degrades by silent truncation —
    // the same contract as the max_trace cap — rather than tripping
    // the whole search over an advisory artifact.
    MemoryBudget* mb = mem_.budget();
    if (mb != nullptr) {
      const uint64_t est =
          96 + 16 * (static_cast<uint64_t>(g.num_edges()) + g.top().count());
      if (mb->limit() > 0 && mb->reserved() + est > mb->limit()) return;
      if (!mem_.Reserve(est, "dimsat.trace").ok()) return;
    }
    DimsatTraceEvent event;
    event.kind = kind;
    event.edges = g.Edges();
    g.top().ForEach([&](int c) { event.top.push_back(c); });
    result_.trace.push_back(std::move(event));
  }

  /// Reserves undo-log headroom up to recursion level `depth` (a
  /// high-water charge: backtracking reuses frame storage, so the
  /// estimate only ever grows). Charged at EXPAND entry — before the
  /// node does anything — so a trip captures the node whole.
  Status ChargeDepth(int depth) {
    if (mem_.budget() == nullptr) return Status::OK();
    const uint64_t target = static_cast<uint64_t>(depth) + 1;
    if (target <= undo_charged_depth_) return Status::OK();
    OLAPDC_RETURN_NOT_OK(mem_.Reserve(
        (target - undo_charged_depth_) * frame_bytes_, "dimsat.undo"));
    undo_charged_depth_ = target;
    return Status::OK();
  }

  void Finish() {
    result_.satisfiable = !result_.frozen.empty();
    result_.stats.frozen_found = result_.frozen.size();
  }

  /// Captures the current node as a checkpoint frame iff a checkpoint
  /// sink is attached and the search stopped on a budget error (the
  /// only stops a resume can continue from). `next_mask` is the first
  /// unprocessed successor subset; 0 means the node is redone in full.
  void MaybeCapture(int depth, uint32_t next_mask) {
    if (checkpoint_ == nullptr || !IsBudgetError(result_.status)) return;
    checkpoint_->root = root_;
    checkpoint_->num_categories = schema_.num_categories();
    checkpoint_->frames.push_back(
        DimsatCheckpointFrame{g_, next_mask, depth, component_});
  }

  /// Hands frames[start..] of an interrupted resume back to the new
  /// checkpoint (they were never replayed).
  void AppendRemaining(DimsatCheckpoint* from, size_t start) {
    if (checkpoint_ == nullptr) return;
    checkpoint_->root = root_;
    checkpoint_->num_categories = schema_.num_categories();
    for (size_t j = start; j < from->frames.size(); ++j) {
      checkpoint_->frames.push_back(std::move(from->frames[j]));
    }
  }

  /// True while the search should continue; false aborts every open
  /// recursion (first witness found, budget hit, or cap reached).
  bool ShouldContinue() const {
    if (external_stop_ != nullptr &&
        external_stop_->load(std::memory_order_relaxed)) {
      return false;
    }
    if (!result_.status.ok()) return false;
    if (result_.frozen.empty()) return true;
    if (!options_.enumerate_all) return false;
    return result_.frozen.size() < options_.max_frozen;
  }

  /// Records one explain decision (no-op when --explain is off).
  void RecordExplain(obs::ExplainEvent::Kind kind, int depth,
                     int category = -1, int edge_from = -1, int edge_to = -1,
                     uint64_t aux = 0) {
    if (recorder_ == nullptr) return;
    obs::ExplainEvent event;
    event.kind = kind;
    event.depth = depth;
    event.category = category;
    event.edge_from = edge_from;
    event.edge_to = edge_to;
    event.aux = aux;
    recorder_->Record(event);
  }

  /// Returns false when the memory budget could not cover the CHECK's
  /// outcome: result_.status is set and *nothing* is recorded — no
  /// stats, no frozen — so the resumed run redoes the node wholesale
  /// and the combined counts stay exact (in particular, no frozen
  /// dimension is ever emitted twice across an interrupt/resume pair).
  bool RunCheck(const Subhierarchy& g, int depth) {
    CheckOutcome outcome = CheckSubhierarchy(relevant_, g, check_options_);
    if (!outcome.frozen.empty()) {
      Status reserve = mem_.Reserve(
          static_cast<uint64_t>(outcome.frozen.size()) * frozen_bytes_,
          "dimsat.frozen");
      if (!reserve.ok()) {
        result_.status = std::move(reserve);
        return false;
      }
    }
    ++result_.stats.check_calls;
    result_.stats.assignments_tried += outcome.assignments_tried;
    if (outcome.structurally_rejected) {
      ++result_.stats.structural_rejections;
    }
    if (outcome.frozen.empty()) {
      Trace(DimsatTraceEvent::Kind::kCheckFail, g);
      RecordExplain(obs::ExplainEvent::Kind::kCheckFail, depth);
      return true;
    }
    Trace(DimsatTraceEvent::Kind::kCheckSuccess, g);
    RecordExplain(obs::ExplainEvent::Kind::kCheckOk, depth, -1, -1, -1,
                  outcome.frozen.size());
    for (FrozenDimension& f : outcome.frozen) {
      if (result_.frozen.size() >= options_.max_frozen) break;
      result_.frozen.push_back(std::move(f));
    }
    return true;
  }

  /// The EXPAND procedure (Figure 6), with the subset loop corrected to
  /// admit R = Into (DESIGN.md deviation 2). Backtracking is mutation +
  /// rollback on the member subhierarchy (the undo log journals each
  /// expansion), so the hot path allocates nothing: the working sets
  /// are small-buffer bitsets and a stack array. Below the split depth
  /// (work-stealing runs only) children are copied out and spawned as
  /// pool tasks instead of recursed into.
  ///
  /// `start_mask` > 0 replays a checkpointed node from its first
  /// unprocessed successor subset. Such a node is *not fresh*: its
  /// entry-side accounting (the expand_calls increment, the trace
  /// event, the prune counters of the deterministic successor scan)
  /// already happened in the interrupted run, so the replay recomputes
  /// the derived state silently — that is what keeps interrupted +
  /// resumed statistics exactly equal to an uninterrupted run's.
  void Expand(int depth, uint32_t start_mask = 0) {
    const bool fresh = (start_mask == 0);
    if (!ShouldContinue()) return;
    // Wall-clock / cancellation / memory probe, amortized by the
    // checker so the common case is one branch per EXPAND.
    Status budget = budget_checker_.Check();
    if (budget.ok()) {
      budget = FaultInjector::Global().MaybeFail("dimsat.expand");
    }
    if (budget.ok()) {
      budget = ChargeDepth(depth);
    }
    if (!budget.ok()) {
      result_.status = std::move(budget);
      RecordExplain(obs::ExplainEvent::Kind::kBudgetStop, depth, -1, -1, -1,
                    result_.stats.expand_calls);
      MaybeCapture(depth, start_mask);
      return;
    }
    // Learned pruning (core/nogood.h): a node whose signature is a
    // recorded barren subtree is skipped before it is even counted —
    // the warm path of a repeat query does O(signature) work per
    // skipped subtree instead of re-exploring it. Replayed checkpoint
    // nodes (fresh == false) keep their stats contract untouched.
    Fingerprint128 node_sig;
    bool have_sig = false;
    if (fresh && nogoods_ != nullptr) {
      node_sig = NoGoodStore::Signature(g_, nogood_bits_, nogood_salt_);
      have_sig = true;
      if (nogoods_->Probe(node_sig)) {
        ++result_.stats.nogood_prunes;
        return;
      }
    }
    if (fresh) {
      if (++result_.stats.expand_calls > options_.max_expand_calls) {
        // Uncount the node: it is captured unprocessed (next_mask 0),
        // so the resumed run counts it when it actually expands it.
        --result_.stats.expand_calls;
        result_.status = Status::ResourceExhausted(
            "DIMSAT exceeded max_expand_calls");
        RecordExplain(obs::ExplainEvent::Kind::kBudgetStop, depth, -1, -1, -1,
                      result_.stats.expand_calls);
        MaybeCapture(depth, 0);
        return;
      }
      Trace(DimsatTraceEvent::Kind::kExpand, g_);
    }

    // Line (6): g complete once only All awaits expansion.
    DynamicBitset pending = g_.top();
    pending.reset(schema_.all());
    if (pending.none()) {
      const size_t frozen_before = result_.frozen.size();
      if (!RunCheck(g_, depth)) {
        // The CHECK could not afford its outcome: uncount the node and
        // capture it whole so the resume redoes it (frozen dimensions
        // are emitted exactly once across the interrupt/resume pair).
        if (fresh) --result_.stats.expand_calls;
        MaybeCapture(depth, 0);
        return;
      }
      // A completed subhierarchy that induces no frozen dimension is
      // the leaf form of a barren subtree. The max_frozen guard keeps
      // a capped enumerate run from recording a leaf whose dimensions
      // were merely dropped at the cap.
      if (have_sig && result_.frozen.size() == frozen_before &&
          result_.frozen.size() < options_.max_frozen) {
        nogoods_->Record(node_sig);
      }
      return;
    }

    // Line (10): pick a pending top category — lowest id by default,
    // lowest branch rank under the most-constrained-first heuristic.
    // Both are deterministic, so checkpoint replays recompute the
    // interrupted run's exact choice.
    CategoryId ctop = pending.First();
    if (branch_rank_ != nullptr) {
      int best = (*branch_rank_)[ctop];
      pending.ForEach([&](int c) {
        if ((*branch_rank_)[c] < best) {
          best = (*branch_rank_)[c];
          ctop = c;
        }
      });
    }
    const DynamicBitset& below = g_.Below(ctop);

    // Explain: bracket this node (fresh only — a checkpoint replay's
    // entry was already recorded by the interrupted run, matching the
    // stats contract above).
    ExplainExpandScope explain_scope(fresh ? recorder_ : nullptr, depth, ctop,
                                     result_.stats.expand_calls);

    // Lines (11)-(13): successor choices that are structurally allowed.
    DynamicBitset allowed(schema_.num_categories());
    DynamicBitset into(schema_.num_categories());
    for (CategoryId c : schema_.graph().OutNeighbors(ctop)) {
      // Component searches never leave their universe; filtered
      // successors belong to sibling components and are someone
      // else's search (they are not counted as prunes).
      if (universe_ != nullptr && !universe_->test(c)) continue;
      bool blocked = false;
      // Ss: an existing edge from below ctop into c would become a
      // shortcut once ctop -> c completes the longer path.
      if (options_.prune_shortcuts && g_.In(c).Intersects(below)) {
        blocked = true;
        if (fresh) {
          ++result_.stats.shortcut_prunes;
          RecordExplain(obs::ExplainEvent::Kind::kPruneShortcut, depth, ctop,
                        ctop, c);
        }
      }
      // Sc: c already reaches ctop; the edge would close a cycle.
      if (options_.prune_cycles && below.test(c)) {
        blocked = true;
        if (fresh) {
          ++result_.stats.cycle_prunes;
          RecordExplain(obs::ExplainEvent::Kind::kPruneCycle, depth, ctop,
                        ctop, c);
        }
      }
      if (!blocked) allowed.set(c);
      if (ds_.IntoTargets(ctop).test(c)) into.set(c);
    }

    if (options_.prune_into) {
      // Line (15): a blocked into-target dooms every choice at ctop.
      // AndNotAny is the fused kernel — no temporary bitset.
      if (into.AndNotAny(allowed)) {
        if (fresh) {
          ++result_.stats.into_prunes;
          Trace(DimsatTraceEvent::Kind::kPruned, g_);
          if (recorder_ != nullptr) {
            // Name every blocked into-target: each is an edge the
            // constraint forces but a structural rule forbids.
            (into - allowed).ForEach([&](int c) {
              RecordExplain(obs::ExplainEvent::Kind::kPruneInto, depth, ctop,
                            ctop, c);
            });
          }
        }
        // An into-pruned node yields nothing under these options, in
        // this run or any future one: a no-good by construction.
        if (have_sig) nogoods_->Record(node_sig);
        return;
      }
    } else {
      into.clear();
    }

    if (allowed.none()) {
      if (fresh) {
        ++result_.stats.dead_ends;
        Trace(DimsatTraceEvent::Kind::kDeadEnd, g_);
        RecordExplain(obs::ExplainEvent::Kind::kDeadEnd, depth, ctop);
      }
      if (have_sig) nogoods_->Record(node_sig);
      return;
    }

    // Line (16), corrected: iterate S' over all subsets of the free
    // choices (including the empty set) and recurse on R = S' ∪ Into
    // whenever R is non-empty.
    std::array<CategoryId, 31> free;
    int num_free = 0;
    (allowed - into).ForEach([&](int c) {
      OLAPDC_CHECK(num_free < 31) << "category out-degree too large";
      free[num_free++] = c;
    });
    const bool split = spawner_ && depth < split_depth_;
    const uint32_t subsets = uint32_t{1} << num_free;
    const size_t frozen_before_children = result_.frozen.size();
    for (uint32_t mask = start_mask; mask < subsets; ++mask) {
      if (!ShouldContinue()) {
        // A budget stop mid-loop captures this node's continuation
        // (subsets [mask, end)); any deeper frame was captured by the
        // child before unwinding, keeping frames deepest-first. On
        // non-budget stops (witness found) MaybeCapture is a no-op.
        MaybeCapture(depth, mask);
        return;
      }
      DynamicBitset r = into;
      for (int i = 0; i < num_free; ++i) {
        if (mask & (uint32_t{1} << i)) r.set(free[i]);
      }
      if (r.none()) continue;
      if (split) {
        Subhierarchy child = g_;
        child.Expand(ctop, r);
        spawner_(std::move(child), depth + 1);
      } else {
        g_.ExpandLogged(ctop, r, &undo_);
        Expand(depth + 1);
        g_.Rollback(&undo_);
      }
    }
    // Interior no-good: the subset loop ran to completion *inline*
    // (no outstanding spawned children), cleanly (no budget stop, no
    // external stop), and no descendant produced a frozen dimension —
    // the subtree below this exact subhierarchy is barren and will be
    // barren in every future run with the same option bits. The
    // max_frozen guard mirrors the leaf case above.
    if (have_sig && !split && result_.status.ok() &&
        (external_stop_ == nullptr ||
         !external_stop_->load(std::memory_order_relaxed)) &&
        result_.frozen.size() == frozen_before_children &&
        result_.frozen.size() < options_.max_frozen) {
      nogoods_->Record(node_sig);
    }
  }

  const DimensionSchema& ds_;
  const HierarchySchema& schema_;
  const CategoryId root_;
  const DimsatOptions& options_;
  const std::vector<DimensionConstraint>& relevant_;
  CheckOptions check_options_;
  BudgetChecker budget_checker_;
  /// Checkpoint sink (null = no capture); sequential runs only.
  DimsatCheckpoint* checkpoint_;
  /// Memory-budget accounting scoped to this search; every byte is
  /// returned when the search dies, on every exit path.
  MemoryReservation mem_;
  uint64_t undo_charged_depth_ = 0;
  uint64_t subhierarchy_bytes_ = 0;
  uint64_t frame_bytes_ = 0;
  uint64_t frozen_bytes_ = 0;
  Subhierarchy g_;
  SubhierarchyUndoLog undo_;
  /// Explain recorder, cached at construction (null = --explain off).
  obs::SearchTreeRecorder* recorder_ = nullptr;
  /// Learned-pruning store (null = off; forced off under
  /// collect_trace) and the semantic option bits mixed into every
  /// signature.
  NoGoodStore* nogoods_ = nullptr;
  uint32_t nogood_bits_ = 0;
  uint64_t nogood_salt_ = 0;
  DimsatResult result_;
  std::atomic<bool>* external_stop_ = nullptr;
  std::function<void(Subhierarchy&&, int)> spawner_;
  int split_depth_ = 0;
  /// Category universe restriction (decomposed component searches).
  const DynamicBitset* universe_ = nullptr;
  /// Branching rank (options.branch_heuristic); null = id order.
  const std::vector<int>* branch_rank_ = nullptr;
  /// Component tag for captured checkpoint frames (-1 = monolithic).
  int component_ = -1;
};

/// Most-constrained-first branching rank: a static permutation of the
/// categories ordered by (free successor choices ascending, forced
/// into-target count descending, out-degree ascending, id ascending).
/// Free choices = out-degree minus forced into-targets — the branching
/// factor EXPAND actually faces at the category; expanding the
/// tightest category first shrinks the subset loop fan-out near the
/// top of the tree. A pure function of the schema, so checkpoint
/// resumes and parallel workers recompute it identically.
std::vector<int> ComputeBranchRank(const DimensionSchema& ds) {
  const HierarchySchema& schema = ds.hierarchy();
  const int n = schema.num_categories();
  std::vector<int> outdeg(n, 0), forced(n, 0);
  for (int c = 0; c < n; ++c) {
    for (CategoryId t : schema.graph().OutNeighbors(c)) {
      ++outdeg[c];
      if (ds.IntoTargets(c).test(t)) ++forced[c];
    }
  }
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int fa = outdeg[a] - forced[a];
    const int fb = outdeg[b] - forced[b];
    if (fa != fb) return fa < fb;
    if (forced[a] != forced[b]) return forced[a] > forced[b];
    if (outdeg[a] != outdeg[b]) return outdeg[a] < outdeg[b];
    return a < b;
  });
  std::vector<int> rank(n);
  for (int i = 0; i < n; ++i) rank[order[i]] = i;
  return rank;
}

/// Cross-product composition of the per-component model sets
/// (enumerate mode): every combination picking one model per
/// component — or "absent" for components whose constraints allow it —
/// yields one frozen dimension, except the all-absent combination
/// (the root must expand somewhere). Each composed model is charged
/// against the memory reservation; a non-OK return means the budget
/// could not cover it (out->truncated at that point).
Status ComposeFrozen(const ComponentSplit& split,
                     const std::vector<std::vector<FrozenDimension>>& models,
                     size_t max_frozen, uint64_t frozen_bytes,
                     MemoryReservation* mem,
                     std::vector<FrozenDimension>* out) {
  const int w = static_cast<int>(split.num_components());
  // A component that must be present but has no model kills every
  // combination.
  for (int k = 0; k < w; ++k) {
    if (!split.absent_valid[k] && models[k].empty()) return Status::OK();
  }
  // Mixed-base odometer: digit -1 = absent (absent-valid components
  // only), 0..m-1 = that model. Starts at the lowest combination.
  std::vector<int> choice(w);
  for (int k = 0; k < w; ++k) choice[k] = split.absent_valid[k] ? -1 : 0;
  while (true) {
    int first_present = -1;
    for (int k = 0; k < w; ++k) {
      if (choice[k] >= 0) {
        first_present = k;
        break;
      }
    }
    if (first_present >= 0) {  // skip the all-absent combination
      if (out->size() >= max_frozen) return Status::OK();
      OLAPDC_RETURN_NOT_OK(mem->Reserve(frozen_bytes, "dimsat.frozen"));
      FrozenDimension fd = models[first_present][choice[first_present]];
      for (int k = first_present + 1; k < w; ++k) {
        if (choice[k] >= 0) MergeDisjointInto(models[k][choice[k]], &fd);
      }
      out->push_back(std::move(fd));
    }
    int k = 0;
    for (; k < w; ++k) {
      if (++choice[k] < static_cast<int>(models[k].size())) break;
      choice[k] = split.absent_valid[k] ? -1 : 0;
    }
    if (k == w) return Status::OK();
  }
}

/// The sequential decomposed driver: one restricted-universe
/// DimsatSearch per component, run in deterministic order, then the
/// composition step. Handles both fresh runs and checkpoint resumes
/// (`resume_from`); on a budget stop it captures a v2 checkpoint —
/// frames of the interrupted component, models collected so far, and
/// seed frames for components not yet started — and reports *no*
/// frozen dimensions (partial per-component sets cannot compose; the
/// resume emits the full composed set instead).
DimsatResult RunDecomposedSequential(
    const DimensionSchema& ds, CategoryId root, const DimsatOptions& options,
    const std::vector<DimensionConstraint>& relevant,
    const ComponentSplit& split, const std::vector<int>* branch_rank,
    DimsatCheckpoint* resume_from) {
  const int n = ds.hierarchy().num_categories();
  const int w = static_cast<int>(split.num_components());
  DimsatResult result;

  std::vector<std::vector<DimensionConstraint>> comp_relevant(w);
  for (int k = 0; k < w; ++k) {
    for (size_t i : split.constraint_indices[k]) {
      comp_relevant[k].push_back(relevant[i]);
    }
  }

  // Which components this run searches, in deterministic order.
  // Enumerate mode needs every component's full model set. Decision
  // mode with must-be-present components searches exactly those (a
  // witness merges one model from each; the optional components stay
  // absent). Decision mode where every component may be absent scans
  // components in order until one yields a witness.
  std::vector<int> to_search;
  bool any_required = false;
  for (int k = 0; k < w; ++k) {
    if (!split.absent_valid[k]) any_required = true;
  }
  const bool scan_mode = !options.enumerate_all && !any_required;
  for (int k = 0; k < w; ++k) {
    if (options.enumerate_all || scan_mode || !split.absent_valid[k]) {
      to_search.push_back(k);
    }
  }

  // Resume bookkeeping: partition the interrupted run's checkpoint
  // into per-component frontiers and already-collected model sets.
  std::vector<std::vector<DimsatCheckpointFrame>> frames(w);
  std::vector<std::vector<FrozenDimension>> models(w);
  std::vector<char> done(w, 0);
  if (resume_from != nullptr) {
    std::vector<char> has_entry(w, 0);
    for (DimsatCheckpointFrame& frame : resume_from->frames) {
      OLAPDC_DCHECK(0 <= frame.component && frame.component < w);
      frames[frame.component].push_back(std::move(frame));
    }
    for (DimsatSolvedComponent& comp : resume_from->solved) {
      OLAPDC_DCHECK(0 <= comp.component && comp.component < w);
      has_entry[comp.component] = 1;
      models[comp.component] = std::move(comp.models);
    }
    for (int k = 0; k < w; ++k) {
      done[k] = has_entry[k] && frames[k].empty();
    }
  }

  uint64_t consumed = 0;
  bool interrupted = false;
  int interrupted_comp = -1;
  size_t interrupted_idx = 0;
  bool unsat_proven = false;
  int witness_comp = -1;
  DimsatCheckpoint local_cp;

  for (size_t idx = 0; idx < to_search.size(); ++idx) {
    const int k = to_search[idx];
    if (!done[k]) {
      local_cp = DimsatCheckpoint{};
      DimsatOptions comp_opts = options;
      comp_opts.nogood_salt = split.salts[k];
      comp_opts.checkpoint =
          options.checkpoint != nullptr ? &local_cp : nullptr;
      comp_opts.max_expand_calls =
          options.max_expand_calls == UINT64_MAX
              ? UINT64_MAX
              : options.max_expand_calls - consumed;
      DimsatSearch search(ds, root, comp_opts, comp_relevant[k]);
      search.set_universe(&split.universes[k]);
      if (branch_rank != nullptr) search.set_branch_rank(branch_rank);
      search.set_component(k);
      DimsatResult r;
      if (!frames[k].empty()) {
        DimsatCheckpoint sub;
        sub.root = root;
        sub.num_categories = n;
        sub.frames = std::move(frames[k]);
        frames[k].clear();
        r = search.RunResume(std::move(sub));
      } else {
        r = search.Run();
      }
      consumed += r.stats.expand_calls;
      AccumulateStats(&result.stats, r.stats);
      for (FrozenDimension& f : r.frozen) models[k].push_back(std::move(f));
      if (!r.status.ok()) {
        result.status = r.status;
        interrupted = true;
        interrupted_comp = k;
        interrupted_idx = idx;
        break;
      }
      done[k] = 1;
    }
    if (!options.enumerate_all) {
      if (scan_mode) {
        if (!models[k].empty()) {
          witness_comp = k;
          break;
        }
      } else if (models[k].empty()) {
        unsat_proven = true;
        break;
      }
    }
  }

  if (interrupted) {
    if (IsBudgetError(result.status) && options.checkpoint != nullptr) {
      DimsatCheckpoint* cp = options.checkpoint;
      cp->root = root;
      cp->num_categories = n;
      cp->num_components = w;
      cp->frames = std::move(local_cp.frames);
      if (!models[interrupted_comp].empty()) {
        cp->solved.push_back(DimsatSolvedComponent{
            interrupted_comp, std::move(models[interrupted_comp])});
      }
      for (int k = 0; k < w; ++k) {
        if (done[k]) {
          cp->solved.push_back(
              DimsatSolvedComponent{k, std::move(models[k])});
        }
      }
      for (size_t j = interrupted_idx + 1; j < to_search.size(); ++j) {
        const int k = to_search[j];
        if (done[k]) continue;
        if (!frames[k].empty()) {
          // An earlier interrupt's still-unreplayed frontier for this
          // component carries over verbatim.
          for (DimsatCheckpointFrame& f : frames[k]) {
            cp->frames.push_back(std::move(f));
          }
        } else {
          cp->frames.push_back(DimsatCheckpointFrame{
              Subhierarchy(n, root), 0, 0, k});
        }
      }
    }
    result.satisfiable = false;
    result.stats.frozen_found = 0;
    return result;
  }

  // Verdict / composition.
  MemoryReservation mem(options.budget != nullptr ? options.budget->memory()
                                                  : nullptr);
  const uint64_t frozen_bytes =
      ApproxSubhierarchyBytes(n) + static_cast<uint64_t>(n) * 24;
  if (!options.enumerate_all) {
    if (!unsat_proven) {
      if (scan_mode) {
        if (witness_comp >= 0) {
          result.frozen.push_back(std::move(models[witness_comp][0]));
        }
      } else {
        FrozenDimension fd{Subhierarchy(n, root),
                           CAssignment(static_cast<size_t>(n), std::nullopt)};
        for (int k : to_search) MergeDisjointInto(models[k][0], &fd);
        result.frozen.push_back(std::move(fd));
      }
    }
  } else {
    Status composed = ComposeFrozen(split, models, options.max_frozen,
                                    frozen_bytes, &mem, &result.frozen);
    if (!composed.ok()) {
      result.status = std::move(composed);
      result.frozen.clear();
      if (IsBudgetError(result.status) && options.checkpoint != nullptr) {
        // Everything is solved; the resume only needs to recompose.
        DimsatCheckpoint* cp = options.checkpoint;
        cp->root = root;
        cp->num_categories = n;
        cp->num_components = w;
        for (int k = 0; k < w; ++k) {
          cp->solved.push_back(
              DimsatSolvedComponent{k, std::move(models[k])});
        }
      }
      result.satisfiable = false;
      result.stats.frozen_found = 0;
      return result;
    }
  }
  result.satisfiable = !result.frozen.empty();
  result.stats.frozen_found = result.frozen.size();
  return result;
}

/// First-level expansion choices of `root` under the schema+options —
/// the static driver's work items. Mirrors one EXPAND step (the seeds
/// are exactly the subhierarchies the sequential search would recurse
/// into).
std::vector<Subhierarchy> FirstLevelSeeds(const DimensionSchema& ds,
                                          CategoryId root,
                                          const DimsatOptions& options) {
  const HierarchySchema& schema = ds.hierarchy();
  std::vector<Subhierarchy> seeds;
  Subhierarchy g(schema.num_categories(), root);
  if (root == schema.all()) return seeds;  // nothing to expand

  DynamicBitset allowed(schema.num_categories());
  DynamicBitset into(schema.num_categories());
  for (CategoryId c : schema.graph().OutNeighbors(root)) {
    allowed.set(c);  // no cycles/shortcuts possible at depth one
    if (ds.IntoTargets(root).test(c)) into.set(c);
  }
  if (!options.prune_into) into.clear();
  std::vector<CategoryId> free;
  (allowed - into).ForEach([&](int c) { free.push_back(c); });
  OLAPDC_CHECK(free.size() < 31);
  const uint32_t subsets = uint32_t{1} << free.size();
  for (uint32_t mask = 0; mask < subsets; ++mask) {
    DynamicBitset r = into;
    for (size_t i = 0; i < free.size(); ++i) {
      if (mask & (uint32_t{1} << i)) r.set(free[i]);
    }
    if (r.none()) continue;
    Subhierarchy child = g;
    child.Expand(root, r);
    seeds.push_back(std::move(child));
  }
  return seeds;
}

}  // namespace

namespace {

/// Wall-clock sampled only when someone is listening (metrics or a
/// trace sink); otherwise the run pays one branch.
class ObservedRun {
 public:
  ObservedRun() : observed_(obs::MetricsEnabled() ||
                            obs::TraceSink::Global().enabled()) {
    if (observed_) start_ = std::chrono::steady_clock::now();
  }
  double ElapsedUs() const {
    if (!observed_) return 0;
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  bool observed() const { return observed_; }

 private:
  bool observed_;
  std::chrono::steady_clock::time_point start_;
};

/// Attaches the per-run search statistics to a trace span.
void AnnotateSpan(obs::ObsSpan& span, const HierarchySchema& schema,
                  CategoryId root, const DimsatResult& result) {
  if (!span.active()) return;
  span.AddStat("root", schema.CategoryName(root));
  span.AddStat("satisfiable", result.satisfiable);
  span.AddStat("expand_calls", result.stats.expand_calls);
  span.AddStat("check_calls", result.stats.check_calls);
  span.AddStat("prune_into", result.stats.into_prunes);
  span.AddStat("prune_shortcut", result.stats.shortcut_prunes);
  span.AddStat("prune_cycle", result.stats.cycle_prunes);
  span.AddStat("dead_ends", result.stats.dead_ends);
  span.AddStat("frozen_found", result.stats.frozen_found);
  if (!result.status.ok()) {
    span.AddStat("status", StatusCodeToString(result.status.code()));
  }
}

/// Everything the work-stealing tasks share. Lives on the caller's
/// stack; the TaskGroup drains before it dies.
struct ParallelShared {
  ParallelShared(const DimensionSchema& ds, CategoryId root,
                 const DimsatOptions& options,
                 const std::vector<DimensionConstraint>& relevant,
                 exec::WorkStealingPool* pool)
      : ds(ds),
        root(root),
        options(options),
        relevant(relevant),
        mem(options.budget != nullptr ? options.budget->memory() : nullptr),
        seed_bytes(ApproxSubhierarchyBytes(ds.hierarchy().num_categories())),
        group(pool) {}

  const DimensionSchema& ds;
  const CategoryId root;
  const DimsatOptions& options;
  const std::vector<DimensionConstraint>& relevant;
  /// Queued task seeds are charged against the request's memory budget
  /// while they sit in the pool (reserved at spawn, released when the
  /// task starts and the seed is consumed).
  MemoryBudget* const mem;
  const uint64_t seed_bytes;
  /// Branching rank shared by every worker (options.branch_heuristic);
  /// null = declaration order. Outlives the task group.
  const std::vector<int>* branch_rank = nullptr;
  exec::TaskGroup group;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> tasks{0};
  std::atomic<uint64_t> stolen{0};
  std::mutex mu;
  DimsatResult merged;  // frozen/stats/status guarded by mu
};

void RunSubtreeTask(ParallelShared* shared, Subhierarchy seed, int depth);

void SpawnSubtree(ParallelShared* shared, Subhierarchy&& child, int depth) {
  // Chaos site: a failed submission degrades to inline execution on
  // the calling thread — slower, never lost (degraded-but-correct).
  if (!FaultInjector::Global().MaybeFail("exec.submit").ok()) {
    RunSubtreeTask(shared, std::move(child), depth);
    return;
  }
  bool charged = false;
  if (shared->mem != nullptr) {
    charged = shared->mem->Reserve(shared->seed_bytes, "dimsat.seed").ok();
    if (!charged) {
      // Exhausted: skip the queued copy and run inline; the search
      // trips on its first budget probe and degrades with partial
      // stats instead of piling more seeds into a full request.
      RunSubtreeTask(shared, std::move(child), depth);
      return;
    }
  }
  shared->group.Spawn(
      [shared, seed = std::move(child), depth, charged]() mutable {
        if (charged) shared->mem->Release(shared->seed_bytes);
        RunSubtreeTask(shared, std::move(seed), depth);
      });
}

void RunSubtreeTask(ParallelShared* shared, Subhierarchy seed, int depth) {
  shared->tasks.fetch_add(1, std::memory_order_relaxed);
  // depth 0 is the externally injected root task; "stolen" only makes
  // sense for worker-spawned children.
  if (depth > 0 && exec::WorkStealingPool::CurrentTaskStolen()) {
    shared->stolen.fetch_add(1, std::memory_order_relaxed);
  }
  if (shared->stop.load(std::memory_order_acquire)) return;

  DimsatSearch search(shared->ds, shared->root, shared->options,
                      shared->relevant);
  if (shared->branch_rank != nullptr) {
    search.set_branch_rank(shared->branch_rank);
  }
  search.set_external_stop(&shared->stop);
  search.set_spawner(
      [shared](Subhierarchy&& child, int child_depth) {
        SpawnSubtree(shared, std::move(child), child_depth);
      },
      shared->options.parallel_split_depth);
  DimsatResult partial = search.RunFrom(std::move(seed), depth);

  std::lock_guard<std::mutex> lock(shared->mu);
  AccumulateStats(&shared->merged.stats, partial.stats);
  if (!partial.status.ok()) {
    // First budget expiry / cap overrun wins and stops every worker —
    // this is what bounds wall-clock after a Cancel().
    if (shared->merged.status.ok()) shared->merged.status = partial.status;
    shared->stop.store(true, std::memory_order_release);
  }
  for (FrozenDimension& f : partial.frozen) {
    if (shared->merged.frozen.size() >= shared->options.max_frozen) break;
    shared->merged.frozen.push_back(std::move(f));
  }
  if (!shared->merged.frozen.empty() && !shared->options.enumerate_all) {
    shared->stop.store(true, std::memory_order_release);
  }
  if (shared->merged.frozen.size() >= shared->options.max_frozen) {
    shared->stop.store(true, std::memory_order_release);
  }
}

/// The decomposed parallel driver: one pool task per component — the
/// component *is* the steal granularity, replacing the depth-split of
/// the monolithic driver (components are independent by construction,
/// so no merge locking, no cross-task subtree spawning, and the
/// shared stop flag only fires on verdict-deciding events). Each task
/// runs the component search sequentially; the composition step runs
/// on the caller's thread after the group drains.
DimsatResult RunDecomposedParallel(
    const DimensionSchema& ds, CategoryId root, const DimsatOptions& options,
    const std::vector<DimensionConstraint>& relevant,
    const ComponentSplit& split, const std::vector<int>* branch_rank,
    exec::WorkStealingPool& pool) {
  const int n = ds.hierarchy().num_categories();
  const int w = static_cast<int>(split.num_components());

  std::vector<std::vector<DimensionConstraint>> comp_relevant(w);
  for (int k = 0; k < w; ++k) {
    for (size_t i : split.constraint_indices[k]) {
      comp_relevant[k].push_back(relevant[i]);
    }
  }
  std::vector<int> to_search;
  bool any_required = false;
  for (int k = 0; k < w; ++k) {
    if (!split.absent_valid[k]) any_required = true;
  }
  const bool scan_mode = !options.enumerate_all && !any_required;
  for (int k = 0; k < w; ++k) {
    if (options.enumerate_all || scan_mode || !split.absent_valid[k]) {
      to_search.push_back(k);
    }
  }

  std::vector<DimsatResult> partials(w);
  std::atomic<bool> stop{false};
  /// Set only by semantic verdicts (a scan-mode witness, a required
  /// component proven UNSAT) — never by budget errors, so the
  /// post-drain logic can tell "decided" from "interrupted".
  std::atomic<bool> decided{false};
  std::atomic<uint64_t> tasks{0}, stolen{0};
  exec::TaskGroup group(&pool);
  for (int k : to_search) {
    group.Spawn([&, k]() {
      tasks.fetch_add(1, std::memory_order_relaxed);
      if (exec::WorkStealingPool::CurrentTaskStolen()) {
        stolen.fetch_add(1, std::memory_order_relaxed);
      }
      if (stop.load(std::memory_order_acquire)) return;
      DimsatOptions comp_opts = options;
      comp_opts.nogood_salt = split.salts[k];
      comp_opts.checkpoint = nullptr;
      DimsatSearch search(ds, root, comp_opts, comp_relevant[k]);
      search.set_universe(&split.universes[k]);
      if (branch_rank != nullptr) search.set_branch_rank(branch_rank);
      search.set_external_stop(&stop);
      DimsatResult r = search.Run();
      bool verdict = false;
      if (r.status.ok() && !options.enumerate_all &&
          !stop.load(std::memory_order_acquire)) {
        // Completed cleanly: a scan-mode witness or a required
        // component with no model decides the whole run.
        verdict = scan_mode ? !r.frozen.empty() : r.frozen.empty();
      }
      const bool errored = !r.status.ok();
      partials[k] = std::move(r);
      if (verdict) decided.store(true, std::memory_order_release);
      if (verdict || errored) {
        stop.store(true, std::memory_order_release);
      }
    });
  }
  group.Wait();

  DimsatResult result;
  Status first_err;
  for (int k = 0; k < w; ++k) {
    AccumulateStats(&result.stats, partials[k].stats);
    if (!partials[k].status.ok() && first_err.ok()) {
      first_err = partials[k].status;
    }
  }
  result.stats.parallel_tasks = tasks.load();
  result.stats.parallel_steals = stolen.load();

  MemoryReservation mem(options.budget != nullptr ? options.budget->memory()
                                                  : nullptr);
  const uint64_t frozen_bytes =
      ApproxSubhierarchyBytes(n) + static_cast<uint64_t>(n) * 24;
  if (!options.enumerate_all) {
    if (scan_mode) {
      // A witness is a verdict even when another component errored.
      for (int k : to_search) {
        if (!partials[k].frozen.empty()) {
          result.frozen.push_back(std::move(partials[k].frozen[0]));
          break;
        }
      }
      if (result.frozen.empty() && !first_err.ok()) {
        result.status = first_err;
      }
    } else if (decided.load()) {
      // Some required component is exhaustively UNSAT: the whole
      // query is, regardless of how the other workers stopped.
    } else if (!first_err.ok()) {
      result.status = first_err;
    } else {
      FrozenDimension fd{Subhierarchy(n, root),
                         CAssignment(static_cast<size_t>(n), std::nullopt)};
      for (int k : to_search) MergeDisjointInto(partials[k].frozen[0], &fd);
      result.frozen.push_back(std::move(fd));
    }
  } else {
    if (!first_err.ok()) {
      result.status = first_err;
    } else {
      std::vector<std::vector<FrozenDimension>> models(w);
      for (int k = 0; k < w; ++k) models[k] = std::move(partials[k].frozen);
      Status composed = ComposeFrozen(split, models, options.max_frozen,
                                      frozen_bytes, &mem, &result.frozen);
      if (!composed.ok()) {
        result.status = std::move(composed);
        result.frozen.clear();
      }
    }
  }
  result.satisfiable = !result.frozen.empty();
  result.stats.frozen_found = result.frozen.size();
  return result;
}

}  // namespace

DimsatResult Dimsat(const DimensionSchema& ds, CategoryId root,
                    const DimsatOptions& options) {
  OLAPDC_CHECK(0 <= root && root < ds.hierarchy().num_categories());
  obs::ObsSpan span("dimsat.run");
  ObservedRun run;
  Result<std::vector<DimensionConstraint>> prepared =
      PrepareRelevantConstraints(ds, root, options.path_limit);
  if (!prepared.ok()) {
    DimsatResult result;
    result.status = prepared.status();
    return result;
  }
  const std::vector<DimensionConstraint> relevant =
      std::move(prepared).ValueOrDie();
  if (options.checkpoint != nullptr) *options.checkpoint = DimsatCheckpoint{};
  std::vector<int> rank;
  const std::vector<int>* rank_ptr = nullptr;
  if (options.branch_heuristic) {
    rank = ComputeBranchRank(ds);
    rank_ptr = &rank;
  }
  DimsatResult result;
  bool decomposed = false;
  if (options.decompose && !options.collect_trace &&
      !options.require_injective_names) {
    const ComponentSplit split =
        ComputeComponentSplit(ds, root, relevant, options.nogood_salt);
    if (split.eligible) {
      result = RunDecomposedSequential(ds, root, options, relevant, split,
                                       rank_ptr, nullptr);
      decomposed = true;
    }
  }
  if (!decomposed) {
    DimsatSearch search(ds, root, options, relevant);
    if (rank_ptr != nullptr) search.set_branch_rank(rank_ptr);
    result = search.Run();
  }
  if (decomposed && obs::MetricsEnabled()) {
    obs::Count("olapdc.dimsat.decomposed_runs");
  }
  if (options.checkpoint != nullptr && !options.checkpoint->empty() &&
      obs::MetricsEnabled()) {
    obs::Count("olapdc.dimsat.checkpoints");
  }
  if (run.observed()) {
    FlushDimsatMetrics(result.stats, result.status, run.ElapsedUs());
    AnnotateSpan(span, ds.hierarchy(), root, result);
  }
  return result;
}

DimsatResult ResumeDimsat(const DimensionSchema& ds, CategoryId root,
                          const DimsatOptions& options,
                          DimsatCheckpoint checkpoint) {
  OLAPDC_CHECK(0 <= root && root < ds.hierarchy().num_categories());
  DimsatResult result;
  if (checkpoint.empty()) {
    // The interrupted run already covered the whole tree.
    return result;
  }
  if (checkpoint.root != root ||
      checkpoint.num_categories != ds.hierarchy().num_categories()) {
    result.status = Status::InvalidArgument(
        "checkpoint does not match this schema/root (root " +
        std::to_string(checkpoint.root) + "/" + std::to_string(root) +
        ", categories " + std::to_string(checkpoint.num_categories) + "/" +
        std::to_string(ds.hierarchy().num_categories()) + ")");
    return result;
  }
  obs::ObsSpan span("dimsat.resume");
  ObservedRun run;
  Result<std::vector<DimensionConstraint>> prepared =
      PrepareRelevantConstraints(ds, root, options.path_limit);
  if (!prepared.ok()) {
    result.status = prepared.status();
    return result;
  }
  const std::vector<DimensionConstraint> relevant =
      std::move(prepared).ValueOrDie();
  if (options.checkpoint != nullptr) *options.checkpoint = DimsatCheckpoint{};
  std::vector<int> rank;
  const std::vector<int>* rank_ptr = nullptr;
  if (options.branch_heuristic) {
    rank = ComputeBranchRank(ds);
    rank_ptr = &rank;
  }
  if (checkpoint.num_components > 0) {
    // A decomposed checkpoint only resumes under options that
    // reproduce the interrupted run's exact component split (the
    // split is a pure function of schema, root, and salt).
    ComponentSplit split;
    if (options.decompose && !options.collect_trace &&
        !options.require_injective_names) {
      split = ComputeComponentSplit(ds, root, relevant, options.nogood_salt);
    }
    if (!split.eligible ||
        static_cast<int>(split.num_components()) !=
            checkpoint.num_components) {
      result.status = Status::InvalidArgument(
          "decomposed checkpoint does not match: the current options and "
          "schema do not reproduce the interrupted run's component split");
      return result;
    }
    result = RunDecomposedSequential(ds, root, options, relevant, split,
                                     rank_ptr, &checkpoint);
  } else {
    DimsatSearch search(ds, root, options, relevant);
    if (rank_ptr != nullptr) search.set_branch_rank(rank_ptr);
    result = search.RunResume(std::move(checkpoint));
  }
  if (obs::MetricsEnabled()) {
    obs::Count("olapdc.dimsat.resumes");
    if (options.checkpoint != nullptr && !options.checkpoint->empty()) {
      obs::Count("olapdc.dimsat.checkpoints");
    }
  }
  if (run.observed()) {
    FlushDimsatMetrics(result.stats, result.status, run.ElapsedUs());
    AnnotateSpan(span, ds.hierarchy(), root, result);
  }
  return result;
}

DimsatResult DimsatParallel(const DimensionSchema& ds, CategoryId root,
                            const DimsatOptions& options, int num_threads) {
  OLAPDC_CHECK(0 <= root && root < ds.hierarchy().num_categories());
  OLAPDC_CHECK(!options.collect_trace)
      << "tracing is inherently sequential; use Dimsat()";
  OLAPDC_CHECK(options.checkpoint == nullptr)
      << "checkpoint capture is sequential; use RunDimsat()/Dimsat()";
  if (num_threads <= 1) return Dimsat(ds, root, options);

  // Overload shedding happens before any other work: a shed request
  // costs microseconds, holds nothing, and is safe to retry verbatim.
  exec::AdmissionGate::Ticket ticket(options.admission);
  if (!ticket.admitted()) {
    DimsatResult result;
    result.status = ticket.status();
    return result;
  }

  obs::ObsSpan span("dimsat.parallel_run");
  ObservedRun run;
  Result<std::vector<DimensionConstraint>> prepared =
      PrepareRelevantConstraints(ds, root, options.path_limit);
  if (!prepared.ok()) {
    DimsatResult result;
    result.status = prepared.status();
    return result;
  }
  const std::vector<DimensionConstraint> relevant =
      std::move(prepared).ValueOrDie();

  // An explicit options.pool wins. Otherwise use the shared process
  // pool — unless it is smaller than the requested num_threads, in
  // which case a run-local pool honors the caller's explicit request
  // (e.g. num_threads=8 on a host whose process pool was sized 1)
  // rather than silently degrading to the smaller pool.
  std::unique_ptr<exec::WorkStealingPool> local_pool;
  exec::WorkStealingPool* pool_ptr = options.pool;
  if (pool_ptr == nullptr) {
    pool_ptr = &exec::ProcessPool();
    if (pool_ptr->num_threads() < num_threads) {
      local_pool = std::make_unique<exec::WorkStealingPool>(num_threads);
      pool_ptr = local_pool.get();
    }
  }
  exec::WorkStealingPool& pool = *pool_ptr;

  std::vector<int> rank;
  const std::vector<int>* rank_ptr = nullptr;
  if (options.branch_heuristic) {
    rank = ComputeBranchRank(ds);
    rank_ptr = &rank;
  }

  // Component decomposition replaces depth-split as the steal
  // granularity when the split is eligible: independent components
  // need no merge lock and no subtree respawning.
  if (options.decompose && !options.require_injective_names) {
    const ComponentSplit split =
        ComputeComponentSplit(ds, root, relevant, options.nogood_salt);
    if (split.eligible) {
      DimsatResult result =
          RunDecomposedParallel(ds, root, options, relevant, split, rank_ptr,
                                pool);
      if (obs::MetricsEnabled()) {
        obs::Count("olapdc.dimsat.decomposed_runs");
      }
      if (run.observed()) {
        pool.PublishMetricNames();
        FlushDimsatMetrics(result.stats, result.status, run.ElapsedUs());
        span.AddStat("threads", pool.num_threads());
        span.AddStat("tasks", result.stats.parallel_tasks);
        span.AddStat("steals", result.stats.parallel_steals);
        AnnotateSpan(span, ds.hierarchy(), root, result);
      }
      return result;
    }
  }

  ParallelShared shared(ds, root, options, relevant, &pool);
  shared.branch_rank = rank_ptr;
  SpawnSubtree(&shared,
               Subhierarchy(ds.hierarchy().num_categories(), root), 0);
  shared.group.Wait();

  DimsatResult merged = std::move(shared.merged);
  // A budget error from a worker that was merely told to stop early is
  // not an error of the whole run.
  if (shared.stop.load() && !options.enumerate_all &&
      !merged.frozen.empty()) {
    merged.status = Status::OK();
  }
  merged.satisfiable = !merged.frozen.empty();
  merged.stats.frozen_found = merged.frozen.size();
  merged.stats.parallel_tasks = shared.tasks.load();
  merged.stats.parallel_steals = shared.stolen.load();
  if (run.observed()) {
    pool.PublishMetricNames();
    FlushDimsatMetrics(merged.stats, merged.status, run.ElapsedUs());
    span.AddStat("threads", pool.num_threads());
    span.AddStat("tasks", merged.stats.parallel_tasks);
    span.AddStat("steals", merged.stats.parallel_steals);
    AnnotateSpan(span, ds.hierarchy(), root, merged);
  }
  return merged;
}

DimsatResult DimsatParallelStatic(const DimensionSchema& ds, CategoryId root,
                                  const DimsatOptions& options,
                                  int num_threads) {
  OLAPDC_CHECK(0 <= root && root < ds.hierarchy().num_categories());
  OLAPDC_CHECK(!options.collect_trace)
      << "tracing is inherently sequential; use Dimsat()";
  OLAPDC_CHECK(options.checkpoint == nullptr)
      << "checkpoint capture is sequential; use RunDimsat()/Dimsat()";
  if (num_threads <= 1) return Dimsat(ds, root, options);

  obs::ObsSpan span("dimsat.parallel_run");
  ObservedRun run;
  Result<std::vector<DimensionConstraint>> prepared =
      PrepareRelevantConstraints(ds, root, options.path_limit);
  if (!prepared.ok()) {
    DimsatResult result;
    result.status = prepared.status();
    return result;
  }
  const std::vector<DimensionConstraint> relevant =
      std::move(prepared).ValueOrDie();
  std::vector<Subhierarchy> seeds = FirstLevelSeeds(ds, root, options);
  if (seeds.empty()) return Dimsat(ds, root, options);

  std::vector<int> rank;
  const std::vector<int>* rank_ptr = nullptr;
  if (options.branch_heuristic) {
    rank = ComputeBranchRank(ds);
    rank_ptr = &rank;
  }

  // Per-worker budget: sum across workers may exceed a tight global
  // budget by (threads - 1); acceptable for a backstop limit.
  std::atomic<bool> stop(false);
  std::atomic<size_t> next(0);
  std::vector<DimsatResult> partials(seeds.size());

  auto worker = [&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      size_t index = next.fetch_add(1);
      if (index >= seeds.size()) return;
      DimsatSearch search(ds, root, options, relevant);
      if (rank_ptr != nullptr) search.set_branch_rank(rank_ptr);
      search.set_external_stop(&stop);
      partials[index] = search.RunFrom(std::move(seeds[index]), 1);
      if (partials[index].satisfiable && !options.enumerate_all) {
        stop.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  const int n = std::min<int>(num_threads, static_cast<int>(seeds.size()));
  threads.reserve(n);
  for (int i = 0; i < n; ++i) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  DimsatResult merged;
  for (DimsatResult& partial : partials) {
    AccumulateStats(&merged.stats, partial.stats);
    if (!partial.status.ok() && merged.status.ok()) {
      merged.status = partial.status;
    }
    for (FrozenDimension& f : partial.frozen) {
      if (merged.frozen.size() >= options.max_frozen) break;
      merged.frozen.push_back(std::move(f));
    }
  }
  // A budget error from a worker that was merely told to stop early is
  // not an error of the whole run.
  if (stop.load() && !options.enumerate_all && !merged.frozen.empty()) {
    merged.status = Status::OK();
  }
  merged.satisfiable = !merged.frozen.empty();
  merged.stats.frozen_found = merged.frozen.size();
  if (run.observed()) {
    FlushDimsatMetrics(merged.stats, merged.status, run.ElapsedUs());
    span.AddStat("threads", n);
    AnnotateSpan(span, ds.hierarchy(), root, merged);
  }
  return merged;
}

DimsatResult RunDimsat(const DimensionSchema& ds, CategoryId root,
                       const DimsatOptions& options) {
  if (options.num_threads <= 1 || options.collect_trace ||
      options.checkpoint != nullptr) {
    return Dimsat(ds, root, options);
  }
  return DimsatParallel(ds, root, options, options.num_threads);
}

DimsatResult EnumerateFrozenDimensions(const DimensionSchema& ds,
                                       CategoryId root,
                                       DimsatOptions options) {
  options.enumerate_all = true;
  return RunDimsat(ds, root, options);
}

}  // namespace olapdc
