#include "core/circle.h"

#include <utility>

namespace olapdc {

namespace {

bool ReachesIn(const std::vector<DynamicBitset>& reach, CategoryId from,
               CategoryId to) {
  return reach[from].test(to);
}

}  // namespace

ExprPtr ApplyCircleToExpr(const ExprPtr& e, const Subhierarchy& g,
                          const std::vector<DynamicBitset>& reach) {
  OLAPDC_CHECK(e != nullptr);
  switch (e->kind) {
    case ExprKind::kTrue:
    case ExprKind::kFalse:
      return e;
    case ExprKind::kPathAtom:
      return MakeBool(g.IsPath(e->path));
    case ExprKind::kEqualityAtom:
    case ExprKind::kOrderAtom:
      // Definition 8(b): an equality (or order) atom whose root cannot
      // reach the target inside g is false (the frozen dimension has no
      // such ancestor). Otherwise the atom survives, to be decided by
      // the c-assignment.
      if (!g.Contains(e->root) || !ReachesIn(reach, e->root, e->target)) {
        return MakeFalse();
      }
      return e;
    case ExprKind::kComposedAtom:
      // c.ci is a finite disjunction of path atoms; under ∘g it is true
      // iff some simple path c -> ci lies inside g, i.e. iff ci is
      // reachable from c in g (g is checked shortcut/cycle-free before
      // its candidate frozen dimensions are consulted).
      if (e->root == e->target) return MakeTrue();
      return MakeBool(g.Contains(e->root) &&
                      ReachesIn(reach, e->root, e->target));
    case ExprKind::kThroughAtom: {
      const CategoryId c = e->root, ci = e->via, cj = e->target;
      if (c == ci && ci == cj) return MakeTrue();
      if (c == cj && c != ci) return MakeFalse();
      if (!g.Contains(c)) return MakeFalse();
      if (c == ci) return MakeBool(ReachesIn(reach, c, cj));
      if (ci == cj) return MakeBool(ReachesIn(reach, c, ci));
      return MakeBool(ReachesIn(reach, c, ci) && ReachesIn(reach, ci, cj));
    }
    default:
      break;
  }
  std::vector<ExprPtr> children;
  children.reserve(e->children.size());
  bool changed = false;
  for (const ExprPtr& child : e->children) {
    ExprPtr circled = ApplyCircleToExpr(child, g, reach);
    changed |= (circled != child);
    children.push_back(std::move(circled));
  }
  if (!changed) return e;
  auto copy = std::make_shared<Expr>(*e);
  copy->children = std::move(children);
  return copy;
}

ExprPtr ApplyCircleToConstraint(const DimensionConstraint& c,
                                const Subhierarchy& g,
                                const std::vector<DynamicBitset>& reach) {
  if (!g.Contains(c.root)) return MakeTrue();
  return ApplyCircleToExpr(c.expr, g, reach);
}

}  // namespace olapdc
