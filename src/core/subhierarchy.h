// Subhierarchies (paper Definition 7): the partial category graphs the
// DIMSAT algorithm grows. A subhierarchy of G with root c is a subgraph
// (C', E') of G with c, All in C', every category reachable from c, and
// every category reaching All.
//
// The representation packs node and edge sets into DynamicBitsets (with
// inline small-buffer storage, so copies touch no allocator for
// realistic schema sizes). The backtracking search mutates one shared
// subhierarchy through ExpandLogged()/Rollback() with an undo log —
// copy-on-recurse (plain Expand() on a copy) remains available for
// callers that need persistent snapshots, e.g. the parallel driver's
// task seeds. It maintains exactly the bookkeeping of the paper's
// EXPAND procedure:
//   g.C      -> categories()
//   g.Out(c) -> Out(c)
//   g.Top    -> top()          (categories with no outgoing edge yet)
//   g.In*(c) -> Below(c)       (categories that reach c in g)
// with In* kept exact under edge insertion by downstream propagation
// (the paper's line (5) under-maintains it; see DESIGN.md deviation 3).

#ifndef OLAPDC_CORE_SUBHIERARCHY_H_
#define OLAPDC_CORE_SUBHIERARCHY_H_

#include <optional>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "dim/hierarchy_schema.h"
#include "graph/digraph.h"

namespace olapdc {

class Subhierarchy;

/// Rollback journal for mutation-based EXPAND backtracking. One log
/// accompanies one subhierarchy through a depth-first search:
/// ExpandLogged() pushes a frame, Rollback() pops the most recent one
/// (strict LIFO). Frame storage — including the saved Below snapshots —
/// is recycled across push/pop cycles, so steady-state search depth
/// oscillation performs no allocation at all.
class SubhierarchyUndoLog {
 public:
  bool empty() const { return frames_.empty(); }
  size_t depth() const { return frames_.size(); }

 private:
  friend class Subhierarchy;

  struct Frame {
    CategoryId ctop;
    /// Start of this frame's slice of new_cats_ / saved_below_.
    uint32_t cats_start;
    uint32_t below_start;
  };
  struct SavedBelow {
    CategoryId cat;
    DynamicBitset old_below;
  };

  std::vector<Frame> frames_;
  /// Categories first added by some live frame, frames concatenated.
  std::vector<CategoryId> new_cats_;
  /// Below snapshots of every category a live frame touched. Slots are
  /// reused below below_used_ high-water style (the bitsets keep their
  /// storage when overwritten with equal-sized values).
  std::vector<SavedBelow> saved_below_;
  size_t below_used_ = 0;
  /// Scratch sets reused by every ExpandLogged call.
  DynamicBitset scratch_delta_;
  DynamicBitset scratch_visit_;
  DynamicBitset scratch_visited_;
};

/// A growing subhierarchy over categories {0..n-1} with a fixed root.
class Subhierarchy {
 public:
  /// The initial subhierarchy {root} with no edges; root is the only
  /// (pending) top category.
  Subhierarchy(int num_categories, CategoryId root);

  /// Builds a subhierarchy from an explicit edge list (used by the
  /// brute-force baseline and by tests). Returns nullopt when the edges
  /// do not form a subhierarchy with this root: some touched category
  /// is unreachable from root, or some category with no outgoing edge
  /// other than All remains, or All is missing (unless the graph is the
  /// single node root == all).
  static std::optional<Subhierarchy> FromEdges(
      int num_categories, CategoryId root, CategoryId all,
      const std::vector<std::pair<CategoryId, CategoryId>>& edges);

  /// Rebuilds a *mid-search* subhierarchy from an edge list — the
  /// deserialization path of DIMSAT checkpoints. Unlike FromEdges() it
  /// accepts incomplete frontiers: categories without outgoing edges
  /// are simply the pending top() set (All need not be present). Only
  /// root-reachability is validated; Below is recomputed exactly.
  static std::optional<Subhierarchy> FromPartialEdges(
      int num_categories, CategoryId root,
      const std::vector<std::pair<CategoryId, CategoryId>>& edges);

  int num_categories() const { return n_; }
  CategoryId root() const { return root_; }

  const DynamicBitset& categories() const { return cats_; }
  bool Contains(CategoryId c) const { return cats_.test(c); }

  /// Categories in g with no outgoing edge yet (the paper's g.Top).
  const DynamicBitset& top() const { return top_; }

  /// Direct successors of c in g.
  const DynamicBitset& Out(CategoryId c) const { return out_[c]; }
  /// Direct predecessors of c in g.
  const DynamicBitset& In(CategoryId c) const { return in_[c]; }
  /// The paper's In*(c): every category with a nonempty path to c in g.
  const DynamicBitset& Below(CategoryId c) const { return below_[c]; }

  bool HasEdge(CategoryId u, CategoryId v) const { return out_[u].test(v); }

  int num_edges() const;

  /// Executes one EXPAND step: gives `ctop` (which must currently be in
  /// top()) the outgoing edges R. New categories enter top(); Below is
  /// propagated exactly.
  void Expand(CategoryId ctop, const DynamicBitset& r);

  /// Expand() that additionally journals everything it changes into
  /// `log`, so Rollback() can restore the pre-call state exactly. The
  /// DIMSAT hot path uses this pair to backtrack by mutation instead of
  /// copying the subhierarchy per recursive call.
  void ExpandLogged(CategoryId ctop, const DynamicBitset& r,
                    SubhierarchyUndoLog* log);

  /// Undoes the most recent un-rolled-back ExpandLogged() recorded in
  /// `log`. Calls must nest LIFO with ExpandLogged (the usual
  /// recursion structure guarantees this).
  void Rollback(SubhierarchyUndoLog* log);

  /// True iff `path` (category sequence) is a path of g.
  bool IsPath(const std::vector<CategoryId>& path) const;

  /// For every category in g, the set of categories reachable from it
  /// within g, *including itself*; empty sets for absent categories.
  /// O(N * E) — computed once per CHECK.
  std::vector<DynamicBitset> ComputeReach() const;

  /// The edge list, grouped by source in ascending order.
  std::vector<std::pair<CategoryId, CategoryId>> Edges() const;

  /// Materializes g as a Digraph over all n category ids.
  Digraph ToDigraph() const;

  /// True iff g (as currently built) has a directed cycle.
  bool HasCycleIn() const;
  /// Same, but reusing a reachability table already computed by
  /// ComputeReach() on this exact g — the CHECK hot path computes
  /// reach once and shares it between the cycle test, the shortcut
  /// test, and the circle operator instead of materializing a Digraph
  /// per call. A cycle exists iff some edge (u, v) has v reaching back
  /// to u (self-edges cannot occur).
  bool HasCycleIn(const std::vector<DynamicBitset>& reach) const;

  /// True iff some edge (u, v) of g is paralleled by a longer path —
  /// condition (a) of Proposition 2. Requires acyclicity for exactness.
  bool HasShortcut() const;
  /// Same, with a caller-supplied ComputeReach() table (see above).
  bool HasShortcut(const std::vector<DynamicBitset>& reach) const;

  /// Merges `other` (over the same category universe) into this
  /// subhierarchy: categories, edges, and Below sets union
  /// elementwise; top() is recomputed. Used to compose per-component
  /// models of a decomposed DIMSAT run. Below stays exact when the
  /// two operands share only categories that no cross-operand path
  /// enters or leaves except trivially — for component composition the
  /// shared categories are the query root (no in-edges in either
  /// operand) and All (no out-edges), so In* of the union is the
  /// elementwise union of the operands' In*.
  void UnionWith(const Subhierarchy& other);

 private:
  int n_;
  CategoryId root_;
  DynamicBitset cats_;
  DynamicBitset top_;
  std::vector<DynamicBitset> out_;
  std::vector<DynamicBitset> in_;
  std::vector<DynamicBitset> below_;
};

}  // namespace olapdc

#endif  // OLAPDC_CORE_SUBHIERARCHY_H_
