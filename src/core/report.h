// Schema understanding tools built on frozen dimensions — the paper's
// §1.4 remark that frozen dimensions "provide a useful representation
// to understand heterogeneous schemas", packaged as a report:
//   - structural overview (categories, edges, shortcuts, cycles),
//   - satisfiability audit,
//   - the frozen dimensions of every bottom category (the homogeneous
//     worlds the schema mixes),
//   - a single-source summarizability matrix,
// plus a schema-level homogeneity test.

#ifndef OLAPDC_CORE_REPORT_H_
#define OLAPDC_CORE_REPORT_H_

#include <string>

#include "common/result.h"
#include "core/dimsat.h"
#include "core/schema.h"

namespace olapdc {

struct ReportOptions {
  /// Cap on frozen dimensions listed per bottom category.
  size_t max_frozen_per_bottom = 32;
  /// Include the (quadratic, DIMSAT-heavy) summarizability matrix.
  bool include_summarizability_matrix = true;
  DimsatOptions dimsat;
};

/// Renders a human-readable report of the schema.
Result<std::string> HeterogeneityReport(const DimensionSchema& ds,
                                        const ReportOptions& options = {});

/// A schema is *homogeneous* when every satisfiable bottom category
/// admits exactly one frozen-dimension structure (ignoring constant
/// choices): all members of a category then share one ancestor-category
/// set, the classical pre-heterogeneity setting.
Result<bool> IsHomogeneousSchema(const DimensionSchema& ds,
                                 const DimsatOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_CORE_REPORT_H_
