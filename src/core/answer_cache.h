// AnswerCache: the shared implication-closure cache (ROADMAP item 2,
// layer c). The Reasoner has always memoized definitive answers keyed
// by the canonical rendering of the query — but per Reasoner instance,
// so the closure died with the request. An AnswerCache is that same
// canonical-key -> verdict map grown into a process-wide, thread-safe,
// epoch-keyed store: callers prefix every key with the (schema, Σ)
// content epoch (SchemaRegistry::Snapshot::epoch), so a theory edit
// orphans the old closure atomically and identical questions against
// an unchanged Σ are answered without any search, across requests,
// connections, and Reasoner instances.
//
// Only definitive verdicts are stored (kUnknown is retried from
// scratch, exactly as in the single-run cache), which is what makes
// sharing sound: a definitive answer against an immutable schema
// content is true forever under that epoch.

#ifndef OLAPDC_CORE_ANSWER_CACHE_H_
#define OLAPDC_CORE_ANSWER_CACHE_H_

#include <cstdint>
#include <string>

#include "common/cache_shard.h"

namespace olapdc {

class AnswerCache {
 public:
  struct Options {
    uint64_t max_bytes = 4ull << 20;
    size_t num_shards = 8;
    /// Observability charge target (see cache_shard.h); not owned.
    MemoryBudget* memory = nullptr;
  };

  // `Options{}` as a default argument would need the nested struct's
  // member initializers before the enclosing class is complete, which
  // GCC rejects; the delegating default constructor sidesteps that.
  AnswerCache() : AnswerCache(Options{}) {}
  explicit AnswerCache(Options options)
      : cache_({/*name=*/"closure", options.num_shards, options.max_bytes,
                /*entry_overhead_bytes=*/96, options.memory}) {}

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// True (and sets *yes) iff a definitive verdict is cached for `key`.
  bool Lookup(const std::string& key, bool* yes) {
    return cache_.Lookup(key, yes);
  }

  /// Records a definitive verdict. Keys must carry the epoch prefix —
  /// the cache itself is epoch-agnostic.
  void Insert(const std::string& key, bool yes) {
    cache_.Insert(key, yes, key.size());
  }

  uint64_t size() const { return cache_.size(); }
  CacheStatsSnapshot Stats() const { return cache_.Stats(); }
  void Clear() { cache_.Clear(); }

 private:
  ShardedCache<std::string, bool> cache_;
};

}  // namespace olapdc

#endif  // OLAPDC_CORE_ANSWER_CACHE_H_
