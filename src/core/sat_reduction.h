// The Theorem 4 hardness construction: propositional satisfiability
// reduces to category satisfiability. Given a CNF formula over
// variables x1..xv, build the schema
//
//   categories:  Q (root), T, X1..Xv, All
//   edges:       Q -> T, Q -> Xi, T -> All, Xi -> All
//   constraints: Q/T (into), plus one constraint per clause where a
//                positive literal xi becomes the path atom Q/Xi and a
//                negative one its negation.
//
// A subhierarchy rooted at Q chooses an arbitrary subset of the Xi
// (presence of the edge Q -> Xi = "xi true"), so Q is satisfiable in
// the schema iff the CNF is satisfiable. Used by tests and by the
// sat_reduction benchmark (E11) to generate hard instances.

#ifndef OLAPDC_CORE_SAT_REDUCTION_H_
#define OLAPDC_CORE_SAT_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/schema.h"

namespace olapdc {

/// A CNF formula: each clause is a list of non-zero literals; literal
/// +i means variable i (1-based), -i its negation.
struct Cnf {
  int num_variables = 0;
  std::vector<std::vector<int>> clauses;
};

/// The reduction output: the schema plus the id of the root category Q.
struct SatReduction {
  DimensionSchema schema;
  CategoryId query;
};

/// Builds the Theorem 4 schema for `cnf`.
Result<SatReduction> ReduceCnfToCategorySatisfiability(const Cnf& cnf);

/// Evaluates `cnf` under `assignment` (assignment[i-1] = value of xi).
bool EvalCnf(const Cnf& cnf, const std::vector<bool>& assignment);

/// Brute-force CNF satisfiability (reference for tests; 2^v).
bool BruteForceCnfSat(const Cnf& cnf);

/// Deterministic random k-SAT generator (clauses of size k over v
/// variables, no repeated variables within a clause).
Cnf RandomCnf(int num_variables, int num_clauses, int k, uint64_t seed);

}  // namespace olapdc

#endif  // OLAPDC_CORE_SAT_REDUCTION_H_
