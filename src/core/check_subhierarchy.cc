#include "core/check_subhierarchy.h"

#include <utility>

#include "constraint/normalize.h"
#include "core/circle.h"

namespace olapdc {

CheckOutcome CheckSubhierarchy(
    const std::vector<DimensionConstraint>& relevant, const Subhierarchy& g,
    const CheckOptions& options) {
  CheckOutcome outcome;

  // One reachability closure serves all three phases of the check:
  // cycle detection, shortcut detection, and the circle operator.
  const std::vector<DynamicBitset> reach = g.ComputeReach();

  // Proposition 2, condition (a).
  if (g.HasCycleIn(reach) || g.HasShortcut(reach)) {
    outcome.structurally_rejected = true;
    return outcome;
  }

  // Sigma(ds, c) ∘ g, simplified. A literal False means no assignment
  // can help; vacuous (root outside g) constraints simplify to True and
  // are dropped.
  std::vector<ExprPtr> circled;
  circled.reserve(relevant.size());
  for (const DimensionConstraint& c : relevant) {
    ExprPtr e = Simplify(ApplyCircleToConstraint(c, g, reach));
    if (IsTrueLiteral(e)) continue;
    if (IsFalseLiteral(e)) return outcome;  // no frozen dimension
    circled.push_back(std::move(e));
  }

  AssignmentSearchResult search =
      FindAssignments(g, circled, options.assignment);
  outcome.assignments_tried = search.tried;
  outcome.frozen.reserve(search.assignments.size());
  for (CAssignment& ca : search.assignments) {
    outcome.frozen.push_back(FrozenDimension{g, std::move(ca)});
  }
  return outcome;
}

}  // namespace olapdc
