// Connected-component decomposition for DIMSAT
// (DimsatOptions::decompose). The intermediate categories of a query —
// UpSet(root) minus root and All — often fall apart into weakly
// connected regions of the hierarchy DAG that no constraint couples:
// mixed-rollup geographies, parallel fiscal/calendar shapes, and the
// generated multi-component workloads all have this form. Every model
// of such a schema is the union of one model per *present* component
// (all sharing only root and All), so DIMSAT can search each component
// over a restricted universe and compose the per-component model sets
// — the cost becomes the sum of the component searches instead of
// their product.
//
// Soundness rests on a set of static gates, any of which forces the
// caller back to the monolithic search:
//   - require_injective_names: injectivity is a *global* property of
//     an assignment; per-component searches cannot see cross-component
//     constant collisions.
//   - a direct root -> All schema edge: the "empty" expansion choice
//     at the root would let every component search emit the bare
//     root->All model, double-counting it across components.
//   - an edge u -> root with u in UpSet(root) \ {root}: a schema cycle
//     through the root lets g-paths re-enter the root and cross from
//     one component into another, so reachability no longer
//     factorizes.
//   - a relevant constraint that is literally False, or whose atoms
//     mention no intermediate category (only root/All): such a
//     constraint cannot be assigned to any single component.
//   - an equality or order atom targeting root or All: the assignment
//     search would branch on a category every component shares, so the
//     composed assignments would no longer be disjoint.
//   - root == All, or fewer than two components: nothing to decompose.
//
// Under these gates, cycles and shortcuts are per-component, the
// circle operator of a component's constraints evaluates identically
// on the component's sub-model and on any composed union, and the
// assignment search branches only on component-local categories — so
// the composed frozen-dimension set equals the monolithic one
// (dimsat_ablation_test.cc pins this across the seeded corpus).

#ifndef OLAPDC_CORE_DECOMPOSE_H_
#define OLAPDC_CORE_DECOMPOSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "core/schema.h"

namespace olapdc {

/// The deterministic component split of one (schema, root) query — a
/// pure function of its inputs, so checkpoint resumes and parallel
/// drivers recompute the identical split.
struct ComponentSplit {
  /// False when a soundness gate tripped; the caller must fall back to
  /// the monolithic search. The remaining fields are then empty.
  bool eligible = false;
  /// Which gate tripped (diagnostics only).
  std::string ineligible_reason;
  /// Per component: its intermediate categories plus root and All —
  /// the category universe its EXPAND is restricted to. Component
  /// order is deterministic (by smallest member id).
  std::vector<DynamicBitset> universes;
  /// Per component: indices into the caller's prepared relevant-
  /// constraint vector of the constraints whose atoms mention this
  /// component's categories. Every relevant constraint lands in
  /// exactly one component (vacuous True constraints in none).
  std::vector<std::vector<size_t>> constraint_indices;
  /// Per component: true iff a model may leave this component entirely
  /// absent — every root-rooted constraint assigned to it evaluates
  /// True when all of its atoms are false (the all-absent valuation).
  /// Components with absent_valid == false must contribute a model to
  /// every composed frozen dimension.
  std::vector<bool> absent_valid;
  /// Per component: the no-good salt separating this component's
  /// signature space from the monolithic one (a component search sees
  /// fewer constraints, so its barren verdicts must not leak back).
  std::vector<uint64_t> salts;

  size_t num_components() const { return universes.size(); }
};

/// Computes the component split for (ds, root) given the prepared
/// (shorthand-expanded) relevant constraints and the no-good salt the
/// run would use monolithically. Categories are grouped by union-find
/// over (a) hierarchy edges between intermediate categories and
/// (b) per-constraint coupling: every intermediate category one
/// constraint mentions joins one group.
ComponentSplit ComputeComponentSplit(
    const DimensionSchema& ds, CategoryId root,
    const std::vector<DimensionConstraint>& relevant, uint64_t nogood_salt);

}  // namespace olapdc

#endif  // OLAPDC_CORE_DECOMPOSE_H_
