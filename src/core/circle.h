// The circle operator Sigma ∘ g (paper Definition 8): partially
// evaluates a dimension constraint against a fixed subhierarchy g,
// replacing
//   - every path atom by its truth value in g,
//   - every composed/through shorthand by its truth value in g (it is a
//     finite disjunction of path atoms, so its circled value is decided
//     by g alone),
//   - every equality atom c_i.c_j ~ k whose source has no path to c_j
//     in g by False,
// leaving only equality atoms over categories of g. A constraint whose
// *root* is not in g is vacuous for any frozen dimension induced by g
// and is replaced by True outright (DESIGN.md deviation 1).

#ifndef OLAPDC_CORE_CIRCLE_H_
#define OLAPDC_CORE_CIRCLE_H_

#include <vector>

#include "common/bitset.h"
#include "constraint/expr.h"
#include "core/subhierarchy.h"

namespace olapdc {

/// Circles a bare expression. `reach` must come from g.ComputeReach()
/// (reflexive reachability within g; empty rows for absent categories).
ExprPtr ApplyCircleToExpr(const ExprPtr& e, const Subhierarchy& g,
                          const std::vector<DynamicBitset>& reach);

/// Circles a constraint: True when the root is outside g, otherwise
/// ApplyCircleToExpr of its expression. The result is NOT simplified,
/// matching the figure-5 presentation; pass it through Simplify() for
/// decision procedures.
ExprPtr ApplyCircleToConstraint(const DimensionConstraint& c,
                                const Subhierarchy& g,
                                const std::vector<DynamicBitset>& reach);

}  // namespace olapdc

#endif  // OLAPDC_CORE_CIRCLE_H_
