// Constraint mining: the reverse of model checking. Given a concrete
// dimension instance, derive a set of dimension constraints the
// instance satisfies — the starting point the paper's design-stage
// story needs when a warehouse already has data but no declared
// constraints ("the design of dimensions for OLAP should be driven by
// the semantic information provided in the schema", Section 6).
//
// Mined per category c with at least one member:
//   - the split of observed direct-parent-category sets (a split
//     constraint in the ICDT'01 sense, compiled to the dimension-
//     constraint language): members of c have parents in exactly one of
//     the observed sets;
//   - equality-conditioned refinements: when every member of c that
//     rolls up to an ancestor named k in category t uses the same
//     parent-set alternative, emit  (c.t = k -> <that alternative>).
//
// The mined set is guaranteed to hold on the input instance (re-checked
// by construction via the model checker in debug builds and by tests),
// and is *descriptive*: other instances over the same hierarchy may
// violate it.

#ifndef OLAPDC_CORE_MINING_H_
#define OLAPDC_CORE_MINING_H_

#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "constraint/expr.h"
#include "core/schema.h"
#include "dim/dimension_instance.h"

namespace olapdc {

struct MiningOptions {
  /// Also mine equality-conditioned constraints (c.t = k -> ...).
  bool mine_equality_conditions = true;
  /// Only consider conditioning categories with at most this many
  /// distinct ancestor names (larger name domains rarely condition
  /// structure).
  size_t max_condition_names = 8;
  /// Wall-clock / cancellation / memory budget; not owned, may be
  /// null (unbounded). On expiration mining aborts with the budget
  /// status through the Result error channel — the mined set is
  /// all-or-nothing, because a silently truncated set would *describe
  /// less than the instance exhibits* rather than degrade gracefully.
  const Budget* budget = nullptr;
  /// Members scanned between full budget probes.
  uint32_t budget_check_stride = 64;
};

/// Mines constraints from `d`. Every returned constraint holds on `d`.
Result<std::vector<DimensionConstraint>> MineConstraints(
    const DimensionInstance& d, const MiningOptions& options = {});

/// Convenience: the instance's hierarchy plus the mined constraints.
Result<DimensionSchema> MineSchema(const DimensionInstance& d,
                                   const MiningOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_CORE_MINING_H_
