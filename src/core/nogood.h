// NoGoodStore: learned pruning for DIMSAT (ROADMAP item 2, layer b).
//
// The search tree below an EXPAND node is a deterministic function of
// the node's subhierarchy g (given the schema, Σ, and the semantic
// pruning options): the pending-top choice, the successor scan, and the
// subset loop all read only g and the immutable schema. So when a
// subtree has been explored to completion and yielded *no frozen
// dimension* — a dead end, an into-prune, a failed CHECK, or a fully
// enumerated barren interior node — that fact can be memoized as a
// signature of (g, options) and consulted before ever expanding an
// identical node again, in this request or any later one against the
// same Σ epoch. DIMSAT revisits structurally identical subhierarchies
// constantly (different subset-loop paths converge on the same g), so
// the store prunes both within one search and across requests.
//
// Soundness guards (enforced at the recording sites in dimsat.cc):
// a node is recorded only when its subtree ran to completion *inline*
// (no outstanding parallel children), with an OK status (no budget
// stop), no external stop, and no frozen dimension found below it. The
// semantic option bits (Ss / Sc / into pruning, injective names) are
// part of the signature, so a store can be shared by runs with
// different options without cross-contamination. Probing is always
// sound: a hit only ever skips a subtree known to contribute nothing.
//
// The store is a byte-capped ShardedCache of 128-bit signatures —
// thread-safe, LRU-evicting under pressure (forgetting a lemma is
// always safe) — and serializes to a `dimsat-nogoods v1` text form in
// the dimsat-checkpoint v1 spirit, so a drained daemon can persist its
// learned pruning and a warm restart (same content epoch) reloads it.

#ifndef OLAPDC_CORE_NOGOOD_H_
#define OLAPDC_CORE_NOGOOD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/cache_shard.h"
#include "common/status.h"
#include "core/subhierarchy.h"

namespace olapdc {

class NoGoodStore {
 public:
  struct Options {
    /// Byte cap across shards; LRU-evicted under pressure.
    uint64_t max_bytes = 4ull << 20;
    size_t num_shards = 8;
    /// Observability charge target (see cache_shard.h); not owned.
    MemoryBudget* memory = nullptr;
  };

  // Delegation instead of `Options{}` as a default argument: the
  // nested struct's member initializers are only usable once the
  // enclosing class is complete (member-init lists are).
  NoGoodStore() : NoGoodStore(Options{}) {}
  explicit NoGoodStore(Options options)
      : cache_({/*name=*/"nogood", options.num_shards, options.max_bytes,
                /*entry_overhead_bytes=*/kEntryOverheadBytes,
                options.memory}) {}

  NoGoodStore(const NoGoodStore&) = delete;
  NoGoodStore& operator=(const NoGoodStore&) = delete;

  /// Signature of a search node: the subhierarchy's exact structure
  /// (root, categories, edges), the semantic option bits of the run,
  /// and a theory salt distinguishing runs whose effective constraint
  /// theory extends Σ (DimsatOptions::nogood_salt). Two nodes with
  /// equal signatures have identical subtrees.
  static Fingerprint128 Signature(const Subhierarchy& g,
                                  uint32_t option_bits,
                                  uint64_t theory_salt = 0);

  /// True iff `sig` is a recorded barren subtree; refreshes its LRU
  /// position.
  bool Probe(const Fingerprint128& sig) { return cache_.Contains(sig); }

  void Record(const Fingerprint128& sig) {
    cache_.Insert(sig, true, /*value_bytes=*/sizeof(Fingerprint128));
  }

  uint64_t size() const { return cache_.size(); }
  CacheStatsSnapshot Stats() const { return cache_.Stats(); }
  void Clear() { cache_.Clear(); }

  /// Visits every recorded signature (arbitrary order). The snapshot
  /// plane uses this to merge a fully-parsed staging store into the
  /// live one, so a malformed persistence file never half-loads.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    cache_.ForEach([&](const Fingerprint128& sig, const bool&) { fn(sig); });
  }

  /// `dimsat-nogoods v1` text: header, entry count, one signature per
  /// line. Concurrent inserts during serialization may or may not be
  /// included (the count line is authoritative for what follows).
  std::string Serialize() const;

  /// Merges the entries of a serialized store into this one. The
  /// caller is responsible for epoch discipline: only load a store
  /// that was recorded against the same schema content epoch.
  /// `consumed` (optional) receives the number of bytes read, so
  /// containers can embed multiple stores in one stream.
  Status Load(std::string_view text, size_t* consumed = nullptr);

 private:
  /// list node + map node + key; the signature itself is the value.
  static constexpr uint64_t kEntryOverheadBytes = 80;

  ShardedCache<Fingerprint128, bool, Fingerprint128Hash> cache_;
};

}  // namespace olapdc

#endif  // OLAPDC_CORE_NOGOOD_H_
