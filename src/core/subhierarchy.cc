#include "core/subhierarchy.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace olapdc {

Subhierarchy::Subhierarchy(int num_categories, CategoryId root)
    : n_(num_categories),
      root_(root),
      cats_(num_categories),
      top_(num_categories),
      out_(num_categories, DynamicBitset(num_categories)),
      in_(num_categories, DynamicBitset(num_categories)),
      below_(num_categories, DynamicBitset(num_categories)) {
  OLAPDC_CHECK(0 <= root && root < num_categories);
  cats_.set(root);
  top_.set(root);
}

int Subhierarchy::num_edges() const {
  int count = 0;
  cats_.ForEach([&](int u) { count += out_[u].count(); });
  return count;
}

void Subhierarchy::Expand(CategoryId ctop, const DynamicBitset& r) {
  OLAPDC_DCHECK(top_.test(ctop)) << "Expand target must be a top category";
  OLAPDC_DCHECK(r.any());
  top_.reset(ctop);

  // Everything below ctop — plus ctop itself — now reaches every
  // category that r's members reach.
  DynamicBitset delta = below_[ctop];
  delta.set(ctop);

  std::vector<CategoryId> frontier;
  r.ForEach([&](int c) {
    if (!cats_.test(c)) {
      cats_.set(c);
      top_.set(c);
    }
    out_[ctop].set(c);
    in_[c].set(ctop);
    frontier.push_back(c);
  });

  // Propagate delta to every category reachable from r (inclusive).
  // Prior Below sets were exact, so the new facts are exactly `delta`
  // on that reachable region.
  DynamicBitset visited(n_);
  while (!frontier.empty()) {
    CategoryId x = frontier.back();
    frontier.pop_back();
    if (visited.test(x)) continue;
    visited.set(x);
    below_[x] |= delta;
    out_[x].ForEach([&](int y) {
      if (!visited.test(y)) frontier.push_back(y);
    });
  }
}

void Subhierarchy::ExpandLogged(CategoryId ctop, const DynamicBitset& r,
                                SubhierarchyUndoLog* log) {
  OLAPDC_DCHECK(top_.test(ctop)) << "Expand target must be a top category";
  OLAPDC_DCHECK(r.any());
  OLAPDC_DCHECK(out_[ctop].none()) << "top category cannot have edges yet";
  SubhierarchyUndoLog::Frame frame;
  frame.ctop = ctop;
  frame.cats_start = static_cast<uint32_t>(log->new_cats_.size());
  frame.below_start = static_cast<uint32_t>(log->below_used_);
  top_.reset(ctop);

  if (log->scratch_delta_.size() != n_) {
    log->scratch_delta_ = DynamicBitset(n_);
    log->scratch_visit_ = DynamicBitset(n_);
    log->scratch_visited_ = DynamicBitset(n_);
  }
  DynamicBitset& delta = log->scratch_delta_;
  delta = below_[ctop];
  delta.set(ctop);

  r.ForEach([&](int c) {
    if (!cats_.test(c)) {
      cats_.set(c);
      top_.set(c);
      log->new_cats_.push_back(c);
    }
    out_[ctop].set(c);
    in_[c].set(ctop);
  });

  // Propagate delta to every category reachable from r (inclusive),
  // saving each touched Below so Rollback can restore it bit-exactly
  // (|= may re-set bits that were already present, so a shared delta
  // alone cannot be subtracted back out).
  DynamicBitset& to_visit = log->scratch_visit_;
  DynamicBitset& visited = log->scratch_visited_;
  to_visit = r;
  visited.clear();
  for (int x = to_visit.First(); x >= 0; x = to_visit.First()) {
    to_visit.reset(x);
    visited.set(x);
    if (log->below_used_ == log->saved_below_.size()) {
      log->saved_below_.push_back({x, below_[x]});
    } else {
      SubhierarchyUndoLog::SavedBelow& slot =
          log->saved_below_[log->below_used_];
      slot.cat = x;
      slot.old_below = below_[x];
    }
    ++log->below_used_;
    below_[x] |= delta;
    to_visit |= out_[x];
    to_visit -= visited;
  }
  log->frames_.push_back(frame);
}

void Subhierarchy::Rollback(SubhierarchyUndoLog* log) {
  OLAPDC_DCHECK(!log->frames_.empty());
  const SubhierarchyUndoLog::Frame frame = log->frames_.back();
  log->frames_.pop_back();

  // Restore the journalled Below snapshots (disjoint categories within
  // a frame, so order is irrelevant).
  for (size_t i = frame.below_start; i < log->below_used_; ++i) {
    SubhierarchyUndoLog::SavedBelow& saved = log->saved_below_[i];
    below_[saved.cat] = saved.old_below;
  }
  log->below_used_ = frame.below_start;

  // Deeper frames have already been rolled back, so out_[ctop] is again
  // exactly the R of this frame's expansion.
  out_[frame.ctop].ForEach([&](int c) { in_[c].reset(frame.ctop); });
  out_[frame.ctop].clear();

  // Drop the categories this frame introduced.
  for (size_t i = frame.cats_start; i < log->new_cats_.size(); ++i) {
    const CategoryId c = log->new_cats_[i];
    cats_.reset(c);
    top_.reset(c);
  }
  log->new_cats_.resize(frame.cats_start);
  top_.set(frame.ctop);
}

bool Subhierarchy::IsPath(const std::vector<CategoryId>& path) const {
  if (path.empty()) return false;
  if (!cats_.test(path[0])) return false;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    if (!HasEdge(path[i], path[i + 1])) return false;
  }
  return true;
}

std::vector<DynamicBitset> Subhierarchy::ComputeReach() const {
  std::vector<DynamicBitset> reach(n_, DynamicBitset(n_));
  // Process categories; repeated relaxation handles arbitrary insertion
  // orders (g may be cyclic when pruning is disabled, so a plain
  // reverse-topological pass is not guaranteed to exist).
  bool changed = true;
  cats_.ForEach([&](int u) { reach[u].set(u); });
  while (changed) {
    changed = false;
    cats_.ForEach([&](int u) {
      DynamicBitset before = reach[u];
      out_[u].ForEach([&](int v) { reach[u] |= reach[v]; });
      if (reach[u] != before) changed = true;
    });
  }
  return reach;
}

std::vector<std::pair<CategoryId, CategoryId>> Subhierarchy::Edges() const {
  std::vector<std::pair<CategoryId, CategoryId>> edges;
  cats_.ForEach([&](int u) {
    out_[u].ForEach([&](int v) { edges.emplace_back(u, v); });
  });
  return edges;
}

Digraph Subhierarchy::ToDigraph() const {
  Digraph g(n_);
  for (const auto& [u, v] : Edges()) g.AddEdge(u, v);
  return g;
}

bool Subhierarchy::HasCycleIn() const { return HasCycle(ToDigraph()); }

bool Subhierarchy::HasCycleIn(
    const std::vector<DynamicBitset>& reach) const {
  bool found = false;
  cats_.ForEach([&](int u) {
    if (found) return;
    out_[u].ForEach([&](int v) {
      if (!found && reach[v].test(u)) found = true;
    });
  });
  return found;
}

bool Subhierarchy::HasShortcut() const {
  return HasShortcut(ComputeReach());
}

bool Subhierarchy::HasShortcut(
    const std::vector<DynamicBitset>& reach) const {
  bool found = false;
  cats_.ForEach([&](int u) {
    if (found) return;
    out_[u].ForEach([&](int v) {
      if (found) return;
      // Edge (u, v) plus a path u -> w -> ... -> v for some other
      // successor w of u.
      out_[u].ForEach([&](int w) {
        if (w != v && reach[w].test(v)) found = true;
      });
    });
  });
  return found;
}

void Subhierarchy::UnionWith(const Subhierarchy& other) {
  OLAPDC_DCHECK(n_ == other.n_);
  OLAPDC_DCHECK(root_ == other.root_);
  cats_ |= other.cats_;
  for (int c = 0; c < n_; ++c) {
    out_[c] |= other.out_[c];
    in_[c] |= other.in_[c];
    below_[c] |= other.below_[c];
  }
  top_.clear();
  cats_.ForEach([&](int c) {
    if (!out_[c].any()) top_.set(c);
  });
}

std::optional<Subhierarchy> Subhierarchy::FromPartialEdges(
    int num_categories, CategoryId root,
    const std::vector<std::pair<CategoryId, CategoryId>>& edges) {
  if (root < 0 || root >= num_categories) return std::nullopt;
  Subhierarchy g(num_categories, root);
  g.top_.clear();
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= num_categories || v < 0 || v >= num_categories ||
        u == v) {
      return std::nullopt;
    }
    g.cats_.set(u);
    g.cats_.set(v);
    g.out_[u].set(v);
    g.in_[v].set(u);
  }

  // Every category of g must be reachable from root (invariant of each
  // EXPAND step, so of every checkpointed frontier).
  {
    DynamicBitset seen(num_categories);
    std::vector<CategoryId> frontier{root};
    seen.set(root);
    while (!frontier.empty()) {
      CategoryId u = frontier.back();
      frontier.pop_back();
      g.out_[u].ForEach([&](int v) {
        if (!seen.test(v)) {
          seen.set(v);
          frontier.push_back(v);
        }
      });
    }
    if (!g.cats_.IsSubsetOf(seen)) return std::nullopt;
  }

  // In a search state, top() is exactly the not-yet-expanded categories
  // — the ones with no outgoing edge (the search removes a category
  // from top() precisely when it gains its edges).
  g.cats_.ForEach([&](int u) {
    if (g.out_[u].none()) g.top_.set(u);
  });

  // Rebuild Below by relaxation to a fixpoint (partial graphs may be
  // cyclic when pruning is disabled; the fixpoint handles both).
  std::vector<DynamicBitset> reach(num_categories,
                                   DynamicBitset(num_categories));
  bool changed = true;
  g.cats_.ForEach([&](int u) { reach[u].set(u); });
  while (changed) {
    changed = false;
    g.cats_.ForEach([&](int u) {
      DynamicBitset before = reach[u];
      g.out_[u].ForEach([&](int v) { reach[u] |= reach[v]; });
      if (reach[u] != before) changed = true;
    });
  }
  g.cats_.ForEach([&](int v) {
    g.cats_.ForEach([&](int u) {
      if (u != v && reach[u].test(v)) g.below_[v].set(u);
    });
  });
  return g;
}

std::optional<Subhierarchy> Subhierarchy::FromEdges(
    int num_categories, CategoryId root, CategoryId all,
    const std::vector<std::pair<CategoryId, CategoryId>>& edges) {
  Subhierarchy g(num_categories, root);
  g.top_.clear();
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= num_categories || v < 0 || v >= num_categories ||
        u == v) {
      return std::nullopt;
    }
    g.cats_.set(u);
    g.cats_.set(v);
    g.out_[u].set(v);
    g.in_[v].set(u);
  }

  // Reachability from root must cover every category of g.
  {
    DynamicBitset seen(num_categories);
    std::vector<CategoryId> frontier{root};
    seen.set(root);
    while (!frontier.empty()) {
      CategoryId u = frontier.back();
      frontier.pop_back();
      g.out_[u].ForEach([&](int v) {
        if (!seen.test(v)) {
          seen.set(v);
          frontier.push_back(v);
        }
      });
    }
    if (!g.cats_.IsSubsetOf(seen)) return std::nullopt;
  }

  // Every category without outgoing edges must be All (otherwise it
  // cannot reach All); All itself must have none. With acyclicity this
  // implies c ->* All for all c. (Cyclic edge sets are representable —
  // the structural CHECK rejects them later.)
  bool ok = true;
  g.cats_.ForEach([&](int u) {
    bool has_out = g.out_[u].any();
    if (u == all && has_out) ok = false;
    if (u != all && !has_out) ok = false;
    if (!has_out) g.top_.set(u);
  });
  if (root == all && g.cats_.count() == 1) ok = true;
  if (!ok) return std::nullopt;
  if (!g.cats_.test(all) && !(root == all && g.cats_.count() == 1)) {
    return std::nullopt;
  }

  // Rebuild Below exactly.
  std::vector<DynamicBitset> reach(num_categories,
                                   DynamicBitset(num_categories));
  bool changed = true;
  g.cats_.ForEach([&](int u) { reach[u].set(u); });
  while (changed) {
    changed = false;
    g.cats_.ForEach([&](int u) {
      DynamicBitset before = reach[u];
      g.out_[u].ForEach([&](int v) { reach[u] |= reach[v]; });
      if (reach[u] != before) changed = true;
    });
  }
  g.cats_.ForEach([&](int v) {
    g.cats_.ForEach([&](int u) {
      if (u != v && reach[u].test(v)) g.below_[v].set(u);
    });
  });
  return g;
}

}  // namespace olapdc
