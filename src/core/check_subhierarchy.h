// The CHECK procedure of the DIMSAT algorithm (paper Figure 6 +
// Proposition 2): decides whether a fully built subhierarchy g induces
// at least one frozen dimension, i.e. whether
//   (a) g is cycle-free and shortcut-free, and
//   (b) some c-assignment satisfies Sigma(ds, c) ∘ g.
// Shared by DIMSAT and the brute-force NaiveSat baseline.
//
// Condition (a) is always verified here rather than trusted to the
// EXPAND-time pruning: the paper's incremental Ss test misses shortcuts
// completed "at distance" when an already-expanded category gains a new
// incoming edge (DESIGN.md, deviations section).

#ifndef OLAPDC_CORE_CHECK_SUBHIERARCHY_H_
#define OLAPDC_CORE_CHECK_SUBHIERARCHY_H_

#include <cstdint>
#include <vector>

#include "core/assignment.h"
#include "core/frozen.h"
#include "core/schema.h"
#include "core/subhierarchy.h"

namespace olapdc {

struct CheckOptions {
  /// Passed through to the c-assignment search.
  AssignmentOptions assignment;
};

struct CheckOutcome {
  /// The frozen dimensions induced by g (empty if none; a single
  /// witness unless assignment.enumerate_all).
  std::vector<FrozenDimension> frozen;
  /// True when g failed the structural test (cycle or shortcut).
  bool structurally_rejected = false;
  /// c-assignment candidates explored.
  uint64_t assignments_tried = 0;
};

/// Runs CHECK(g). `relevant` must be Sigma(ds, root) with
/// composed/through shorthands already expanded (see dimsat.cc's
/// PrepareRelevantConstraints); `g` must contain the root.
CheckOutcome CheckSubhierarchy(const std::vector<DimensionConstraint>& relevant,
                               const Subhierarchy& g,
                               const CheckOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_CORE_CHECK_SUBHIERARCHY_H_
