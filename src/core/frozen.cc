#include "core/frozen.h"

#include <utility>

#include "common/string_util.h"
#include "graph/dot.h"

namespace olapdc {

std::string FrozenDimension::ToString(const HierarchySchema& schema) const {
  std::string out = "{";
  out += JoinMapped(g.Edges(), ", ", [&](const std::pair<int, int>& e) {
    return schema.CategoryName(e.first) + "->" +
           schema.CategoryName(e.second);
  });
  out += "}";
  std::vector<std::string> bindings;
  g.categories().ForEach([&](int c) {
    if (c < static_cast<int>(names.size()) && names[c].has_value()) {
      bindings.push_back(schema.CategoryName(c) + "=" + *names[c]);
    }
  });
  if (!bindings.empty()) out += " with " + Join(bindings, ", ");
  return out;
}

std::string FrozenDimension::ToDot(const HierarchySchema& schema,
                                   const std::string& graph_name) const {
  DotOptions options;
  options.name = graph_name;
  Digraph d = g.ToDigraph();
  return olapdc::ToDot(
      d,
      [&](int c) -> std::string {
        if (!g.Contains(c)) return "";
        std::string label = schema.CategoryName(c);
        if (c < static_cast<int>(names.size()) && names[c].has_value()) {
          label += "\\n" + *names[c];
        }
        return label;
      },
      options);
}

Result<DimensionInstance> FrozenDimension::ToInstance(
    const DimensionSchema& ds, const std::string& nk_prefix) const {
  const HierarchySchema& schema = ds.hierarchy();
  DimensionInstanceBuilder builder(ds.hierarchy_ptr());
  builder.set_auto_all(true).set_auto_link_to_all(false);

  g.categories().ForEach([&](int c) {
    const std::string& key = schema.CategoryName(c);
    std::string name = (c < static_cast<int>(names.size()) &&
                        names[c].has_value())
                           ? *names[c]
                           : nk_prefix + key;
    if (c == schema.all()) {
      name = "all";
    }
    builder.AddMember(key, key /* category name == key */, name);
  });
  for (const auto& [u, v] : g.Edges()) {
    builder.AddChildParent(schema.CategoryName(u), schema.CategoryName(v));
  }
  return builder.Build();
}

bool FrozenEquals(const FrozenDimension& a, const FrozenDimension& b) {
  return a.g.Edges() == b.g.Edges() && a.names == b.names;
}

void MergeDisjointInto(const FrozenDimension& from, FrozenDimension* into) {
  into->g.UnionWith(from.g);
  for (size_t c = 0; c < from.names.size(); ++c) {
    if (from.names[c].has_value()) {
      OLAPDC_DCHECK(!into->names[c].has_value() ||
                    *into->names[c] == *from.names[c]);
      into->names[c] = from.names[c];
    }
  }
}

}  // namespace olapdc
