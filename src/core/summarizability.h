// Summarizability (paper Section 3.3, Theorem 1): category c is
// summarizable from a set S in a dimension instance d iff for every
// bottom category cb,
//     d ⊨ cb.c ⊃ ⊙_{ci in S} cb.ci.c ,
// i.e. every base member that rolls up to c does so through exactly one
// category of S. At the schema level the same constraint set must be
// *implied* by the schema, which this module decides through the
// Theorem 2 reduction and DIMSAT.

#ifndef OLAPDC_CORE_SUMMARIZABILITY_H_
#define OLAPDC_CORE_SUMMARIZABILITY_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "core/implication.h"
#include "core/schema.h"
#include "dim/dimension_instance.h"

namespace olapdc {

/// Builds the Theorem 1 test constraint for one bottom category:
///   cb.c ⊃ ⊙_{ci in S} cb.ci.c
Result<DimensionConstraint> SummarizabilityConstraint(
    const HierarchySchema& schema, CategoryId bottom, CategoryId c,
    const std::vector<CategoryId>& s);

struct SummarizabilityResult {
  bool summarizable = false;
  struct PerBottom {
    CategoryId bottom = kNoCategory;
    bool implied = false;
    /// When not implied: a frozen dimension witnessing a base member
    /// whose rollup to c avoids S or passes through several categories
    /// of S.
    std::optional<FrozenDimension> counterexample;
  };
  std::vector<PerBottom> details;
  /// Aggregate DIMSAT work across every per-bottom implication test
  /// (partial tests included).
  DimsatStats stats;
  /// OK for a definitive answer; a budget error (kResourceExhausted,
  /// kDeadlineExceeded, kCancelled) when some per-bottom test stopped
  /// early — `summarizable` is then meaningless, `details` covers only
  /// the bottoms decided before the budget expired, and `stats` records
  /// the partial work.
  Status status;
};

/// Schema-level test: is c summarizable from S in *every* instance over
/// ds? (Theorem 1 + Theorem 2 + DIMSAT.) With options.num_threads > 1
/// the per-bottom implication tests run as work-stealing pool tasks
/// (and each test's own DIMSAT search parallelizes on the same pool);
/// `details` stays in bottom-category order either way. One behavioral
/// difference from the sequential sweep: on a budget error the parallel
/// sweep may already have decided — and therefore reports stats for —
/// bottoms *after* the first failing one.
Result<SummarizabilityResult> IsSummarizable(
    const DimensionSchema& ds, CategoryId c,
    const std::vector<CategoryId>& s, const DimsatOptions& options = {});

/// Instance-level test: is c summarizable from S in this particular d?
/// (Theorem 1 checked by model checking.)
Result<bool> IsSummarizableInInstance(const DimensionInstance& d,
                                      CategoryId c,
                                      const std::vector<CategoryId>& s);

/// The base members that break instance-level summarizability of c from
/// S: those rolling up to c but not through exactly one category of S
/// (empty iff IsSummarizableInInstance is true). The actionable half of
/// a "no" answer — e.g. the Washington stores in the paper's Example
/// 10.
Result<std::vector<MemberId>> SummarizabilityViolators(
    const DimensionInstance& d, CategoryId c,
    const std::vector<CategoryId>& s);

}  // namespace olapdc

#endif  // OLAPDC_CORE_SUMMARIZABILITY_H_
