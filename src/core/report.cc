#include "core/report.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "constraint/printer.h"
#include "core/summarizability.h"
#include "graph/algorithms.h"

namespace olapdc {

namespace {

/// The edge set of a frozen dimension as a canonical string (structure
/// identity, ignoring the constant assignment).
std::string StructureKey(const FrozenDimension& f) {
  auto edges = f.g.Edges();
  std::sort(edges.begin(), edges.end());
  return JoinMapped(edges, ";", [](const std::pair<int, int>& e) {
    return std::to_string(e.first) + ">" + std::to_string(e.second);
  });
}

}  // namespace

Result<std::string> HeterogeneityReport(const DimensionSchema& ds,
                                        const ReportOptions& options) {
  const HierarchySchema& schema = ds.hierarchy();
  std::string out;

  out += "== structure ==\n";
  out += "categories: " + std::to_string(schema.num_categories()) +
         ", edges: " + std::to_string(schema.graph().num_edges()) +
         ", bottom categories:";
  for (CategoryId b : schema.bottom_categories()) {
    out += " " + schema.CategoryName(b);
  }
  out += "\n";
  auto shortcuts = schema.Shortcuts();
  if (!shortcuts.empty()) {
    out += "shortcut edges:";
    for (const auto& [u, v] : shortcuts) {
      out += " " + schema.CategoryName(u) + "->" + schema.CategoryName(v);
    }
    out += "\n";
  }
  if (HasCycle(schema.graph())) {
    out += "the category graph contains cycles (Example 4 style)\n";
  }

  out += "\n== constraints (" + std::to_string(ds.constraints().size()) +
         ") ==\n";
  for (const DimensionConstraint& c : ds.constraints()) {
    out += "  " + ConstraintToString(schema, c) + "\n";
  }

  out += "\n== satisfiability ==\n";
  std::vector<bool> satisfiable(schema.num_categories());
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    DimsatResult r = Dimsat(ds, c, options.dimsat);
    OLAPDC_RETURN_NOT_OK(r.status);
    satisfiable[c] = r.satisfiable;
    if (!r.satisfiable) {
      out += "  " + schema.CategoryName(c) + ": UNSATISFIABLE\n";
    }
  }
  if (std::all_of(satisfiable.begin(), satisfiable.end(),
                  [](bool b) { return b; })) {
    out += "  all categories satisfiable\n";
  }

  out += "\n== frozen dimensions (the homogeneous worlds mixed) ==\n";
  for (CategoryId b : schema.bottom_categories()) {
    if (b == schema.all() || !satisfiable[b]) continue;
    DimsatOptions enumerate = options.dimsat;
    enumerate.enumerate_all = true;
    enumerate.max_frozen = options.max_frozen_per_bottom;
    DimsatResult r = Dimsat(ds, b, enumerate);
    OLAPDC_RETURN_NOT_OK(r.status);
    std::set<std::string> structures;
    for (const FrozenDimension& f : r.frozen) {
      structures.insert(StructureKey(f));
    }
    out += "root " + schema.CategoryName(b) + ": " +
           std::to_string(r.frozen.size()) + " frozen dimension(s), " +
           std::to_string(structures.size()) + " distinct structure(s)\n";
    for (const FrozenDimension& f : r.frozen) {
      out += "  " + f.ToString(schema) + "\n";
    }
  }

  if (options.include_summarizability_matrix) {
    out += "\n== summarizability matrix (rows: target; cols: single "
           "source; y = derivable) ==\n";
    std::vector<CategoryId> cats;
    for (CategoryId c = 0; c < schema.num_categories(); ++c) {
      if (c != schema.all() && satisfiable[c]) cats.push_back(c);
    }
    out += "            ";
    for (CategoryId c : cats) {
      out += " " + schema.CategoryName(c).substr(0, 4);
    }
    out += "\n";
    for (CategoryId target : cats) {
      std::string row = schema.CategoryName(target);
      row.resize(12, ' ');
      for (CategoryId source : cats) {
        OLAPDC_ASSIGN_OR_RETURN(
            SummarizabilityResult r,
            IsSummarizable(ds, target, {source}, options.dimsat));
        // '?' marks cells whose implication test exhausted its budget:
        // the matrix degrades instead of failing wholesale.
        std::string cell =
            !r.status.ok() ? "?" : (r.summarizable ? "y" : ".");
        row += " " + cell;
        row.resize(row.size() + schema.CategoryName(source)
                                        .substr(0, 4)
                                        .size() -
                       1,
                   ' ');
      }
      out += row + "\n";
    }
  }
  return out;
}

Result<bool> IsHomogeneousSchema(const DimensionSchema& ds,
                                 const DimsatOptions& options) {
  const HierarchySchema& schema = ds.hierarchy();
  for (CategoryId b : schema.bottom_categories()) {
    if (b == schema.all()) continue;
    DimsatOptions enumerate = options;
    enumerate.enumerate_all = true;
    DimsatResult r = Dimsat(ds, b, enumerate);
    OLAPDC_RETURN_NOT_OK(r.status);
    if (r.frozen.empty()) continue;  // unsatisfiable: vacuously uniform
    std::set<std::string> structures;
    for (const FrozenDimension& f : r.frozen) {
      structures.insert(StructureKey(f));
    }
    if (structures.size() > 1) return false;
  }
  return true;
}

}  // namespace olapdc
