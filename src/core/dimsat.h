// DIMSAT (paper Section 5, Figure 6): the backtracking decision
// procedure for category satisfiability. EXPAND grows subhierarchies of
// the hierarchy schema rooted at the query category, pruning choices
// that would create cycles (Sc), shortcuts (Ss), or violate *into*
// constraints; CHECK decides whether a completed subhierarchy induces a
// frozen dimension (Proposition 2). By Theorem 3, the category is
// satisfiable iff some explored subhierarchy does.
//
// Options expose each pruning rule independently (for the ablation
// benchmarks) and an enumerate-all mode that collects every frozen
// dimension instead of stopping at the first — the Figure 4 harness and
// the workload generators run DIMSAT in that mode.

#ifndef OLAPDC_CORE_DIMSAT_H_
#define OLAPDC_CORE_DIMSAT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "core/frozen.h"
#include "core/schema.h"
#include "core/subhierarchy.h"

namespace olapdc {

class NoGoodStore;

namespace exec {
class AdmissionGate;
class WorkStealingPool;
}  // namespace exec

struct DimsatOptions {
  /// Prune successor choices that would complete a shortcut (Ss).
  bool prune_shortcuts = true;
  /// Prune successor choices that would close a cycle (Sc).
  bool prune_cycles = true;
  /// Force R to contain every into-constraint target of the expanded
  /// category, and cut the branch when an into target is blocked.
  bool prune_into = true;
  /// Enforce injective constant choices (literal Proposition 2).
  bool require_injective_names = false;
  /// Connected-component decomposition (core/decompose.h): partition
  /// the intermediate categories of UpSet(root) into weakly connected
  /// components of the hierarchy DAG plus the constraint-coupling
  /// edges of the effective theory, solve each component with its own
  /// EXPAND over a restricted universe, and compose the per-component
  /// model sets — a w-component schema then costs the *sum* of the
  /// per-component searches instead of their product. Falls back to
  /// the monolithic search whenever a static soundness gate trips
  /// (fewer than two components, injective-names mode, a direct
  /// root->All edge, a cycle through the root, or a constraint whose
  /// atoms couple only root/All) and under collect_trace (the Figure 7
  /// harness pins the exact monolithic trace). The frozen-dimension
  /// set is always equal to the monolithic search's.
  bool decompose = false;
  /// Most-constrained-first branching: expand the pending category
  /// with the fewest free successor choices (out-degree minus forced
  /// into-targets, ties broken towards denser into coverage) instead
  /// of the lowest category id. The ordering is a pure function of
  /// (schema, root, options), computed once per solve and recomputed
  /// identically on checkpoint resume, so interrupted ≡ uninterrupted
  /// still holds. Off by default: the ablation bench and the
  /// per-technique floors own the evidence that it helps.
  bool branch_heuristic = false;
  /// Collect every frozen dimension instead of stopping at the first.
  bool enumerate_all = false;
  /// Cap on collected frozen dimensions (enumerate_all mode).
  size_t max_frozen = 1 << 20;
  /// Budget on EXPAND calls; exceeding it aborts with
  /// ResourceExhausted in DimsatResult::status.
  uint64_t max_expand_calls = UINT64_MAX;
  /// Record the EXPAND/CHECK event sequence (Figure 7 harness).
  bool collect_trace = false;
  size_t max_trace = 100000;
  /// Bound on simple paths enumerated when expanding composed atoms.
  size_t path_limit = 1 << 20;
  /// Wall-clock / cancellation budget; not owned, may be null
  /// (unbounded). Shared read-only across parallel workers. On
  /// expiration the search stops with kDeadlineExceeded / kCancelled in
  /// DimsatResult::status and the partial stats accumulated so far.
  const Budget* budget = nullptr;
  /// EXPAND calls between full budget probes (clock sample + flag
  /// load); the amortization that keeps the budget check off the hot
  /// path.
  uint32_t budget_check_stride = 256;
  /// Worker parallelism for callers that dispatch through RunDimsat():
  /// <= 1 runs the sequential engine, > 1 the work-stealing driver.
  int num_threads = 1;
  /// Work-stealing driver: EXPAND nodes at recursion depth below this
  /// become stealable pool tasks; at or beyond it the search recurses
  /// in-place (mutation + rollback). Depth 0 is the root. Small values
  /// under-split skewed trees; large ones drown the pool in tiny tasks
  /// (DESIGN.md §8 discusses the trade-off).
  int parallel_split_depth = 3;
  /// Pool override for the work-stealing driver (benches and tests pin
  /// exact worker counts); null uses the shared process pool.
  exec::WorkStealingPool* pool = nullptr;
  /// Out-parameter for checkpoint/resume: when non-null and the run
  /// stops on a budget error (deadline, cancellation, memory pressure,
  /// or the expand-call cap), the live search frontier is captured here
  /// so ResumeDimsat() can continue the search instead of restarting
  /// it. Cleared at the start of each run; forces the sequential engine
  /// (RunDimsat() dispatches accordingly — frontier capture is
  /// inherently a property of one depth-first traversal). The
  /// interrupted and resumed runs partition the search tree, so their
  /// combined verdict, frozen set, and statistics equal an
  /// uninterrupted run's.
  DimsatCheckpoint* checkpoint = nullptr;
  /// Overload shedding for the parallel driver: when non-null,
  /// DimsatParallel() asks the gate *before doing any work* and returns
  /// kUnavailable (no partial result; retry-after-ms hint in the
  /// message) when shed. Ignored by the sequential engine, which holds
  /// no pool resources.
  exec::AdmissionGate* admission = nullptr;
  /// Learned-pruning store (core/nogood.h); not owned, may be shared
  /// across runs and threads. Null (the default) disables the feature
  /// entirely — existing stats/trace/explain contracts are unchanged.
  /// When set, barren subtrees are skipped on sight (counted as
  /// stats.nogood_prunes) and newly completed barren subtrees are
  /// recorded. The frozen-dimension *set* is unaffected; per-node
  /// statistics and traces differ from an uncached run, so the store
  /// is ignored while collect_trace is on (the Figure 7 harness pins
  /// exact traces). The caller owns epoch discipline: one store must
  /// only ever see one schema content epoch.
  NoGoodStore* nogoods = nullptr;
  /// Mixed into every no-good signature. A subtree is barren relative
  /// to the *effective* constraint theory, so runs against different
  /// theories over the same schema content (e.g. Implies() extends Σ
  /// with ¬α) must salt their signatures apart: use 0 for plain
  /// satisfiability against Σ and a fingerprint of the extension for
  /// anything else. Distinct query roots need no salt — the root is
  /// part of the signature already.
  uint64_t nogood_salt = 0;
};

struct DimsatStats {
  uint64_t expand_calls = 0;
  uint64_t check_calls = 0;
  /// CHECKs rejected by the structural (cycle/shortcut) validation.
  uint64_t structural_rejections = 0;
  uint64_t assignments_tried = 0;
  /// Branches cut because a blocked into-target made expansion futile.
  uint64_t into_prunes = 0;
  /// Successor choices blocked by the shortcut rule Ss.
  uint64_t shortcut_prunes = 0;
  /// Successor choices blocked by the cycle rule Sc.
  uint64_t cycle_prunes = 0;
  /// Expansions abandoned because no successor choice remained.
  uint64_t dead_ends = 0;
  /// Subtrees skipped because the no-good store recognized them as
  /// barren (DimsatOptions::nogoods).
  uint64_t nogood_prunes = 0;
  uint64_t frozen_found = 0;
  /// Work-stealing driver only: pool tasks run for this search, and how
  /// many of them a worker other than the submitter executed (load
  /// actually rebalanced, not just parallelizable).
  uint64_t parallel_tasks = 0;
  uint64_t parallel_steals = 0;

  /// Any work recorded at all (used to tell "stopped before starting"
  /// from "stopped mid-search" in degradation reporting).
  bool Any() const {
    return expand_calls != 0 || check_calls != 0 || assignments_tried != 0;
  }
};

/// Accumulates `delta` into `total` (parallel-worker merges, the
/// summarizability per-bottom sweep, the Reasoner retry ladder).
void AccumulateStats(DimsatStats* total, const DimsatStats& delta);

/// Publishes one finished run's statistics into the global metrics
/// registry under `olapdc.dimsat.*` (docs/observability.md has the
/// inventory) and records the run latency. No-op when metrics are
/// disabled. Called once per Dimsat()/DimsatParallel() run — batching
/// the flush here keeps the EXPAND hot loop free of registry traffic.
void FlushDimsatMetrics(const DimsatStats& stats, const Status& status,
                        double elapsed_us);

/// One step of the Figure 7 execution trace.
struct DimsatTraceEvent {
  enum class Kind { kExpand, kCheckFail, kCheckSuccess, kPruned, kDeadEnd };
  Kind kind;
  /// Snapshot of g's edges at the event.
  std::vector<std::pair<CategoryId, CategoryId>> edges;
  /// Snapshot of g.Top.
  std::vector<CategoryId> top;

  std::string ToString(const HierarchySchema& schema) const;
};

struct DimsatResult {
  bool satisfiable = false;
  /// A witness (or all frozen dimensions in enumerate_all mode).
  std::vector<FrozenDimension> frozen;
  DimsatStats stats;
  std::vector<DimsatTraceEvent> trace;
  /// OK, or a budget error (kResourceExhausted for the expand-call cap,
  /// kDeadlineExceeded / kCancelled for the wall-clock budget) when the
  /// search stopped early — `satisfiable` is then only a lower bound
  /// and `stats` records the partial work performed.
  Status status;
};

/// Decides whether `root` is satisfiable in `ds` (Theorem 3 / Figure 6).
DimsatResult Dimsat(const DimensionSchema& ds, CategoryId root,
                    const DimsatOptions& options = {});

/// Convenience: all frozen dimensions of ds with the given root.
DimsatResult EnumerateFrozenDimensions(const DimensionSchema& ds,
                                       CategoryId root,
                                       DimsatOptions options = {});

/// Multi-threaded DIMSAT on the work-stealing pool: EXPAND nodes above
/// options.parallel_split_depth become stealable tasks, so skewed
/// subtrees rebalance dynamically instead of serializing on whichever
/// worker drew them. Semantically identical to Dimsat() (the
/// frozen-dimension *set* is equal; enumeration order may differ, and
/// in decision mode a different — equally valid — witness may be
/// returned). The shared stop flag propagates the first witness in
/// decision mode and the first budget expiry in every mode, so a
/// cancelled Budget stops all workers promptly. Tracing is unsupported.
/// num_threads <= 1 falls back to the sequential search. Otherwise the
/// run executes on options.pool if set (its size then bounds the
/// parallelism); with no pool override it uses the shared process
/// pool, or a run-local pool of num_threads workers when the process
/// pool is smaller — an explicit num_threads is honored, never
/// silently degraded.
DimsatResult DimsatParallel(const DimensionSchema& ds, CategoryId root,
                            const DimsatOptions& options, int num_threads);

/// The pre-work-stealing parallel driver, kept as the comparison
/// baseline for the scheduling benchmarks: the first-level expansion
/// choices of the root statically partition the search space over
/// `num_threads` fresh threads, so speedup is bounded by the skew of
/// first-level subtree sizes. Same semantics as DimsatParallel().
DimsatResult DimsatParallelStatic(const DimensionSchema& ds, CategoryId root,
                                  const DimsatOptions& options,
                                  int num_threads);

/// Continues an interrupted search from `checkpoint` (captured by a
/// previous run through DimsatOptions::checkpoint). Runs sequentially.
/// The result reports only the *fresh* work performed after the
/// interruption — callers accumulate it onto the interrupted run's
/// partial result (AccumulateStats + appending frozen), which then
/// exactly equals an uninterrupted run when the options match. If the
/// resumed run is itself interrupted and options.checkpoint is set, a
/// new checkpoint covering every still-unexplored frame is captured, so
/// resume chains compose. An empty checkpoint returns immediately
/// (the interrupted run had already covered the whole tree); a
/// checkpoint whose root / num_categories disagree with (ds, root)
/// yields kInvalidArgument.
DimsatResult ResumeDimsat(const DimensionSchema& ds, CategoryId root,
                          const DimsatOptions& options,
                          DimsatCheckpoint checkpoint);

/// Dispatch helper used by every higher layer (implication,
/// summarizability, Reasoner, CLI): runs Dimsat() when
/// options.num_threads <= 1, a trace is requested, or a checkpoint
/// capture is requested, else DimsatParallel() with
/// options.num_threads.
DimsatResult RunDimsat(const DimensionSchema& ds, CategoryId root,
                       const DimsatOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_CORE_DIMSAT_H_
