#include "core/sat_reduction.h"

#include <random>
#include <string>
#include <utility>

namespace olapdc {

Result<SatReduction> ReduceCnfToCategorySatisfiability(const Cnf& cnf) {
  if (cnf.num_variables <= 0) {
    return Status::InvalidArgument("CNF needs at least one variable");
  }
  HierarchySchemaBuilder builder;
  builder.AddEdge("Q", "T");
  builder.AddEdge("T", "All");
  for (int i = 1; i <= cnf.num_variables; ++i) {
    const std::string xi = "X" + std::to_string(i);
    builder.AddEdge("Q", xi);
    builder.AddEdge(xi, "All");
  }
  OLAPDC_ASSIGN_OR_RETURN(HierarchySchemaPtr schema, builder.BuildShared());

  const CategoryId q = schema->FindCategory("Q");
  std::vector<DimensionConstraint> constraints;

  // The into constraint Q/T guarantees Q always has the mandatory
  // parent T, decoupling "Q reaches All" from the variable choices.
  OLAPDC_ASSIGN_OR_RETURN(
      DimensionConstraint into,
      MakeConstraint(*schema,
                     MakePathAtom({q, schema->FindCategory("T")}), "into"));
  constraints.push_back(std::move(into));

  for (size_t ci = 0; ci < cnf.clauses.size(); ++ci) {
    std::vector<ExprPtr> literals;
    for (int literal : cnf.clauses[ci]) {
      const int var = literal > 0 ? literal : -literal;
      if (var < 1 || var > cnf.num_variables) {
        return Status::InvalidArgument("literal out of range");
      }
      CategoryId xi = schema->FindCategory("X" + std::to_string(var));
      ExprPtr atom = MakePathAtom({q, xi});
      literals.push_back(literal > 0 ? atom : MakeNot(std::move(atom)));
    }
    if (literals.empty()) {
      return Status::InvalidArgument("empty clause (trivially unsat)");
    }
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint clause,
        MakeConstraint(*schema, MakeOr(std::move(literals)),
                       "clause" + std::to_string(ci + 1)));
    constraints.push_back(std::move(clause));
  }

  return SatReduction{DimensionSchema(schema, std::move(constraints)), q};
}

bool EvalCnf(const Cnf& cnf, const std::vector<bool>& assignment) {
  OLAPDC_CHECK(static_cast<int>(assignment.size()) == cnf.num_variables);
  for (const auto& clause : cnf.clauses) {
    bool satisfied = false;
    for (int literal : clause) {
      const int var = literal > 0 ? literal : -literal;
      const bool value = assignment[var - 1];
      satisfied |= (literal > 0) == value;
    }
    if (!satisfied) return false;
  }
  return true;
}

bool BruteForceCnfSat(const Cnf& cnf) {
  OLAPDC_CHECK(cnf.num_variables <= 24) << "brute force limited to 24 vars";
  const uint32_t total = uint32_t{1} << cnf.num_variables;
  std::vector<bool> assignment(cnf.num_variables);
  for (uint32_t mask = 0; mask < total; ++mask) {
    for (int i = 0; i < cnf.num_variables; ++i) {
      assignment[i] = (mask >> i) & 1;
    }
    if (EvalCnf(cnf, assignment)) return true;
  }
  return false;
}

Cnf RandomCnf(int num_variables, int num_clauses, int k, uint64_t seed) {
  OLAPDC_CHECK(k >= 1 && k <= num_variables);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> var_dist(1, num_variables);
  std::bernoulli_distribution sign_dist(0.5);

  Cnf cnf;
  cnf.num_variables = num_variables;
  cnf.clauses.reserve(num_clauses);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> vars;
    while (static_cast<int>(vars.size()) < k) {
      int var = var_dist(rng);
      bool duplicate = false;
      for (int existing : vars) duplicate |= (existing == var);
      if (!duplicate) vars.push_back(var);
    }
    std::vector<int> clause;
    clause.reserve(k);
    for (int var : vars) clause.push_back(sign_dist(rng) ? var : -var);
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

}  // namespace olapdc
