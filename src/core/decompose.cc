#include "core/decompose.h"

#include <numeric>

namespace olapdc {

namespace {

/// Evaluates a constraint expression under the all-atoms-false
/// valuation — the truth value the constraint takes on any model in
/// which its component is entirely absent (every path, equality, and
/// order atom then fails, because each mentions at least one absent
/// intermediate category; see the gates in decompose.h).
bool EvalAllFalse(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kTrue:
      return true;
    case ExprKind::kFalse:
    case ExprKind::kPathAtom:
    case ExprKind::kEqualityAtom:
    case ExprKind::kComposedAtom:
    case ExprKind::kThroughAtom:
    case ExprKind::kOrderAtom:
      return false;
    case ExprKind::kNot:
      return !EvalAllFalse(*e.children[0]);
    case ExprKind::kAnd: {
      for (const ExprPtr& c : e.children) {
        if (!EvalAllFalse(*c)) return false;
      }
      return true;
    }
    case ExprKind::kOr: {
      for (const ExprPtr& c : e.children) {
        if (EvalAllFalse(*c)) return true;
      }
      return false;
    }
    case ExprKind::kImplies:
      return !EvalAllFalse(*e.children[0]) || EvalAllFalse(*e.children[1]);
    case ExprKind::kEquiv:
      return EvalAllFalse(*e.children[0]) == EvalAllFalse(*e.children[1]);
    case ExprKind::kXor:
      return EvalAllFalse(*e.children[0]) != EvalAllFalse(*e.children[1]);
    case ExprKind::kExactlyOne: {
      int truths = 0;
      for (const ExprPtr& c : e.children) {
        if (EvalAllFalse(*c)) ++truths;
      }
      return truths == 1;
    }
  }
  return false;
}

/// Every category an expression's atoms reference, as a bitset.
void CollectMentioned(const Expr& e, DynamicBitset* out) {
  if (e.IsAtom()) {
    for (CategoryId c : e.path) out->set(c);
    if (e.root != kNoCategory) out->set(e.root);
    if (e.via != kNoCategory) out->set(e.via);
    if (e.target != kNoCategory) out->set(e.target);
    return;
  }
  for (const ExprPtr& c : e.children) CollectMentioned(*c, out);
}

/// True iff some equality or order atom targets `a` or `b` (the G4
/// gate: assignment branching on a shared category).
bool TargetsSharedCategory(const Expr& e, CategoryId a, CategoryId b) {
  if (e.kind == ExprKind::kEqualityAtom || e.kind == ExprKind::kOrderAtom) {
    return e.target == a || e.target == b;
  }
  for (const ExprPtr& c : e.children) {
    if (TargetsSharedCategory(*c, a, b)) return true;
  }
  return false;
}

uint64_t MixSalt(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

ComponentSplit ComputeComponentSplit(
    const DimensionSchema& ds, CategoryId root,
    const std::vector<DimensionConstraint>& relevant, uint64_t nogood_salt) {
  ComponentSplit split;
  const HierarchySchema& schema = ds.hierarchy();
  const CategoryId all = schema.all();
  const int n = schema.num_categories();
  if (root == all) {
    split.ineligible_reason = "query root is All";
    return split;
  }
  DynamicBitset inter = schema.UpSet(root);
  inter.reset(root);
  inter.reset(all);
  if (static_cast<int>(inter.count()) < 2) {
    split.ineligible_reason = "fewer than two intermediate categories";
    return split;
  }
  if (schema.graph().HasEdge(root, all)) {
    split.ineligible_reason = "direct root->All edge";
    return split;
  }
  bool cycle_through_root = false;
  inter.ForEach([&](int u) {
    if (schema.graph().HasEdge(u, root)) cycle_through_root = true;
  });
  if (cycle_through_root) {
    split.ineligible_reason = "schema cycle through the query root";
    return split;
  }

  // Union-find over category ids; only intermediate categories are
  // ever united.
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };

  // (a) Hierarchy edges between intermediate categories.
  inter.ForEach([&](int u) {
    for (CategoryId v : schema.graph().OutNeighbors(u)) {
      if (inter.test(v)) unite(u, v);
    }
  });

  // (b) Constraint coupling: all intermediate categories one
  // constraint mentions share a component. Gates that make a
  // constraint unassignable trip here.
  std::vector<CategoryId> anchor(relevant.size(), kNoCategory);
  DynamicBitset mentioned(n);
  for (size_t i = 0; i < relevant.size(); ++i) {
    const Expr& e = *relevant[i].expr;
    if (e.kind == ExprKind::kTrue) continue;  // vacuous: no component
    if (e.kind == ExprKind::kFalse) {
      split.ineligible_reason = "relevant constraint is literally False";
      return split;
    }
    if (TargetsSharedCategory(e, root, all)) {
      split.ineligible_reason =
          "equality/order atom targets the query root or All";
      return split;
    }
    mentioned.clear();
    CollectMentioned(e, &mentioned);
    mentioned &= inter;
    CategoryId first = kNoCategory;
    mentioned.ForEach([&](int c) {
      if (first == kNoCategory) {
        first = c;
      } else {
        unite(first, c);
      }
    });
    if (first == kNoCategory) {
      split.ineligible_reason =
          "relevant constraint mentions no intermediate category";
      return split;
    }
    anchor[i] = first;
  }

  // Components in ascending order of their smallest member.
  std::vector<int> comp_of(n, -1);
  int num_components = 0;
  std::vector<int> comp_id_of_root(n, -1);
  inter.ForEach([&](int c) {
    const int r = find(c);
    if (comp_id_of_root[r] < 0) comp_id_of_root[r] = num_components++;
    comp_of[c] = comp_id_of_root[r];
  });
  if (num_components < 2) {
    split.ineligible_reason = "single weakly connected component";
    return split;
  }

  split.universes.assign(num_components, DynamicBitset(n));
  for (int k = 0; k < num_components; ++k) {
    split.universes[k].set(root);
    split.universes[k].set(all);
  }
  inter.ForEach([&](int c) { split.universes[comp_of[c]].set(c); });

  split.constraint_indices.assign(num_components, {});
  split.absent_valid.assign(num_components, true);
  for (size_t i = 0; i < relevant.size(); ++i) {
    if (anchor[i] == kNoCategory) continue;  // vacuous True constraint
    const int k = comp_of[anchor[i]];
    split.constraint_indices[k].push_back(i);
    // Only constraints rooted at the query root can be non-vacuous on
    // a model that omits this component (intermediate-rooted ones lose
    // their root along with the component).
    if (relevant[i].root == root && !EvalAllFalse(*relevant[i].expr)) {
      split.absent_valid[k] = false;
    }
  }

  split.salts.reserve(num_components);
  for (int k = 0; k < num_components; ++k) {
    split.salts.push_back(MixSalt(
        nogood_salt, static_cast<uint64_t>(split.universes[k].Hash())));
  }
  split.eligible = true;
  return split;
}

}  // namespace olapdc
