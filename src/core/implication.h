// The implication problem for dimension constraints (paper Section 4):
// ds ⊨ alpha iff alpha holds in every dimension instance over ds.
// Theorem 2 reduces it to category satisfiability:
//   ds ⊨ alpha  iff  root(alpha) is unsatisfiable in (G, Sigma ∪ {¬alpha}).

#ifndef OLAPDC_CORE_IMPLICATION_H_
#define OLAPDC_CORE_IMPLICATION_H_

#include <optional>

#include "common/result.h"
#include "core/dimsat.h"
#include "core/schema.h"

namespace olapdc {

struct ImplicationResult {
  bool implied = false;
  /// When not implied: a frozen dimension over ds that violates alpha
  /// (the Theorem 2/3 counterexample).
  std::optional<FrozenDimension> counterexample;
  /// Statistics of the underlying DIMSAT run.
  DimsatStats stats;
  /// OK for a definitive answer. A budget error (kResourceExhausted,
  /// kDeadlineExceeded, kCancelled) when the underlying search stopped
  /// early: `implied` is then meaningless, but `stats` still records
  /// the partial work, so callers can degrade gracefully instead of
  /// losing the whole run.
  Status status;
};

/// Decides ds ⊨ alpha via Theorem 2 + DIMSAT. Budget exhaustion is
/// reported *inside* the value (see ImplicationResult::status) with
/// partial stats; the Result error channel carries only hard errors
/// (malformed constraints, internal failures).
Result<ImplicationResult> Implies(const DimensionSchema& ds,
                                  const DimensionConstraint& alpha,
                                  const DimsatOptions& options = {});

/// Category satisfiability (Theorem 3 via DIMSAT): whether some
/// instance over ds has a member in `category`.
Result<bool> IsCategorySatisfiable(const DimensionSchema& ds,
                                   CategoryId category,
                                   const DimsatOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_CORE_IMPLICATION_H_
