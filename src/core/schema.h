// Dimension schemas (paper Section 3.1): a hierarchy schema G together
// with a set Sigma of dimension constraints. This is the object the
// implication problem, category satisfiability, and summarizability
// tests are posed against.

#ifndef OLAPDC_CORE_SCHEMA_H_
#define OLAPDC_CORE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/bitset.h"
#include "constraint/expr.h"
#include "dim/hierarchy_schema.h"

namespace olapdc {

/// An immutable dimension schema ds = (G, Sigma). Precomputes the
/// Const_ds map (constants per category mentioned by equality atoms)
/// and the *into*-constraint edge sets used by DIMSAT's pruning.
class DimensionSchema {
 public:
  DimensionSchema(HierarchySchemaPtr hierarchy,
                  std::vector<DimensionConstraint> constraints);

  const HierarchySchema& hierarchy() const { return *hierarchy_; }
  const HierarchySchemaPtr& hierarchy_ptr() const { return hierarchy_; }
  const std::vector<DimensionConstraint>& constraints() const {
    return constraints_;
  }

  /// Sigma(ds, c): the constraints whose root is reachable from c
  /// (Section 5) — the only ones a frozen dimension rooted at c can
  /// possibly be non-vacuous for.
  std::vector<const DimensionConstraint*> RelevantConstraints(
      CategoryId c) const;

  /// Const_ds(c): the constants k with an equality atom targeting c in
  /// Sigma, sorted and deduplicated.
  const std::vector<std::string>& ConstantsOf(CategoryId c) const {
    OLAPDC_DCHECK(0 <= c && c < hierarchy().num_categories());
    return constants_[c];
  }

  /// The maximum |Const_ds(c)| over all categories (the paper's N_K).
  int max_constants_per_category() const { return max_constants_; }

  /// The categories c' such that Sigma contains the into constraint
  /// c_c' (a bare length-one path atom), as a bitset.
  const DynamicBitset& IntoTargets(CategoryId c) const {
    OLAPDC_DCHECK(0 <= c && c < hierarchy().num_categories());
    return into_targets_[c];
  }

  /// A copy of this schema with one more constraint (used by the
  /// Theorem 2 reduction of implication to category satisfiability).
  DimensionSchema WithExtraConstraint(DimensionConstraint extra) const;

 private:
  HierarchySchemaPtr hierarchy_;
  std::vector<DimensionConstraint> constraints_;
  std::vector<std::vector<std::string>> constants_;
  std::vector<DynamicBitset> into_targets_;
  int max_constants_ = 0;
};

}  // namespace olapdc

#endif  // OLAPDC_CORE_SCHEMA_H_
