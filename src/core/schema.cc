#include "core/schema.h"

#include <algorithm>
#include <utility>

namespace olapdc {

DimensionSchema::DimensionSchema(HierarchySchemaPtr hierarchy,
                                 std::vector<DimensionConstraint> constraints)
    : hierarchy_(std::move(hierarchy)), constraints_(std::move(constraints)) {
  OLAPDC_CHECK(hierarchy_ != nullptr);
  const int n = hierarchy_->num_categories();

  constants_.assign(n, {});
  for (const DimensionConstraint& c : constraints_) {
    std::vector<const Expr*> atoms;
    CollectAtoms(c.expr, &atoms);
    for (const Expr* atom : atoms) {
      if (atom->kind == ExprKind::kEqualityAtom) {
        constants_[atom->target].push_back(atom->constant);
      }
    }
  }
  for (auto& list : constants_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    max_constants_ = std::max(max_constants_, static_cast<int>(list.size()));
  }

  into_targets_.assign(n, DynamicBitset(n));
  for (const DimensionConstraint& c : constraints_) {
    CategoryId child, parent;
    if (IsIntoConstraint(c, &child, &parent)) {
      into_targets_[child].set(parent);
    }
  }
}

std::vector<const DimensionConstraint*> DimensionSchema::RelevantConstraints(
    CategoryId c) const {
  const DynamicBitset& up = hierarchy_->UpSet(c);
  std::vector<const DimensionConstraint*> out;
  for (const DimensionConstraint& constraint : constraints_) {
    if (up.test(constraint.root)) out.push_back(&constraint);
  }
  return out;
}

DimensionSchema DimensionSchema::WithExtraConstraint(
    DimensionConstraint extra) const {
  std::vector<DimensionConstraint> constraints = constraints_;
  constraints.push_back(std::move(extra));
  return DimensionSchema(hierarchy_, std::move(constraints));
}

}  // namespace olapdc
